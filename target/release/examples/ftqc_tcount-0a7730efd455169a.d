/root/repo/target/release/examples/ftqc_tcount-0a7730efd455169a.d: examples/ftqc_tcount.rs

/root/repo/target/release/examples/ftqc_tcount-0a7730efd455169a: examples/ftqc_tcount.rs

examples/ftqc_tcount.rs:
