/root/repo/target/release/examples/rule_synthesis-e368ae853e6fc352.d: examples/rule_synthesis.rs

/root/repo/target/release/examples/rule_synthesis-e368ae853e6fc352: examples/rule_synthesis.rs

examples/rule_synthesis.rs:
