/root/repo/target/release/examples/nisq_qaoa-e3bd31e5dd51dd33.d: examples/nisq_qaoa.rs

/root/repo/target/release/examples/nisq_qaoa-e3bd31e5dd51dd33: examples/nisq_qaoa.rs

examples/nisq_qaoa.rs:
