/root/repo/target/release/examples/quickstart-9969aa37896c25cc.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9969aa37896c25cc: examples/quickstart.rs

examples/quickstart.rs:
