/root/repo/target/release/examples/resynthesis-93335f48de38b7a7.d: examples/resynthesis.rs

/root/repo/target/release/examples/resynthesis-93335f48de38b7a7: examples/resynthesis.rs

examples/resynthesis.rs:
