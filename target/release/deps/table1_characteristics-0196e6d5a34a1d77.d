/root/repo/target/release/deps/table1_characteristics-0196e6d5a34a1d77.d: crates/bench/src/bin/table1_characteristics.rs

/root/repo/target/release/deps/table1_characteristics-0196e6d5a34a1d77: crates/bench/src/bin/table1_characteristics.rs

crates/bench/src/bin/table1_characteristics.rs:
