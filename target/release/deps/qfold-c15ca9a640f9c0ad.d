/root/repo/target/release/deps/qfold-c15ca9a640f9c0ad.d: crates/fold/src/lib.rs

/root/repo/target/release/deps/qfold-c15ca9a640f9c0ad: crates/fold/src/lib.rs

crates/fold/src/lib.rs:
