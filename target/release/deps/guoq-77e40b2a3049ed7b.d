/root/repo/target/release/deps/guoq-77e40b2a3049ed7b.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cost.rs crates/core/src/fidelity.rs crates/core/src/guoq.rs crates/core/src/transform.rs

/root/repo/target/release/deps/libguoq-77e40b2a3049ed7b.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cost.rs crates/core/src/fidelity.rs crates/core/src/guoq.rs crates/core/src/transform.rs

/root/repo/target/release/deps/libguoq-77e40b2a3049ed7b.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cost.rs crates/core/src/fidelity.rs crates/core/src/guoq.rs crates/core/src/transform.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/cost.rs:
crates/core/src/fidelity.rs:
crates/core/src/guoq.rs:
crates/core/src/transform.rs:
