/root/repo/target/release/deps/crossbeam_channel-83beaa3181b831b0.d: vendor/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-83beaa3181b831b0.rlib: vendor/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-83beaa3181b831b0.rmeta: vendor/crossbeam-channel/src/lib.rs

vendor/crossbeam-channel/src/lib.rs:
