/root/repo/target/release/deps/fig12_cliffordt-bcd0d13622cc8292.d: crates/bench/src/bin/fig12_cliffordt.rs

/root/repo/target/release/deps/fig12_cliffordt-bcd0d13622cc8292: crates/bench/src/bin/fig12_cliffordt.rs

crates/bench/src/bin/fig12_cliffordt.rs:
