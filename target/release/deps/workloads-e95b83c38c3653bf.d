/root/repo/target/release/deps/workloads-e95b83c38c3653bf.d: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/workloads-e95b83c38c3653bf: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/generators.rs:
crates/workloads/src/suite.rs:
