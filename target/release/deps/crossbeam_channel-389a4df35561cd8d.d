/root/repo/target/release/deps/crossbeam_channel-389a4df35561cd8d.d: vendor/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/crossbeam_channel-389a4df35561cd8d: vendor/crossbeam-channel/src/lib.rs

vendor/crossbeam-channel/src/lib.rs:
