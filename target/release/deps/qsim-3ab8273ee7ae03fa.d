/root/repo/target/release/deps/qsim-3ab8273ee7ae03fa.d: crates/sim/src/lib.rs crates/sim/src/equiv.rs crates/sim/src/statevector.rs

/root/repo/target/release/deps/qsim-3ab8273ee7ae03fa: crates/sim/src/lib.rs crates/sim/src/equiv.rs crates/sim/src/statevector.rs

crates/sim/src/lib.rs:
crates/sim/src/equiv.rs:
crates/sim/src/statevector.rs:
