/root/repo/target/release/deps/repro_all-19c34c7bd1cd9ca1.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/release/deps/repro_all-19c34c7bd1cd9ca1: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
