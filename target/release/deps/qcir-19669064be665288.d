/root/repo/target/release/deps/qcir-19669064be665288.d: crates/circuit/src/lib.rs crates/circuit/src/circuit.rs crates/circuit/src/dag.rs crates/circuit/src/gate.rs crates/circuit/src/gateset.rs crates/circuit/src/qasm.rs crates/circuit/src/rebase.rs crates/circuit/src/region.rs

/root/repo/target/release/deps/libqcir-19669064be665288.rlib: crates/circuit/src/lib.rs crates/circuit/src/circuit.rs crates/circuit/src/dag.rs crates/circuit/src/gate.rs crates/circuit/src/gateset.rs crates/circuit/src/qasm.rs crates/circuit/src/rebase.rs crates/circuit/src/region.rs

/root/repo/target/release/deps/libqcir-19669064be665288.rmeta: crates/circuit/src/lib.rs crates/circuit/src/circuit.rs crates/circuit/src/dag.rs crates/circuit/src/gate.rs crates/circuit/src/gateset.rs crates/circuit/src/qasm.rs crates/circuit/src/rebase.rs crates/circuit/src/region.rs

crates/circuit/src/lib.rs:
crates/circuit/src/circuit.rs:
crates/circuit/src/dag.rs:
crates/circuit/src/gate.rs:
crates/circuit/src/gateset.rs:
crates/circuit/src/qasm.rs:
crates/circuit/src/rebase.rs:
crates/circuit/src/region.rs:
