/root/repo/target/release/deps/fig14_fold_then_guoq-33bb5e87093edb28.d: crates/bench/src/bin/fig14_fold_then_guoq.rs

/root/repo/target/release/deps/fig14_fold_then_guoq-33bb5e87093edb28: crates/bench/src/bin/fig14_fold_then_guoq.rs

crates/bench/src/bin/fig14_fold_then_guoq.rs:
