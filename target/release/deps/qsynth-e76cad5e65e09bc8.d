/root/repo/target/release/deps/qsynth-e76cad5e65e09bc8.d: crates/synth/src/lib.rs crates/synth/src/continuous.rs crates/synth/src/finite.rs crates/synth/src/instantiate.rs crates/synth/src/resynth.rs

/root/repo/target/release/deps/qsynth-e76cad5e65e09bc8: crates/synth/src/lib.rs crates/synth/src/continuous.rs crates/synth/src/finite.rs crates/synth/src/instantiate.rs crates/synth/src/resynth.rs

crates/synth/src/lib.rs:
crates/synth/src/continuous.rs:
crates/synth/src/finite.rs:
crates/synth/src/instantiate.rs:
crates/synth/src/resynth.rs:
