/root/repo/target/release/deps/table2_gatesets-7cb44416d4f2e8ca.d: crates/bench/src/bin/table2_gatesets.rs

/root/repo/target/release/deps/table2_gatesets-7cb44416d4f2e8ca: crates/bench/src/bin/table2_gatesets.rs

crates/bench/src/bin/table2_gatesets.rs:
