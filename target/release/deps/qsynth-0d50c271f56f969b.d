/root/repo/target/release/deps/qsynth-0d50c271f56f969b.d: crates/synth/src/lib.rs crates/synth/src/continuous.rs crates/synth/src/finite.rs crates/synth/src/instantiate.rs crates/synth/src/resynth.rs

/root/repo/target/release/deps/libqsynth-0d50c271f56f969b.rlib: crates/synth/src/lib.rs crates/synth/src/continuous.rs crates/synth/src/finite.rs crates/synth/src/instantiate.rs crates/synth/src/resynth.rs

/root/repo/target/release/deps/libqsynth-0d50c271f56f969b.rmeta: crates/synth/src/lib.rs crates/synth/src/continuous.rs crates/synth/src/finite.rs crates/synth/src/instantiate.rs crates/synth/src/resynth.rs

crates/synth/src/lib.rs:
crates/synth/src/continuous.rs:
crates/synth/src/finite.rs:
crates/synth/src/instantiate.rs:
crates/synth/src/resynth.rs:
