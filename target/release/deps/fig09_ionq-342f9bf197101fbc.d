/root/repo/target/release/deps/fig09_ionq-342f9bf197101fbc.d: crates/bench/src/bin/fig09_ionq.rs

/root/repo/target/release/deps/fig09_ionq-342f9bf197101fbc: crates/bench/src/bin/fig09_ionq.rs

crates/bench/src/bin/fig09_ionq.rs:
