/root/repo/target/release/deps/fig11_search-97df305235a80b48.d: crates/bench/src/bin/fig11_search.rs

/root/repo/target/release/deps/fig11_search-97df305235a80b48: crates/bench/src/bin/fig11_search.rs

crates/bench/src/bin/fig11_search.rs:
