/root/repo/target/release/deps/end_to_end-d24fbbc20bb6e5ce.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-d24fbbc20bb6e5ce: tests/end_to_end.rs

tests/end_to_end.rs:
