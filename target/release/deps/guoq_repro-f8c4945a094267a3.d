/root/repo/target/release/deps/guoq_repro-f8c4945a094267a3.d: src/lib.rs

/root/repo/target/release/deps/libguoq_repro-f8c4945a094267a3.rlib: src/lib.rs

/root/repo/target/release/deps/libguoq_repro-f8c4945a094267a3.rmeta: src/lib.rs

src/lib.rs:
