/root/repo/target/release/deps/qsim-0dbbe27c38c44692.d: crates/sim/src/lib.rs crates/sim/src/equiv.rs crates/sim/src/statevector.rs

/root/repo/target/release/deps/libqsim-0dbbe27c38c44692.rlib: crates/sim/src/lib.rs crates/sim/src/equiv.rs crates/sim/src/statevector.rs

/root/repo/target/release/deps/libqsim-0dbbe27c38c44692.rmeta: crates/sim/src/lib.rs crates/sim/src/equiv.rs crates/sim/src/statevector.rs

crates/sim/src/lib.rs:
crates/sim/src/equiv.rs:
crates/sim/src/statevector.rs:
