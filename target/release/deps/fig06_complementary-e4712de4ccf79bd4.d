/root/repo/target/release/deps/fig06_complementary-e4712de4ccf79bd4.d: crates/bench/src/bin/fig06_complementary.rs

/root/repo/target/release/deps/fig06_complementary-e4712de4ccf79bd4: crates/bench/src/bin/fig06_complementary.rs

crates/bench/src/bin/fig06_complementary.rs:
