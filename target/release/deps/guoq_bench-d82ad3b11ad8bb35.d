/root/repo/target/release/deps/guoq_bench-d82ad3b11ad8bb35.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/guoq_bench-d82ad3b11ad8bb35: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
