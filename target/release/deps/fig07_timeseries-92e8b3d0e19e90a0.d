/root/repo/target/release/deps/fig07_timeseries-92e8b3d0e19e90a0.d: crates/bench/src/bin/fig07_timeseries.rs

/root/repo/target/release/deps/fig07_timeseries-92e8b3d0e19e90a0: crates/bench/src/bin/fig07_timeseries.rs

crates/bench/src/bin/fig07_timeseries.rs:
