/root/repo/target/release/deps/fig01_summary-f39cd4eeaaae56b0.d: crates/bench/src/bin/fig01_summary.rs

/root/repo/target/release/deps/fig01_summary-f39cd4eeaaae56b0: crates/bench/src/bin/fig01_summary.rs

crates/bench/src/bin/fig01_summary.rs:
