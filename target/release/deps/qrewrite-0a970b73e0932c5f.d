/root/repo/target/release/deps/qrewrite-0a970b73e0932c5f.d: crates/rewrite/src/lib.rs crates/rewrite/src/commutation.rs crates/rewrite/src/fusion.rs crates/rewrite/src/matcher.rs crates/rewrite/src/pattern.rs crates/rewrite/src/rule.rs crates/rewrite/src/rules.rs crates/rewrite/src/synthesis.rs

/root/repo/target/release/deps/qrewrite-0a970b73e0932c5f: crates/rewrite/src/lib.rs crates/rewrite/src/commutation.rs crates/rewrite/src/fusion.rs crates/rewrite/src/matcher.rs crates/rewrite/src/pattern.rs crates/rewrite/src/rule.rs crates/rewrite/src/rules.rs crates/rewrite/src/synthesis.rs

crates/rewrite/src/lib.rs:
crates/rewrite/src/commutation.rs:
crates/rewrite/src/fusion.rs:
crates/rewrite/src/matcher.rs:
crates/rewrite/src/pattern.rs:
crates/rewrite/src/rule.rs:
crates/rewrite/src/rules.rs:
crates/rewrite/src/synthesis.rs:
