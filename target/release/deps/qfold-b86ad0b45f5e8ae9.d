/root/repo/target/release/deps/qfold-b86ad0b45f5e8ae9.d: crates/fold/src/lib.rs

/root/repo/target/release/deps/libqfold-b86ad0b45f5e8ae9.rlib: crates/fold/src/lib.rs

/root/repo/target/release/deps/libqfold-b86ad0b45f5e8ae9.rmeta: crates/fold/src/lib.rs

crates/fold/src/lib.rs:
