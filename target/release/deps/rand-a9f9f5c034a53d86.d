/root/repo/target/release/deps/rand-a9f9f5c034a53d86.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-a9f9f5c034a53d86: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
