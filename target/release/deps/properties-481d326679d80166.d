/root/repo/target/release/deps/properties-481d326679d80166.d: tests/properties.rs

/root/repo/target/release/deps/properties-481d326679d80166: tests/properties.rs

tests/properties.rs:
