/root/repo/target/release/deps/fig15_suite-3f176e037919af53.d: crates/bench/src/bin/fig15_suite.rs

/root/repo/target/release/deps/fig15_suite-3f176e037919af53: crates/bench/src/bin/fig15_suite.rs

crates/bench/src/bin/fig15_suite.rs:
