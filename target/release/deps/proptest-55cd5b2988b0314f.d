/root/repo/target/release/deps/proptest-55cd5b2988b0314f.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-55cd5b2988b0314f.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-55cd5b2988b0314f.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
