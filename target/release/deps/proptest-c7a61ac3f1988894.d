/root/repo/target/release/deps/proptest-c7a61ac3f1988894.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-c7a61ac3f1988894: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
