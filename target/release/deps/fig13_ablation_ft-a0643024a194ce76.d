/root/repo/target/release/deps/fig13_ablation_ft-a0643024a194ce76.d: crates/bench/src/bin/fig13_ablation_ft.rs

/root/repo/target/release/deps/fig13_ablation_ft-a0643024a194ce76: crates/bench/src/bin/fig13_ablation_ft.rs

crates/bench/src/bin/fig13_ablation_ft.rs:
