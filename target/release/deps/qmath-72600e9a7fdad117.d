/root/repo/target/release/deps/qmath-72600e9a7fdad117.d: crates/math/src/lib.rs crates/math/src/angle.rs crates/math/src/complex.rs crates/math/src/decompose.rs crates/math/src/dist.rs crates/math/src/eigen.rs crates/math/src/gates.rs crates/math/src/matrix.rs crates/math/src/random.rs crates/math/src/statevec.rs

/root/repo/target/release/deps/libqmath-72600e9a7fdad117.rlib: crates/math/src/lib.rs crates/math/src/angle.rs crates/math/src/complex.rs crates/math/src/decompose.rs crates/math/src/dist.rs crates/math/src/eigen.rs crates/math/src/gates.rs crates/math/src/matrix.rs crates/math/src/random.rs crates/math/src/statevec.rs

/root/repo/target/release/deps/libqmath-72600e9a7fdad117.rmeta: crates/math/src/lib.rs crates/math/src/angle.rs crates/math/src/complex.rs crates/math/src/decompose.rs crates/math/src/dist.rs crates/math/src/eigen.rs crates/math/src/gates.rs crates/math/src/matrix.rs crates/math/src/random.rs crates/math/src/statevec.rs

crates/math/src/lib.rs:
crates/math/src/angle.rs:
crates/math/src/complex.rs:
crates/math/src/decompose.rs:
crates/math/src/dist.rs:
crates/math/src/eigen.rs:
crates/math/src/gates.rs:
crates/math/src/matrix.rs:
crates/math/src/random.rs:
crates/math/src/statevec.rs:
