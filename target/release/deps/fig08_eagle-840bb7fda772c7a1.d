/root/repo/target/release/deps/fig08_eagle-840bb7fda772c7a1.d: crates/bench/src/bin/fig08_eagle.rs

/root/repo/target/release/deps/fig08_eagle-840bb7fda772c7a1: crates/bench/src/bin/fig08_eagle.rs

crates/bench/src/bin/fig08_eagle.rs:
