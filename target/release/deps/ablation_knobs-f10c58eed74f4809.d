/root/repo/target/release/deps/ablation_knobs-f10c58eed74f4809.d: crates/bench/src/bin/ablation_knobs.rs

/root/repo/target/release/deps/ablation_knobs-f10c58eed74f4809: crates/bench/src/bin/ablation_knobs.rs

crates/bench/src/bin/ablation_knobs.rs:
