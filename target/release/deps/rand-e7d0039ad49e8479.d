/root/repo/target/release/deps/rand-e7d0039ad49e8479.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-e7d0039ad49e8479.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-e7d0039ad49e8479.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
