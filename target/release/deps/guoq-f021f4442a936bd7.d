/root/repo/target/release/deps/guoq-f021f4442a936bd7.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cost.rs crates/core/src/fidelity.rs crates/core/src/guoq.rs crates/core/src/transform.rs

/root/repo/target/release/deps/guoq-f021f4442a936bd7: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/cost.rs crates/core/src/fidelity.rs crates/core/src/guoq.rs crates/core/src/transform.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/cost.rs:
crates/core/src/fidelity.rs:
crates/core/src/guoq.rs:
crates/core/src/transform.rs:
