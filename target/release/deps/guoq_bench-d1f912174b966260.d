/root/repo/target/release/deps/guoq_bench-d1f912174b966260.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libguoq_bench-d1f912174b966260.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libguoq_bench-d1f912174b966260.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
