/root/repo/target/release/deps/guoq_repro-4cf6338ae9092a39.d: src/lib.rs

/root/repo/target/release/deps/guoq_repro-4cf6338ae9092a39: src/lib.rs

src/lib.rs:
