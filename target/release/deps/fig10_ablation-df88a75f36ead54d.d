/root/repo/target/release/deps/fig10_ablation-df88a75f36ead54d.d: crates/bench/src/bin/fig10_ablation.rs

/root/repo/target/release/deps/fig10_ablation-df88a75f36ead54d: crates/bench/src/bin/fig10_ablation.rs

crates/bench/src/bin/fig10_ablation.rs:
