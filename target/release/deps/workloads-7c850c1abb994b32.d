/root/repo/target/release/deps/workloads-7c850c1abb994b32.d: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libworkloads-7c850c1abb994b32.rlib: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libworkloads-7c850c1abb994b32.rmeta: crates/workloads/src/lib.rs crates/workloads/src/generators.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/generators.rs:
crates/workloads/src/suite.rs:
