//! Umbrella crate for the GUOQ reproduction workspace.
//!
//! Re-exports the public crates so the examples and integration tests can
//! use a single dependency. See the individual crates for the actual APIs:
//!
//! * [`qmath`] — complex linear algebra and distance metrics
//! * [`qcir`] — circuit IR, gate sets, rebasing, QASM I/O, and the
//!   patch-based edit layer (`qcir::edit`) with incremental
//!   `WireDag` maintenance
//! * [`qsim`] — statevector simulation and equivalence checking
//! * [`qrewrite`] — rewrite rules: matching, application, synthesis;
//!   patch-producing variants of every pass for the incremental engine
//! * [`qsynth`] — unitary synthesis (continuous and finite gate sets)
//! * [`qfold`] — phase-polynomial rotation folding (PyZX stand-in)
//! * [`qcache`] — shared per-gate-set setup registry and the
//!   memoized-resynthesis cache (fingerprint + verified memo table)
//! * [`qcert`] — local-optimality window certificates: stamp maps the
//!   serial driver folds accepted patches into, rebased across
//!   `CircuitDelta`s for incremental re-optimization
//! * [`guoq`] — the GUOQ optimizer and all baseline optimizers
//! * [`workloads`] — benchmark circuit generators
//!
//! # The edit-engine architecture
//!
//! GUOQ's inner loop is an anytime stochastic search whose quality is
//! proportional to iterations per second. The workspace therefore keeps
//! *two* iteration engines behind one API (`guoq::Engine`):
//!
//! * **Incremental (default).** A `guoq::SearchCtx` owns one working
//!   circuit and a cached wire DAG for the whole search. Transformations
//!   propose `qcir::edit::Patch`es (removed indices + replacement +
//!   splice position); `guoq::CostFn::delta` prices each candidate in
//!   O(edit span); accepted edits are applied in place via
//!   `Circuit::apply_patch` + `WireDag::splice`, which relinks only the
//!   wires crossing the edit window. Per-iteration work scales with the
//!   edit, not the circuit — on a 10,000-gate circuit the loop runs
//!   hundreds of times faster than the clone–rebuild baseline (see
//!   `crates/bench/benches/guoq_iter.rs`, which emits
//!   `BENCH_guoq_iter.json`).
//! * **CloneRebuild.** The original clone + DAG-rebuild + full-recost
//!   loop, kept as the differential baseline; `tests/patch_differential.rs`
//!   proves the patch *machinery* (single-match edits, DAG splices, cost
//!   deltas, full passes expressed as patches) bit-identical to the
//!   legacy machinery on random circuits across every rule corpus and
//!   cost function. The engines' search *trajectories* differ by design
//!   (one local edit vs one full pass per iteration); both preserve
//!   semantics with exact cost accounting.

pub use guoq;
pub use qcache;
pub use qcert;
pub use qcir;
pub use qfold;
pub use qmath;
pub use qrewrite;
pub use qsim;
pub use qsynth;
pub use workloads;
