//! Umbrella crate for the GUOQ reproduction workspace.
//!
//! Re-exports the public crates so the examples and integration tests can
//! use a single dependency. See the individual crates for the actual APIs:
//!
//! * [`qmath`] — complex linear algebra and distance metrics
//! * [`qcir`] — circuit IR, gate sets, rebasing, QASM I/O
//! * [`qsim`] — statevector simulation and equivalence checking
//! * [`qrewrite`] — rewrite rules: matching, application, synthesis
//! * [`qsynth`] — unitary synthesis (continuous and finite gate sets)
//! * [`qfold`] — phase-polynomial rotation folding (PyZX stand-in)
//! * [`guoq`] — the GUOQ optimizer and all baseline optimizers
//! * [`workloads`] — benchmark circuit generators

pub use guoq;
pub use qcir;
pub use qfold;
pub use qmath;
pub use qrewrite;
pub use qsim;
pub use qsynth;
pub use workloads;
