//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API the workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_filter_map`, range and tuple strategies, [`collection::vec`],
//! `prop_oneof!`, and the [`proptest!`] test-harness macro with
//! `ProptestConfig::with_cases`. Cases are drawn from a deterministic
//! seed; there is no shrinking — a failing case panics with the standard
//! assertion message.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Keeps only values for which `f` returns `Some`, resampling
        /// otherwise.
        fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                source: self,
                whence,
                f,
            }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut SmallRng) -> U {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        source: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut SmallRng) -> U {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.source.sample(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map '{}' rejected 10000 samples", self.whence);
        }
    }

    /// A strategy yielding one of several alternatives, uniformly.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union from boxed arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            let i = rng.random_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// A strategy producing a fixed value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case configuration.

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    //! The conventional glob import.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Builds a [`strategy::Union`] over the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

/// Asserts inside a property (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `#[test] fn name(x in strategy, ...)`
/// runs `cases` times with fresh random inputs from a deterministic seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::Config::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $cfg;
            // Deterministic per-test seed from the test name.
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
                });
            let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                $( let $arg = ($strat).sample(&mut rng); )+
                let run = || -> () { $body };
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(e) = result {
                    eprintln!(
                        "proptest case {}/{} failed for {}",
                        case + 1,
                        config.cases,
                        stringify!($name)
                    );
                    std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}
