//! Offline stand-in for `crossbeam-channel`, backed by
//! `std::sync::mpsc::sync_channel`.
//!
//! Only the subset the workspace uses is provided: [`bounded`] channels
//! with blocking [`Sender::send`]/[`Receiver::recv`] and non-blocking
//! [`Receiver::try_recv`].

use std::sync::mpsc;

pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

/// The sending half of a bounded channel.
pub struct Sender<T>(mpsc::SyncSender<T>);

/// The receiving half of a bounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued; errors when disconnected.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.0.send(msg)
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; errors when disconnected and empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    /// Returns immediately with a message, `Empty`, or `Disconnected`.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }
}

/// Creates a bounded channel with capacity `cap`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        drop(tx);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = bounded::<u64>(1);
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        while let Ok(v) = rx.recv() {
            sum += v;
        }
        h.join().unwrap();
        assert_eq!(sum, 45);
    }
}
