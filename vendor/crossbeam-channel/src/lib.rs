//! Offline stand-in for `crossbeam-channel`.
//!
//! Only the subset the workspace uses is provided: [`bounded`] channels
//! with blocking [`Sender::send`]/[`Receiver::recv`], a deadline-bound
//! [`Receiver::recv_timeout`], and non-blocking [`Receiver::try_recv`].
//! Like the real crate (and unlike raw `mpsc`), both halves are
//! cloneable: the channel is multi-producer multi-consumer, so a pool
//! of workers can pull tasks from one shared queue.
//!
//! The implementation is a `Mutex<VecDeque>` with two condvars
//! (not-empty / not-full): blocking receivers park on the condvar —
//! zero wakeups while idle — and `try_recv` only ever takes the mutex
//! for a non-blocking pop, so a parked sibling never wedges it (the
//! real crate's contract). Disconnection mirrors `mpsc`: a send fails
//! once every receiver is gone, a receive fails once every sender is
//! gone and the queue is drained.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

struct Inner<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a bounded channel (cloneable).
pub struct Sender<T>(Arc<Chan<T>>);

/// The receiving half of a bounded channel (MPMC: cloneable).
pub struct Receiver<T>(Arc<Chan<T>>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().expect("channel poisoned").senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().expect("channel poisoned").receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake parked receivers so they observe the disconnect.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().expect("channel poisoned");
        inner.receivers -= 1;
        if inner.receivers == 0 {
            // Wake parked senders so they observe the disconnect.
            self.0.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued; errors when every receiver
    /// is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.0.inner.lock().expect("channel poisoned");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            if inner.queue.len() < inner.cap {
                inner.queue.push_back(msg);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            inner = self.0.not_full.wait(inner).expect("channel poisoned");
        }
    }

    /// Returns immediately: enqueues the message, or reports `Full` /
    /// `Disconnected` without blocking (the real crate's `try_send`).
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.0.inner.lock().expect("channel poisoned");
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if inner.queue.len() < inner.cap {
            inner.queue.push_back(msg);
            self.0.not_empty.notify_one();
            Ok(())
        } else {
            Err(TrySendError::Full(msg))
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; errors when disconnected and empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.0.inner.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.0.not_empty.wait(inner).expect("channel poisoned");
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.0.inner.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .0
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("channel poisoned");
            inner = guard;
        }
    }

    /// Returns immediately with a message, `Empty`, or `Disconnected`.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.0.inner.lock().expect("channel poisoned");
        if let Some(msg) = inner.queue.pop_front() {
            self.0.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

/// Creates a bounded channel with capacity `cap`.
///
/// # Panics
///
/// Panics on `cap == 0`: the real crate's `bounded(0)` is a rendezvous
/// channel (send blocks until a receiver is mid-receive), which this
/// stand-in does not implement — failing loudly beats silently
/// substituting one-slot buffering for a synchronization guarantee.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(
        cap > 0,
        "rendezvous channels (bounded(0)) are not supported by this stand-in"
    );
    let chan = Arc::new(Chan {
        inner: Mutex::new(Inner {
            // The cap is a limit, not a reservation — huge caps (e.g.
            // from `unbounded`) must not preallocate.
            queue: VecDeque::with_capacity(cap.min(1024)),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&chan)), Receiver(chan))
}

/// Creates an unbounded channel: sends never block on capacity (the
/// real crate's `unbounded`). Implemented as a bounded channel whose
/// cap is unreachable.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    bounded(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        drop(tx);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = bounded::<u64>(1);
        let h = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        while let Ok(v) = rx.recv() {
            sum += v;
        }
        h.join().unwrap();
        assert_eq!(sum, 45);
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded::<u32>(1);
        assert!(tx.try_send(1).is_ok());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(matches!(tx.send(1), Err(SendError(1))));
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2)); // blocks: queue full
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1); // frees a slot
        assert_eq!(rx.recv().unwrap(), 2);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn blocked_recv_does_not_wedge_sibling_try_recv() {
        let (tx, rx) = bounded::<u32>(1);
        let parked = rx.clone();
        let h = std::thread::spawn(move || parked.recv());
        // Give the sibling time to park in recv() on the empty channel.
        std::thread::sleep(Duration::from_millis(20));
        // try_recv must return immediately (Empty), not block behind it…
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        // …and recv_timeout must honour its deadline.
        let t = Instant::now();
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        ));
        assert!(t.elapsed() < Duration::from_millis(500));
        tx.send(7).unwrap();
        assert_eq!(h.join().unwrap().unwrap(), 7);
    }

    #[test]
    fn multi_consumer_partitions_messages() {
        let (tx, rx) = bounded::<u32>(64);
        for i in 0..40 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        // Every message delivered exactly once across the consumers.
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }
}
