//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the API subset the workspace uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, [`rngs::SmallRng`]
//! (xoshiro256++ seeded through SplitMix64), uniform `random::<T>()`
//! sampling, and `random_range` over integer and float ranges. The
//! sampling algorithms follow the published reference implementations;
//! streams are deterministic for a given seed but are *not* guaranteed to
//! be bit-compatible with the real `rand` crate.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `StandardUniform`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_range_impl {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

signed_range_impl!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Multiply-shift reduction of a uniform `u64` into `[0, span)`
/// (`span == 0` means the full 64-bit range).
#[inline]
fn reduce(x: u64, span: u64) -> u64 {
    if span == 0 {
        return x;
    }
    ((x as u128 * span as u128) >> 64) as u64
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator by drawing a seed from another RNG.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro reference.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng::from_state([next(), next(), next(), next()])
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The default generator (alias of [`SmallRng`] in this stand-in).
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(5..17usize);
            assert!((5..17).contains(&v));
            let w = r.random_range(0..=4u32);
            assert!(w <= 4);
            let f = r.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unsized_rng_usable() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut r = SmallRng::seed_from_u64(1);
        assert!(draw(&mut r) < 1.0);
    }
}
