//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches
//! use — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with a simple median-of-samples timer instead of criterion's
//! full statistical machinery. Output is one line per benchmark:
//! `bench <name> ... <median> ns/iter`.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Creates a driver with the default sample count.
    pub fn new() -> Self {
        Criterion { sample_size: 20 }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.effective_samples(), f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.effective_samples(),
            _parent: self,
        }
    }

    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        }
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; calls the measured routine.
pub struct Bencher {
    samples: usize,
    results_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, recording per-iteration time over several samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and iteration-count calibration: aim for ~2 ms per sample.
        let start = Instant::now();
        std_black_box(f());
        let once = start.elapsed().as_secs_f64().max(1e-9);
        let iters = ((2e-3 / once) as usize).clamp(1, 1_000_000);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let per_iter = t.elapsed().as_secs_f64() / iters as f64;
            self.results_ns.push(per_iter * 1e9);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        results_ns: Vec::new(),
    };
    f(&mut b);
    if b.results_ns.is_empty() {
        println!("bench {name:<40} (no samples)");
        return;
    }
    b.results_ns.sort_by(|a, b| a.total_cmp(b));
    let median = b.results_ns[b.results_ns.len() / 2];
    println!("bench {name:<40} {median:>14.1} ns/iter");
}

/// Declares a function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
