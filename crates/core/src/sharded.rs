//! The sharded parallel engine: GUOQ over a `qpar` worker pool.
//!
//! [`Engine::Sharded`](crate::Engine::Sharded) runs the shard / commit /
//! rotate protocol (see the [`qpar`] crate docs): the circuit is
//! partitioned into contiguous windows, each worker drives an
//! incremental [`ShardDriver`] over one shard for a fixed iteration
//! slice, and the coordinator concatenates the optimized shards back
//! into the master circuit every epoch, rotating the partition
//! boundaries between epochs so cross-boundary optimizations are not
//! permanently blocked.
//!
//! Soundness: a shard is a contiguous slice of one topological order of
//! the master, extracted over the full register. Every driver move
//! preserves the shard's semantics to within its ε allowance, so the
//! concatenation of optimized shards is ε-equivalent to the master, and
//! the per-epoch allowances are carved from the global `eps_total` so
//! the accumulated error respects Thm. 5.3 end to end.
//!
//! The committed master never worsens for the additive cost functions
//! shipped in [`crate::cost`]: each shard driver returns its *best*
//! shard (no worse than its input), and additive objectives sum over
//! shards. The final result is the best committed master, tracked by
//! the coordinator's commit observer.

use crate::cost::CostFn;
use crate::driver::ShardDriver;
use crate::guoq::{Budget, Guoq, GuoqOpts, GuoqResult, HistoryPoint};
use crate::observe::{EventSink, OptEvent};
use qcir::delta::CircuitDelta;
use qcir::Circuit;
use qpar::{ParallelOpts, ShardOptimizer, ShardOutcome, ShardTask};
use qrewrite::MatchScratch;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// Shards smaller than this are not worth a task round-trip; the shard
/// count is capped so the average window stays at least this long
/// (boundary rotation can halve an edge window in odd epochs).
const MIN_SHARD_LEN: usize = 32;

/// One pool worker: drives Algorithm 1 over each shard task it pulls,
/// borrowing the optimizer's transformation pools and recycling one
/// matcher scratch across all its tasks.
struct ShardWorker<'a> {
    guoq: &'a Guoq,
    cost: &'a dyn CostFn,
    /// The optimizer's options with `record_history` cleared (shard
    /// histories would interleave meaninglessly; the coordinator
    /// records the master trajectory instead).
    opts: GuoqOpts,
    started: Instant,
    scratch: MatchScratch,
}

impl<'a> ShardWorker<'a> {
    fn new(guoq: &'a Guoq, cost: &'a dyn CostFn, started: Instant) -> Self {
        let mut opts = guoq.opts().clone();
        opts.record_history = false;
        ShardWorker {
            guoq,
            cost,
            opts,
            started,
            scratch: MatchScratch::new(),
        }
    }
}

/// The index windows of `circuit`'s gates that act on at least one of
/// `qubits`, as maximal runs of consecutive indices — the probe targets
/// for boundary-biased anchor sampling.
fn boundary_windows(circuit: &Circuit, qubits: &[qcir::Qubit]) -> Vec<(usize, usize)> {
    let mut on_boundary = vec![false; circuit.num_qubits()];
    for &q in qubits {
        if let Some(slot) = on_boundary.get_mut(q as usize) {
            *slot = true;
        }
    }
    let mut windows: Vec<(usize, usize)> = Vec::new();
    for (i, ins) in circuit.iter().enumerate() {
        if !ins.qubits().iter().any(|&q| on_boundary[q as usize]) {
            continue;
        }
        match windows.last_mut() {
            Some((_, hi)) if *hi == i => *hi = i + 1,
            _ => windows.push((i, i + 1)),
        }
    }
    windows
}

impl ShardOptimizer for ShardWorker<'_> {
    fn optimize_shard(&mut self, task: ShardTask) -> ShardOutcome {
        let (fast, slow) = self.guoq.pools();
        let mut rng = SmallRng::seed_from_u64(task.seed);
        // Boundary-biased probing (ROADMAP sharding follow-on (a)):
        // right after each rotation the fresh plan's boundary qubits
        // arrive on the task; pin their gate windows so probes seek the
        // cross-shard cancellations the rotation just exposed.
        let pinned = if self.opts.boundary_bias > 0.0 && !task.boundary_qubits.is_empty() {
            boundary_windows(&task.circuit, &task.boundary_qubits)
        } else {
            Vec::new()
        };
        let mut driver = ShardDriver::with_scratch(
            task.circuit,
            self.cost,
            &self.opts,
            self.started,
            std::mem::take(&mut self.scratch),
        )
        .with_eps_budget(task.eps_allowance)
        .with_pinned_windows(pinned, self.opts.boundary_bias);
        driver.run(
            fast,
            slow,
            &mut rng,
            Budget::Iterations(task.slice_iterations),
            task.deadline,
        );
        let (r, scratch) = driver.finish_recycling();
        self.scratch = scratch;
        ShardOutcome {
            circuit: r.circuit,
            iterations: r.iterations,
            accepted: r.accepted,
            resynth_hits: r.resynth_hits,
            epsilon: r.epsilon,
            profile: r.profile,
        }
    }
}

impl Guoq {
    /// Runs the sharded parallel engine (dispatched from
    /// [`Guoq::optimize`] for [`Engine::Sharded`](crate::Engine::Sharded)).
    pub(crate) fn optimize_sharded<'a>(
        &'a self,
        circuit: &Circuit,
        cost: &'a dyn CostFn,
        workers: usize,
        mut obs: Option<&'a mut EventSink<'a>>,
    ) -> GuoqResult {
        let opts = self.opts();
        let started = Instant::now();
        let popts = ParallelOpts {
            workers: workers.max(1),
            oversubscribe: opts.shards_per_worker.max(1),
            slice_iterations: opts.shard_slice_iterations.max(1),
            min_shard_len: MIN_SHARD_LEN,
            eps_total: opts.eps_total,
            deadline: match opts.budget {
                Budget::Time(limit) => Some(started + limit),
                Budget::Iterations(_) => None,
            },
            max_iterations: match opts.budget {
                Budget::Time(_) => None,
                Budget::Iterations(n) => Some(n),
            },
            boundary_aware: opts.boundary_bias > 0.0,
            seed: opts.seed,
            cancel: opts.cancel.clone(),
        };

        let c0 = cost.cost(circuit);
        // Lazy best-so-far: `None` means the live master (the input, if
        // no epoch has committed yet) *is* the best — it is frozen into
        // `Some` only when a commit fails to improve, by moving the
        // pre-commit master out of the `CommitInfo` (no clone).
        let mut best: Option<Circuit> = None;
        let mut cost_best = c0;
        let mut err_best = 0.0;
        let mut history = Vec::new();
        if opts.record_history {
            history.push(HistoryPoint {
                seconds: 0.0,
                iteration: 0,
                best_cost: c0,
                best_two_qubit: circuit.two_qubit_count(),
            });
        }

        let outcome = qpar::optimize_sharded(
            circuit,
            &popts,
            |_worker| ShardWorker::new(self, cost, started),
            |commit| {
                let commit_cost = cost.cost(commit.circuit);
                let seconds = started.elapsed().as_secs_f64();
                if commit_cost < cost_best {
                    // The commit reassembles the master from shard
                    // results, so there is no patch trail to package;
                    // the event delta is the before/after diff against
                    // the previous best (per-epoch edits are localized,
                    // so the diff stays far below a full snapshot). When
                    // `best` is lazy (`None`), the previous best is the
                    // pre-commit master carried on the commit itself.
                    let delta = obs.as_ref().map(|_| {
                        CircuitDelta::diff(
                            best.as_ref().unwrap_or(&commit.previous),
                            commit.circuit,
                        )
                    });
                    best = None; // the committed master is the new best
                    cost_best = commit_cost;
                    err_best = commit.epsilon;
                    if opts.record_history {
                        history.push(HistoryPoint {
                            seconds,
                            iteration: commit.iterations,
                            best_cost: cost_best,
                            best_two_qubit: commit.circuit.two_qubit_count(),
                        });
                    }
                    if let Some(obs) = obs.as_mut() {
                        obs(
                            &OptEvent::Improved {
                                delta: delta.expect("delta built whenever a sink is installed"),
                                cost: cost_best,
                                epsilon: err_best,
                                iterations: commit.iterations,
                                seconds,
                            },
                            commit.circuit,
                        );
                    }
                } else if best.is_none() {
                    // The pre-commit master was the best so far and this
                    // commit did not beat it: take ownership (a move —
                    // the coordinator has already replaced its master).
                    best = Some(commit.previous);
                }
                if let Some(obs) = obs.as_mut() {
                    obs(
                        &OptEvent::EpochCommitted {
                            epoch: commit.epoch,
                            cost: commit_cost,
                            iterations: commit.iterations,
                            seconds,
                        },
                        best.as_ref().unwrap_or(commit.circuit),
                    );
                }
            },
        );

        GuoqResult {
            // `None` ⇒ the final master is the best committed one.
            circuit: best.unwrap_or(outcome.circuit),
            cost: cost_best,
            epsilon: err_best,
            iterations: outcome.iterations,
            accepted: outcome.accepted,
            resynth_hits: outcome.resynth_hits,
            cache_hits: 0,   // filled by `Guoq::dispatch` from the pass
            cache_misses: 0, // counters (shared with every worker)
            history,
            worker_stats: outcome.worker_stats,
            // Busy time summed over all shard drivers (not wall time).
            profile: outcome.profile,
            // Only the serial incremental path certifies (shard workers
            // never arm certification on their drivers).
            certificate: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::GateCount;
    use crate::GuoqOpts;
    use qcir::{Gate, GateSet, Qubit};

    fn redundant(len: usize) -> Circuit {
        let mut c = Circuit::new(4);
        let mut i = 0u32;
        while c.len() + 2 <= len {
            let a = (i % 3) as Qubit;
            c.push(Gate::Cx, &[a, a + 1]);
            c.push(Gate::Cx, &[a, a + 1]);
            i += 1;
        }
        c
    }

    #[test]
    fn sharded_engine_reduces_and_reports_workers() {
        let c = redundant(160);
        let opts = GuoqOpts {
            budget: Budget::Iterations(6000),
            engine: crate::Engine::Sharded { workers: 2 },
            shard_slice_iterations: 256,
            seed: 11,
            ..Default::default()
        };
        let g = Guoq::rewrite_only(GateSet::Nam, opts);
        let r = g.optimize(&c, &GateCount);
        assert!(r.cost < c.len() as f64, "no reduction: {}", r.cost);
        assert!(!r.worker_stats.is_empty());
        assert!(r.iterations <= 6000);
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-6));
    }

    #[test]
    fn sharded_engine_deterministic_per_opts() {
        let c = redundant(96);
        let mk = || GuoqOpts {
            budget: Budget::Iterations(2000),
            engine: crate::Engine::Sharded { workers: 3 },
            shard_slice_iterations: 128,
            seed: 5,
            ..Default::default()
        };
        let r1 = Guoq::rewrite_only(GateSet::Nam, mk()).optimize(&c, &GateCount);
        let r2 = Guoq::rewrite_only(GateSet::Nam, mk()).optimize(&c, &GateCount);
        assert_eq!(r1.circuit, r2.circuit);
        assert_eq!(r1.cost, r2.cost);
    }

    #[test]
    fn boundary_bias_is_behavior_preserving() {
        // The bias changes the probe distribution, never soundness: at
        // either extreme the sharded engine still preserves semantics
        // and never worsens cost.
        let c = redundant(120);
        for bias in [0.0, 0.9] {
            let opts = GuoqOpts {
                budget: Budget::Iterations(4000),
                engine: crate::Engine::Sharded { workers: 2 },
                shard_slice_iterations: 256,
                seed: 17,
                boundary_bias: bias,
                ..Default::default()
            };
            let g = Guoq::rewrite_only(GateSet::Nam, opts);
            let r = g.optimize(&c, &GateCount);
            assert!(r.cost <= c.len() as f64, "bias {bias}");
            assert!(
                qsim::circuits_equivalent(&c, &r.circuit, 1e-6),
                "bias {bias}"
            );
        }
    }

    #[test]
    fn sharded_workers_share_one_cache_handle() {
        let c = redundant(160);
        let cache = std::sync::Arc::new(guoq_qcache());
        let mk = || GuoqOpts {
            budget: Budget::Iterations(3000),
            engine: crate::Engine::Sharded { workers: 2 },
            shard_slice_iterations: 128,
            seed: 23,
            resynth_probability: 0.2,
            eps_total: 1e-6,
            cache: Some(std::sync::Arc::clone(&cache)),
            ..Default::default()
        };
        let first = Guoq::for_gate_set(GateSet::Nam, mk()).optimize(&c, &GateCount);
        assert!(qsim::circuits_equivalent(&c, &first.circuit, 1e-4));
        assert!(first.cache_misses > 0, "{first:?}");
        let second = Guoq::for_gate_set(GateSet::Nam, mk()).optimize(&c, &GateCount);
        assert!(second.cache_hits > 0, "repeat sharded run must hit");
        assert!(qsim::circuits_equivalent(&c, &second.circuit, 1e-4));
    }

    fn guoq_qcache() -> qcache::QCache {
        qcache::QCache::with_gate_budget(8192)
    }

    #[test]
    fn sharded_engine_small_circuit_falls_back_to_one_shard() {
        let c = redundant(8);
        let opts = GuoqOpts {
            budget: Budget::Iterations(400),
            engine: crate::Engine::Sharded { workers: 4 },
            ..Default::default()
        };
        let g = Guoq::rewrite_only(GateSet::Nam, opts);
        let r = g.optimize(&c, &GateCount);
        assert!(r.circuit.is_empty(), "{} gates left", r.circuit.len());
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-7));
    }
}
