//! `guoq` — the GUOQ quantum-circuit optimizer (ASPLOS 2025 reproduction).
//!
//! GUOQ ("Good Unified Optimizations for Quantum") unifies *fast* rewrite
//! rules and *slow* unitary resynthesis behind a single closed-box
//! transformation abstraction (`τ_ε`), then drives them with a
//! lightweight simulated-annealing-style loop (Algorithm 1).
//!
//! * [`transform`]: the `τ_ε` abstraction and its instantiations
//! * [`cost`] / [`fidelity`]: optimization objectives (§5.1, §6)
//! * [`driver`]: the single-shard search driver — Algorithm 1's
//!   Metropolis/budget state, shared by every engine
//! * [`guoq`]: Algorithm 1 with exact ε-budget accounting (Thm. 4.2/5.3)
//!   and the §5.3 async-resynthesis driver
//! * [`observe`]: the event-sourced optimization stream — typed
//!   [`OptEvent`]s with [`qcir::delta::CircuitDelta`] payloads, the
//!   [`OptRun`] handle ([`Guoq::run`]), the synchronous sink
//!   ([`Guoq::optimize_events`]), cooperative cancellation
//!   ([`CancelToken`]), and the legacy [`BestSnapshot`] shim — the
//!   hooks the `qserve` service layer builds on
//! * [`sharded`]: the region-partitioned parallel engine
//!   ([`Engine::Sharded`]) over the `qpar` worker pool
//! * [`baselines`]: re-implemented archetypes of the comparison tools
//!   (fixed pipelines, partition+resynth, beam search, bandit scheduler)
//!
//! ```
//! use guoq::{Guoq, GuoqOpts, Budget, cost::TwoQubitCount};
//! use qcir::{Circuit, Gate, GateSet};
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::Cx, &[0, 1]);
//! c.push(Gate::Cx, &[0, 1]);
//! let opts = GuoqOpts { budget: Budget::Iterations(100), ..Default::default() };
//! let result = Guoq::for_gate_set(GateSet::Nam, opts).optimize(&c, &TwoQubitCount);
//! assert_eq!(result.circuit.two_qubit_count(), 0);
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod cost;
pub mod driver;
pub mod fidelity;
pub mod guoq;
pub mod observe;
pub mod sharded;
pub mod transform;

pub use cost::CostFn;
pub use driver::ShardDriver;
pub use fidelity::CalibrationModel;
pub use guoq::{Budget, Engine, Guoq, GuoqOpts, GuoqResult, HistoryPoint};
pub use observe::{BestSnapshot, CancelToken, OptEvent, OptRun};
pub use qcache::{CacheStats, QCache, QCacheOpts};
pub use qcert::{CertMap, Certificate, Stamp};
pub use qpar::WorkerStats;
pub use qtrace::{Family, FamilyStats, Profile};
pub use transform::{Applied, PatchApplied, SearchCtx, Transformation};
