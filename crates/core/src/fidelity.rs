//! Device calibration models and circuit fidelity (paper §6, Metrics).
//!
//! "The fidelity of a gate is 1 − its error rate and the fidelity of a
//! circuit is the product of its gate fidelities." The paper uses IBM
//! Washington calibration data for the superconducting sets and IonQ
//! Forte data for the ion-trap set; we substitute the published median
//! error rates (see DESIGN.md §3) — orderings between optimizers are
//! insensitive to the absolute values.

use qcir::{Circuit, GateSet};

/// Per-gate-class error rates of a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationModel {
    /// Error rate of a single-qubit gate.
    pub single_qubit_error: f64,
    /// Error rate of a two-qubit (or wider) gate.
    pub two_qubit_error: f64,
}

impl CalibrationModel {
    /// Published-median model for a gate set's reference device.
    pub fn for_gate_set(set: GateSet) -> Self {
        match set {
            // IBM Washington (Eagle r1): median CX ≈ 7.5e-3, 1q ≈ 2.5e-4.
            GateSet::Ibmq20 | GateSet::IbmEagle | GateSet::Nam => CalibrationModel {
                single_qubit_error: 2.5e-4,
                two_qubit_error: 7.5e-3,
            },
            // IonQ Forte: 2q ≈ 4e-3, 1q ≈ 2e-4.
            GateSet::Ionq => CalibrationModel {
                single_qubit_error: 2.0e-4,
                two_qubit_error: 4.0e-3,
            },
            // FTQC logical gates: tiny logical error per cycle; T gates
            // (magic states) dominate.
            GateSet::CliffordT => CalibrationModel {
                single_qubit_error: 1.0e-6,
                two_qubit_error: 1.0e-5,
            },
        }
    }

    /// The success probability of running `circuit` once.
    pub fn fidelity(&self, circuit: &Circuit) -> f64 {
        let one_q = circuit.len() - circuit.two_qubit_count();
        let two_q = circuit.two_qubit_count();
        (1.0 - self.single_qubit_error).powi(one_q as i32)
            * (1.0 - self.two_qubit_error).powi(two_q as i32)
    }

    /// Negative log-fidelity: an additive, minimizable form of the same
    /// objective (`-ln Π(1-e) = Σ -ln(1-e)`).
    pub fn neg_log_fidelity(&self, circuit: &Circuit) -> f64 {
        let one_q = (circuit.len() - circuit.two_qubit_count()) as f64;
        let two_q = circuit.two_qubit_count() as f64;
        -(one_q * (1.0 - self.single_qubit_error).ln() + two_q * (1.0 - self.two_qubit_error).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Gate;

    #[test]
    fn two_qubit_gates_dominate() {
        let model = CalibrationModel::for_gate_set(GateSet::IbmEagle);
        let mut many_1q = Circuit::new(2);
        for _ in 0..20 {
            many_1q.push(Gate::Sx, &[0]);
        }
        let mut one_2q = Circuit::new(2);
        one_2q.push(Gate::Cx, &[0, 1]);
        // 20 single-qubit gates still beat one CX.
        assert!(model.fidelity(&many_1q) > model.fidelity(&one_2q));
    }

    #[test]
    fn neg_log_consistent_with_fidelity() {
        let model = CalibrationModel::for_gate_set(GateSet::Ionq);
        let mut c = Circuit::new(2);
        c.push(Gate::Rx(0.1), &[0]);
        c.push(Gate::Rxx(0.2), &[0, 1]);
        let f = model.fidelity(&c);
        let nl = model.neg_log_fidelity(&c);
        assert!((f.ln() + nl).abs() < 1e-12);
    }

    #[test]
    fn empty_circuit_perfect() {
        let model = CalibrationModel::for_gate_set(GateSet::Ibmq20);
        assert_eq!(model.fidelity(&Circuit::new(3)), 1.0);
        assert_eq!(model.neg_log_fidelity(&Circuit::new(3)), 0.0);
    }

    #[test]
    fn fewer_gates_higher_fidelity() {
        let model = CalibrationModel::for_gate_set(GateSet::IbmEagle);
        let mut a = Circuit::new(2);
        a.push(Gate::Cx, &[0, 1]);
        a.push(Gate::Cx, &[0, 1]);
        let mut b = Circuit::new(2);
        b.push(Gate::Cx, &[0, 1]);
        assert!(model.fidelity(&b) > model.fidelity(&a));
    }
}
