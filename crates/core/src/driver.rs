//! The single-shard search driver: Algorithm 1's mutable state and
//! acceptance rule, shared by every engine.
//!
//! Before this module existed, the sync and async optimizers each
//! carried their own copy of the Metropolis/budget loop (and the legacy
//! clone–rebuild engine a third). A [`ShardDriver`] is the one
//! implementation: it owns the working circuit (inside a
//! [`SearchCtx`]), the running cost/ε tallies, best-so-far tracking and
//! the history trace, and exposes the loop as composable pieces —
//! [`step`](ShardDriver::step) for a full Algorithm-1 iteration,
//! [`fast_move`](ShardDriver::fast_move)/[`offer_resynth`](ShardDriver::offer_resynth)
//! for the async driver's interleaving, and [`run`](ShardDriver::run)
//! for the plain budget loop.
//!
//! The same driver powers the sharded parallel engine: each worker
//! constructs a `ShardDriver` over its shard circuit with a per-slice
//! iteration budget and a per-epoch ε allowance, which is exactly the
//! "single-shard driver" role the name comes from.

use crate::cost::CostFn;
use crate::guoq::{Budget, GuoqOpts, GuoqResult, HistoryPoint};
use crate::observe::{CancelToken, EventSink, OptEvent};
use crate::transform::{Applied, PatchApplied, ResynthPass, SearchCtx, Transformation};
use qcir::delta::CircuitDelta;
use qcir::edit::Patch;
use qcir::Circuit;
use qrewrite::MatchScratch;
use qtrace::{Family, FamilyStats, Profile, FAMILY_COUNT};
use rand::rngs::SmallRng;
use rand::Rng;
use std::time::Instant;

/// Upper bound on the accepted-op backlog kept between two strict
/// improvements. Plateau accepts are the common case, so a long
/// non-improving stretch would otherwise grow the backlog without
/// bound; past the cap the driver falls back to a before/after
/// [`CircuitDelta::diff`] for the next `Improved` event (O(circuit)
/// once per improvement, instead of O(backlog) memory forever).
const PENDING_OPS_CAP: usize = 4096;

/// Upper bound on the best-journal op backlog (no-observer mode). A
/// journal longer than this is truncated back to its best-prefix and
/// marked dead; the next strict improvement re-anchors with one
/// O(circuit) snapshot. Keeps plateau-heavy searches from growing the
/// journal without bound while still amortizing snapshots to at most
/// one per `BEST_JOURNAL_CAP` accepts.
const BEST_JOURNAL_CAP: usize = 65536;

/// Iteration period of the [`OptEvent::Stats`] heartbeat in observer
/// mode. A power of two so the check is one mask per iteration; at the
/// incremental engine's ~800k iters/sec this is a stats frame every
/// ~0.3s — frequent enough to watch a fast/slow split move, rare enough
/// to be free.
const STATS_EVERY_ITERS: u64 = 1 << 18;

/// How the driver remembers its best-so-far circuit.
///
/// Snapshotting the working circuit on every strict improvement is the
/// last O(circuit) cost in the incremental engine's accept path, and
/// improvements cluster early in a search — exactly when the circuit is
/// largest. In no-observer mode the driver instead journals every
/// accepted patch and remembers *how many* of them lead to the best:
/// the best circuit is materialized once, in
/// [`ShardDriver::finish`], by replaying that prefix onto the base
/// snapshot. An event sink needs the materialized best on every
/// improvement (it is handed to the observer), so observer mode keeps
/// the snapshot-per-improvement representation.
enum BestRepr {
    /// Materialized best — observer mode.
    Snapshot(Circuit),
    /// `base` + `ops[..ops_at_best]` replays to the best circuit; while
    /// `live`, `base` + `ops[..]` replays to the current working
    /// circuit, so a strict improvement is recorded by bumping
    /// `ops_at_best` — O(1) instead of O(circuit).
    Journal {
        base: Circuit,
        ops: Vec<Patch>,
        ops_at_best: usize,
        /// Cleared when the op trail stops tracking the working circuit
        /// (journal overflow, or a wholesale circuit replacement whose
        /// edit has no patch form). The best-prefix stays valid;
        /// journaling resumes at the next strict improvement via an
        /// O(circuit) re-anchor.
        live: bool,
    },
}

impl BestRepr {
    /// Materializes the best circuit (consuming the representation).
    fn into_circuit(self) -> Circuit {
        match self {
            BestRepr::Snapshot(c) => c,
            BestRepr::Journal {
                base,
                ops,
                ops_at_best,
                ..
            } => {
                let mut c = base;
                for op in &ops[..ops_at_best] {
                    c.apply_patch(op);
                }
                c
            }
        }
    }
}

/// Lines 10–12 of Algorithm 1: accept every cost-non-increasing move,
/// and a worsening one with probability `exp(−t·cost′/cost)`. The single
/// source of truth for every engine's acceptance rule.
pub fn metropolis_accepts(
    cost_new: f64,
    cost_curr: f64,
    temperature: f64,
    rng: &mut SmallRng,
) -> bool {
    if cost_new <= cost_curr {
        true
    } else if cost_curr > 0.0 {
        let p = (-temperature * cost_new / cost_curr).exp();
        rng.random::<f64>() < p
    } else {
        false
    }
}

/// Algorithm 1's mutable search state over one circuit (a whole circuit
/// for the serial engines, one shard for the parallel engine): the
/// [`SearchCtx`] plus cost/ε accounting, acceptance, and best-so-far
/// tracking.
///
/// The tracked cost is updated by [`CostFn::delta`] per accepted patch
/// instead of a full recompute; the differential tests assert it never
/// drifts from the recomputed cost.
pub struct ShardDriver<'c> {
    ctx: SearchCtx,
    cost: &'c dyn CostFn,
    cost_curr: f64,
    err_curr: f64,
    eps_budget: f64,
    best: BestRepr,
    cost_best: f64,
    err_best: f64,
    iterations: u64,
    accepted: u64,
    resynth_hits: u64,
    history: Vec<HistoryPoint>,
    temperature: f64,
    resynth_probability: f64,
    record_history: bool,
    /// Take the incremental patch path (the default); the clone–rebuild
    /// baseline clears this and pays the materializing
    /// [`Transformation::apply`] instead.
    use_patches: bool,
    started: Instant,
    /// Cooperative cancellation, checked between iterations in
    /// [`run`](Self::run) (taken from [`GuoqOpts::cancel`]).
    cancel: Option<CancelToken>,
    /// Event sink: receives an [`OptEvent::Improved`] each time the
    /// best-so-far cost strictly decreases (the event-sourced API's
    /// streaming hook), alongside the new best circuit.
    on_event: Option<&'c mut EventSink<'c>>,
    /// Accepted edits since the last strict improvement — the raw
    /// material of the next `Improved` delta (only maintained while an
    /// event sink is installed).
    pending: Vec<Patch>,
    /// True once `pending` overflowed [`PENDING_OPS_CAP`]; the next
    /// improvement diffs before/after circuits instead.
    pending_overflow: bool,
    /// Whether telemetry clock reads are live ([`qtrace::enabled`],
    /// sampled once at construction so the hot loop branches on a local
    /// bool, not a global atomic).
    instrument: bool,
    /// This driver's own construction instant — the denominator of the
    /// fast/slow time split (`started` can be a global anchor shared
    /// across shards, so it cannot serve as per-driver busy time).
    t_init: Instant,
    /// Nanoseconds spent inside slow (resynthesis) moves. Fast time is
    /// derived at finish as `total − slow`: slow moves are rare and
    /// expensive, so only they pay the two clock reads — the fast path
    /// at ~1.2µs/iter could not afford per-iteration timing.
    slow_ns: u64,
    /// Per-family accept/reject/accepted-cost-delta tallies. Plain
    /// (non-atomic) adds, tallied unconditionally — only clock reads
    /// are gated on `instrument`.
    fam: [FamilyStats; FAMILY_COUNT],
    /// Certification armed ([`Self::with_certification`]): a
    /// [`qcert::CertMap`] is installed on the context and the run loop
    /// may sweep, stamp, and terminate early.
    certifying: bool,
    /// The sweep covered the circuit: [`Self::finish`] attaches the
    /// certificate and [`Self::run`] has stopped.
    certified: bool,
    /// Gates per certification window ([`GuoqOpts::cert_window`]).
    cert_window: usize,
    /// Probe attempts per window ([`GuoqOpts::cert_probes`]).
    cert_probes: u64,
    /// Iterations without a strict best-cost improvement before a
    /// sweep starts ([`GuoqOpts::cert_plateau`]).
    cert_plateau: u64,
    /// Stamp coverage fraction that ends the run early
    /// ([`GuoqOpts::cert_coverage`]).
    cert_coverage: f64,
    /// Iteration index of the last strict best-cost improvement — the
    /// plateau clock. Equal-cost Metropolis accepts are the common case
    /// on a plateau, so the clock keys on strict improvements, never on
    /// accepts.
    last_improve_iter: u64,
}

impl<'c> ShardDriver<'c> {
    /// Creates a driver owning `circuit`, configured from `opts`
    /// (temperature, ε budget, resynthesis probability, anchor bias,
    /// history recording). `started` anchors history timestamps — pass
    /// the search's global start so shard histories are coherent.
    pub fn new(circuit: Circuit, cost: &'c dyn CostFn, opts: &GuoqOpts, started: Instant) -> Self {
        Self::with_scratch(circuit, cost, opts, started, MatchScratch::new())
    }

    /// Like [`Self::new`], reusing an existing matcher scratch — shard
    /// workers recycle one scratch across every task they process so
    /// its buffers stay grown.
    pub fn with_scratch(
        circuit: Circuit,
        cost: &'c dyn CostFn,
        opts: &GuoqOpts,
        started: Instant,
        scratch: MatchScratch,
    ) -> Self {
        let c0 = cost.cost(&circuit);
        let mut history = Vec::new();
        if opts.record_history {
            history.push(HistoryPoint {
                seconds: 0.0,
                iteration: 0,
                best_cost: c0,
                best_two_qubit: circuit.two_qubit_count(),
            });
        }
        ShardDriver {
            best: BestRepr::Journal {
                base: circuit.clone(),
                ops: Vec::new(),
                ops_at_best: 0,
                live: true,
            },
            cost,
            ctx: SearchCtx::with_scratch(circuit, opts.dirty_window_bias, scratch),
            cost_curr: c0,
            err_curr: 0.0,
            eps_budget: opts.eps_total,
            cost_best: c0,
            err_best: 0.0,
            iterations: 0,
            accepted: 0,
            resynth_hits: 0,
            history,
            temperature: opts.temperature,
            resynth_probability: opts.resynth_probability,
            record_history: opts.record_history,
            use_patches: true,
            started,
            cancel: opts.cancel.clone(),
            on_event: None,
            pending: Vec::new(),
            pending_overflow: false,
            instrument: qtrace::enabled(),
            t_init: Instant::now(),
            slow_ns: 0,
            fam: [FamilyStats::default(); FAMILY_COUNT],
            certifying: false,
            certified: false,
            cert_window: opts.cert_window.max(1),
            cert_probes: opts.cert_probes.max(1),
            cert_plateau: opts.cert_plateau.max(1),
            cert_coverage: opts.cert_coverage,
            last_improve_iter: 0,
        }
    }

    /// Overrides the ε budget (the sharded engine hands each shard an
    /// allowance carved from the global budget).
    pub fn with_eps_budget(mut self, eps_budget: f64) -> Self {
        self.eps_budget = eps_budget;
        self
    }

    /// Selects the candidate-production path: `true` (default) for the
    /// incremental patch path, `false` for the materializing
    /// clone–rebuild baseline.
    pub fn with_use_patches(mut self, use_patches: bool) -> Self {
        self.use_patches = use_patches;
        self
    }

    /// Arms certification ([`GuoqOpts::certify`]): installs the window
    /// certificate map — seeded from [`GuoqOpts::cert_prior`] when one
    /// is present — so the anchor sampler redraws away from certified
    /// spans and the run loop can sweep and stamp once the search
    /// plateaus. Requires the incremental patch path (certificates are
    /// invalidated per accepted patch); a no-op when `opts.certify` is
    /// unset or the driver materializes candidates. Call after
    /// [`Self::with_use_patches`].
    pub fn with_certification(mut self, opts: &GuoqOpts) -> Self {
        if !(opts.certify && self.use_patches) {
            return self;
        }
        let len = self.ctx.circuit().len();
        let map = match &opts.cert_prior {
            Some(prior) => qcert::CertMap::seed(len, prior),
            None => qcert::CertMap::new(),
        };
        self.ctx.set_cert_map(map);
        self.certifying = true;
        self
    }

    /// Installs an event sink (see [`crate::observe`]): the driver
    /// emits an [`OptEvent::Improved`] — with its delta from the
    /// previous best — on every strict best-cost improvement. Observer
    /// mode needs the materialized best on every improvement, so the
    /// best-so-far switches to its snapshot representation.
    pub fn with_event_sink(mut self, on_event: Option<&'c mut EventSink<'c>>) -> Self {
        if on_event.is_some() {
            let best = std::mem::replace(&mut self.best, BestRepr::Snapshot(Circuit::new(0)));
            self.best = BestRepr::Snapshot(best.into_circuit());
        }
        self.on_event = on_event;
        self
    }

    /// The materialized best in observer mode.
    ///
    /// # Panics
    ///
    /// Panics when the best is journaled (no sink installed).
    fn best_snapshot(&self) -> &Circuit {
        match &self.best {
            BestRepr::Snapshot(c) => c,
            BestRepr::Journal { .. } => {
                unreachable!("observer mode keeps the best materialized")
            }
        }
    }

    /// Stops the journal's op trail (it no longer replays to the
    /// working circuit); the best-prefix stays valid and journaling
    /// resumes at the next strict improvement.
    fn invalidate_journal(&mut self) {
        if let BestRepr::Journal {
            ops,
            ops_at_best,
            live,
            ..
        } = &mut self.best
        {
            ops.truncate(*ops_at_best);
            *live = false;
        }
    }

    /// True when accepted patches must be journaled to keep the op
    /// trail replaying to the working circuit.
    fn journal_live(&self) -> bool {
        matches!(&self.best, BestRepr::Journal { live: true, .. })
    }

    /// Pins anchor-bias windows on the underlying [`SearchCtx`] (the
    /// sharded engine seeds its boundary-qubit windows here with
    /// [`GuoqOpts::boundary_bias`]).
    pub fn with_pinned_windows(mut self, windows: Vec<(usize, usize)>, bias: f64) -> Self {
        self.ctx.pin_windows(windows, bias);
        self
    }

    /// True once the driver's cancellation token (if any) was raised.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
    }

    /// The current working circuit.
    pub fn circuit(&self) -> &Circuit {
        self.ctx.circuit()
    }

    /// Iterations performed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// True when a transformation declaring `eps` still fits the budget
    /// (line 6 of Algorithm 1).
    pub fn can_afford(&self, eps: f64) -> bool {
        self.err_curr + eps <= self.eps_budget
    }

    /// Counts an iteration. [`Self::step`] does this itself; the async
    /// driver calls it once per loop cycle before interleaving.
    pub fn begin_iteration(&mut self) {
        self.iterations += 1;
    }

    /// One full Algorithm-1 iteration: pick a transformation (slow with
    /// probability `resynth_probability`, a uniform fast one otherwise),
    /// attempt it, and run the acceptance rule.
    ///
    /// Returns `false` when there is no transformation to try at all
    /// (both pools empty) — the caller should stop looping.
    pub fn step(
        &mut self,
        fast: &[Box<dyn Transformation>],
        slow: &[ResynthPass],
        rng: &mut SmallRng,
    ) -> bool {
        if fast.is_empty() && slow.is_empty() {
            // Nothing to try: report it without charging a phantom
            // iteration (the coordinator's stall guard keys on zero
            // iterations per epoch).
            return false;
        }
        self.begin_iteration();
        // Line 5: randomly select a transformation.
        let use_slow =
            !slow.is_empty() && !fast.is_empty() && rng.random::<f64>() < self.resynth_probability
                || fast.is_empty();
        if use_slow && !slow.is_empty() {
            let t = &slow[rng.random_range(0..slow.len())];
            // Line 6: the declared ε must fit in the remaining budget.
            if !self.can_afford(Transformation::epsilon(t)) {
                return true;
            }
            // Slow moves are rare and expensive, so the span's two
            // clock reads are amortized to nothing; the fast path
            // carries no per-iteration timing at all.
            let t0 = self.instrument.then(Instant::now);
            if self.use_patches {
                if let Some(pa) = Transformation::apply_patch(t, &mut self.ctx, rng) {
                    self.resynth_hits += 1;
                    self.consider_patch(pa, Family::Resynth, rng);
                }
            } else if let Some(applied) = t.apply(self.ctx.circuit(), rng) {
                self.resynth_hits += 1;
                self.consider_full(applied, Family::Resynth, rng);
            }
            if let Some(t0) = t0 {
                self.slow_ns += t0.elapsed().as_nanos() as u64;
            }
        } else {
            self.fast_move(fast, rng);
        }
        true
    }

    /// Attempts one uniformly-chosen fast transformation and runs the
    /// acceptance rule (the async driver's rewrite interleaving).
    pub fn fast_move(&mut self, fast: &[Box<dyn Transformation>], rng: &mut SmallRng) {
        let t = &fast[rng.random_range(0..fast.len())];
        if self.use_patches && t.supports_patches() {
            if let Some(pa) = t.apply_patch(&mut self.ctx, rng) {
                let fam = t.family();
                self.consider_patch(pa, fam, rng);
            }
        } else if let Some(applied) = t.apply(self.ctx.circuit(), rng) {
            // Patch-less transformation (or the clone–rebuild baseline):
            // fall back to the materializing API for this move.
            let fam = t.family();
            self.consider_full(applied, fam, rng);
        }
    }

    /// Offers an asynchronously-produced resynthesis result: counts the
    /// hit and runs the acceptance rule. Accepting replaces the whole
    /// working circuit (discarding interim rewrite edits, as §5.3
    /// prescribes).
    pub fn offer_resynth(&mut self, applied: Applied, rng: &mut SmallRng) {
        self.resynth_hits += 1;
        self.consider_full(applied, Family::Resynth, rng);
    }

    /// The plain budget loop: [`Self::step`] until `budget` is
    /// exhausted (against the driver's start instant), the optional
    /// wall-clock `deadline` passes (shard workers stop mid-slice when
    /// the global time budget runs out), or no transformation exists.
    ///
    /// A certification-armed driver ([`Self::with_certification`]) adds
    /// a fourth exit: once the best cost plateaus, the loop sweeps the
    /// circuit window by window and stops early — with a certificate —
    /// when stamped coverage reaches the target.
    pub fn run(
        &mut self,
        fast: &[Box<dyn Transformation>],
        slow: &[ResynthPass],
        rng: &mut SmallRng,
        budget: Budget,
        deadline: Option<Instant>,
    ) {
        while !budget.exhausted(self.started, self.iterations)
            && deadline.is_none_or(|d| Instant::now() < d)
            && !self.is_cancelled()
        {
            if !self.step(fast, slow, rng) {
                break;
            }
            if self.iterations & (STATS_EVERY_ITERS - 1) == 0 && self.on_event.is_some() {
                self.emit_stats();
            }
            // Certification trigger: a long strict-improvement drought
            // while the working circuit sits at the best cost (an
            // equal-cost excursion above it would certify the wrong
            // circuit — wait for the walk to come back down).
            if self.certifying
                && self.iterations - self.last_improve_iter >= self.cert_plateau
                && self.cost_curr <= self.cost_best
                && self.certification_sweep(fast, slow, rng, budget, deadline)
            {
                break;
            }
        }
    }

    /// One certification sweep: walk the uncertified spans window by
    /// window, probing each under a focused anchor sampler with fast
    /// rewrites plus (ε budget permitting) one resynthesis attempt. A
    /// window with no strictly-improving probe earns its stamp; a
    /// strict improvement is committed through the normal accept path
    /// and aborts the sweep — the plateau is over. Returns `true` when
    /// the whole circuit was swept and stamped coverage reached the
    /// target, with [`OptEvent::Certified`] emitted: the caller stops
    /// early.
    fn certification_sweep(
        &mut self,
        fast: &[Box<dyn Transformation>],
        slow: &[ResynthPass],
        rng: &mut SmallRng,
        budget: Budget,
        deadline: Option<Instant>,
    ) -> bool {
        loop {
            let len = self.ctx.circuit().len();
            // The probe window is clamped to the uncertified *span*,
            // not just the circuit: overrunning into a seeded stamp
            // would double-certify its gates.
            let Some((lo, span_hi)) = self.ctx.cert_map().and_then(|m| m.uncertified_span(0, len))
            else {
                break;
            };
            let hi = (lo + self.cert_window).min(span_hi);
            self.ctx.set_focus(Some((lo, hi)));
            for probe in 0..self.cert_probes {
                if budget.exhausted(self.started, self.iterations)
                    || deadline.is_some_and(|d| Instant::now() >= d)
                    || self.is_cancelled()
                {
                    self.ctx.set_focus(None);
                    return false;
                }
                self.begin_iteration();
                if self.cert_probe(fast, slow, probe + 1 == self.cert_probes, rng) {
                    // Not locally optimal after all: the improvement is
                    // committed and the plateau clock reset — back to
                    // the ordinary search.
                    self.ctx.set_focus(None);
                    return false;
                }
            }
            self.ctx.set_focus(None);
            if let Some(m) = self.ctx.cert_map_mut() {
                m.stamp(lo, hi, self.cert_probes);
            }
        }
        let len = self.ctx.circuit().len();
        let coverage = if len == 0 {
            1.0
        } else {
            self.ctx
                .cert_map()
                .map_or(0.0, |m| m.certified_gates() as f64 / len as f64)
        };
        if coverage < self.cert_coverage {
            return false;
        }
        // Equal-cost plateau accepts may have drifted the working
        // circuit away from the recorded best. The certificate describes
        // the working circuit, so pin it as the best — same cost — via
        // the one equal-cost publication the stream contract allows.
        if !self.best_is_current() {
            self.publish_best();
        }
        self.certified = true;
        if self.on_event.is_some() {
            let event = OptEvent::Certified {
                coverage,
                windows: self.ctx.cert_map().map_or(0, |m| m.windows()),
                budget: self.cert_probes,
                iterations: self.iterations,
                seconds: self.started.elapsed().as_secs_f64(),
            };
            let best = match &self.best {
                BestRepr::Snapshot(c) => c,
                BestRepr::Journal { .. } => {
                    unreachable!("observer mode keeps the best materialized")
                }
            };
            if let Some(obs) = self.on_event.as_mut() {
                obs(&event, best);
            }
        }
        true
    }

    /// One probe attempt against the focused window. Returns `true`
    /// when a strictly-improving candidate was found and committed.
    fn cert_probe(
        &mut self,
        fast: &[Box<dyn Transformation>],
        slow: &[ResynthPass],
        last: bool,
        rng: &mut SmallRng,
    ) -> bool {
        // Spend the window's final probe on resynthesis when the ε
        // budget still allows one — rewrites alone would stamp windows
        // a cheap resynthesis could still shrink.
        if last && !slow.is_empty() {
            let t = &slow[rng.random_range(0..slow.len())];
            if !self.can_afford(Transformation::epsilon(t)) {
                return false;
            }
            let t0 = self.instrument.then(Instant::now);
            let improved = match Transformation::apply_patch(t, &mut self.ctx, rng) {
                Some(pa) => {
                    self.resynth_hits += 1;
                    self.commit_if_improving(pa, Family::Resynth)
                }
                None => false,
            };
            if let Some(t0) = t0 {
                self.slow_ns += t0.elapsed().as_nanos() as u64;
            }
            return improved;
        }
        if fast.is_empty() {
            return false;
        }
        let t = &fast[rng.random_range(0..fast.len())];
        if !t.supports_patches() {
            return false;
        }
        match t.apply_patch(&mut self.ctx, rng) {
            Some(pa) => {
                let fam = t.family();
                self.commit_if_improving(pa, fam)
            }
            None => false,
        }
    }

    /// The certification probe's acceptance rule: strict improvement
    /// only. Metropolis equal-cost accepts would walk the circuit out
    /// from under its fresh stamps without ending the plateau.
    fn commit_if_improving(&mut self, pa: PatchApplied, fam: Family) -> bool {
        let cost_new = self.cost_curr + self.cost.delta(self.ctx.circuit(), &pa.patch);
        if cost_new >= self.cost_curr {
            self.fam[fam.index()].rejects += 1;
            return false;
        }
        let op = (self.on_event.is_some() || self.journal_live()).then(|| pa.patch.clone());
        self.ctx.commit(&pa.patch);
        self.record_accept(cost_new, pa.epsilon, fam, op);
        true
    }

    /// True when the recorded best-so-far replays to the working
    /// circuit (no accepts since the last publication).
    fn best_is_current(&self) -> bool {
        match &self.best {
            BestRepr::Snapshot(_) => self.pending.is_empty() && !self.pending_overflow,
            BestRepr::Journal {
                ops,
                ops_at_best,
                live,
                ..
            } => *live && ops.len() == *ops_at_best,
        }
    }

    /// Emits an [`OptEvent::Stats`] heartbeat carrying the current
    /// profile snapshot (observer mode only). Side-channel only: it
    /// never touches the RNG, the cost tallies, or the delta stream.
    fn emit_stats(&mut self) {
        let event = OptEvent::Stats {
            profile: self.profile_snapshot(),
        };
        if let Some(obs) = self.on_event.as_mut() {
            obs(&event, self.ctx.circuit());
        }
    }

    /// The fast/slow time split and per-family tallies so far. Fast
    /// time is everything the driver has been alive minus the measured
    /// slow spans; with instrumentation off, all times are zero (the
    /// tallies still count).
    fn profile_snapshot(&self) -> Profile {
        let total_ns = if self.instrument {
            self.t_init.elapsed().as_nanos() as u64
        } else {
            0
        };
        let slow_ns = self.slow_ns.min(total_ns);
        Profile {
            fast_ns: total_ns - slow_ns,
            slow_ns,
            total_ns,
            families: self.fam,
        }
    }

    /// Lines 10–18 of Algorithm 1 for a candidate patch: the cost change
    /// comes from [`CostFn::delta`] (O(edit span)), and only an accepted
    /// edit is committed — a rejected candidate is simply dropped, no
    /// clone, apply, or revert required.
    fn consider_patch(&mut self, pa: PatchApplied, fam: Family, rng: &mut SmallRng) {
        let cost_new = self.cost_curr + self.cost.delta(self.ctx.circuit(), &pa.patch);
        if !metropolis_accepts(cost_new, self.cost_curr, self.temperature, rng) {
            self.fam[fam.index()].rejects += 1;
            return;
        }
        // The accepted patch *is* the event-stream / best-journal op —
        // clone it only when a sink or a live journal will consume it
        // (an O(edit span) copy, never O(circuit)).
        let op = (self.on_event.is_some() || self.journal_live()).then(|| pa.patch.clone());
        self.ctx.commit(&pa.patch);
        self.record_accept(cost_new, pa.epsilon, fam, op);
    }

    /// Acceptance for a fully materialized candidate (patch-less
    /// transformations, the clone–rebuild baseline, and async
    /// resynthesis results): replaces the working circuit wholesale.
    /// There is no local op to record for the event stream — a
    /// whole-circuit replacement per accept would make the next delta
    /// O(accepts × circuit) — so the op trail is abandoned and the
    /// next `Improved` packages a single before/after diff instead
    /// (one op, never larger than a full snapshot).
    fn consider_full(&mut self, applied: Applied, fam: Family, rng: &mut SmallRng) {
        let cost_new = self.cost.cost(&applied.circuit);
        if !metropolis_accepts(cost_new, self.cost_curr, self.temperature, rng) {
            self.fam[fam.index()].rejects += 1;
            return;
        }
        if self.on_event.is_some() {
            self.pending.clear();
            self.pending_overflow = true;
        } else {
            // A wholesale replacement has no patch form; the journal's
            // op trail can no longer track the working circuit.
            self.invalidate_journal();
        }
        self.ctx.replace_circuit(applied.circuit);
        self.record_accept(cost_new, applied.epsilon, fam, None);
    }

    fn record_accept(&mut self, cost_new: f64, epsilon: f64, fam: Family, op: Option<Patch>) {
        self.accepted += 1;
        let fs = &mut self.fam[fam.index()];
        fs.accepts += 1;
        // Positive delta = improvement (cost went down by this much).
        fs.accepted_cost_delta += self.cost_curr - cost_new;
        self.cost_curr = cost_new;
        self.err_curr += epsilon;
        if let Some(op) = op {
            if self.on_event.is_some() {
                if self.pending.len() >= PENDING_OPS_CAP {
                    // Cap the backlog: forget the op trail and diff
                    // before/after at the next improvement instead.
                    self.pending.clear();
                    self.pending_overflow = true;
                } else {
                    self.pending.push(op);
                }
            } else if let BestRepr::Journal {
                ops,
                ops_at_best,
                live: live @ true,
                ..
            } = &mut self.best
            {
                if ops.len() >= BEST_JOURNAL_CAP {
                    // Cap the backlog: keep the best-prefix, stop
                    // journaling, re-anchor at the next improvement.
                    ops.truncate(*ops_at_best);
                    *live = false;
                } else {
                    ops.push(op);
                }
            }
        }
        if self.cost_curr < self.cost_best {
            self.last_improve_iter = self.iterations;
            self.publish_best();
        }
    }

    /// Re-anchors the best-so-far on the working circuit and publishes
    /// it — the strict-improvement tail of [`Self::record_accept`],
    /// also invoked by a completed certification sweep to pin the
    /// certified working circuit as the result. Requires
    /// `cost_curr <= cost_best`; the certification path is the one
    /// caller where equality (an equal-cost `Improved` event) occurs.
    fn publish_best(&mut self) {
        self.cost_best = self.cost_curr;
        self.err_best = self.err_curr;
        if self.record_history {
            // The working circuit and the best coincide at every
            // strict improvement, so its cached counts serve.
            self.history.push(HistoryPoint {
                seconds: self.started.elapsed().as_secs_f64(),
                iteration: self.iterations,
                best_cost: self.cost_best,
                best_two_qubit: self.ctx.circuit().two_qubit_count(),
            });
        }
        if self.on_event.is_some() {
            // The delta is built against the *previous* best —
            // exactly the accepted ops since that improvement (the
            // working circuit and the best coincide at every
            // improvement, so the op chain replays previous best →
            // new best).
            let delta = if self.pending_overflow {
                self.pending_overflow = false;
                // Ops accepted after the overflow are inside the
                // diffed span; drop them with the rest.
                self.pending.clear();
                CircuitDelta::diff(self.best_snapshot(), self.ctx.circuit())
            } else {
                CircuitDelta::from_ops(
                    self.best_snapshot().len(),
                    std::mem::take(&mut self.pending),
                )
            };
            // Observer mode pays the O(circuit) snapshot: the sink
            // is handed the materialized best on every improvement.
            self.best = BestRepr::Snapshot(self.ctx.circuit().clone());
            let event = OptEvent::Improved {
                delta,
                cost: self.cost_best,
                epsilon: self.err_best,
                iterations: self.iterations,
                seconds: self.started.elapsed().as_secs_f64(),
            };
            let best = match &self.best {
                BestRepr::Snapshot(c) => c,
                BestRepr::Journal { .. } => unreachable!(),
            };
            if let Some(obs) = self.on_event.as_mut() {
                obs(&event, best);
            }
        } else {
            match &mut self.best {
                // The journal already replays to the working
                // circuit: recording the new best is one store.
                BestRepr::Journal {
                    ops,
                    ops_at_best,
                    live: true,
                    ..
                } => *ops_at_best = ops.len(),
                // Dead journal (overflow or wholesale replacement):
                // re-anchor on the improved circuit — the one
                // O(circuit) snapshot those paths amortize.
                _ => {
                    self.best = BestRepr::Journal {
                        base: self.ctx.circuit().clone(),
                        ops: Vec::new(),
                        ops_at_best: 0,
                        live: true,
                    }
                }
            }
        }
    }

    /// Credits externally measured slow-span nanoseconds (the async
    /// engine's resynthesis runs on a worker thread, outside
    /// [`step`](Self::step)'s span).
    pub(crate) fn add_slow_ns(&mut self, ns: u64) {
        self.slow_ns += ns;
    }

    /// Finalizes the search: the best circuit found with its cost, ε,
    /// and counters.
    pub fn finish(self) -> GuoqResult {
        self.finish_recycling().0
    }

    /// [`Self::finish`], also yielding the matcher scratch so the
    /// caller can feed it to the next driver.
    pub fn finish_recycling(self) -> (GuoqResult, MatchScratch) {
        let profile = self.profile_snapshot();
        // A completed sweep pinned best == working, so the stamps index
        // the result circuit; an incomplete one describes whatever the
        // working circuit drifted to, which is nothing to hand out.
        let certificate = self
            .certified
            .then(|| {
                self.ctx
                    .cert_map()
                    .map(|m| m.to_certificate(self.ctx.circuit().len(), self.cert_probes))
            })
            .flatten();
        // One registry flush per driver lifetime — the global
        // `guoq_*_total` series accumulate across jobs/shards while the
        // per-result `Profile` stays a per-run delta.
        profile.flush_to_registry();
        let result = GuoqResult {
            // Journal mode materializes the best exactly once, here:
            // the base snapshot replayed through the best-prefix ops.
            circuit: self.best.into_circuit(),
            cost: self.cost_best,
            epsilon: self.err_best,
            iterations: self.iterations,
            accepted: self.accepted,
            resynth_hits: self.resynth_hits,
            // Cache traffic is tallied on the passes (shared across
            // engines and clones); `Guoq::dispatch` fills these in.
            cache_hits: 0,
            cache_misses: 0,
            history: self.history,
            worker_stats: Vec::new(),
            profile,
            certificate,
        };
        (result, self.ctx.into_scratch())
    }
}
