//! The GUOQ algorithm (paper §5, Algorithm 1).
//!
//! A single-candidate stochastic search inspired by simulated annealing:
//! each iteration randomly picks a transformation (resynthesis with small
//! probability, otherwise a uniformly random rewrite rule), applies it to
//! a random subcircuit, and accepts cost-non-increasing moves always and
//! worsening moves with probability `exp(−t·cost'/cost)`. The sum of the
//! measured per-application errors never exceeds the global tolerance
//! `ε_f` (Thm. 4.2 / Thm. 5.3).
//!
//! # Iteration engines
//!
//! GUOQ is an *anytime* algorithm: solution quality is a direct function
//! of iterations per second (paper §5, Fig. 7). Two engines drive the
//! loop:
//!
//! * [`Engine::Incremental`] (default) — the edit-based engine. The
//!   search owns one working circuit inside a
//!   [`SearchCtx`](crate::transform::SearchCtx) together with a cached
//!   [`qcir::dag::WireDag`]. Each candidate move is produced as a
//!   [`qcir::edit::Patch`] (a local edit: removed indices + replacement +
//!   splice position) by the transformation's
//!   [`apply_patch`](crate::transform::Transformation::apply_patch) path;
//!   its cost change comes from [`CostFn::delta`] in O(edit span).
//!   Rejected candidates are dropped without ever touching the circuit;
//!   accepted ones are committed in place —
//!   [`Circuit::apply_patch`](qcir::Circuit::apply_patch) plus
//!   [`WireDag::splice`](qcir::dag::WireDag::splice) — so per-iteration
//!   work scales with the edit, not the circuit. (The
//!   [`Circuit::revert_patch`](qcir::Circuit::revert_patch) inverse
//!   exists for apply-then-decide flows that must measure post-apply
//!   quantities.)
//! * [`Engine::CloneRebuild`] — the original loop: each candidate clones
//!   the circuit, rebuilds the DAG and recomputes the full cost. Kept as
//!   the differential-testing baseline and for benchmarking
//!   (`benches/guoq_iter.rs` measures both).
//!
//! The *patch machinery* is differentially tested against the legacy
//! machinery (`tests/patch_differential.rs`): every single-match patch,
//! DAG splice, and cost delta is bit-identical to the corresponding
//! legacy rebuild. The two *engines* are not trajectory-identical — an
//! incremental iteration lands one local edit while a legacy iteration
//! applies a whole pass — so per-iteration search effort differs; both
//! are verified to preserve semantics and report drift-free costs, and
//! the bench compares them under equal wall-clock, where quality per
//! second is the meaningful axis for an anytime search.

use crate::cost::CostFn;
use crate::transform::{
    Applied, CleanupPass, CommutationPass, FusionPass, PatchApplied, ResynthPass, RulePass,
    SearchCtx, Transformation,
};
use qcir::{Circuit, GateSet};
use qsynth::{resynth::ResynthOpts, Resynthesizer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Which iteration engine drives the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Patch-based incremental engine: one working circuit, a cached
    /// [`qcir::dag::WireDag`] spliced per accepted edit, and O(edit-span)
    /// cost deltas. Per-iteration work scales with the edit, not the
    /// circuit.
    #[default]
    Incremental,
    /// The original clone–rebuild–rescan loop: every candidate
    /// transformation materializes a fresh circuit, rebuilds the DAG and
    /// recomputes the full cost. Kept as the differential-testing and
    /// benchmarking baseline.
    CloneRebuild,
}

/// Search budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Wall-clock limit (the paper's mode; GUOQ is an anytime algorithm).
    Time(Duration),
    /// Iteration-count limit (deterministic; used by tests).
    Iterations(u64),
}

impl Budget {
    fn exhausted(&self, started: Instant, iterations: u64) -> bool {
        match *self {
            Budget::Time(limit) => started.elapsed() >= limit,
            Budget::Iterations(n) => iterations >= n,
        }
    }
}

/// Options for [`Guoq`].
#[derive(Debug, Clone)]
pub struct GuoqOpts {
    /// Search budget.
    pub budget: Budget,
    /// Global error tolerance `ε_f` (hard constraint, Def. 5.2).
    pub eps_total: f64,
    /// Acceptance temperature `t` (paper: 10 — near-greedy).
    pub temperature: f64,
    /// Probability of choosing resynthesis per iteration (paper: 1.5%).
    pub resynth_probability: f64,
    /// Maximum random-subcircuit width for resynthesis (paper: 3).
    pub max_subcircuit_qubits: usize,
    /// RNG seed.
    pub seed: u64,
    /// Record a best-cost-over-time trace (Fig. 7).
    pub record_history: bool,
    /// Run resynthesis on a worker thread, interleaving rewrites while it
    /// runs, and discard interim edits when a result is accepted (§5.3).
    pub async_resynth: bool,
    /// Iteration engine (patch-based incremental by default).
    pub engine: Engine,
}

impl Default for GuoqOpts {
    fn default() -> Self {
        GuoqOpts {
            budget: Budget::Time(Duration::from_secs(10)),
            eps_total: 1e-8,
            temperature: 10.0,
            resynth_probability: 0.015,
            max_subcircuit_qubits: 3,
            seed: 0xCAFE,
            record_history: false,
            async_resynth: false,
            engine: Engine::Incremental,
        }
    }
}

/// One sample of the best-so-far trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoryPoint {
    /// Seconds since the search started.
    pub seconds: f64,
    /// Iteration index.
    pub iteration: u64,
    /// Best cost so far.
    pub best_cost: f64,
    /// Two-qubit gate count of the best circuit so far.
    pub best_two_qubit: usize,
}

/// The result of a GUOQ run.
#[derive(Debug, Clone)]
pub struct GuoqResult {
    /// Best circuit found.
    pub circuit: Circuit,
    /// Its cost under the objective.
    pub cost: f64,
    /// Accumulated error bound of the best circuit (≤ `ε_f`).
    pub epsilon: f64,
    /// Iterations performed.
    pub iterations: u64,
    /// Accepted moves.
    pub accepted: u64,
    /// Resynthesis calls that returned a replacement.
    pub resynth_hits: u64,
    /// Best-so-far trace (empty unless `record_history`).
    pub history: Vec<HistoryPoint>,
}

/// The GUOQ optimizer: an instantiation of the transformation framework
/// plus the Algorithm-1 search loop.
pub struct Guoq {
    fast: Vec<Box<dyn Transformation>>,
    slow: Vec<ResynthPass>,
    opts: GuoqOpts,
}

impl Guoq {
    /// The paper's full instantiation for a gate set: the QUESO-style rule
    /// corpus, the exact built-in passes, and resynthesis.
    pub fn for_gate_set(set: GateSet, opts: GuoqOpts) -> Self {
        let mut g = Self::rewrite_only(set, opts);
        let eps = (g.opts.eps_total / 8.0).max(1e-12);
        let rs = Resynthesizer::with_opts(set, ResynthOpts::fast());
        g.slow
            .push(ResynthPass::new(rs, g.opts.max_subcircuit_qubits, eps));
        g
    }

    /// Ablation: rewrite rules (and exact passes) only — `GUOQ-REWRITE`.
    pub fn rewrite_only(set: GateSet, opts: GuoqOpts) -> Self {
        let mut fast: Vec<Box<dyn Transformation>> = Vec::new();
        for rule in qrewrite::rules_for(set) {
            fast.push(Box::new(RulePass::new(rule)));
        }
        fast.push(Box::new(FusionPass::new(set)));
        fast.push(Box::new(CommutationPass));
        fast.push(Box::new(CleanupPass));
        Guoq {
            fast,
            slow: Vec::new(),
            opts,
        }
    }

    /// Ablation: resynthesis only — `GUOQ-RESYNTH`.
    pub fn resynth_only(set: GateSet, opts: GuoqOpts) -> Self {
        let eps = (opts.eps_total / 8.0).max(1e-12);
        let rs = Resynthesizer::with_opts(set, ResynthOpts::fast());
        let slow = vec![ResynthPass::new(rs, opts.max_subcircuit_qubits, eps)];
        Guoq {
            fast: Vec::new(), // every iteration is a resynthesis attempt
            slow,
            opts,
        }
    }

    /// A custom instantiation from explicit transformation pools.
    pub fn new(fast: Vec<Box<dyn Transformation>>, slow: Vec<ResynthPass>, opts: GuoqOpts) -> Self {
        Guoq { fast, slow, opts }
    }

    /// The configured options.
    pub fn opts(&self) -> &GuoqOpts {
        &self.opts
    }

    /// Runs Algorithm 1 on `circuit` under `cost`.
    pub fn optimize(&self, circuit: &Circuit, cost: &dyn CostFn) -> GuoqResult {
        match (
            self.opts.engine,
            self.opts.async_resynth && !self.slow.is_empty(),
        ) {
            (Engine::Incremental, false) => self.optimize_sync(circuit, cost),
            (Engine::Incremental, true) => self.optimize_async(circuit, cost),
            (Engine::CloneRebuild, false) => self.optimize_sync_legacy(circuit, cost),
            (Engine::CloneRebuild, true) => self.optimize_async_legacy(circuit, cost),
        }
    }

    /// The incremental driver: one working circuit and cached DAG in a
    /// [`SearchCtx`]; candidate edits arrive as patches, are costed via
    /// [`CostFn::delta`] in O(edit span), and only *accepted* edits touch
    /// the circuit (committed in place — no pristine clone per
    /// iteration, and rejected candidates cost nothing to discard).
    fn optimize_sync(&self, circuit: &Circuit, cost: &dyn CostFn) -> GuoqResult {
        let mut rng = SmallRng::seed_from_u64(self.opts.seed);
        let started = Instant::now();
        let mut state = IncrementalState::new(circuit, cost, started, &self.opts);

        while !self.opts.budget.exhausted(started, state.iterations) {
            state.iterations += 1;
            // Line 5: randomly select a transformation.
            let use_slow = !self.slow.is_empty()
                && !self.fast.is_empty()
                && rng.random::<f64>() < self.opts.resynth_probability
                || self.fast.is_empty();
            if use_slow && !self.slow.is_empty() {
                let t = &self.slow[rng.random_range(0..self.slow.len())];
                // Line 6: the declared ε must fit in the remaining budget.
                if state.err_curr + t.epsilon() > self.opts.eps_total {
                    continue;
                }
                if let Some(pa) = Transformation::apply_patch(t, &mut state.ctx, &mut rng) {
                    state.resynth_hits += 1;
                    state.consider_patch(pa, cost, &mut rng, &self.opts, started);
                }
            } else if !self.fast.is_empty() {
                let t = &self.fast[rng.random_range(0..self.fast.len())];
                if t.supports_patches() {
                    if let Some(pa) = t.apply_patch(&mut state.ctx, &mut rng) {
                        state.consider_patch(pa, cost, &mut rng, &self.opts, started);
                    }
                } else {
                    // Out-of-tree transformation without a patch path:
                    // fall back to the materializing API for this move.
                    if let Some(applied) = t.apply(state.ctx.circuit(), &mut rng) {
                        state.consider_full(applied, cost, &mut rng, &self.opts, started);
                    }
                }
            } else {
                break; // no transformations at all
            }
        }
        state.into_result()
    }

    fn optimize_sync_legacy(&self, circuit: &Circuit, cost: &dyn CostFn) -> GuoqResult {
        let mut rng = SmallRng::seed_from_u64(self.opts.seed);
        let started = Instant::now();
        let mut state = SearchState::new(circuit, cost, started, &self.opts);

        while !self.opts.budget.exhausted(started, state.iterations) {
            state.iterations += 1;
            // Line 5: randomly select a transformation.
            let use_slow = !self.slow.is_empty()
                && !self.fast.is_empty()
                && rng.random::<f64>() < self.opts.resynth_probability
                || self.fast.is_empty();
            if use_slow && !self.slow.is_empty() {
                let t = &self.slow[rng.random_range(0..self.slow.len())];
                // Line 6: the declared ε must fit in the remaining budget.
                if state.err_curr + t.epsilon() > self.opts.eps_total {
                    continue;
                }
                if let Some(applied) = t.apply(&state.curr, &mut rng) {
                    state.resynth_hits += 1;
                    state.consider(applied, cost, &mut rng, &self.opts, started);
                }
            } else if !self.fast.is_empty() {
                let t = &self.fast[rng.random_range(0..self.fast.len())];
                if let Some(applied) = t.apply(&state.curr, &mut rng) {
                    state.consider(applied, cost, &mut rng, &self.opts, started);
                }
            } else {
                break; // no transformations at all
            }
        }
        state.into_result()
    }

    /// §5.3 "Applying resynthesis asynchronously", incremental flavour:
    /// fast rewrites run as in-place patches against the cached
    /// [`SearchCtx`] while resynthesis works on a snapshot clone in a
    /// worker thread. An accepted resynthesis result replaces the whole
    /// working circuit (discarding interim rewrite edits, as §5.3
    /// prescribes), which is the one remaining O(circuit) event — it
    /// happens at the resynthesis rate, not the iteration rate.
    fn optimize_async(&self, circuit: &Circuit, cost: &dyn CostFn) -> GuoqResult {
        use crossbeam_channel::{bounded, TryRecvError};

        type Req = (u64, Circuit, qcir::Region, u64);
        type Resp = (u64, Option<Applied>);

        let mut rng = SmallRng::seed_from_u64(self.opts.seed);
        let started = Instant::now();
        let mut state = IncrementalState::new(circuit, cost, started, &self.opts);

        let (req_tx, req_rx) = bounded::<Req>(1);
        let (resp_tx, resp_rx) = bounded::<Resp>(1);
        let worker_pass = self.slow[0].clone();
        let worker = std::thread::spawn(move || {
            while let Ok((id, snapshot, region, seed)) = req_rx.recv() {
                let mut wrng = SmallRng::seed_from_u64(seed);
                let applied = worker_pass.resynthesize_region(&snapshot, &region, &mut wrng);
                if resp_tx.send((id, applied)).is_err() {
                    break;
                }
            }
        });

        let mut in_flight = false;
        let mut next_id = 0u64;
        while !self.opts.budget.exhausted(started, state.iterations) {
            state.iterations += 1;
            // Drain any finished resynthesis first.
            match resp_rx.try_recv() {
                Ok((_id, applied)) => {
                    in_flight = false;
                    if let Some(applied) = applied {
                        state.resynth_hits += 1;
                        // The candidate replaces the snapshot; accepting
                        // it discards every interim rewrite (§5.3).
                        state.consider_full(applied, cost, &mut rng, &self.opts, started);
                    }
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => break,
            }
            let want_slow = !in_flight && rng.random::<f64>() < self.opts.resynth_probability;
            if want_slow {
                if state.err_curr + self.slow[0].epsilon() > self.opts.eps_total {
                    continue;
                }
                if let Some(region) = self.slow[0].pick_region(state.ctx.circuit(), &mut rng) {
                    next_id += 1;
                    let seed = rng.random::<u64>();
                    if req_tx
                        .send((next_id, state.ctx.circuit().clone(), region, seed))
                        .is_ok()
                    {
                        in_flight = true;
                    }
                }
            } else if !self.fast.is_empty() {
                let t = &self.fast[rng.random_range(0..self.fast.len())];
                if t.supports_patches() {
                    if let Some(pa) = t.apply_patch(&mut state.ctx, &mut rng) {
                        state.consider_patch(pa, cost, &mut rng, &self.opts, started);
                    }
                } else if let Some(applied) = t.apply(state.ctx.circuit(), &mut rng) {
                    state.consider_full(applied, cost, &mut rng, &self.opts, started);
                }
            }
        }
        drop(req_tx);
        // Drain a possibly in-flight result so the worker can exit.
        if in_flight {
            if let Ok((_id, Some(applied))) = resp_rx.recv() {
                state.resynth_hits += 1;
                state.consider_full(applied, cost, &mut rng, &self.opts, started);
            }
        }
        drop(resp_rx);
        let _ = worker.join();
        state.into_result()
    }

    /// §5.3 "Applying resynthesis asynchronously", clone–rebuild flavour
    /// (the [`Engine::CloneRebuild`] baseline).
    fn optimize_async_legacy(&self, circuit: &Circuit, cost: &dyn CostFn) -> GuoqResult {
        use crossbeam_channel::{bounded, TryRecvError};

        type Req = (u64, Circuit, qcir::Region, u64);
        type Resp = (u64, Circuit, Option<Applied>);

        let mut rng = SmallRng::seed_from_u64(self.opts.seed);
        let started = Instant::now();
        let mut state = SearchState::new(circuit, cost, started, &self.opts);

        let (req_tx, req_rx) = bounded::<Req>(1);
        let (resp_tx, resp_rx) = bounded::<Resp>(1);
        let worker_pass = self.slow[0].clone();
        let worker = std::thread::spawn(move || {
            while let Ok((id, snapshot, region, seed)) = req_rx.recv() {
                let mut wrng = SmallRng::seed_from_u64(seed);
                let applied = worker_pass.resynthesize_region(&snapshot, &region, &mut wrng);
                if resp_tx.send((id, snapshot, applied)).is_err() {
                    break;
                }
            }
        });

        let mut in_flight = false;
        let mut next_id = 0u64;
        while !self.opts.budget.exhausted(started, state.iterations) {
            state.iterations += 1;
            // Drain any finished resynthesis first.
            match resp_rx.try_recv() {
                Ok((_id, snapshot, applied)) => {
                    in_flight = false;
                    if let Some(applied) = applied {
                        state.resynth_hits += 1;
                        // The candidate replaces the snapshot; accepting it
                        // discards every interim rewrite (§5.3).
                        let _ = snapshot;
                        state.consider(applied, cost, &mut rng, &self.opts, started);
                    }
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => break,
            }
            let want_slow = !in_flight && rng.random::<f64>() < self.opts.resynth_probability;
            if want_slow {
                if state.err_curr + self.slow[0].epsilon() > self.opts.eps_total {
                    continue;
                }
                if let Some(region) = self.slow[0].pick_region(&state.curr, &mut rng) {
                    next_id += 1;
                    let seed = rng.random::<u64>();
                    if req_tx
                        .send((next_id, state.curr.clone(), region, seed))
                        .is_ok()
                    {
                        in_flight = true;
                    }
                }
            } else if !self.fast.is_empty() {
                let t = &self.fast[rng.random_range(0..self.fast.len())];
                if let Some(applied) = t.apply(&state.curr, &mut rng) {
                    state.consider(applied, cost, &mut rng, &self.opts, started);
                }
            }
        }
        drop(req_tx);
        // Drain a possibly in-flight result so the worker can exit.
        if in_flight {
            if let Ok((_id, _snap, Some(applied))) = resp_rx.recv() {
                state.resynth_hits += 1;
                state.consider(applied, cost, &mut rng, &self.opts, started);
            }
        }
        drop(resp_rx);
        let _ = worker.join();
        state.into_result()
    }
}

/// Lines 10–12 of Algorithm 1: accept every cost-non-increasing move,
/// and a worsening one with probability `exp(−t·cost′/cost)`. The single
/// source of truth for both engines' acceptance rule.
fn metropolis_accepts(cost_new: f64, cost_curr: f64, temperature: f64, rng: &mut SmallRng) -> bool {
    if cost_new <= cost_curr {
        true
    } else if cost_curr > 0.0 {
        let p = (-temperature * cost_new / cost_curr).exp();
        rng.random::<f64>() < p
    } else {
        false
    }
}

/// Mutable search state shared by the sync and async drivers.
struct SearchState {
    curr: Circuit,
    cost_curr: f64,
    err_curr: f64,
    best: Circuit,
    cost_best: f64,
    err_best: f64,
    iterations: u64,
    accepted: u64,
    resynth_hits: u64,
    history: Vec<HistoryPoint>,
    started: Instant,
}

impl SearchState {
    fn new(circuit: &Circuit, cost: &dyn CostFn, started: Instant, opts: &GuoqOpts) -> Self {
        let c0 = cost.cost(circuit);
        let mut history = Vec::new();
        if opts.record_history {
            history.push(HistoryPoint {
                seconds: 0.0,
                iteration: 0,
                best_cost: c0,
                best_two_qubit: circuit.two_qubit_count(),
            });
        }
        SearchState {
            curr: circuit.clone(),
            cost_curr: c0,
            err_curr: 0.0,
            best: circuit.clone(),
            cost_best: c0,
            err_best: 0.0,
            iterations: 0,
            accepted: 0,
            resynth_hits: 0,
            history,
            started,
        }
    }

    /// Lines 10–18 of Algorithm 1.
    fn consider(
        &mut self,
        applied: Applied,
        cost: &dyn CostFn,
        rng: &mut SmallRng,
        opts: &GuoqOpts,
        started: Instant,
    ) {
        let cost_new = cost.cost(&applied.circuit);
        if !metropolis_accepts(cost_new, self.cost_curr, opts.temperature, rng) {
            return;
        }
        self.accepted += 1;
        self.curr = applied.circuit;
        self.cost_curr = cost_new;
        self.err_curr += applied.epsilon;
        if self.cost_curr < self.cost_best {
            self.best = self.curr.clone();
            self.cost_best = self.cost_curr;
            self.err_best = self.err_curr;
            if opts.record_history {
                self.history.push(HistoryPoint {
                    seconds: started.elapsed().as_secs_f64(),
                    iteration: self.iterations,
                    best_cost: self.cost_best,
                    best_two_qubit: self.best.two_qubit_count(),
                });
            }
        }
    }

    fn into_result(self) -> GuoqResult {
        let _ = self.started;
        GuoqResult {
            circuit: self.best,
            cost: self.cost_best,
            epsilon: self.err_best,
            iterations: self.iterations,
            accepted: self.accepted,
            resynth_hits: self.resynth_hits,
            history: self.history,
        }
    }
}

/// Mutable search state of the incremental engine: the [`SearchCtx`]
/// (working circuit + cached DAG) plus the running cost/error tallies.
///
/// The tracked `cost_curr` is updated by [`CostFn::delta`] per accepted
/// edit instead of a full recompute; the differential tests assert it
/// never drifts from the recomputed cost.
struct IncrementalState {
    ctx: SearchCtx,
    cost_curr: f64,
    err_curr: f64,
    best: Circuit,
    cost_best: f64,
    err_best: f64,
    iterations: u64,
    accepted: u64,
    resynth_hits: u64,
    history: Vec<HistoryPoint>,
}

impl IncrementalState {
    fn new(circuit: &Circuit, cost: &dyn CostFn, _started: Instant, opts: &GuoqOpts) -> Self {
        let c0 = cost.cost(circuit);
        let mut history = Vec::new();
        if opts.record_history {
            history.push(HistoryPoint {
                seconds: 0.0,
                iteration: 0,
                best_cost: c0,
                best_two_qubit: circuit.two_qubit_count(),
            });
        }
        IncrementalState {
            ctx: SearchCtx::new(circuit.clone()),
            cost_curr: c0,
            err_curr: 0.0,
            best: circuit.clone(),
            cost_best: c0,
            err_best: 0.0,
            iterations: 0,
            accepted: 0,
            resynth_hits: 0,
            history,
        }
    }

    /// Lines 10–18 of Algorithm 1 for a candidate patch: the cost change
    /// comes from [`CostFn::delta`] (O(edit span)), and only an accepted
    /// edit is committed — a rejected candidate is simply dropped, no
    /// clone, apply, or revert required.
    fn consider_patch(
        &mut self,
        pa: PatchApplied,
        cost: &dyn CostFn,
        rng: &mut SmallRng,
        opts: &GuoqOpts,
        started: Instant,
    ) {
        let cost_new = self.cost_curr + cost.delta(self.ctx.circuit(), &pa.patch);
        if !self.accepts(cost_new, rng, opts) {
            return;
        }
        self.ctx.commit(&pa.patch);
        self.record_accept(cost_new, pa.epsilon, opts, started);
    }

    /// Acceptance for a fully materialized candidate (patch-less
    /// transformations and async resynthesis results): replaces the
    /// working circuit wholesale.
    fn consider_full(
        &mut self,
        applied: Applied,
        cost: &dyn CostFn,
        rng: &mut SmallRng,
        opts: &GuoqOpts,
        started: Instant,
    ) {
        let cost_new = cost.cost(&applied.circuit);
        if !self.accepts(cost_new, rng, opts) {
            return;
        }
        self.ctx.replace_circuit(applied.circuit);
        self.record_accept(cost_new, applied.epsilon, opts, started);
    }

    fn accepts(&self, cost_new: f64, rng: &mut SmallRng, opts: &GuoqOpts) -> bool {
        metropolis_accepts(cost_new, self.cost_curr, opts.temperature, rng)
    }

    fn record_accept(&mut self, cost_new: f64, epsilon: f64, opts: &GuoqOpts, started: Instant) {
        self.accepted += 1;
        self.cost_curr = cost_new;
        self.err_curr += epsilon;
        if self.cost_curr < self.cost_best {
            // O(circuit) snapshot, but only on *strict* improvements —
            // bounded by the total cost descent, not the accept rate
            // (plateau accepts, the common case, never clone). A patch
            // journal could remove even this; see ROADMAP.
            self.best = self.ctx.circuit().clone();
            self.cost_best = self.cost_curr;
            self.err_best = self.err_curr;
            if opts.record_history {
                self.history.push(HistoryPoint {
                    seconds: started.elapsed().as_secs_f64(),
                    iteration: self.iterations,
                    best_cost: self.cost_best,
                    best_two_qubit: self.best.two_qubit_count(),
                });
            }
        }
    }

    fn into_result(self) -> GuoqResult {
        GuoqResult {
            circuit: self.best,
            cost: self.cost_best,
            epsilon: self.err_best,
            iterations: self.iterations,
            accepted: self.accepted,
            resynth_hits: self.resynth_hits,
            history: self.history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{GateCount, TwoQubitCount};
    use qcir::Gate;

    fn opts(iters: u64) -> GuoqOpts {
        GuoqOpts {
            budget: Budget::Iterations(iters),
            eps_total: 1e-6,
            seed: 7,
            ..Default::default()
        }
    }

    fn redundant_circuit() -> Circuit {
        // CX pairs and mergeable rotations sprinkled over 3 qubits.
        let mut c = Circuit::new(3);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.4), &[2]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.3), &[2]);
        c.push(Gate::X, &[0]);
        c.push(Gate::X, &[0]);
        c.push(Gate::Cx, &[1, 2]);
        c.push(Gate::Cx, &[1, 2]);
        c
    }

    #[test]
    fn shrinks_redundant_circuit() {
        let c = redundant_circuit();
        let g = Guoq::rewrite_only(GateSet::Nam, opts(400));
        let r = g.optimize(&c, &GateCount);
        assert!(r.cost <= 2.0, "cost {}", r.cost);
        assert_eq!(r.epsilon, 0.0);
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-6));
    }

    #[test]
    fn full_guoq_uses_resynthesis() {
        let c = redundant_circuit();
        let mut o = opts(300);
        o.resynth_probability = 0.25; // force frequent slow moves in test
        let g = Guoq::for_gate_set(GateSet::Nam, o);
        let r = g.optimize(&c, &TwoQubitCount);
        assert!(r.cost <= 1.0, "2q count {}", r.cost);
        assert!(r.epsilon <= 1e-6);
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-4));
    }

    #[test]
    fn error_budget_respected() {
        let c = redundant_circuit();
        let mut o = opts(200);
        o.eps_total = 0.0; // only exact moves allowed
        o.resynth_probability = 0.5;
        let g = Guoq::for_gate_set(GateSet::Nam, o);
        let r = g.optimize(&c, &TwoQubitCount);
        assert_eq!(r.epsilon, 0.0);
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-7));
    }

    #[test]
    fn deterministic_under_seed() {
        let c = redundant_circuit();
        let g1 = Guoq::rewrite_only(GateSet::Nam, opts(150));
        let g2 = Guoq::rewrite_only(GateSet::Nam, opts(150));
        let r1 = g1.optimize(&c, &GateCount);
        let r2 = g2.optimize(&c, &GateCount);
        assert_eq!(r1.cost, r2.cost);
        assert_eq!(r1.accepted, r2.accepted);
    }

    #[test]
    fn history_is_monotone() {
        let c = redundant_circuit();
        let mut o = opts(300);
        o.record_history = true;
        let g = Guoq::rewrite_only(GateSet::Nam, o);
        let r = g.optimize(&c, &GateCount);
        assert!(!r.history.is_empty());
        for w in r.history.windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost);
        }
    }

    #[test]
    fn async_mode_matches_semantics() {
        let c = redundant_circuit();
        let mut o = opts(400);
        o.async_resynth = true;
        o.resynth_probability = 0.3;
        let g = Guoq::for_gate_set(GateSet::Nam, o);
        let r = g.optimize(&c, &TwoQubitCount);
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-4));
        assert!(r.cost <= TwoQubitCount.cost(&c));
    }

    #[test]
    fn empty_circuit_survives() {
        let c = Circuit::new(2);
        let g = Guoq::for_gate_set(GateSet::Nam, opts(50));
        let r = g.optimize(&c, &GateCount);
        assert!(r.circuit.is_empty());
    }
}
