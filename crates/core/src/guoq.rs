//! The GUOQ algorithm (paper §5, Algorithm 1).
//!
//! A single-candidate stochastic search inspired by simulated annealing:
//! each iteration randomly picks a transformation (resynthesis with small
//! probability, otherwise a uniformly random rewrite rule), applies it to
//! a random subcircuit, and accepts cost-non-increasing moves always and
//! worsening moves with probability `exp(−t·cost'/cost)`. The sum of the
//! measured per-application errors never exceeds the global tolerance
//! `ε_f` (Thm. 4.2 / Thm. 5.3).
//!
//! # Iteration engines
//!
//! GUOQ is an *anytime* algorithm: solution quality is a direct function
//! of iterations per second (paper §5, Fig. 7). Three engines drive the
//! loop, all built on the same [`ShardDriver`](crate::driver::ShardDriver)
//! (one Metropolis/budget implementation — no per-engine copies):
//!
//! * [`Engine::Incremental`] (default) — the edit-based engine. The
//!   search owns one working circuit inside a
//!   [`SearchCtx`](crate::transform::SearchCtx); transformations probe
//!   it through the arena's stable gate ids and embedded per-wire links
//!   ([`Circuit::next_on_wire`](qcir::Circuit::next_on_wire) and
//!   friends), so no side DAG is built or maintained. Each candidate
//!   move is produced as a [`qcir::edit::Patch`] (a local edit: removed
//!   indices + replacement + splice position) by the transformation's
//!   [`apply_patch`](crate::transform::Transformation::apply_patch) path;
//!   its cost change comes from [`CostFn::delta`] in O(edit span).
//!   Rejected candidates are dropped without touching the circuit — or
//!   the heap (`tests/alloc_guard.rs` pins this to zero allocations);
//!   accepted ones are committed in place by
//!   [`Circuit::apply_patch`](qcir::Circuit::apply_patch), which
//!   retires/claims arena slots and relinks wires in O(edit-span), so
//!   per-iteration work scales with the edit, not the circuit. (The
//!   [`Circuit::revert_patch`](qcir::Circuit::revert_patch) inverse
//!   exists for apply-then-decide flows that must measure post-apply
//!   quantities.)
//! * [`Engine::Sharded`] — the parallel engine: the circuit is
//!   partitioned into contiguous shards
//!   ([`qcir::shard::ShardPlan`]), a `qpar` worker pool runs one
//!   incremental `ShardDriver` per shard, and a coordinator commits the
//!   optimized shards back into the master circuit each epoch, rotating
//!   shard boundaries between epochs (POPQC-style). See
//!   [`crate::sharded`].
//! * [`Engine::CloneRebuild`] — the original loop: each candidate clones
//!   the circuit, rebuilds the DAG and recomputes the full cost. Kept as
//!   the differential-testing baseline and for benchmarking
//!   (`benches/guoq_iter.rs` measures both serial engines).
//!
//! The *patch machinery* is differentially tested against the legacy
//! machinery (`tests/patch_differential.rs`): every single-match patch,
//! DAG splice, and cost delta is bit-identical to the corresponding
//! legacy rebuild. The engines are not trajectory-identical — an
//! incremental iteration lands one local edit while a legacy iteration
//! applies a whole pass, and a sharded run explores per-shard — so
//! per-iteration search effort differs; all are verified to preserve
//! semantics and report drift-free costs, and the benches compare them
//! under equal wall-clock, where quality per second is the meaningful
//! axis for an anytime search.

use crate::cost::CostFn;
use crate::driver::ShardDriver;
use crate::observe::{BestSnapshot, CancelToken, EventSink, OptEvent, OptRun};
use crate::transform::{
    Applied, CleanupPass, CommutationPass, FusionPass, ResynthPass, RulePass, Transformation,
};
use crossbeam_channel::bounded;
use qcache::QCache;
use qcir::{Circuit, GateSet};
use qsynth::{shared_resynthesizer, ResynthProfile};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which iteration engine drives the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Patch-based incremental engine: one working circuit probed via
    /// the arena's stable gate ids and embedded wire links, O(edit-span)
    /// slot retire/claim per accepted edit, and O(edit-span) cost
    /// deltas. Per-iteration work scales with the edit, not the
    /// circuit.
    #[default]
    Incremental,
    /// The original clone–rebuild–rescan loop: every candidate
    /// transformation materializes a fresh circuit, rebuilds the DAG and
    /// recomputes the full cost. Kept as the differential-testing and
    /// benchmarking baseline.
    CloneRebuild,
    /// Region-partitioned parallel search: `workers` threads each drive
    /// an incremental [`ShardDriver`] over a contiguous shard of the
    /// circuit; a coordinator commits shard results and rotates shard
    /// boundaries every epoch (see [`crate::sharded`]). Resynthesis
    /// runs synchronously inside each worker;
    /// [`GuoqOpts::async_resynth`] is ignored.
    Sharded {
        /// Worker threads in the shard pool (clamped to ≥ 1).
        workers: usize,
    },
}

/// Search budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Wall-clock limit (the paper's mode; GUOQ is an anytime algorithm).
    Time(Duration),
    /// Iteration-count limit (deterministic; used by tests).
    Iterations(u64),
}

impl Budget {
    /// True once the budget is spent: `iterations` performed since the
    /// search `started`.
    pub fn exhausted(&self, started: Instant, iterations: u64) -> bool {
        match *self {
            Budget::Time(limit) => started.elapsed() >= limit,
            Budget::Iterations(n) => iterations >= n,
        }
    }
}

/// Options for [`Guoq`].
#[derive(Debug, Clone)]
pub struct GuoqOpts {
    /// Search budget.
    pub budget: Budget,
    /// Global error tolerance `ε_f` (hard constraint, Def. 5.2).
    pub eps_total: f64,
    /// Acceptance temperature `t` (paper: 10 — near-greedy).
    pub temperature: f64,
    /// Probability of choosing resynthesis per iteration (paper: 1.5%).
    pub resynth_probability: f64,
    /// Maximum random-subcircuit width for resynthesis (paper: 3).
    pub max_subcircuit_qubits: usize,
    /// RNG seed.
    pub seed: u64,
    /// Record a best-cost-over-time trace (Fig. 7).
    pub record_history: bool,
    /// Run resynthesis on a worker thread, interleaving rewrites while it
    /// runs, and discard interim edits when a result is accepted (§5.3).
    /// Only meaningful for the serial engines; [`Engine::Sharded`]
    /// ignores it — its workers already run concurrently and perform
    /// resynthesis synchronously within their shard slices.
    pub async_resynth: bool,
    /// Iteration engine (patch-based incremental by default).
    pub engine: Engine,
    /// Probability that a transformation probe anchors inside a
    /// recently-edited window instead of sampling uniformly (accepted
    /// edits cluster, so re-probing near them raises the hit rate).
    /// `0.0` disables the bias; sampling is always uniform until the
    /// first edit is committed, and the value is clamped to ≤ 0.9 so
    /// uniform exploration never fully stops.
    pub dirty_window_bias: f64,
    /// Sharded engine: iterations each shard runs between commits (the
    /// epoch cadence — smaller commits more often, larger amortizes the
    /// commit/rotate overhead over more search).
    pub shard_slice_iterations: u64,
    /// Sharded engine: shards per worker per epoch (> 1 oversubscribes
    /// the task queue so fast workers steal from slow ones).
    pub shards_per_worker: usize,
    /// Cooperative cancellation: every engine checks the token between
    /// iterations (workers between shard-slice iterations, the
    /// coordinator between epochs) and returns its best-so-far result
    /// early once it is raised — the anytime contract under early exit.
    /// `None` (the default) disables the check. Cloning the options
    /// shares the token.
    pub cancel: Option<CancelToken>,
    /// Resynthesis memo cache, consulted before every numerical
    /// instantiation and populated after (see [`qcache::QCache`]).
    /// Sharing one handle across jobs/engines/workers is the point:
    /// repeated and similar windows skip straight to a verified cached
    /// replacement. `None` (the default) disables memoization. Cloning
    /// the options shares the cache.
    ///
    /// Cache hits consume no synthesizer RNG draws, so a cached run
    /// explores a different (equally sound, never-unsound) trajectory
    /// than an uncached run with the same seed; per-seed bit-for-bit
    /// reproducibility holds only for a fixed starting cache state
    /// (e.g. every run on a fresh cache, or none).
    pub cache: Option<Arc<QCache>>,
    /// Sharded engine: probability that a probe anchors inside a window
    /// of gates touching the shard's boundary qubits (freshly seeded
    /// after every boundary rotation), ahead of the dirty-window roll.
    /// Targets cross-shard cancellations right after each rotation.
    /// `0.0` (the default) disables the bias and the boundary-qubit
    /// bookkeeping; clamped to ≤ 0.9 so uniform exploration survives.
    /// Serial engines ignore it (they have no boundaries).
    pub boundary_bias: f64,
    /// POPQC-style local-optimality certification (see [`qcert`]): once
    /// the best cost plateaus for [`cert_plateau`](Self::cert_plateau)
    /// iterations, the search sweeps the circuit window by window,
    /// stamping each one that survives
    /// [`cert_probes`](Self::cert_probes) probe attempts without a
    /// strict improvement. Stamps are invalidated the moment an
    /// accepted patch overlaps them, certified spans are skipped by the
    /// anchor sampler, and when stamped coverage reaches
    /// [`cert_coverage`](Self::cert_coverage) the run terminates early
    /// — emitting [`OptEvent`]`::Certified` and attaching the full
    /// [`qcert::Certificate`] to [`GuoqResult::certificate`]. Off by
    /// default: certification changes the anchor-sampling trajectory,
    /// so per-seed reproducibility against uncertified runs does not
    /// hold. Honored by the serial [`Engine::Incremental`] path only;
    /// the sharded, async, and clone–rebuild paths ignore it.
    pub certify: bool,
    /// Certification window length, in gates.
    pub cert_window: usize,
    /// Probe attempts a window must survive to earn its stamp.
    pub cert_probes: u64,
    /// Iterations without a strict best-cost improvement before a
    /// certification sweep starts.
    pub cert_plateau: u64,
    /// Fraction of gates that must be covered by stamps for the run to
    /// terminate early.
    pub cert_coverage: f64,
    /// Prior certificate to seed the sweep with. An EDIT
    /// re-optimization rebases the finished job's certificate over the
    /// client's delta and passes it here: still-valid windows start
    /// certified, so the search concentrates on the dirtied spans.
    pub cert_prior: Option<qcert::Certificate>,
}

impl Default for GuoqOpts {
    fn default() -> Self {
        GuoqOpts {
            budget: Budget::Time(Duration::from_secs(10)),
            eps_total: 1e-8,
            temperature: 10.0,
            resynth_probability: 0.015,
            max_subcircuit_qubits: 3,
            seed: 0xCAFE,
            record_history: false,
            async_resynth: false,
            engine: Engine::Incremental,
            dirty_window_bias: 0.25,
            shard_slice_iterations: 4096,
            shards_per_worker: 2,
            cancel: None,
            cache: None,
            boundary_bias: 0.0,
            certify: false,
            cert_window: 24,
            cert_probes: 96,
            cert_plateau: 2048,
            cert_coverage: 0.9,
            cert_prior: None,
        }
    }
}

/// One sample of the best-so-far trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoryPoint {
    /// Seconds since the search started.
    pub seconds: f64,
    /// Iteration index.
    pub iteration: u64,
    /// Best cost so far.
    pub best_cost: f64,
    /// Two-qubit gate count of the best circuit so far.
    pub best_two_qubit: usize,
}

/// The result of a GUOQ run.
#[derive(Debug, Clone)]
pub struct GuoqResult {
    /// Best circuit found.
    pub circuit: Circuit,
    /// Its cost under the objective.
    pub cost: f64,
    /// Accumulated error bound of the best circuit (≤ `ε_f`).
    pub epsilon: f64,
    /// Iterations performed.
    pub iterations: u64,
    /// Accepted moves.
    pub accepted: u64,
    /// Resynthesis calls that returned a replacement.
    pub resynth_hits: u64,
    /// Resynthesis calls served from the memo cache (0 without
    /// [`GuoqOpts::cache`]).
    pub cache_hits: u64,
    /// Resynthesis calls that consulted the cache, missed, and fell
    /// back to fresh synthesis (0 without [`GuoqOpts::cache`]).
    pub cache_misses: u64,
    /// Best-so-far trace (empty unless `record_history`).
    pub history: Vec<HistoryPoint>,
    /// Per-worker scheduling statistics (empty unless the run used
    /// [`Engine::Sharded`]).
    pub worker_stats: Vec<qpar::WorkerStats>,
    /// The run's fast/slow time split and per-family accept tallies
    /// (see [`qtrace::Profile`]). Sharded runs merge every shard
    /// driver's profile, so `total_ns` is busy time, not wall time.
    /// Times are zero when [`qtrace::enabled`] was off at run start;
    /// the tallies always count.
    pub profile: qtrace::Profile,
    /// The local-optimality certificate: the surviving window stamps of
    /// a certification-enabled run ([`GuoqOpts::certify`]) that
    /// completed its sweep and terminated early. `None` for ordinary
    /// runs and for certify runs that exhausted their budget before
    /// covering the circuit.
    pub certificate: Option<qcert::Certificate>,
}

/// The GUOQ optimizer: an instantiation of the transformation framework
/// plus the Algorithm-1 search loop.
pub struct Guoq {
    fast: Vec<Box<dyn Transformation>>,
    slow: Vec<ResynthPass>,
    opts: GuoqOpts,
}

impl Guoq {
    /// The paper's full instantiation for a gate set: the QUESO-style rule
    /// corpus, the exact built-in passes, and resynthesis.
    ///
    /// The rule corpus and the resynthesizer come from the process-wide
    /// per-gate-set registries (`qrewrite::shared_rules_for`,
    /// [`qsynth::shared_resynthesizer`]): constructing a `Guoq` no
    /// longer rebuilds either, so per-job setup is cheap enough for a
    /// serving loop.
    pub fn for_gate_set(set: GateSet, opts: GuoqOpts) -> Self {
        let mut g = Self::rewrite_only(set, opts);
        g.slow.push(Self::resynth_pass(set, &g.opts));
        g
    }

    /// The shared-resynthesizer pass configured from `opts` (ε share,
    /// width cap, memo cache handle).
    fn resynth_pass(set: GateSet, opts: &GuoqOpts) -> ResynthPass {
        let eps = (opts.eps_total / 8.0).max(1e-12);
        let rs = shared_resynthesizer(set, ResynthProfile::Fast);
        ResynthPass::new(rs, opts.max_subcircuit_qubits, eps).with_cache(opts.cache.clone())
    }

    /// Ablation: rewrite rules (and exact passes) only — `GUOQ-REWRITE`.
    pub fn rewrite_only(set: GateSet, opts: GuoqOpts) -> Self {
        let mut fast: Vec<Box<dyn Transformation>> = Vec::new();
        for rule in qrewrite::shared_rules_for(set).iter() {
            fast.push(Box::new(RulePass::new(rule.clone())));
        }
        fast.push(Box::new(FusionPass::new(set)));
        fast.push(Box::new(CommutationPass));
        fast.push(Box::new(CleanupPass));
        Guoq {
            fast,
            slow: Vec::new(),
            opts,
        }
    }

    /// Ablation: resynthesis only — `GUOQ-RESYNTH`.
    pub fn resynth_only(set: GateSet, opts: GuoqOpts) -> Self {
        let slow = vec![Self::resynth_pass(set, &opts)];
        Guoq {
            fast: Vec::new(), // every iteration is a resynthesis attempt
            slow,
            opts,
        }
    }

    /// A custom instantiation from explicit transformation pools.
    pub fn new(fast: Vec<Box<dyn Transformation>>, slow: Vec<ResynthPass>, opts: GuoqOpts) -> Self {
        Guoq { fast, slow, opts }
    }

    /// The configured options.
    pub fn opts(&self) -> &GuoqOpts {
        &self.opts
    }

    /// The transformation pools (fast rewrites, slow resynthesis) —
    /// shared with the shard workers.
    pub(crate) fn pools(&self) -> (&[Box<dyn Transformation>], &[ResynthPass]) {
        (&self.fast, &self.slow)
    }

    /// Runs Algorithm 1 on `circuit` under `cost`, discarding the event
    /// stream. A thin shim over the event-sourced API (see
    /// [`Self::optimize_events`]); kept as the blocking convenience
    /// entry point.
    pub fn optimize(&self, circuit: &Circuit, cost: &dyn CostFn) -> GuoqResult {
        self.dispatch(circuit, cost, None)
    }

    /// The event-sourced run (see [`crate::observe`]): `on_event` is
    /// invoked synchronously on the search (or coordinator) thread with
    /// every [`OptEvent`] — `Started`, one `Improved` (with its
    /// [`qcir::delta::CircuitDelta`] from the previous best) per strict
    /// improvement from all four engines, `EpochCommitted` heartbeats
    /// from the sharded engine, `CacheStats`, and `Finished`. The
    /// second argument is the best-so-far circuit at the event, for
    /// sinks that serve full snapshots without replaying deltas.
    ///
    /// The returned result is identical to [`Self::optimize`] under the
    /// same options — observation never perturbs the search trajectory.
    pub fn optimize_events(
        &self,
        circuit: &Circuit,
        cost: &dyn CostFn,
        on_event: &mut dyn FnMut(&OptEvent, &Circuit),
    ) -> GuoqResult {
        on_event(
            &OptEvent::Started {
                cost: cost.cost(circuit),
                gates: circuit.len(),
            },
            circuit,
        );
        let result = self.dispatch(circuit, cost, Some(on_event));
        on_event(
            &OptEvent::CacheStats {
                hits: result.cache_hits,
                misses: result.cache_misses,
            },
            &result.circuit,
        );
        on_event(&OptEvent::Finished(result.clone()), &result.circuit);
        result
    }

    /// Spawns the search on a worker thread and returns an [`OptRun`]
    /// handle yielding owned [`OptEvent`]s — the event-sourced API for
    /// consumers that want to pull the stream instead of installing a
    /// sink. Delivery is lossless and consumer-paced (bounded channel);
    /// build the `Guoq` with [`GuoqOpts::cancel`] to make the handle's
    /// [`OptRun::cancel`] effective.
    pub fn run(self: &Arc<Self>, circuit: &Circuit, cost: impl CostFn + 'static) -> OptRun {
        /// Sized for bursty improvement streams; a consumer further
        /// behind than this backpressures the search thread.
        const EVENT_CHANNEL_CAP: usize = 1024;
        let (tx, rx) = bounded::<OptEvent>(EVENT_CHANNEL_CAP);
        let cancel = self.opts.cancel.clone();
        let guoq = Arc::clone(self);
        let circuit = circuit.clone();
        let handle = std::thread::spawn(move || {
            let mut receiver_gone = false;
            guoq.optimize_events(&circuit, &cost, &mut |ev, _best| {
                if !receiver_gone && tx.send(ev.clone()).is_err() {
                    // Handle dropped: discard further events, finish the
                    // search (promptly if its token was raised).
                    receiver_gone = true;
                }
            });
        });
        OptRun::new(rx, cancel, handle)
    }

    /// **Legacy shim** over the event stream: `on_best` is invoked with
    /// a borrowed [`crate::observe::BestSnapshot`] for every
    /// [`OptEvent::Improved`]. Kept so pre-event-stream callers keep
    /// compiling; new consumers should use [`Self::optimize_events`] or
    /// [`Self::run`] and take the typed events (deltas included). The
    /// final result is identical to [`Self::optimize`] under the same
    /// options — observation never perturbs the search trajectory.
    pub fn optimize_observed(
        &self,
        circuit: &Circuit,
        cost: &dyn CostFn,
        on_best: &mut dyn FnMut(&BestSnapshot<'_>),
    ) -> GuoqResult {
        let mut adapter = |ev: &OptEvent, best: &Circuit| {
            if let OptEvent::Improved {
                cost,
                epsilon,
                iterations,
                seconds,
                ..
            } = *ev
            {
                on_best(&BestSnapshot {
                    circuit: best,
                    cost,
                    epsilon,
                    iterations,
                    seconds,
                });
            }
        };
        self.dispatch(circuit, cost, Some(&mut adapter))
    }

    /// Sum of the slow passes' (cache hit, cache miss) counters.
    fn cache_counters(&self) -> (u64, u64) {
        self.slow
            .iter()
            .map(|p| p.cache_counters())
            .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
    }

    fn dispatch<'a>(
        &'a self,
        circuit: &Circuit,
        cost: &'a dyn CostFn,
        obs: Option<&'a mut EventSink<'a>>,
    ) -> GuoqResult {
        // The pass counters are cumulative over the Guoq instance (and
        // shared with async worker clones); report this run's delta.
        let (hits0, misses0) = self.cache_counters();
        let has_async = self.opts.async_resynth && !self.slow.is_empty();
        let mut result = match self.opts.engine {
            Engine::Sharded { workers } => self.optimize_sharded(circuit, cost, workers, obs),
            Engine::Incremental if has_async => self.optimize_async(circuit, cost, true, obs),
            Engine::Incremental => self.optimize_serial(circuit, cost, true, obs),
            Engine::CloneRebuild if has_async => self.optimize_async(circuit, cost, false, obs),
            Engine::CloneRebuild => self.optimize_serial(circuit, cost, false, obs),
        };
        let (hits1, misses1) = self.cache_counters();
        result.cache_hits = hits1 - hits0;
        result.cache_misses = misses1 - misses0;
        result
    }

    /// The serial driver for both single-thread engines: one
    /// [`ShardDriver`] over the whole circuit, stepped until the budget
    /// runs out. `use_patches` selects the incremental patch path
    /// ([`Engine::Incremental`]) or the materializing clone–rebuild
    /// baseline ([`Engine::CloneRebuild`]).
    fn optimize_serial<'a>(
        &'a self,
        circuit: &Circuit,
        cost: &'a dyn CostFn,
        use_patches: bool,
        obs: Option<&'a mut EventSink<'a>>,
    ) -> GuoqResult {
        let mut rng = SmallRng::seed_from_u64(self.opts.seed);
        let mut driver = ShardDriver::new(circuit.clone(), cost, &self.opts, Instant::now())
            .with_use_patches(use_patches)
            .with_certification(&self.opts)
            .with_event_sink(obs);
        driver.run(&self.fast, &self.slow, &mut rng, self.opts.budget, None);
        driver.finish()
    }

    /// §5.3 "Applying resynthesis asynchronously": fast rewrites run
    /// against the working circuit while resynthesis works on a snapshot
    /// clone in a worker thread. An accepted resynthesis result replaces
    /// the whole working circuit (discarding interim rewrite edits, as
    /// §5.3 prescribes) — the one remaining O(circuit) event in the
    /// incremental flavour; it happens at the resynthesis rate, not the
    /// iteration rate.
    fn optimize_async<'a>(
        &'a self,
        circuit: &Circuit,
        cost: &'a dyn CostFn,
        use_patches: bool,
        obs: Option<&'a mut EventSink<'a>>,
    ) -> GuoqResult {
        use crossbeam_channel::TryRecvError;

        type Req = (u64, Circuit, qcir::Region, u64);
        type Resp = (u64, Option<Applied>);

        let mut rng = SmallRng::seed_from_u64(self.opts.seed);
        let started = Instant::now();
        let mut driver = ShardDriver::new(circuit.clone(), cost, &self.opts, started)
            .with_use_patches(use_patches)
            .with_event_sink(obs);

        let (req_tx, req_rx) = bounded::<Req>(1);
        let (resp_tx, resp_rx) = bounded::<Resp>(1);
        let worker_pass = self.slow[0].clone();
        // The slow span runs on the worker thread, outside the driver's
        // `step` timing — measure it there and credit the driver after
        // the join. It overlaps the interleaved rewrites by design, so
        // the derived fast time is "main-thread time not accounted to
        // resynthesis" (clamped at zero in the profile).
        let slow_ns = Arc::new(qtrace::Counter::new());
        let worker_slow_ns = Arc::clone(&slow_ns);
        let instrument = qtrace::enabled();
        let worker = std::thread::spawn(move || {
            while let Ok((id, snapshot, region, seed)) = req_rx.recv() {
                let mut wrng = SmallRng::seed_from_u64(seed);
                let t0 = instrument.then(Instant::now);
                let applied = worker_pass.resynthesize_region(&snapshot, &region, &mut wrng);
                if let Some(t0) = t0 {
                    worker_slow_ns.add(t0.elapsed().as_nanos() as u64);
                }
                if resp_tx.send((id, applied)).is_err() {
                    break;
                }
            }
        });

        let mut in_flight = false;
        let mut next_id = 0u64;
        while !self.opts.budget.exhausted(started, driver.iterations()) && !driver.is_cancelled() {
            driver.begin_iteration();
            // Drain any finished resynthesis first.
            match resp_rx.try_recv() {
                Ok((_id, applied)) => {
                    in_flight = false;
                    if let Some(applied) = applied {
                        // The candidate replaces the snapshot; accepting
                        // it discards every interim rewrite (§5.3).
                        driver.offer_resynth(applied, &mut rng);
                    }
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => break,
            }
            let want_slow = !in_flight && rng.random::<f64>() < self.opts.resynth_probability;
            if want_slow {
                if !driver.can_afford(self.slow[0].epsilon()) {
                    continue;
                }
                if let Some(region) = self.slow[0].pick_region(driver.circuit(), &mut rng) {
                    next_id += 1;
                    let seed = rng.random::<u64>();
                    if req_tx
                        .send((next_id, driver.circuit().clone(), region, seed))
                        .is_ok()
                    {
                        in_flight = true;
                    }
                }
            } else if !self.fast.is_empty() {
                driver.fast_move(&self.fast, &mut rng);
            }
        }
        drop(req_tx);
        // Drain a possibly in-flight result so the worker can exit.
        if in_flight {
            if let Ok((_id, Some(applied))) = resp_rx.recv() {
                driver.offer_resynth(applied, &mut rng);
            }
        }
        drop(resp_rx);
        let _ = worker.join();
        driver.add_slow_ns(slow_ns.get());
        driver.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{GateCount, TwoQubitCount};
    use qcir::Gate;

    fn opts(iters: u64) -> GuoqOpts {
        GuoqOpts {
            budget: Budget::Iterations(iters),
            eps_total: 1e-6,
            seed: 7,
            ..Default::default()
        }
    }

    fn redundant_circuit() -> Circuit {
        // CX pairs and mergeable rotations sprinkled over 3 qubits.
        let mut c = Circuit::new(3);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.4), &[2]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.3), &[2]);
        c.push(Gate::X, &[0]);
        c.push(Gate::X, &[0]);
        c.push(Gate::Cx, &[1, 2]);
        c.push(Gate::Cx, &[1, 2]);
        c
    }

    #[test]
    fn shrinks_redundant_circuit() {
        let c = redundant_circuit();
        let g = Guoq::rewrite_only(GateSet::Nam, opts(400));
        let r = g.optimize(&c, &GateCount);
        assert!(r.cost <= 2.0, "cost {}", r.cost);
        assert_eq!(r.epsilon, 0.0);
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-6));
    }

    #[test]
    fn full_guoq_uses_resynthesis() {
        let c = redundant_circuit();
        let mut o = opts(300);
        o.resynth_probability = 0.25; // force frequent slow moves in test
        let g = Guoq::for_gate_set(GateSet::Nam, o);
        let r = g.optimize(&c, &TwoQubitCount);
        assert!(r.cost <= 1.0, "2q count {}", r.cost);
        assert!(r.epsilon <= 1e-6);
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-4));
    }

    #[test]
    fn error_budget_respected() {
        let c = redundant_circuit();
        let mut o = opts(200);
        o.eps_total = 0.0; // only exact moves allowed
        o.resynth_probability = 0.5;
        let g = Guoq::for_gate_set(GateSet::Nam, o);
        let r = g.optimize(&c, &TwoQubitCount);
        assert_eq!(r.epsilon, 0.0);
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-7));
    }

    #[test]
    fn deterministic_under_seed() {
        let c = redundant_circuit();
        let g1 = Guoq::rewrite_only(GateSet::Nam, opts(150));
        let g2 = Guoq::rewrite_only(GateSet::Nam, opts(150));
        let r1 = g1.optimize(&c, &GateCount);
        let r2 = g2.optimize(&c, &GateCount);
        assert_eq!(r1.cost, r2.cost);
        assert_eq!(r1.accepted, r2.accepted);
    }

    #[test]
    fn history_is_monotone() {
        let c = redundant_circuit();
        let mut o = opts(300);
        o.record_history = true;
        let g = Guoq::rewrite_only(GateSet::Nam, o);
        let r = g.optimize(&c, &GateCount);
        assert!(!r.history.is_empty());
        for w in r.history.windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost);
        }
    }

    #[test]
    fn async_mode_matches_semantics() {
        let c = redundant_circuit();
        let mut o = opts(400);
        o.async_resynth = true;
        o.resynth_probability = 0.3;
        let g = Guoq::for_gate_set(GateSet::Nam, o);
        let r = g.optimize(&c, &TwoQubitCount);
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-4));
        assert!(r.cost <= TwoQubitCount.cost(&c));
    }

    #[test]
    fn empty_circuit_survives() {
        let c = Circuit::new(2);
        let g = Guoq::for_gate_set(GateSet::Nam, opts(50));
        let r = g.optimize(&c, &GateCount);
        assert!(r.circuit.is_empty());
    }

    /// Replays every `Improved` delta onto `input`, asserting stream
    /// shape (Started first, strictly decreasing costs, CacheStats then
    /// Finished last) and returning the reconstructed final best.
    fn replay_events(input: &Circuit, events: &[OptEvent]) -> (Circuit, f64) {
        assert!(
            matches!(events.first(), Some(OptEvent::Started { .. })),
            "stream must open with Started"
        );
        assert!(
            matches!(events.last(), Some(OptEvent::Finished(_))),
            "stream must close with Finished"
        );
        let mut current = input.clone();
        let mut last_cost = f64::INFINITY;
        for ev in events {
            if let OptEvent::Improved { delta, cost, .. } = ev {
                assert!(*cost < last_cost, "non-monotone Improved stream");
                last_cost = *cost;
                // The wire round-trip is part of the contract.
                let decoded = qcir::delta::CircuitDelta::decode(&delta.encode()).unwrap();
                decoded
                    .apply(&mut current)
                    .expect("delta applies to prior best");
            }
        }
        (current, last_cost)
    }

    fn assert_event_stream_replays(engine: Engine, iters: u64) {
        let c = redundant_circuit();
        let mut o = opts(iters);
        o.engine = engine;
        o.shard_slice_iterations = 128;
        let direct = Guoq::rewrite_only(GateSet::Nam, o.clone()).optimize(&c, &GateCount);
        let mut events = Vec::new();
        let observed =
            Guoq::rewrite_only(GateSet::Nam, o)
                .optimize_events(&c, &GateCount, &mut |ev, _| events.push(ev.clone()));
        assert_eq!(
            observed.circuit, direct.circuit,
            "events perturbed the search"
        );
        assert_eq!(observed.cost, direct.cost);
        let (replayed, last_cost) = replay_events(&c, &events);
        assert_eq!(
            replayed, observed.circuit,
            "replaying deltas must reconstruct the final best bit for bit"
        );
        assert_eq!(last_cost, observed.cost);
        match events.last() {
            Some(OptEvent::Finished(r)) => {
                assert_eq!(r.circuit, observed.circuit);
                assert_eq!(r.iterations, observed.iterations);
            }
            other => panic!("unexpected terminal event {other:?}"),
        }
    }

    #[test]
    fn event_stream_replays_incremental_engine() {
        assert_event_stream_replays(Engine::Incremental, 400);
    }

    #[test]
    fn event_stream_replays_clone_rebuild_engine() {
        assert_event_stream_replays(Engine::CloneRebuild, 400);
    }

    #[test]
    fn event_stream_replays_sharded_engine_with_epoch_heartbeats() {
        let mut c = Circuit::new(4);
        for i in 0..40u32 {
            let a = (i % 3) as qcir::Qubit;
            c.push(Gate::Cx, &[a, a + 1]);
            c.push(Gate::Cx, &[a, a + 1]);
        }
        let o = GuoqOpts {
            budget: Budget::Iterations(4000),
            engine: Engine::Sharded { workers: 2 },
            shard_slice_iterations: 128,
            seed: 3,
            ..Default::default()
        };
        let mut events = Vec::new();
        let r =
            Guoq::rewrite_only(GateSet::Nam, o)
                .optimize_events(&c, &GateCount, &mut |ev, _| events.push(ev.clone()));
        let (replayed, _) = replay_events(&c, &events);
        assert_eq!(replayed, r.circuit);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, OptEvent::EpochCommitted { .. })),
            "sharded runs must heartbeat their commits"
        );
    }

    #[test]
    fn event_stream_replays_async_resynth_engine() {
        let c = redundant_circuit();
        let mut o = opts(400);
        o.async_resynth = true;
        o.resynth_probability = 0.3;
        let mut events = Vec::new();
        let r = Guoq::for_gate_set(GateSet::Nam, o).optimize_events(
            &c,
            &TwoQubitCount,
            &mut |ev, _| events.push(ev.clone()),
        );
        let (replayed, _) = replay_events(&c, &events);
        assert_eq!(
            replayed, r.circuit,
            "async full-circuit accepts must replay"
        );
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-4));
    }

    #[test]
    fn opt_run_handle_streams_and_waits() {
        let c = redundant_circuit();
        let g = std::sync::Arc::new(Guoq::rewrite_only(GateSet::Nam, opts(400)));
        let direct = g.optimize(&c, &GateCount);
        let events: Vec<OptEvent> = g.run(&c, GateCount).collect();
        let (replayed, _) = replay_events(&c, &events);
        assert_eq!(replayed, direct.circuit);
        // wait() returns the final result.
        let result = g.run(&c, GateCount).wait().expect("search completes");
        assert_eq!(result.circuit, direct.circuit);
        assert_eq!(result.cost, direct.cost);
    }

    #[test]
    fn opt_run_cancel_is_effective_with_a_token() {
        let c = redundant_circuit();
        let token = crate::CancelToken::new();
        let mut o = opts(u64::MAX);
        o.cancel = Some(token);
        let g = std::sync::Arc::new(Guoq::rewrite_only(GateSet::Nam, o));
        let mut run = g.run(&c, GateCount);
        assert!(run.cancel(), "token-backed run must accept cancel");
        let mut saw_finished = false;
        while let Some(ev) = run.next_event() {
            if let OptEvent::Finished(r) = ev {
                saw_finished = true;
                assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-6));
            }
        }
        assert!(saw_finished);
    }

    #[test]
    fn observer_streams_strict_improvements_without_perturbing_search() {
        let c = redundant_circuit();
        let direct = Guoq::rewrite_only(GateSet::Nam, opts(400)).optimize(&c, &GateCount);

        let mut costs: Vec<f64> = Vec::new();
        let mut last: Option<Circuit> = None;
        let observed = Guoq::rewrite_only(GateSet::Nam, opts(400)).optimize_observed(
            &c,
            &GateCount,
            &mut |snap| {
                costs.push(snap.cost);
                last = Some(snap.circuit.clone());
            },
        );

        // Observation never changes the trajectory…
        assert_eq!(observed.circuit, direct.circuit);
        assert_eq!(observed.cost, direct.cost);
        // …the snapshot sequence is strictly decreasing…
        assert!(
            !costs.is_empty(),
            "a shrinking run must improve at least once"
        );
        for w in costs.windows(2) {
            assert!(w[1] < w[0], "non-monotone snapshots: {costs:?}");
        }
        // …and the last snapshot is the final best.
        assert_eq!(*costs.last().unwrap(), observed.cost);
        assert_eq!(last.unwrap(), observed.circuit);
    }

    #[test]
    fn observer_fires_for_sharded_commits() {
        let mut c = Circuit::new(4);
        for i in 0..40u32 {
            let a = (i % 3) as qcir::Qubit;
            c.push(Gate::Cx, &[a, a + 1]);
            c.push(Gate::Cx, &[a, a + 1]);
        }
        let o = GuoqOpts {
            budget: Budget::Iterations(4000),
            engine: Engine::Sharded { workers: 2 },
            shard_slice_iterations: 128,
            seed: 3,
            ..Default::default()
        };
        let mut costs: Vec<f64> = Vec::new();
        let r = Guoq::rewrite_only(GateSet::Nam, o)
            .optimize_observed(&c, &GateCount, &mut |s| costs.push(s.cost));
        assert!(!costs.is_empty());
        for w in costs.windows(2) {
            assert!(w[1] < w[0]);
        }
        assert_eq!(*costs.last().unwrap(), r.cost);
    }

    #[test]
    fn cancelled_serial_run_stops_early_with_valid_best() {
        let c = redundant_circuit();
        let token = crate::CancelToken::new();
        token.cancel(); // cancel before the first iteration
        let mut o = opts(1_000_000);
        o.cancel = Some(token);
        let g = Guoq::rewrite_only(GateSet::Nam, o);
        let r = g.optimize(&c, &GateCount);
        assert_eq!(r.iterations, 0, "pre-cancelled run must do no work");
        assert_eq!(r.circuit, c);
    }

    #[test]
    fn cancel_mid_run_returns_best_so_far() {
        let c = redundant_circuit();
        let token = crate::CancelToken::new();
        let mut o = opts(u64::MAX); // unbounded: only the token stops it
        o.cancel = Some(token.clone());
        let g = Guoq::rewrite_only(GateSet::Nam, o);
        let t = token.clone();
        // Cancel from the observer after the first improvement: the run
        // must wind down promptly instead of spinning forever.
        let r = g.optimize_observed(&c, &GateCount, &mut move |_| t.cancel());
        assert!(r.iterations > 0);
        assert!(r.cost < c.len() as f64);
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-6));
    }

    #[test]
    fn cached_runs_stay_sound_and_repeat_runs_hit() {
        let c = redundant_circuit();
        let cache = std::sync::Arc::new(QCache::with_gate_budget(4096));
        let mut o = opts(300);
        o.resynth_probability = 0.3;
        o.cache = Some(cache.clone());
        let first = Guoq::for_gate_set(GateSet::Nam, o.clone()).optimize(&c, &TwoQubitCount);
        assert!(qsim::circuits_equivalent(&c, &first.circuit, 1e-4));
        assert!(first.cost <= TwoQubitCount.cost(&c));
        assert!(
            first.cache_misses > 0,
            "a fresh cache must be populated: {first:?}"
        );
        // Consults (hits + misses) cover at least every replacement.
        assert!(first.cache_hits + first.cache_misses >= first.resynth_hits);
        // Same job again through the same cache: the identical windows
        // come back and the slow path is served from memory.
        let second = Guoq::for_gate_set(GateSet::Nam, o).optimize(&c, &TwoQubitCount);
        assert!(second.cache_hits > 0, "repeat run must hit: {second:?}");
        assert!(qsim::circuits_equivalent(&c, &second.circuit, 1e-4));
        assert!(second.cost <= TwoQubitCount.cost(&c));
        let stats = cache.stats();
        assert!(stats.hits + stats.negative_hits >= second.cache_hits);
    }

    #[test]
    fn uncached_runs_report_zero_cache_traffic() {
        let c = redundant_circuit();
        let mut o = opts(200);
        o.resynth_probability = 0.3;
        let r = Guoq::for_gate_set(GateSet::Nam, o).optimize(&c, &TwoQubitCount);
        assert_eq!((r.cache_hits, r.cache_misses), (0, 0));
    }

    #[test]
    fn certification_terminates_plateaued_run_early() {
        let c = redundant_circuit();
        let mut o = opts(2_000_000);
        o.certify = true;
        o.cert_plateau = 500;
        o.cert_probes = 32;
        let mut events = Vec::new();
        let r =
            Guoq::rewrite_only(GateSet::Nam, o)
                .optimize_events(&c, &GateCount, &mut |ev, _| events.push(ev.clone()));
        assert!(
            r.iterations < 2_000_000,
            "a plateaued run must stop early, ran {}",
            r.iterations
        );
        let cert = r.certificate.as_ref().expect("certificate attached");
        assert_eq!(cert.total_gates, r.circuit.len());
        assert!(cert.coverage() >= 0.9, "coverage {}", cert.coverage());
        assert!(
            events
                .iter()
                .any(|e| matches!(e, OptEvent::Certified { .. })),
            "stream must carry the Certified event"
        );
        // Replay the deltas (costs non-increasing — the certification
        // pin may repeat the best cost once): the final best must still
        // reconstruct bit for bit.
        let mut current = c.clone();
        let mut last_cost = f64::INFINITY;
        for ev in &events {
            if let OptEvent::Improved { delta, cost, .. } = ev {
                assert!(*cost <= last_cost, "cost rose in the stream");
                last_cost = *cost;
                delta.apply(&mut current).expect("delta applies");
            }
        }
        assert_eq!(current, r.circuit);
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-6));
    }

    #[test]
    fn certification_without_observer_matches_and_certifies() {
        let c = redundant_circuit();
        let mut o = opts(2_000_000);
        o.certify = true;
        o.cert_plateau = 500;
        o.cert_probes = 32;
        let r = Guoq::rewrite_only(GateSet::Nam, o).optimize(&c, &GateCount);
        assert!(r.iterations < 2_000_000);
        let cert = r.certificate.expect("journal-mode runs certify too");
        assert_eq!(cert.total_gates, r.circuit.len());
        assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-6));
    }

    #[test]
    fn certification_prior_seeds_are_honored() {
        // A full-coverage prior over an already-optimal circuit lets the
        // run certify at the first plateau check without re-probing.
        let c = redundant_circuit();
        let mut o = opts(2_000_000);
        o.certify = true;
        o.cert_plateau = 100;
        let base = Guoq::rewrite_only(GateSet::Nam, o.clone()).optimize(&c, &GateCount);
        let cert = base.certificate.clone().expect("base run certifies");
        let mut o2 = o;
        o2.cert_prior = Some(cert);
        let again = Guoq::rewrite_only(GateSet::Nam, o2).optimize(&base.circuit, &GateCount);
        assert!(again.certificate.is_some());
        assert!(
            again.iterations <= base.iterations,
            "a seeded re-run must not probe more than the cold run ({} > {})",
            again.iterations,
            base.iterations
        );
    }

    #[test]
    fn dirty_window_bias_is_behavior_preserving() {
        // The bias changes the probe distribution, never soundness: with
        // the knob at its extremes the search still preserves semantics
        // and never worsens cost.
        let c = redundant_circuit();
        for bias in [0.0, 0.9] {
            let mut o = opts(400);
            o.dirty_window_bias = bias;
            let g = Guoq::rewrite_only(GateSet::Nam, o);
            let r = g.optimize(&c, &GateCount);
            assert!(r.cost <= c.len() as f64, "bias {bias}");
            assert!(
                qsim::circuits_equivalent(&c, &r.circuit, 1e-6),
                "bias {bias}"
            );
        }
    }
}
