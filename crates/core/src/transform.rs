//! The unified transformation abstraction (paper §4).
//!
//! A [`Transformation`] is a closed-box function `τ_ε : C → C` returning a
//! circuit `ε`-equivalent to its input (Def. 4.1). Rewrite-rule passes and
//! built-in exact passes carry `ε = 0`; resynthesis declares a per-call
//! bound and reports the *measured* distance, which the optimizer charges
//! against the global budget (Thm. 4.2: errors add up).

use qcir::{Circuit, GateSet, Region};
use qrewrite::{apply_rule_pass, fusion, Rule};
use qsynth::Resynthesizer;
use rand::rngs::SmallRng;
use rand::Rng;

/// The result of a successful transformation application.
#[derive(Debug, Clone)]
pub struct Applied {
    /// The transformed circuit.
    pub circuit: Circuit,
    /// Measured approximation error introduced by this application
    /// (0 for exact transformations; never exceeds the declared bound).
    pub epsilon: f64,
}

/// A closed-box `ε`-bounded circuit transformation.
pub trait Transformation: Send + Sync {
    /// Display name.
    fn name(&self) -> &str;

    /// Declared worst-case error per application (`ε` of `τ_ε`).
    fn epsilon(&self) -> f64;

    /// Attempts to apply the transformation at a random location.
    ///
    /// Returns `None` when the transformation does not fire (no match, or
    /// synthesis failed within its bound).
    fn apply(&self, circuit: &Circuit, rng: &mut SmallRng) -> Option<Applied>;
}

/// A full rewrite pass of one rule from a random anchor (paper §5.3).
#[derive(Debug, Clone)]
pub struct RulePass {
    rule: Rule,
}

impl RulePass {
    /// Wraps a rewrite rule as a transformation.
    pub fn new(rule: Rule) -> Self {
        RulePass { rule }
    }

    /// The underlying rule.
    pub fn rule(&self) -> &Rule {
        &self.rule
    }
}

impl Transformation for RulePass {
    fn name(&self) -> &str {
        self.rule.name()
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn apply(&self, circuit: &Circuit, rng: &mut SmallRng) -> Option<Applied> {
        if circuit.is_empty() {
            return None;
        }
        let start = rng.random_range(0..circuit.len());
        let (out, _count) = apply_rule_pass(circuit, &self.rule, start)?;
        Some(Applied {
            circuit: out,
            epsilon: 0.0,
        })
    }
}

/// The exact 1q-run fusion pass as a transformation.
#[derive(Debug, Clone, Copy)]
pub struct FusionPass {
    set: GateSet,
}

impl FusionPass {
    /// Creates the pass for a target gate set.
    pub fn new(set: GateSet) -> Self {
        FusionPass { set }
    }
}

impl Transformation for FusionPass {
    fn name(&self) -> &str {
        "1q-fusion"
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn apply(&self, circuit: &Circuit, _rng: &mut SmallRng) -> Option<Applied> {
        let out = fusion::fuse_1q_runs(circuit, self.set)?;
        Some(Applied {
            circuit: out,
            epsilon: 0.0,
        })
    }
}

/// Identity-gate elimination as a transformation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CleanupPass;

impl Transformation for CleanupPass {
    fn name(&self) -> &str {
        "cleanup"
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn apply(&self, circuit: &Circuit, _rng: &mut SmallRng) -> Option<Applied> {
        let out = fusion::remove_identities(circuit, 1e-9)?;
        Some(Applied {
            circuit: out,
            epsilon: 0.0,
        })
    }
}

/// Commutation-aware cancellation as a transformation (one sweep).
#[derive(Debug, Clone, Copy, Default)]
pub struct CommutationPass;

impl Transformation for CommutationPass {
    fn name(&self) -> &str {
        "commutative-cancellation"
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn apply(&self, circuit: &Circuit, _rng: &mut SmallRng) -> Option<Applied> {
        let out = qrewrite::commutation::commutative_cancellation(circuit)?;
        Some(Applied {
            circuit: out,
            epsilon: 0.0,
        })
    }
}

/// Resynthesis of a random ≤`max_qubits` subcircuit (paper §5.3: grow a
/// region greedily from a random anchor, resynthesize its unitary).
#[derive(Debug, Clone)]
pub struct ResynthPass {
    rs: Resynthesizer,
    max_qubits: usize,
    eps: f64,
}

impl ResynthPass {
    /// Creates a resynthesis transformation with a per-call error bound.
    pub fn new(rs: Resynthesizer, max_qubits: usize, eps: f64) -> Self {
        ResynthPass {
            rs,
            max_qubits: max_qubits.min(qsynth::MAX_RESYNTH_QUBITS),
            eps,
        }
    }

    /// Chooses the random region this pass would act on (exposed for the
    /// async driver, which needs the region and snapshot separately).
    pub fn pick_region(&self, circuit: &Circuit, rng: &mut SmallRng) -> Option<Region> {
        if circuit.is_empty() {
            return None;
        }
        let anchor = rng.random_range(0..circuit.len());
        let region = Region::grow(circuit, anchor, self.max_qubits)?;
        // A region with fewer than 2 member gates cannot shrink.
        if region.member_indices(circuit).len() < 2 {
            return None;
        }
        Some(region)
    }

    /// Resynthesizes the region's subcircuit; returns the replacement.
    pub fn resynthesize_region(
        &self,
        circuit: &Circuit,
        region: &Region,
        rng: &mut SmallRng,
    ) -> Option<Applied> {
        let sub = region.extract(circuit);
        let out = self.rs.resynthesize(&sub, self.eps, rng)?;
        Some(Applied {
            circuit: region.replace(circuit, &out.circuit),
            epsilon: out.epsilon,
        })
    }
}

impl Transformation for ResynthPass {
    fn name(&self) -> &str {
        "resynthesis"
    }

    fn epsilon(&self) -> f64 {
        self.eps
    }

    fn apply(&self, circuit: &Circuit, rng: &mut SmallRng) -> Option<Applied> {
        let region = self.pick_region(circuit, rng)?;
        self.resynthesize_region(circuit, &region, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Gate;
    use rand::SeedableRng;

    #[test]
    fn rule_pass_fires_and_is_exact() {
        let rules = qrewrite::rules_for(GateSet::Nam);
        let cancel = rules
            .iter()
            .find(|r| r.name() == "cx-cancel")
            .unwrap()
            .clone();
        let t = RulePass::new(cancel);
        assert_eq!(t.epsilon(), 0.0);
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[0, 1]);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = t.apply(&c, &mut rng).unwrap();
        assert!(out.circuit.is_empty());
        assert_eq!(out.epsilon, 0.0);
    }

    #[test]
    fn resynth_pass_shrinks_mergeable_rotations() {
        let rs = Resynthesizer::new(GateSet::IbmEagle);
        let t = ResynthPass::new(rs, 3, 1e-6);
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0.3), &[0]);
        c.push(Gate::Rz(0.4), &[0]);
        c.push(Gate::Rz(0.5), &[0]);
        let mut rng = SmallRng::seed_from_u64(2);
        let out = t.apply(&c, &mut rng).unwrap();
        assert!(out.circuit.len() < c.len());
        assert!(out.epsilon <= 1e-6);
        assert!(qsim::circuits_equivalent(&c, &out.circuit, 1e-5));
    }

    #[test]
    fn cleanup_pass_noop_on_clean_circuit() {
        let mut c = Circuit::new(1);
        c.push(Gate::H, &[0]);
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(CleanupPass.apply(&c, &mut rng).is_none());
    }
}
