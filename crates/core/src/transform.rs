//! The unified transformation abstraction (paper §4).
//!
//! A [`Transformation`] is a closed-box function `τ_ε : C → C` returning a
//! circuit `ε`-equivalent to its input (Def. 4.1). Rewrite-rule passes and
//! built-in exact passes carry `ε = 0`; resynthesis declares a per-call
//! bound and reports the *measured* distance, which the optimizer charges
//! against the global budget (Thm. 4.2: errors add up).

use qcache::QCache;
use qcir::edit::Patch;
use qcir::{Circuit, GateSet, Region};
use qrewrite::{apply_rule_pass, fusion, MatchScratch, Rule};
use qsynth::{CacheOutcome, Resynthesizer};
use qtrace::{Counter, Family};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// The result of a successful transformation application.
#[derive(Debug, Clone)]
pub struct Applied {
    /// The transformed circuit.
    pub circuit: Circuit,
    /// Measured approximation error introduced by this application
    /// (0 for exact transformations; never exceeds the declared bound).
    pub epsilon: f64,
}

/// A patch produced by a transformation, ready to be costed and — if the
/// search accepts it — committed to the [`SearchCtx`].
#[derive(Debug, Clone)]
pub struct PatchApplied {
    /// The local edit, expressed against the context's current circuit.
    pub patch: Patch,
    /// Measured approximation error this edit would introduce.
    pub epsilon: f64,
}

/// Number of anchors a rule pass probes per iteration in the incremental
/// engine. Probes are O(pattern) each (most fail at the first gate-kind
/// check), so a handful keeps per-iteration work constant while retaining
/// a high hit rate on small circuits.
const RULE_ANCHOR_TRIES: usize = 16;

/// Anchor probes per iteration for the run-fusion pass.
const FUSION_ANCHOR_TRIES: usize = 8;

/// Anchor probes per iteration for identity cleanup.
const CLEANUP_ANCHOR_TRIES: usize = 8;

/// Number of recently-edited windows a [`SearchCtx`] remembers for
/// dirty-window anchor sampling.
const DIRTY_CAPACITY: usize = 8;

/// Slack added on each side of a recorded dirty window: an accepted edit
/// tends to open follow-up opportunities on its immediate neighbours.
const DIRTY_PAD: usize = 2;

/// Upper clamp on the dirty-window anchor bias: some uniform
/// exploration must always survive, or a saturated bias (1.0) would
/// confine every probe to the bounded dirty list forever once it holds
/// no further opportunities.
const MAX_ANCHOR_BIAS: f64 = 0.9;

/// Redraws a uniform anchor landing in a certified window gets before
/// the sampler gives up and keeps the certified draw. Bounded so a
/// nearly-fully-certified circuit cannot stall an iteration in redraw
/// loops; the certification sweep, not the sampler, is what retires the
/// remaining budget on such circuits.
const CERT_SKIP_TRIES: usize = 4;

/// The mutable state the incremental engine carries across iterations:
/// one working circuit plus the matcher scratch buffers. Wire adjacency
/// comes straight from the circuit's arena links
/// ([`Circuit::next_on_wire`] and friends), so there is no separate DAG
/// to build or splice.
///
/// The legacy engine cloned the circuit (and rebuilt a wire DAG) on
/// every iteration; a `SearchCtx` instead lives for the whole search,
/// and accepted edits are [committed](Self::commit) in place — O(edit
/// span) instead of O(circuit).
///
/// The context also remembers a bounded list of recently-edited index
/// windows. With a non-zero anchor bias, [`Self::sample_anchor`] probes
/// those *dirty windows* preferentially: accepted edits cluster —
/// cancelling one gate pair routinely exposes the next — so re-probing
/// near recent edits raises the hit rate over uniform sampling.
pub struct SearchCtx {
    circuit: Circuit,
    scratch: MatchScratch,
    /// Recently-edited windows, post-commit coordinates, oldest first.
    /// Entries drift as later commits shift indices; they are clamped at
    /// sampling time (the list is a sampling bias, not ground truth).
    dirty: VecDeque<(usize, usize)>,
    anchor_bias: f64,
    /// Externally pinned windows (e.g. the gates touching a shard's
    /// boundary qubits, seeded right after each rotation). Like the
    /// dirty list, coordinates drift as edits land and are clamped at
    /// sampling time.
    pinned: Vec<(usize, usize)>,
    pinned_bias: f64,
    /// Live local-optimality stamps (certification-enabled runs only).
    /// [`Self::commit`] folds every accepted patch into the map so
    /// stamps can never go stale; [`Self::sample_anchor`] redraws
    /// uniform anchors that land in a certified window.
    certs: Option<qcert::CertMap>,
    /// When set, every anchor draw lands inside this window — the
    /// certification sweep pins probes to the window under test.
    focus: Option<(usize, usize)>,
}

impl SearchCtx {
    /// Creates a context owning `circuit`, with uniform anchor sampling.
    pub fn new(circuit: Circuit) -> Self {
        Self::with_anchor_bias(circuit, 0.0)
    }

    /// Creates a context that samples an anchor from a recently-edited
    /// window with probability `anchor_bias` (uniformly otherwise, and
    /// always uniformly while no edit has been committed yet). The bias
    /// is clamped to `[0, 0.9]` so uniform exploration never fully
    /// stops.
    pub fn with_anchor_bias(circuit: Circuit, anchor_bias: f64) -> Self {
        Self::with_scratch(circuit, anchor_bias, MatchScratch::new())
    }

    /// Like [`Self::with_anchor_bias`], reusing an existing matcher
    /// scratch (its buffers are already grown — shard workers recycle
    /// one scratch across every shard task they process).
    pub fn with_scratch(circuit: Circuit, anchor_bias: f64, scratch: MatchScratch) -> Self {
        SearchCtx {
            circuit,
            scratch,
            dirty: VecDeque::with_capacity(DIRTY_CAPACITY),
            anchor_bias: anchor_bias.clamp(0.0, MAX_ANCHOR_BIAS),
            pinned: Vec::new(),
            pinned_bias: 0.0,
            certs: None,
            focus: None,
        }
    }

    /// Installs a certificate map: accepted patches invalidate
    /// overlapping stamps on [`Self::commit`], and uniform anchor draws
    /// skip certified windows. Installing a map changes the sampler's
    /// RNG consumption, so certification-free runs (the default) keep
    /// their exact trajectories.
    pub fn set_cert_map(&mut self, certs: qcert::CertMap) {
        self.certs = Some(certs);
    }

    /// The installed certificate map, if any.
    pub fn cert_map(&self) -> Option<&qcert::CertMap> {
        self.certs.as_ref()
    }

    /// Mutable access to the installed certificate map.
    pub fn cert_map_mut(&mut self) -> Option<&mut qcert::CertMap> {
        self.certs.as_mut()
    }

    /// Restricts every anchor draw to `window` (`None` restores normal
    /// sampling). The certification sweep pins probes to the window
    /// under test with this.
    pub fn set_focus(&mut self, window: Option<(usize, usize)>) {
        self.focus = window;
    }

    /// Pins a set of index windows that [`Self::sample_anchor`] probes
    /// with probability `bias` (clamped to `[0, 0.9]`), ahead of the
    /// dirty-window roll. The sharded engine seeds the windows of gates
    /// touching its shard's boundary qubits here, right after each
    /// boundary rotation, so cross-shard cancellations are probed while
    /// the cut is fresh. An empty `windows` clears the pin.
    pub fn pin_windows(&mut self, windows: Vec<(usize, usize)>, bias: f64) {
        self.pinned = windows;
        self.pinned_bias = bias.clamp(0.0, MAX_ANCHOR_BIAS);
    }

    /// Consumes the context, yielding the matcher scratch for reuse.
    pub fn into_scratch(self) -> MatchScratch {
        self.scratch
    }

    /// Draws an anchor index for a transformation probe: a position
    /// inside a random dirty window with probability `anchor_bias`,
    /// uniform over the circuit otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is empty (callers gate on that).
    pub fn sample_anchor(&self, rng: &mut SmallRng) -> usize {
        let n = self.circuit.len();
        assert!(n > 0, "cannot sample an anchor in an empty circuit");
        if let Some((lo, hi)) = self.focus {
            let lo = lo.min(n - 1);
            let hi = hi.clamp(lo + 1, n);
            return rng.random_range(lo..hi);
        }
        if !self.pinned.is_empty()
            && self.pinned_bias > 0.0
            && rng.random::<f64>() < self.pinned_bias
        {
            let (lo, hi) = self.pinned[rng.random_range(0..self.pinned.len())];
            let lo = lo.min(n - 1);
            let hi = hi.clamp(lo + 1, n);
            return rng.random_range(lo..hi);
        }
        if !self.dirty.is_empty()
            && self.anchor_bias > 0.0
            && rng.random::<f64>() < self.anchor_bias
        {
            let (lo, hi) = self.dirty[rng.random_range(0..self.dirty.len())];
            let lo = lo.min(n - 1);
            let hi = hi.clamp(lo + 1, n);
            return rng.random_range(lo..hi);
        }
        let mut anchor = rng.random_range(0..n);
        if let Some(certs) = self.certs.as_ref().filter(|c| !c.is_empty()) {
            // Certified windows hold no improvement at the current
            // budget — redraw rather than waste the probe (bounded, so
            // saturated coverage degrades to uniform instead of
            // spinning).
            for _ in 0..CERT_SKIP_TRIES {
                if !certs.contains(anchor) {
                    break;
                }
                qcert::anchor_skips_counter().inc();
                anchor = rng.random_range(0..n);
            }
        }
        anchor
    }

    /// The recently-edited windows currently biasing anchor selection.
    pub fn dirty_windows(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.dirty.iter().copied()
    }

    /// The current working circuit.
    #[inline]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Splits the context into the pieces the matcher needs.
    #[inline]
    pub fn parts(&mut self) -> (&Circuit, &mut MatchScratch) {
        (&self.circuit, &mut self.scratch)
    }

    /// Applies an accepted patch in place (the arena relinks only the
    /// edited wires) and records the edit window in the dirty list.
    pub fn commit(&mut self, patch: &Patch) {
        let (wlo, whi) = patch.window();
        let new_whi = (whi as isize + patch.len_delta()).max(wlo as isize) as usize;
        if let Some(certs) = &mut self.certs {
            // Every stamp overlapping the edit's padded window is now
            // unproven — clear it before anything samples again.
            certs.commit_patch(patch, qcert::CERT_PAD);
        }
        self.circuit.apply_patch(patch);
        self.note_dirty(wlo, new_whi);
    }

    /// Replaces the working circuit wholesale (e.g. an accepted
    /// async-resynthesis result based on an older snapshot). The dirty
    /// list is cleared — its windows described the discarded circuit.
    pub fn replace_circuit(&mut self, circuit: Circuit) {
        self.circuit = circuit;
        self.dirty.clear();
        // Pinned windows described the discarded circuit too.
        self.pinned.clear();
        // No patch describes a wholesale replacement, so no stamp can
        // be proven to survive it.
        if let Some(certs) = &mut self.certs {
            certs.clear();
        }
    }

    fn note_dirty(&mut self, lo: usize, hi: usize) {
        let lo = lo.saturating_sub(DIRTY_PAD);
        let hi = (hi + DIRTY_PAD).min(self.circuit.len());
        if lo >= hi {
            return;
        }
        if self.dirty.len() == DIRTY_CAPACITY {
            self.dirty.pop_front();
        }
        self.dirty.push_back((lo, hi));
    }
}

/// A closed-box `ε`-bounded circuit transformation.
pub trait Transformation: Send + Sync {
    /// Display name.
    fn name(&self) -> &str;

    /// Declared worst-case error per application (`ε` of `τ_ε`).
    fn epsilon(&self) -> f64;

    /// The transformation's rule family for telemetry tallies
    /// ([`qtrace::Family`]). Rule names are dynamic (one per corpus
    /// rule) but families are static, so per-family counters stay
    /// fixed-arity and allocation-free.
    fn family(&self) -> Family {
        Family::Rule
    }

    /// Attempts to apply the transformation at a random location.
    ///
    /// Returns `None` when the transformation does not fire (no match, or
    /// synthesis failed within its bound).
    fn apply(&self, circuit: &Circuit, rng: &mut SmallRng) -> Option<Applied>;

    /// True when [`Self::apply_patch`] is implemented; the incremental
    /// engine falls back to [`Self::apply`] (with a full-circuit cost)
    /// otherwise.
    fn supports_patches(&self) -> bool {
        false
    }

    /// Attempts to produce the transformation's edit as a [`Patch`]
    /// against the context's current circuit, without materializing a
    /// new circuit — the incremental engine's fast path.
    fn apply_patch(&self, _ctx: &mut SearchCtx, _rng: &mut SmallRng) -> Option<PatchApplied> {
        None
    }
}

/// A full rewrite pass of one rule from a random anchor (paper §5.3).
#[derive(Debug, Clone)]
pub struct RulePass {
    rule: Rule,
}

impl RulePass {
    /// Wraps a rewrite rule as a transformation.
    pub fn new(rule: Rule) -> Self {
        RulePass { rule }
    }

    /// The underlying rule.
    pub fn rule(&self) -> &Rule {
        &self.rule
    }
}

impl Transformation for RulePass {
    fn name(&self) -> &str {
        self.rule.name()
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn apply(&self, circuit: &Circuit, rng: &mut SmallRng) -> Option<Applied> {
        if circuit.is_empty() {
            return None;
        }
        let start = rng.random_range(0..circuit.len());
        let (out, _count) = apply_rule_pass(circuit, &self.rule, start)?;
        Some(Applied {
            circuit: out,
            epsilon: 0.0,
        })
    }

    fn supports_patches(&self) -> bool {
        true
    }

    fn apply_patch(&self, ctx: &mut SearchCtx, rng: &mut SmallRng) -> Option<PatchApplied> {
        let n = ctx.circuit().len();
        if n == 0 {
            return None;
        }
        let start = ctx.sample_anchor(rng);
        let (circuit, scratch) = ctx.parts();
        // Walk anchors `(start + off) % n` by live id — O(1) per failed
        // probe instead of a rank/select per position. `start < n` and
        // `off < n`, so the walk wraps at most once.
        let mut id = circuit.id_at(start);
        for off in 0..RULE_ANCHOR_TRIES.min(n) {
            if off > 0 {
                id = circuit.next_id(id).unwrap_or_else(|| circuit.id_at(0));
            }
            if let Some(patch) =
                qrewrite::propose_rule_patch_at_id(circuit, &self.rule, id, scratch)
            {
                return Some(PatchApplied {
                    patch,
                    epsilon: 0.0,
                });
            }
        }
        None
    }
}

/// The exact 1q-run fusion pass as a transformation.
#[derive(Debug, Clone, Copy)]
pub struct FusionPass {
    set: GateSet,
}

impl FusionPass {
    /// Creates the pass for a target gate set.
    pub fn new(set: GateSet) -> Self {
        FusionPass { set }
    }
}

impl Transformation for FusionPass {
    fn name(&self) -> &str {
        "1q-fusion"
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn family(&self) -> Family {
        Family::Fusion
    }

    fn apply(&self, circuit: &Circuit, _rng: &mut SmallRng) -> Option<Applied> {
        let out = fusion::fuse_1q_runs(circuit, self.set)?;
        Some(Applied {
            circuit: out,
            epsilon: 0.0,
        })
    }

    fn supports_patches(&self) -> bool {
        true
    }

    fn apply_patch(&self, ctx: &mut SearchCtx, rng: &mut SmallRng) -> Option<PatchApplied> {
        let n = ctx.circuit().len();
        if n == 0 {
            return None;
        }
        let start = ctx.sample_anchor(rng);
        let circuit = ctx.circuit();
        let mut id = circuit.id_at(start);
        for off in 0..FUSION_ANCHOR_TRIES.min(n) {
            if off > 0 {
                id = circuit.next_id(id).unwrap_or_else(|| circuit.id_at(0));
            }
            if let Some(patch) = fusion::fuse_run_patch_at(circuit, id, self.set) {
                return Some(PatchApplied {
                    patch,
                    epsilon: 0.0,
                });
            }
        }
        None
    }
}

/// Identity-gate elimination as a transformation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CleanupPass;

impl Transformation for CleanupPass {
    fn name(&self) -> &str {
        "cleanup"
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn family(&self) -> Family {
        Family::Cleanup
    }

    fn apply(&self, circuit: &Circuit, _rng: &mut SmallRng) -> Option<Applied> {
        let out = fusion::remove_identities(circuit, 1e-9)?;
        Some(Applied {
            circuit: out,
            epsilon: 0.0,
        })
    }

    fn supports_patches(&self) -> bool {
        true
    }

    fn apply_patch(&self, ctx: &mut SearchCtx, rng: &mut SmallRng) -> Option<PatchApplied> {
        let n = ctx.circuit().len();
        if n == 0 {
            return None;
        }
        let start = ctx.sample_anchor(rng);
        let circuit = ctx.circuit();
        let mut id = circuit.id_at(start);
        for off in 0..CLEANUP_ANCHOR_TRIES.min(n) {
            if off > 0 {
                id = circuit.next_id(id).unwrap_or_else(|| circuit.id_at(0));
            }
            if let Some(patch) = fusion::remove_identity_patch_at(circuit, id, 1e-9) {
                return Some(PatchApplied {
                    patch,
                    epsilon: 0.0,
                });
            }
        }
        None
    }
}

/// Commutation-aware cancellation as a transformation (one sweep).
#[derive(Debug, Clone, Copy, Default)]
pub struct CommutationPass;

impl Transformation for CommutationPass {
    fn name(&self) -> &str {
        "commutative-cancellation"
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn family(&self) -> Family {
        Family::Commutation
    }

    fn apply(&self, circuit: &Circuit, _rng: &mut SmallRng) -> Option<Applied> {
        let out = qrewrite::commutation::commutative_cancellation(circuit)?;
        Some(Applied {
            circuit: out,
            epsilon: 0.0,
        })
    }

    fn supports_patches(&self) -> bool {
        true
    }

    fn apply_patch(&self, ctx: &mut SearchCtx, rng: &mut SmallRng) -> Option<PatchApplied> {
        let n = ctx.circuit().len();
        if n == 0 {
            return None;
        }
        // A single anchor per iteration: the walk's numeric commutation
        // checks are the expensive part, so probing many anchors would
        // dominate the iteration budget.
        let anchor = ctx.sample_anchor(rng);
        let patch = qrewrite::commutation::cancellation_patch_at(ctx.circuit(), anchor)?;
        Some(PatchApplied {
            patch,
            epsilon: 0.0,
        })
    }
}

/// Resynthesis of a random ≤`max_qubits` subcircuit (paper §5.3: grow a
/// region greedily from a random anchor, resynthesize its unitary).
///
/// The resynthesizer is shared by reference (`Arc`): shard workers,
/// async clones and the service layer all point at one instance, so
/// per-gate-set setup (including the Clifford+T BFS database) is never
/// duplicated. An optional [`QCache`] handle memoizes synthesis
/// results by window unitary ([`Resynthesizer::resynthesize_cached`]);
/// the per-pass hit/miss counters ([`qtrace::Counter`]s, shared across
/// clones) survive the async driver's worker-thread pass clone.
#[derive(Debug, Clone)]
pub struct ResynthPass {
    rs: Arc<Resynthesizer>,
    max_qubits: usize,
    eps: f64,
    cache: Option<Arc<QCache>>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
}

impl ResynthPass {
    /// Creates a resynthesis transformation with a per-call error bound
    /// (no cache; add one with [`Self::with_cache`]).
    pub fn new(rs: Arc<Resynthesizer>, max_qubits: usize, eps: f64) -> Self {
        ResynthPass {
            rs,
            max_qubits: max_qubits.min(qsynth::MAX_RESYNTH_QUBITS),
            eps,
            cache: None,
            cache_hits: Arc::new(Counter::new()),
            cache_misses: Arc::new(Counter::new()),
        }
    }

    /// Attaches (or detaches) the memo cache consulted before every
    /// instantiation and populated after every fresh synthesis.
    pub fn with_cache(mut self, cache: Option<Arc<QCache>>) -> Self {
        self.cache = cache;
        self
    }

    /// (cache hits, cache misses) across every call through this pass
    /// and its clones. Hits count everything served from the cache —
    /// verified replacements *and* known-failure markers; misses count
    /// calls that consulted the cache and fell back to a fresh
    /// instantiation, successful or not. Hits + misses therefore equals
    /// the cache-consulting call count, not the replacement count.
    pub fn cache_counters(&self) -> (u64, u64) {
        (self.cache_hits.get(), self.cache_misses.get())
    }

    fn record_outcome(&self, outcome: CacheOutcome) {
        match outcome {
            CacheOutcome::Hit | CacheOutcome::NegativeHit => self.cache_hits.inc(),
            CacheOutcome::Miss => self.cache_misses.inc(),
            CacheOutcome::Bypass => {}
        }
    }

    /// The synthesizer's RNG, derived from exactly **one** draw of the
    /// search RNG. This decoupling is what makes the memo cache pay off
    /// across jobs: a cache hit skips synthesis (and all its RNG
    /// consumption) but still costs the same single draw from the
    /// search stream, so hit and miss leave the search RNG in an
    /// identical state. A resubmitted job therefore replays its
    /// previous trajectory window for window — every slow call repeats
    /// and is served from the cache — as long as the cache still holds
    /// (or, when cold, deterministically re-creates) the entries that
    /// trajectory produced. Entries are keyed by window *unitary*, not
    /// by job, so on a cache shared across heterogeneous traffic a
    /// colliding window synthesized by another job can be served
    /// instead of this job's own re-roll — an equally ε-verified
    /// substitution that soundly shifts the trajectory (the
    /// differential suites pin the cache off where bit-for-bit
    /// comparison is asserted).
    fn synth_rng(rng: &mut SmallRng) -> SmallRng {
        SmallRng::seed_from_u64(rng.random::<u64>())
    }

    /// Chooses the random region this pass would act on (exposed for the
    /// async driver, which needs the region and snapshot separately).
    pub fn pick_region(&self, circuit: &Circuit, rng: &mut SmallRng) -> Option<Region> {
        if circuit.is_empty() {
            return None;
        }
        self.region_at(circuit, rng.random_range(0..circuit.len()))
    }

    /// The region this pass would grow around `anchor`, or `None` when
    /// the spot cannot support a useful resynthesis.
    pub fn region_at(&self, circuit: &Circuit, anchor: usize) -> Option<Region> {
        let region = Region::grow(circuit, anchor, self.max_qubits)?;
        // A region with fewer than 2 member gates cannot shrink.
        if region.member_indices(circuit).len() < 2 {
            return None;
        }
        Some(region)
    }

    /// Resynthesizes the region's subcircuit; returns the replacement.
    pub fn resynthesize_region(
        &self,
        circuit: &Circuit,
        region: &Region,
        rng: &mut SmallRng,
    ) -> Option<Applied> {
        let sub = region.extract(circuit);
        let mut synth_rng = Self::synth_rng(rng);
        let (out, outcome) =
            self.rs
                .resynthesize_cached(&sub, self.eps, &mut synth_rng, self.cache.as_deref());
        self.record_outcome(outcome);
        let out = out?;
        Some(Applied {
            circuit: region.replace(circuit, &out.circuit),
            epsilon: out.epsilon,
        })
    }

    /// Patch-producing variant of [`Self::resynthesize_region`]: the
    /// edit is expressed via [`Region::replacement_patch`] (members
    /// removed, replacement spliced after the window, matching the
    /// emission order of [`Region::replace`]).
    pub fn resynthesize_region_patch(
        &self,
        circuit: &Circuit,
        region: &Region,
        rng: &mut SmallRng,
    ) -> Option<PatchApplied> {
        let sub = region.extract(circuit);
        let mut synth_rng = Self::synth_rng(rng);
        let (out, outcome) =
            self.rs
                .resynthesize_cached(&sub, self.eps, &mut synth_rng, self.cache.as_deref());
        self.record_outcome(outcome);
        let out = out?;
        Some(PatchApplied {
            patch: region.replacement_patch(circuit, &out.circuit),
            epsilon: out.epsilon,
        })
    }
}

impl Transformation for ResynthPass {
    fn name(&self) -> &str {
        "resynthesis"
    }

    fn epsilon(&self) -> f64 {
        self.eps
    }

    fn family(&self) -> Family {
        Family::Resynth
    }

    fn apply(&self, circuit: &Circuit, rng: &mut SmallRng) -> Option<Applied> {
        let region = self.pick_region(circuit, rng)?;
        self.resynthesize_region(circuit, &region, rng)
    }

    fn supports_patches(&self) -> bool {
        true
    }

    fn apply_patch(&self, ctx: &mut SearchCtx, rng: &mut SmallRng) -> Option<PatchApplied> {
        if ctx.circuit().is_empty() {
            return None;
        }
        let anchor = ctx.sample_anchor(rng);
        let region = self.region_at(ctx.circuit(), anchor)?;
        self.resynthesize_region_patch(ctx.circuit(), &region, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Gate;
    use rand::SeedableRng;

    #[test]
    fn rule_pass_fires_and_is_exact() {
        let rules = qrewrite::rules_for(GateSet::Nam);
        let cancel = rules
            .iter()
            .find(|r| r.name() == "cx-cancel")
            .unwrap()
            .clone();
        let t = RulePass::new(cancel);
        assert_eq!(t.epsilon(), 0.0);
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[0, 1]);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = t.apply(&c, &mut rng).unwrap();
        assert!(out.circuit.is_empty());
        assert_eq!(out.epsilon, 0.0);
    }

    #[test]
    fn resynth_pass_shrinks_mergeable_rotations() {
        let rs = Arc::new(Resynthesizer::new(GateSet::IbmEagle));
        let t = ResynthPass::new(rs, 3, 1e-6);
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0.3), &[0]);
        c.push(Gate::Rz(0.4), &[0]);
        c.push(Gate::Rz(0.5), &[0]);
        let mut rng = SmallRng::seed_from_u64(2);
        let out = t.apply(&c, &mut rng).unwrap();
        assert!(out.circuit.len() < c.len());
        assert!(out.epsilon <= 1e-6);
        assert!(qsim::circuits_equivalent(&c, &out.circuit, 1e-5));
    }

    #[test]
    fn cleanup_pass_noop_on_clean_circuit() {
        let mut c = Circuit::new(1);
        c.push(Gate::H, &[0]);
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(CleanupPass.apply(&c, &mut rng).is_none());
    }

    #[test]
    fn commits_record_dirty_windows_and_replacement_clears_them() {
        let mut c = Circuit::new(2);
        for _ in 0..6 {
            c.push(Gate::H, &[0]);
        }
        let mut ctx = SearchCtx::with_anchor_bias(c.clone(), 0.5);
        assert_eq!(ctx.dirty_windows().count(), 0);
        ctx.commit(&Patch::new(vec![2, 3], Vec::new(), 2));
        let windows: Vec<_> = ctx.dirty_windows().collect();
        assert_eq!(windows.len(), 1);
        // Edit at [2,4) with ±2 padding, clamped to the 4-gate result.
        assert_eq!(windows[0], (0, 4));
        // Biased sampling stays in range.
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..64 {
            assert!(ctx.sample_anchor(&mut rng) < ctx.circuit().len());
        }
        ctx.replace_circuit(c);
        assert_eq!(ctx.dirty_windows().count(), 0);
    }

    #[test]
    fn pinned_windows_bias_anchor_sampling() {
        let mut c = Circuit::new(2);
        for _ in 0..64 {
            c.push(Gate::H, &[0]);
        }
        let mut ctx = SearchCtx::new(c.clone());
        // Saturated pin (clamped to 0.9): ≥ ~90% of anchors must land in
        // the pinned window.
        ctx.pin_windows(vec![(10, 14)], 1.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut inside = 0;
        for _ in 0..512 {
            let a = ctx.sample_anchor(&mut rng);
            assert!(a < ctx.circuit().len());
            if (10..14).contains(&a) {
                inside += 1;
            }
        }
        assert!(inside > 400, "pinned bias ignored: {inside}/512");
        // Clearing the pin restores uniform sampling.
        ctx.pin_windows(Vec::new(), 0.9);
        let mut inside = 0;
        for _ in 0..512 {
            if (10..14).contains(&ctx.sample_anchor(&mut rng)) {
                inside += 1;
            }
        }
        assert!(inside < 100, "uniform sampling not restored: {inside}/512");
        // Wholesale replacement clears pins (their indices are stale).
        ctx.pin_windows(vec![(0, 4)], 0.9);
        ctx.replace_circuit(c);
        let mut inside = 0;
        for _ in 0..512 {
            if ctx.sample_anchor(&mut rng) < 4 {
                inside += 1;
            }
        }
        assert!(inside < 100, "stale pin survived replacement: {inside}/512");
    }
}
