//! The unified transformation abstraction (paper §4).
//!
//! A [`Transformation`] is a closed-box function `τ_ε : C → C` returning a
//! circuit `ε`-equivalent to its input (Def. 4.1). Rewrite-rule passes and
//! built-in exact passes carry `ε = 0`; resynthesis declares a per-call
//! bound and reports the *measured* distance, which the optimizer charges
//! against the global budget (Thm. 4.2: errors add up).

use qcir::dag::WireDag;
use qcir::edit::Patch;
use qcir::{Circuit, GateSet, Instruction, Region};
use qrewrite::{apply_rule_pass, fusion, MatchScratch, Rule};
use qsynth::Resynthesizer;
use rand::rngs::SmallRng;
use rand::Rng;

/// The result of a successful transformation application.
#[derive(Debug, Clone)]
pub struct Applied {
    /// The transformed circuit.
    pub circuit: Circuit,
    /// Measured approximation error introduced by this application
    /// (0 for exact transformations; never exceeds the declared bound).
    pub epsilon: f64,
}

/// A patch produced by a transformation, ready to be costed and — if the
/// search accepts it — committed to the [`SearchCtx`].
#[derive(Debug, Clone)]
pub struct PatchApplied {
    /// The local edit, expressed against the context's current circuit.
    pub patch: Patch,
    /// Measured approximation error this edit would introduce.
    pub epsilon: f64,
}

/// Number of anchors a rule pass probes per iteration in the incremental
/// engine. Probes are O(pattern) each (most fail at the first gate-kind
/// check), so a handful keeps per-iteration work constant while retaining
/// a high hit rate on small circuits.
const RULE_ANCHOR_TRIES: usize = 16;

/// Anchor probes per iteration for the run-fusion pass.
const FUSION_ANCHOR_TRIES: usize = 8;

/// Anchor probes per iteration for identity cleanup.
const CLEANUP_ANCHOR_TRIES: usize = 8;

/// The mutable state the incremental engine carries across iterations:
/// one working circuit plus its cached [`WireDag`] and the matcher
/// scratch buffers.
///
/// The legacy engine cloned the circuit and rebuilt the DAG on every
/// iteration; a `SearchCtx` instead lives for the whole search, and
/// accepted edits are [committed](Self::commit) in place — O(edit span)
/// instead of O(circuit).
pub struct SearchCtx {
    circuit: Circuit,
    dag: WireDag,
    scratch: MatchScratch,
}

impl SearchCtx {
    /// Creates a context owning `circuit`.
    pub fn new(circuit: Circuit) -> Self {
        let dag = WireDag::build(&circuit);
        SearchCtx {
            circuit,
            dag,
            scratch: MatchScratch::new(),
        }
    }

    /// The current working circuit.
    #[inline]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The cached wire DAG of the current circuit.
    #[inline]
    pub fn dag(&self) -> &WireDag {
        &self.dag
    }

    /// Splits the context into the pieces the matcher needs.
    #[inline]
    pub fn parts(&mut self) -> (&Circuit, &WireDag, &mut MatchScratch) {
        (&self.circuit, &self.dag, &mut self.scratch)
    }

    /// Applies an accepted patch in place, splicing the cached DAG.
    pub fn commit(&mut self, patch: &Patch) {
        if self.dag.splice(&self.circuit, patch) {
            self.circuit.apply_patch(patch);
        } else {
            // The patch touches wires outside its window (no in-repo
            // producer does); fall back to a full rebuild.
            self.circuit.apply_patch(patch);
            self.dag = WireDag::build(&self.circuit);
        }
        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(
                self.dag,
                WireDag::build(&self.circuit),
                "incremental DAG diverged after commit"
            );
        }
    }

    /// Replaces the working circuit wholesale (e.g. an accepted
    /// async-resynthesis result based on an older snapshot).
    pub fn replace_circuit(&mut self, circuit: Circuit) {
        self.dag = WireDag::build(&circuit);
        self.circuit = circuit;
    }
}

/// A closed-box `ε`-bounded circuit transformation.
pub trait Transformation: Send + Sync {
    /// Display name.
    fn name(&self) -> &str;

    /// Declared worst-case error per application (`ε` of `τ_ε`).
    fn epsilon(&self) -> f64;

    /// Attempts to apply the transformation at a random location.
    ///
    /// Returns `None` when the transformation does not fire (no match, or
    /// synthesis failed within its bound).
    fn apply(&self, circuit: &Circuit, rng: &mut SmallRng) -> Option<Applied>;

    /// True when [`Self::apply_patch`] is implemented; the incremental
    /// engine falls back to [`Self::apply`] (with a full-circuit cost)
    /// otherwise.
    fn supports_patches(&self) -> bool {
        false
    }

    /// Attempts to produce the transformation's edit as a [`Patch`]
    /// against the context's current circuit, without materializing a
    /// new circuit — the incremental engine's fast path.
    fn apply_patch(&self, _ctx: &mut SearchCtx, _rng: &mut SmallRng) -> Option<PatchApplied> {
        None
    }
}

/// A full rewrite pass of one rule from a random anchor (paper §5.3).
#[derive(Debug, Clone)]
pub struct RulePass {
    rule: Rule,
}

impl RulePass {
    /// Wraps a rewrite rule as a transformation.
    pub fn new(rule: Rule) -> Self {
        RulePass { rule }
    }

    /// The underlying rule.
    pub fn rule(&self) -> &Rule {
        &self.rule
    }
}

impl Transformation for RulePass {
    fn name(&self) -> &str {
        self.rule.name()
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn apply(&self, circuit: &Circuit, rng: &mut SmallRng) -> Option<Applied> {
        if circuit.is_empty() {
            return None;
        }
        let start = rng.random_range(0..circuit.len());
        let (out, _count) = apply_rule_pass(circuit, &self.rule, start)?;
        Some(Applied {
            circuit: out,
            epsilon: 0.0,
        })
    }

    fn supports_patches(&self) -> bool {
        true
    }

    fn apply_patch(&self, ctx: &mut SearchCtx, rng: &mut SmallRng) -> Option<PatchApplied> {
        let n = ctx.circuit().len();
        if n == 0 {
            return None;
        }
        let start = rng.random_range(0..n);
        let (circuit, dag, scratch) = ctx.parts();
        for off in 0..RULE_ANCHOR_TRIES.min(n) {
            let anchor = (start + off) % n;
            if let Some(patch) =
                qrewrite::propose_rule_patch(circuit, dag, &self.rule, anchor, scratch)
            {
                return Some(PatchApplied {
                    patch,
                    epsilon: 0.0,
                });
            }
        }
        None
    }
}

/// The exact 1q-run fusion pass as a transformation.
#[derive(Debug, Clone, Copy)]
pub struct FusionPass {
    set: GateSet,
}

impl FusionPass {
    /// Creates the pass for a target gate set.
    pub fn new(set: GateSet) -> Self {
        FusionPass { set }
    }
}

impl Transformation for FusionPass {
    fn name(&self) -> &str {
        "1q-fusion"
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn apply(&self, circuit: &Circuit, _rng: &mut SmallRng) -> Option<Applied> {
        let out = fusion::fuse_1q_runs(circuit, self.set)?;
        Some(Applied {
            circuit: out,
            epsilon: 0.0,
        })
    }

    fn supports_patches(&self) -> bool {
        true
    }

    fn apply_patch(&self, ctx: &mut SearchCtx, rng: &mut SmallRng) -> Option<PatchApplied> {
        let n = ctx.circuit().len();
        if n == 0 {
            return None;
        }
        let start = rng.random_range(0..n);
        for off in 0..FUSION_ANCHOR_TRIES.min(n) {
            let anchor = (start + off) % n;
            if let Some(patch) = fusion::fuse_run_patch(ctx.circuit(), ctx.dag(), anchor, self.set)
            {
                return Some(PatchApplied {
                    patch,
                    epsilon: 0.0,
                });
            }
        }
        None
    }
}

/// Identity-gate elimination as a transformation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CleanupPass;

impl Transformation for CleanupPass {
    fn name(&self) -> &str {
        "cleanup"
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn apply(&self, circuit: &Circuit, _rng: &mut SmallRng) -> Option<Applied> {
        let out = fusion::remove_identities(circuit, 1e-9)?;
        Some(Applied {
            circuit: out,
            epsilon: 0.0,
        })
    }

    fn supports_patches(&self) -> bool {
        true
    }

    fn apply_patch(&self, ctx: &mut SearchCtx, rng: &mut SmallRng) -> Option<PatchApplied> {
        let n = ctx.circuit().len();
        if n == 0 {
            return None;
        }
        let start = rng.random_range(0..n);
        for off in 0..CLEANUP_ANCHOR_TRIES.min(n) {
            let anchor = (start + off) % n;
            if let Some(patch) = fusion::remove_identity_patch(ctx.circuit(), anchor, 1e-9) {
                return Some(PatchApplied {
                    patch,
                    epsilon: 0.0,
                });
            }
        }
        None
    }
}

/// Commutation-aware cancellation as a transformation (one sweep).
#[derive(Debug, Clone, Copy, Default)]
pub struct CommutationPass;

impl Transformation for CommutationPass {
    fn name(&self) -> &str {
        "commutative-cancellation"
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn apply(&self, circuit: &Circuit, _rng: &mut SmallRng) -> Option<Applied> {
        let out = qrewrite::commutation::commutative_cancellation(circuit)?;
        Some(Applied {
            circuit: out,
            epsilon: 0.0,
        })
    }

    fn supports_patches(&self) -> bool {
        true
    }

    fn apply_patch(&self, ctx: &mut SearchCtx, rng: &mut SmallRng) -> Option<PatchApplied> {
        let n = ctx.circuit().len();
        if n == 0 {
            return None;
        }
        // A single anchor per iteration: the walk's numeric commutation
        // checks are the expensive part, so probing many anchors would
        // dominate the iteration budget.
        let anchor = rng.random_range(0..n);
        let patch = qrewrite::commutation::cancellation_patch_at(ctx.circuit(), anchor)?;
        Some(PatchApplied {
            patch,
            epsilon: 0.0,
        })
    }
}

/// Resynthesis of a random ≤`max_qubits` subcircuit (paper §5.3: grow a
/// region greedily from a random anchor, resynthesize its unitary).
#[derive(Debug, Clone)]
pub struct ResynthPass {
    rs: Resynthesizer,
    max_qubits: usize,
    eps: f64,
}

impl ResynthPass {
    /// Creates a resynthesis transformation with a per-call error bound.
    pub fn new(rs: Resynthesizer, max_qubits: usize, eps: f64) -> Self {
        ResynthPass {
            rs,
            max_qubits: max_qubits.min(qsynth::MAX_RESYNTH_QUBITS),
            eps,
        }
    }

    /// Chooses the random region this pass would act on (exposed for the
    /// async driver, which needs the region and snapshot separately).
    pub fn pick_region(&self, circuit: &Circuit, rng: &mut SmallRng) -> Option<Region> {
        if circuit.is_empty() {
            return None;
        }
        let anchor = rng.random_range(0..circuit.len());
        let region = Region::grow(circuit, anchor, self.max_qubits)?;
        // A region with fewer than 2 member gates cannot shrink.
        if region.member_indices(circuit).len() < 2 {
            return None;
        }
        Some(region)
    }

    /// Resynthesizes the region's subcircuit; returns the replacement.
    pub fn resynthesize_region(
        &self,
        circuit: &Circuit,
        region: &Region,
        rng: &mut SmallRng,
    ) -> Option<Applied> {
        let sub = region.extract(circuit);
        let out = self.rs.resynthesize(&sub, self.eps, rng)?;
        Some(Applied {
            circuit: region.replace(circuit, &out.circuit),
            epsilon: out.epsilon,
        })
    }

    /// Patch-producing variant of [`Self::resynthesize_region`]: the
    /// region's member gates are removed and the resynthesized
    /// replacement is spliced in after the window (matching the emission
    /// order of [`Region::replace`], where the window's disjoint
    /// spectator gates come first).
    pub fn resynthesize_region_patch(
        &self,
        circuit: &Circuit,
        region: &Region,
        rng: &mut SmallRng,
    ) -> Option<PatchApplied> {
        let sub = region.extract(circuit);
        let out = self.rs.resynthesize(&sub, self.eps, rng)?;
        let removed = region.member_indices(circuit);
        let replacement: Vec<Instruction> = out
            .circuit
            .iter()
            .map(|ins| {
                let qs: Vec<qcir::Qubit> = ins
                    .qubits()
                    .iter()
                    .map(|&q| region.qubits()[q as usize])
                    .collect();
                Instruction::new(ins.gate, &qs)
            })
            .collect();
        Some(PatchApplied {
            patch: Patch::new(removed, replacement, region.hi() + 1),
            epsilon: out.epsilon,
        })
    }
}

impl Transformation for ResynthPass {
    fn name(&self) -> &str {
        "resynthesis"
    }

    fn epsilon(&self) -> f64 {
        self.eps
    }

    fn apply(&self, circuit: &Circuit, rng: &mut SmallRng) -> Option<Applied> {
        let region = self.pick_region(circuit, rng)?;
        self.resynthesize_region(circuit, &region, rng)
    }

    fn supports_patches(&self) -> bool {
        true
    }

    fn apply_patch(&self, ctx: &mut SearchCtx, rng: &mut SmallRng) -> Option<PatchApplied> {
        let region = self.pick_region(ctx.circuit(), rng)?;
        self.resynthesize_region_patch(ctx.circuit(), &region, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Gate;
    use rand::SeedableRng;

    #[test]
    fn rule_pass_fires_and_is_exact() {
        let rules = qrewrite::rules_for(GateSet::Nam);
        let cancel = rules
            .iter()
            .find(|r| r.name() == "cx-cancel")
            .unwrap()
            .clone();
        let t = RulePass::new(cancel);
        assert_eq!(t.epsilon(), 0.0);
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[0, 1]);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = t.apply(&c, &mut rng).unwrap();
        assert!(out.circuit.is_empty());
        assert_eq!(out.epsilon, 0.0);
    }

    #[test]
    fn resynth_pass_shrinks_mergeable_rotations() {
        let rs = Resynthesizer::new(GateSet::IbmEagle);
        let t = ResynthPass::new(rs, 3, 1e-6);
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0.3), &[0]);
        c.push(Gate::Rz(0.4), &[0]);
        c.push(Gate::Rz(0.5), &[0]);
        let mut rng = SmallRng::seed_from_u64(2);
        let out = t.apply(&c, &mut rng).unwrap();
        assert!(out.circuit.len() < c.len());
        assert!(out.epsilon <= 1e-6);
        assert!(qsim::circuits_equivalent(&c, &out.circuit, 1e-5));
    }

    #[test]
    fn cleanup_pass_noop_on_clean_circuit() {
        let mut c = Circuit::new(1);
        c.push(Gate::H, &[0]);
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(CleanupPass.apply(&c, &mut rng).is_none());
    }
}
