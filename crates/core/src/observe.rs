//! Search observation: streaming best-so-far snapshots.
//!
//! GUOQ is an anytime algorithm — at any instant the search holds a
//! valid best-so-far circuit. A serving layer (see the `qserve` crate)
//! wants to *stream* that circuit to a client while the search keeps
//! running, rather than wait for the budget to expire. The hook is a
//! strict-improvement observer: a callback invoked with a
//! [`BestSnapshot`] every time the tracked best cost strictly
//! decreases.
//!
//! * The serial engines ([`Engine::Incremental`](crate::Engine),
//!   [`Engine::CloneRebuild`](crate::Engine)) fire it from the
//!   [`ShardDriver`](crate::driver::ShardDriver)'s best-so-far update.
//! * [`Engine::Sharded`](crate::Engine) fires it from the coordinator's
//!   per-epoch commit observer ([`qpar::CommitInfo`]) whenever a
//!   committed master improves on the best committed cost.
//!
//! Both paths invoke the observer synchronously on the search (or
//! coordinator) thread: an expensive observer slows the search, so a
//! serving layer should hand the snapshot off (e.g. serialize and push
//! into a bounded channel) rather than do I/O inline.
//!
//! Strict improvements are bounded by the total cost descent — not the
//! accept rate — so observer traffic is small even for long runs, and
//! the snapshot sequence any observer sees is monotonically strictly
//! decreasing in cost (the differential tests in `crates/qserve` assert
//! exactly this end to end).

use qcir::Circuit;

pub use qpar::CancelToken;

/// One strict-improvement notification: a borrowed view of the new
/// best-so-far circuit and the search counters at that instant.
#[derive(Debug, Clone, Copy)]
pub struct BestSnapshot<'a> {
    /// The new best circuit (borrowed — clone or serialize to keep it).
    pub circuit: &'a Circuit,
    /// Its cost under the search objective.
    pub cost: f64,
    /// Accumulated approximation error of this circuit (≤ `ε_f`).
    pub epsilon: f64,
    /// Iterations performed when the improvement landed.
    pub iterations: u64,
    /// Seconds since the search started.
    pub seconds: f64,
}

// The observer is passed around as a plain `&mut dyn
// FnMut(&BestSnapshot<'_>)` (no named alias): with the trait object's
// default lifetime bound, the borrow and the captured state share one
// lifetime, which keeps `&mut`-invariance from infecting every
// signature it threads through.
