//! Search observation: the event-sourced optimization stream.
//!
//! GUOQ is an anytime algorithm — its natural output is not one final
//! circuit but a *stream of strict improvements*. Since the incremental
//! engine landed, every improvement is already a patch internally; this
//! module makes that stream the API. A run emits typed [`OptEvent`]s:
//!
//! * [`OptEvent::Started`] — once, at the input circuit's cost.
//! * [`OptEvent::Improved`] — on every strict best-cost improvement,
//!   carrying a [`qcir::delta::CircuitDelta`] from the *previous* best
//!   to the new one (O(edits), not O(circuit)): the serial engines
//!   package the accepted patches since the last improvement, the
//!   sharded engine diffs consecutive committed masters.
//! * [`OptEvent::EpochCommitted`] — the sharded engine's per-epoch
//!   commit heartbeat (serial engines never emit it).
//! * [`OptEvent::CacheStats`] — the run's final resynthesis memo-cache
//!   traffic, just before the stream ends.
//! * [`OptEvent::Stats`] — periodic telemetry heartbeat with the run's
//!   cumulative fast/slow [`qtrace::Profile`] (side-channel only —
//!   replay consumers must skip it).
//! * [`OptEvent::Certified`] — at most once, just before the stream
//!   ends: a certification-enabled run reached its coverage target and
//!   terminated early with a [`qcert::Certificate`] instead of burning
//!   the rest of its budget (side-channel — no cost, skipped by replay).
//! * [`OptEvent::Finished`] — once, with the complete [`GuoqResult`].
//!
//! Replaying the deltas of the `Improved` events onto the input circuit
//! reconstructs every best-so-far — and therefore the final best — bit
//! for bit (asserted per engine in this module's tests and end-to-end
//! in the `qserve` differential suite).
//!
//! Two consumption styles:
//!
//! * **Synchronous sink** — [`Guoq::optimize_events`](crate::Guoq::optimize_events)
//!   invokes a callback `FnMut(&OptEvent, &Circuit)` inline on the
//!   search (or coordinator) thread; the second argument is the
//!   best-so-far circuit at that event, so consumers that want full
//!   snapshots (a v1 wire peer, the legacy
//!   [`BestSnapshot`] shim) need not replay deltas themselves. An
//!   expensive sink slows the search — hand events off (serialize and
//!   push into a bounded channel) rather than doing I/O inline.
//! * **Handle** — [`Guoq::run`](crate::Guoq::run) spawns the search on
//!   a worker thread and returns an [`OptRun`] that yields owned
//!   events ([`Iterator`]); the consumer paces the stream.
//!
//! The pre-event API survives as thin shims:
//! [`Guoq::optimize`](crate::Guoq::optimize) ignores the stream and
//! [`Guoq::optimize_observed`](crate::Guoq::optimize_observed) adapts
//! `Improved` events back into borrowed [`BestSnapshot`]s. Both are
//! kept for compatibility; new consumers should take the stream.
//!
//! Strict improvements are bounded by the total cost descent — not the
//! accept rate — so event traffic is small even for long runs, and the
//! `Improved` cost sequence any sink sees is strictly decreasing — with
//! one exception: a certification-enabled run that completes its sweep
//! may emit a final *equal*-cost `Improved` pinning the certified
//! working circuit as the best (equal-cost plateau accepts can drift
//! the working circuit away from the recorded best; the certificate
//! describes the former). Replay still reconstructs the final best
//! exactly.

use crate::guoq::GuoqResult;
use crossbeam_channel::Receiver;
use qcir::delta::CircuitDelta;
use qcir::Circuit;
use std::thread::JoinHandle;

pub use qpar::CancelToken;

/// One typed event of an optimization run. See the [module docs](self)
/// for the stream grammar and delivery contract.
// `Finished(GuoqResult)` carries the terminal result circuit and is
// emitted exactly once per run; boxing it would push an allocation and
// an indirection onto every sink for the benefit of the per-event
// variants that are already small.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum OptEvent {
    /// The run began: the input circuit is the first best-so-far.
    Started {
        /// Cost of the input circuit under the search objective.
        cost: f64,
        /// Instruction count of the input circuit.
        gates: usize,
    },
    /// The best-so-far cost strictly decreased.
    Improved {
        /// Edit script from the previous best-so-far circuit (the
        /// input circuit for the first improvement) to the new one.
        delta: CircuitDelta,
        /// The new best cost.
        cost: f64,
        /// Accumulated approximation error of the new best (≤ `ε_f`).
        epsilon: f64,
        /// Iterations performed when the improvement landed.
        iterations: u64,
        /// Seconds since the search started.
        seconds: f64,
    },
    /// The sharded engine committed an epoch (fires once per commit,
    /// improving or not — the parallel engine's progress heartbeat).
    EpochCommitted {
        /// Epoch just committed (1-based).
        epoch: u64,
        /// Cost of the committed master (not necessarily a best).
        cost: f64,
        /// Total iterations so far.
        iterations: u64,
        /// Seconds since the search started.
        seconds: f64,
    },
    /// The run's resynthesis memo-cache traffic (fires once, before
    /// [`OptEvent::Finished`]; both counters are 0 without
    /// [`crate::GuoqOpts::cache`]).
    CacheStats {
        /// Resynthesis calls served from the cache.
        hits: u64,
        /// Resynthesis calls that consulted the cache and missed.
        misses: u64,
    },
    /// Periodic telemetry heartbeat: the run's fast/slow time split and
    /// per-family accept tallies so far (a cumulative snapshot, not a
    /// delta). Purely observational — it carries no cost and consumers
    /// replaying the improvement stream must ignore it.
    Stats {
        /// Cumulative [`qtrace::Profile`] since the run started.
        profile: qtrace::Profile,
    },
    /// A certification-enabled run hit its coverage target: enough of
    /// the circuit is stamped locally optimal that the search stops
    /// early with a proof instead of spending the rest of its budget.
    /// Fires at most once, right before [`OptEvent::Finished`]; the
    /// full per-window certificate rides on
    /// [`GuoqResult::certificate`].
    Certified {
        /// Fraction of gates covered by surviving stamps.
        coverage: f64,
        /// Number of surviving stamped windows.
        windows: usize,
        /// Probe attempts each window survived.
        budget: u64,
        /// Iterations performed when certification completed.
        iterations: u64,
        /// Seconds since the search started.
        seconds: f64,
    },
    /// The run ended; the final result in full.
    Finished(GuoqResult),
}

impl OptEvent {
    /// The event's best-so-far cost, when it carries one.
    pub fn cost(&self) -> Option<f64> {
        match self {
            OptEvent::Started { cost, .. }
            | OptEvent::Improved { cost, .. }
            | OptEvent::EpochCommitted { cost, .. } => Some(*cost),
            OptEvent::Finished(r) => Some(r.cost),
            OptEvent::CacheStats { .. } | OptEvent::Stats { .. } | OptEvent::Certified { .. } => {
                None
            }
        }
    }
}

/// One strict-improvement notification of the **legacy** observer API:
/// a borrowed view of the new best-so-far circuit and the search
/// counters at that instant. Kept so pre-event-stream callers
/// ([`crate::Guoq::optimize_observed`]) keep compiling; it is now an
/// adapter over [`OptEvent::Improved`].
#[derive(Debug, Clone, Copy)]
pub struct BestSnapshot<'a> {
    /// The new best circuit (borrowed — clone or serialize to keep it).
    pub circuit: &'a Circuit,
    /// Its cost under the search objective.
    pub cost: f64,
    /// Accumulated approximation error of this circuit (≤ `ε_f`).
    pub epsilon: f64,
    /// Iterations performed when the improvement landed.
    pub iterations: u64,
    /// Seconds since the search started.
    pub seconds: f64,
}

/// The synchronous event sink's trait-object type: invoked with each
/// [`OptEvent`] and the best-so-far circuit at that event (the input
/// circuit for `Started`, the final best for `CacheStats`/`Finished`).
/// Passed around as `&mut EventSink<'_>` — the borrow and the captured
/// state share one lifetime, which keeps `&mut`-invariance from
/// infecting every signature it threads through.
pub type EventSink<'a> = dyn FnMut(&OptEvent, &Circuit) + 'a;

/// A running optimization: the handle returned by
/// [`Guoq::run`](crate::Guoq::run). Yields owned [`OptEvent`]s
/// ([`Iterator`]); the stream ends (yields `None`) after
/// [`OptEvent::Finished`].
///
/// Delivery is consumer-paced over a bounded channel: a handle that is
/// read slowly backpressures the search thread at the channel bound
/// (lossless, unlike a serving layer's lossy fan-out). Dropping the
/// handle without draining detaches the search — it keeps running to
/// its budget on the worker thread with further events discarded; raise
/// [`cancel`](Self::cancel) first for a prompt stop.
pub struct OptRun {
    events: Receiver<OptEvent>,
    cancel: Option<CancelToken>,
    handle: Option<JoinHandle<()>>,
}

impl OptRun {
    pub(crate) fn new(
        events: Receiver<OptEvent>,
        cancel: Option<CancelToken>,
        handle: JoinHandle<()>,
    ) -> Self {
        OptRun {
            events,
            cancel,
            handle: Some(handle),
        }
    }

    /// Requests cooperative cancellation. Returns `false` (and does
    /// nothing) when the underlying [`crate::GuoqOpts::cancel`] is
    /// unset — build the `Guoq` with a [`CancelToken`] to make its
    /// runs cancellable.
    pub fn cancel(&self) -> bool {
        match &self.cancel {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Blocks until the next event, or `None` once the stream ended.
    pub fn next_event(&mut self) -> Option<OptEvent> {
        self.events.recv().ok()
    }

    /// Drains the stream to completion and returns the final result
    /// (`None` only if the search thread panicked).
    pub fn wait(mut self) -> Option<GuoqResult> {
        let mut result = None;
        while let Ok(ev) = self.events.recv() {
            if let OptEvent::Finished(r) = ev {
                result = Some(r);
            }
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        result
    }
}

impl Iterator for OptRun {
    type Item = OptEvent;

    fn next(&mut self) -> Option<OptEvent> {
        self.next_event()
    }
}

impl Drop for OptRun {
    fn drop(&mut self) {
        // Detach, never block: an undrained handle must not stall its
        // dropper for the rest of the search budget. The worker thread
        // discards events once the receiver is gone and exits at the
        // budget (or promptly, if `cancel` was raised).
        if let Some(h) = self.handle.take() {
            if h.is_finished() {
                let _ = h.join();
            }
        }
    }
}
