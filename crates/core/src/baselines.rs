//! Re-implemented archetypes of the paper's comparison tools (Table 3).
//!
//! Every baseline here is an honest re-implementation of the *approach*
//! of the corresponding tool, built on the same substrates as GUOQ so the
//! comparison isolates the search strategy (see DESIGN.md §3 for the
//! substitution rationale):
//!
//! | Paper tool | Here |
//! |---|---|
//! | Qiskit / TKET / VOQC | [`PipelineOptimizer`] (fixed pass sequences, three presets) |
//! | BQSKit / QUEST | [`PartitionResynth`] (one partition-and-resynthesize sweep) |
//! | QUESO / Quartz | [`BeamSearch`] (MaxBeam over rewrite rules) |
//! | Quarl (GPU RL) | [`BanditRewriter`] (softmax bandit rule scheduler) |
//! | GUOQ-SEQ-* | [`sequential_guoq`] (coarse phase split, §6 Q3) |

use crate::cost::CostFn;
use crate::guoq::{Budget, Guoq, GuoqOpts, GuoqResult};
use qcir::{Circuit, GateSet, Region};
use qfold::{fold_rotations, EmitStyle};
use qrewrite::{apply_rule_pass, fusion, Rule};
use qsynth::Resynthesizer;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// A named circuit optimizer (common harness interface).
pub trait Optimizer {
    /// Display name for tables.
    fn name(&self) -> String;

    /// Optimizes `circuit` under `cost` within `budget`.
    fn optimize(&self, circuit: &Circuit, cost: &dyn CostFn, budget: Budget) -> Circuit;
}

// ---------------------------------------------------------------------
// Fixed-pipeline optimizers (Qiskit / TKET / VOQC archetypes).
// ---------------------------------------------------------------------

/// Aggressiveness preset of a [`PipelineOptimizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelinePreset {
    /// Cancellation passes only (TKET-archetype default pipeline).
    Light,
    /// Cancellation + rotation folding (VOQC archetype).
    Medium,
    /// Cancellation + folding + 1q fusion, iterated to fixpoint
    /// (Qiskit `-O3` archetype).
    Heavy,
}

/// A fixed sequence of passes applied in a fixed order — the architecture
/// of traditional optimizers the paper contrasts with (§1, Table 3).
#[derive(Debug, Clone)]
pub struct PipelineOptimizer {
    set: GateSet,
    preset: PipelinePreset,
    rules: Vec<Rule>,
}

impl PipelineOptimizer {
    /// Creates the pipeline for a gate set.
    pub fn new(set: GateSet, preset: PipelinePreset) -> Self {
        // Fixed pipelines only use size-reducing rules, deterministically.
        let rules = qrewrite::rules_for(set)
            .into_iter()
            .filter(|r| r.gate_delta() < 0)
            .collect();
        PipelineOptimizer { set, preset, rules }
    }

    fn reduce_rules_to_fixpoint(&self, mut c: Circuit, deadline: Instant) -> Circuit {
        loop {
            let mut changed = false;
            for rule in &self.rules {
                if Instant::now() >= deadline {
                    return c;
                }
                while let Some((next, _)) = apply_rule_pass(&c, rule, 0) {
                    c = next;
                    changed = true;
                    if Instant::now() >= deadline {
                        return c;
                    }
                }
            }
            if !changed {
                return c;
            }
        }
    }

    fn fold(&self, c: &Circuit) -> Circuit {
        let style = if self.set.is_continuous() {
            EmitStyle::Rz
        } else {
            EmitStyle::CliffordT
        };
        let folded = fold_rotations(c, style);
        // The fold emits Rz; map to the set's phase gate when needed.
        if self.set == GateSet::Ibmq20 {
            let instrs = folded
                .iter()
                .map(|i| match i.gate {
                    qcir::Gate::Rz(a) => qcir::Instruction::new(qcir::Gate::P(a), i.qubits()),
                    _ => *i,
                })
                .collect();
            Circuit::from_instructions(folded.num_qubits(), instrs)
        } else {
            folded
        }
    }
}

impl Optimizer for PipelineOptimizer {
    fn name(&self) -> String {
        match self.preset {
            PipelinePreset::Light => "pipeline-light (tket-like)".into(),
            PipelinePreset::Medium => "pipeline-medium (voqc-like)".into(),
            PipelinePreset::Heavy => "pipeline-heavy (qiskit-like)".into(),
        }
    }

    fn optimize(&self, circuit: &Circuit, _cost: &dyn CostFn, budget: Budget) -> Circuit {
        let deadline = match budget {
            Budget::Time(d) => Instant::now() + d,
            Budget::Iterations(_) => Instant::now() + std::time::Duration::from_secs(3600),
        };
        let mut c = fusion::remove_identities(circuit, 1e-9).unwrap_or_else(|| circuit.clone());
        let max_rounds = match self.preset {
            PipelinePreset::Light => 1,
            PipelinePreset::Medium => 2,
            PipelinePreset::Heavy => 4,
        };
        for _ in 0..max_rounds {
            let before = c.len();
            c = self.reduce_rules_to_fixpoint(c, deadline);
            // General-purpose pipelines do rotation merging only for
            // continuous sets (matching Qiskit, which reduces T on a
            // handful of Clifford+T benchmarks only — §6 Q4).
            if self.preset != PipelinePreset::Light && self.set.is_continuous() {
                c = self.fold(&c);
            }
            if self.preset == PipelinePreset::Heavy {
                if let Some(fused) = fusion::fuse_1q_runs(&c, self.set) {
                    c = fused;
                }
                c = qrewrite::commutation::commutative_cancellation_fixpoint(&c);
            }
            if let Some(clean) = fusion::remove_identities(&c, 1e-9) {
                c = clean;
            }
            if c.len() >= before || Instant::now() >= deadline {
                break;
            }
        }
        c
    }
}

// ---------------------------------------------------------------------
// Partition + resynthesize (BQSKit / QUEST archetype).
// ---------------------------------------------------------------------

/// A single sweep of disjoint-partition resynthesis: partition the circuit
/// left-to-right into ≤3-qubit convex regions and resynthesize each once
/// (the approach of BQSKit's pipeline and QUEST [44]).
pub struct PartitionResynth {
    rs: Resynthesizer,
    max_qubits: usize,
    eps_total: f64,
    seed: u64,
}

impl PartitionResynth {
    /// Creates the optimizer for a gate set.
    pub fn new(set: GateSet, eps_total: f64, seed: u64) -> Self {
        PartitionResynth {
            rs: Resynthesizer::new(set),
            max_qubits: 3,
            eps_total,
            seed,
        }
    }

    /// Partitions a circuit into disjoint convex regions (scan-line).
    pub fn partition(circuit: &Circuit, max_qubits: usize) -> Vec<Region> {
        let mut taken = vec![false; circuit.len()];
        let mut regions = Vec::new();
        for anchor in 0..circuit.len() {
            if taken[anchor] {
                continue;
            }
            if let Some(region) = Region::grow_after(circuit, anchor, max_qubits, &taken) {
                for m in region.member_indices(circuit) {
                    taken[m] = true;
                }
                regions.push(region);
            } else {
                taken[anchor] = true; // too wide to resynthesize; skip
            }
        }
        regions
    }
}

impl Optimizer for PartitionResynth {
    fn name(&self) -> String {
        "partition-resynth (bqskit-like)".into()
    }

    fn optimize(&self, circuit: &Circuit, cost: &dyn CostFn, budget: Budget) -> Circuit {
        let deadline = match budget {
            Budget::Time(d) => Instant::now() + d,
            Budget::Iterations(_) => Instant::now() + std::time::Duration::from_secs(3600),
        };
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let regions = Self::partition(circuit, self.max_qubits);
        if regions.is_empty() {
            return circuit.clone();
        }
        let eps_each = self.eps_total / regions.len() as f64;
        // Resynthesize every region against the ORIGINAL circuit, then
        // splice all accepted replacements in one pass (regions have
        // disjoint member sets, and each replacement commutes with the
        // non-member gates inside its window).
        let mut skip = vec![false; circuit.len()];
        let mut emit_at: Vec<Option<Circuit>> = vec![None; circuit.len()];
        let mut mapping_at: Vec<Option<Vec<qcir::Qubit>>> = vec![None; circuit.len()];
        for region in regions {
            if Instant::now() >= deadline {
                break;
            }
            let members = region.member_indices(circuit);
            if members.len() < 2 {
                continue;
            }
            let sub = region.extract(circuit);
            if let Some(out) = self.rs.resynthesize(&sub, eps_each, &mut rng) {
                if cost.cost(&out.circuit) <= cost.cost(&sub) {
                    for &m in &members {
                        skip[m] = true;
                    }
                    mapping_at[members[0]] = Some(region.qubits().to_vec());
                    emit_at[members[0]] = Some(out.circuit);
                }
            }
        }
        let mut c = Circuit::new(circuit.num_qubits());
        for (i, ins) in circuit.iter().enumerate() {
            if let Some(repl) = &emit_at[i] {
                let mapping = mapping_at[i].as_ref().expect("mapping recorded");
                c.extend_mapped(repl, mapping);
            }
            if !skip[i] {
                c.push_instruction(*ins);
            }
        }
        c
    }
}

// ---------------------------------------------------------------------
// Beam search over rewrite rules (QUESO / Quartz archetype).
// ---------------------------------------------------------------------

/// MaxBeam-style search (QUESO [66]): keep a bounded set of candidate
/// circuits; each round, apply *every* rule to every candidate and keep
/// the best `beam_width` results.
pub struct BeamSearch {
    rules: Vec<Rule>,
    resynth: Option<crate::transform::ResynthPass>,
    eps_total: f64,
    /// Maximum number of candidates kept per round.
    pub beam_width: usize,
    seed: u64,
}

impl BeamSearch {
    /// Creates a beam search over the gate set's rule corpus.
    pub fn new(set: GateSet, beam_width: usize, seed: u64) -> Self {
        BeamSearch {
            rules: qrewrite::rules_for(set),
            resynth: None,
            eps_total: 0.0,
            beam_width,
            seed,
        }
    }

    /// Creates a beam search over explicit rules.
    pub fn with_rules(rules: Vec<Rule>, beam_width: usize, seed: u64) -> Self {
        BeamSearch {
            rules,
            resynth: None,
            eps_total: 0.0,
            beam_width,
            seed,
        }
    }

    /// Instantiates the paper's `GUOQ-BEAM` (§6 Q3): MaxBeam over the
    /// *full* transformation set, resynthesis included, with a global
    /// error budget.
    pub fn with_resynthesis(mut self, set: GateSet, eps_total: f64) -> Self {
        let eps = (eps_total / 8.0).max(1e-12);
        self.resynth = Some(crate::transform::ResynthPass::new(
            qsynth::shared_resynthesizer(set, qsynth::ResynthProfile::Fast),
            3,
            eps,
        ));
        self.eps_total = eps_total;
        self
    }
}

impl Optimizer for BeamSearch {
    fn name(&self) -> String {
        "beam (queso-like)".into()
    }

    fn optimize(&self, circuit: &Circuit, cost: &dyn CostFn, budget: Budget) -> Circuit {
        let started = Instant::now();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Candidates carry their accumulated ε (Thm. 4.2 accounting).
        let mut beam: Vec<(f64, Circuit, f64)> = vec![(cost.cost(circuit), circuit.clone(), 0.0)];
        let mut best = beam[0].clone();
        let mut iterations = 0u64;
        loop {
            iterations += 1;
            let done = match budget {
                Budget::Time(d) => started.elapsed() >= d,
                Budget::Iterations(n) => iterations > n,
            };
            if done {
                break;
            }
            let mut next: Vec<(f64, Circuit, f64)> = Vec::new();
            for (_, cand, eps) in &beam {
                for rule in &self.rules {
                    let start = if cand.is_empty() {
                        0
                    } else {
                        rng.random_range(0..cand.len())
                    };
                    if let Some((out, _)) = apply_rule_pass(cand, rule, start) {
                        let k = cost.cost(&out);
                        next.push((k, out, *eps));
                    }
                }
                if let Some(rp) = &self.resynth {
                    use crate::transform::Transformation;
                    if eps + rp.epsilon() <= self.eps_total {
                        if let Some(applied) = rp.apply(cand, &mut rng) {
                            let k = cost.cost(&applied.circuit);
                            next.push((k, applied.circuit, eps + applied.epsilon));
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            // Keep the best beam_width candidates (the bounded priority
            // queue of MaxBeam); this saturates with equal-cost siblings,
            // which is exactly the pathology §6 Q3 describes.
            next.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN costs"));
            next.truncate(self.beam_width);
            if next[0].0 < best.0 {
                best = next[0].clone();
            }
            beam = next;
        }
        best.1
    }
}

// ---------------------------------------------------------------------
// Softmax-bandit rule scheduler (Quarl substitute).
// ---------------------------------------------------------------------

/// A learned rule scheduler standing in for Quarl's deep-RL agent: keeps a
/// running value estimate per rule and samples rules by softmax; rotation
/// folding is applied periodically, mirroring Quarl's rotation-merging
/// setup. See DESIGN.md §3 — clearly labelled a substitute.
pub struct BanditRewriter {
    rules: Vec<Rule>,
    set: GateSet,
    /// Softmax inverse-temperature for rule selection.
    pub beta: f64,
    seed: u64,
}

impl BanditRewriter {
    /// Creates the bandit over a gate set's corpus.
    pub fn new(set: GateSet, seed: u64) -> Self {
        BanditRewriter {
            rules: qrewrite::rules_for(set),
            set,
            beta: 1.0,
            seed,
        }
    }
}

impl Optimizer for BanditRewriter {
    fn name(&self) -> String {
        "bandit (quarl-substitute)".into()
    }

    fn optimize(&self, circuit: &Circuit, cost: &dyn CostFn, budget: Budget) -> Circuit {
        let started = Instant::now();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.rules.len();
        let mut value = vec![0.0f64; n];
        let mut pulls = vec![1.0f64; n];
        let mut curr = circuit.clone();
        let mut cost_curr = cost.cost(&curr);
        let mut best = curr.clone();
        let mut cost_best = cost_curr;
        let mut iterations = 0u64;
        loop {
            iterations += 1;
            let done = match budget {
                Budget::Time(d) => started.elapsed() >= d,
                Budget::Iterations(k) => iterations > k,
            };
            if done {
                break;
            }
            // Periodic rotation folding (Quarl runs with rotation merging).
            if iterations.is_multiple_of(64) && self.set.is_continuous() {
                let folded = fold_rotations(&curr, EmitStyle::Rz);
                if cost.cost(&folded) <= cost_curr && self.set != GateSet::Ibmq20 {
                    cost_curr = cost.cost(&folded);
                    curr = folded;
                }
            }
            // Softmax sample.
            let weights: Vec<f64> = value
                .iter()
                .zip(&pulls)
                .map(|(v, p)| (self.beta * v / p).exp())
                .collect();
            let total: f64 = weights.iter().sum();
            let mut x = rng.random::<f64>() * total;
            let mut idx = 0;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    idx = i;
                    break;
                }
                x -= w;
            }
            let start = if curr.is_empty() {
                0
            } else {
                rng.random_range(0..curr.len())
            };
            pulls[idx] += 1.0;
            if let Some((out, _)) = apply_rule_pass(&curr, &self.rules[idx], start) {
                let k = cost.cost(&out);
                let reward = cost_curr - k;
                value[idx] += reward;
                if k <= cost_curr {
                    curr = out;
                    cost_curr = k;
                    if k < cost_best {
                        best = curr.clone();
                        cost_best = k;
                    }
                }
            }
        }
        let _ = cost_best;
        best
    }
}

// ---------------------------------------------------------------------
// Coarse sequential phase split (GUOQ-SEQ-*, §6 Q3).
// ---------------------------------------------------------------------

/// Which phase runs first in [`sequential_guoq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqOrder {
    /// Rewrite for the first half, then resynthesis (`GUOQ-SEQ-REWRITE-RESYNTH`).
    RewriteThenResynth,
    /// Resynthesis first, then rewrite (`GUOQ-SEQ-RESYNTH-REWRITE`).
    ResynthThenRewrite,
}

/// Runs GUOQ in two coarse phases, spending half the budget in each mode
/// (the paper's Q3 ablation showing tight interleaving wins).
pub fn sequential_guoq(
    circuit: &Circuit,
    set: GateSet,
    cost: &dyn CostFn,
    order: SeqOrder,
    opts: GuoqOpts,
) -> GuoqResult {
    let half = |b: Budget| match b {
        Budget::Time(d) => Budget::Time(d / 2),
        Budget::Iterations(n) => Budget::Iterations(n / 2),
    };
    let mut first_opts = opts.clone();
    first_opts.budget = half(opts.budget);
    let mut second_opts = first_opts.clone();
    second_opts.seed = opts.seed.wrapping_add(1);
    // Each phase gets half the error budget.
    first_opts.eps_total = opts.eps_total / 2.0;
    second_opts.eps_total = opts.eps_total / 2.0;

    let (first, second) = match order {
        SeqOrder::RewriteThenResynth => (
            Guoq::rewrite_only(set, first_opts),
            Guoq::resynth_only(set, second_opts),
        ),
        SeqOrder::ResynthThenRewrite => (
            Guoq::resynth_only(set, first_opts),
            Guoq::rewrite_only(set, second_opts),
        ),
    };
    let mid = first.optimize(circuit, cost);
    let mut fin = second.optimize(&mid.circuit, cost);
    fin.epsilon += mid.epsilon;
    fin.iterations += mid.iterations;
    fin.accepted += mid.accepted;
    fin.resynth_hits += mid.resynth_hits;
    fin.cache_hits += mid.cache_hits;
    fin.cache_misses += mid.cache_misses;
    fin.profile.merge(&mid.profile);
    if mid.cost < fin.cost {
        // The second phase may not improve on the first's best.
        fin.circuit = mid.circuit;
        fin.cost = mid.cost;
    }
    fin
}

/// Wrapper giving GUOQ itself the [`Optimizer`] interface for harnesses.
pub struct GuoqOptimizer {
    set: GateSet,
    opts: GuoqOpts,
    /// Optional label suffix for tables.
    pub label: String,
}

impl GuoqOptimizer {
    /// Full GUOQ for a gate set.
    pub fn new(set: GateSet, opts: GuoqOpts) -> Self {
        GuoqOptimizer {
            set,
            opts,
            label: "guoq".into(),
        }
    }
}

impl Optimizer for GuoqOptimizer {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn optimize(&self, circuit: &Circuit, cost: &dyn CostFn, budget: Budget) -> Circuit {
        let mut opts = self.opts.clone();
        opts.budget = budget;
        Guoq::for_gate_set(self.set, opts)
            .optimize(circuit, cost)
            .circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{GateCount, TwoQubitCount};
    use qcir::Gate;

    fn messy() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.2), &[2]);
        c.push(Gate::Rz(0.3), &[2]);
        c.push(Gate::Cx, &[1, 2]);
        c.push(Gate::X, &[1]);
        c.push(Gate::X, &[1]);
        c
    }

    #[test]
    fn pipeline_reduces_and_preserves() {
        for preset in [
            PipelinePreset::Light,
            PipelinePreset::Medium,
            PipelinePreset::Heavy,
        ] {
            let p = PipelineOptimizer::new(GateSet::Nam, preset);
            let c = messy();
            // Iteration budgets are deterministic on a loaded host; the
            // pipeline ignores the count and runs its bounded rounds.
            let out = p.optimize(&c, &GateCount, Budget::Iterations(1_000));
            assert!(out.len() < c.len(), "{preset:?}");
            assert!(qsim::circuits_equivalent(&c, &out, 1e-6), "{preset:?}");
        }
    }

    #[test]
    fn partition_covers_all_gates_disjointly() {
        let c = messy();
        let regions = PartitionResynth::partition(&c, 3);
        let mut seen = vec![false; c.len()];
        for r in &regions {
            for m in r.member_indices(&c) {
                assert!(!seen[m], "instruction {m} in two regions");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "partition must cover the circuit");
    }

    #[test]
    fn partition_resynth_improves() {
        let p = PartitionResynth::new(GateSet::Nam, 1e-6, 3);
        let c = messy();
        let out = p.optimize(&c, &TwoQubitCount, Budget::Iterations(1_000));
        assert!(out.two_qubit_count() <= c.two_qubit_count());
        assert!(qsim::circuits_equivalent(&c, &out, 1e-4));
    }

    #[test]
    fn beam_search_reduces() {
        let b = BeamSearch::new(GateSet::Nam, 4, 5);
        let c = messy();
        let out = b.optimize(&c, &GateCount, Budget::Iterations(20));
        assert!(out.len() < c.len());
        assert!(qsim::circuits_equivalent(&c, &out, 1e-6));
    }

    #[test]
    fn bandit_reduces() {
        let b = BanditRewriter::new(GateSet::Nam, 6);
        let c = messy();
        let out = b.optimize(&c, &GateCount, Budget::Iterations(300));
        assert!(out.len() < c.len());
        assert!(qsim::circuits_equivalent(&c, &out, 1e-6));
    }

    #[test]
    fn sequential_orders_both_run() {
        let c = messy();
        let opts = GuoqOpts {
            budget: Budget::Iterations(200),
            eps_total: 1e-6,
            seed: 11,
            ..Default::default()
        };
        for order in [SeqOrder::RewriteThenResynth, SeqOrder::ResynthThenRewrite] {
            let r = sequential_guoq(&c, GateSet::Nam, &TwoQubitCount, order, opts.clone());
            assert!(r.cost <= TwoQubitCount.cost(&c), "{order:?}");
            assert!(qsim::circuits_equivalent(&c, &r.circuit, 1e-4), "{order:?}");
        }
    }
}
