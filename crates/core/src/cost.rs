//! Optimization objectives (paper §5.1).
//!
//! A cost function maps a circuit to a real number to *minimize*. The
//! paper's examples are all expressible here: two-qubit-gate count for
//! NISQ, `2·#T + #CX` for FTQC (Example 5.1), and negative log-fidelity
//! under a device calibration model (§6 metrics).

use crate::fidelity::CalibrationModel;
use qcir::edit::Patch;
use qcir::{Circuit, Gate};

/// Gate-statistic changes a patch would cause: `(Δ gate count,
/// Δ multi-qubit count, Δ T-family count)`.
///
/// O(edit span): only the removed and replacement instructions are
/// inspected, never the rest of the circuit.
pub fn patch_count_deltas(circuit: &Circuit, patch: &Patch) -> (isize, isize, isize) {
    let d_len = patch.replacement().len() as isize - patch.removed().len() as isize;
    let mut d_multi = 0isize;
    let mut d_t = 0isize;
    for &i in patch.removed() {
        let g = circuit.instruction(i).gate;
        if g.arity() >= 2 {
            d_multi -= 1;
        }
        if matches!(g, Gate::T | Gate::Tdg) {
            d_t -= 1;
        }
    }
    for ins in patch.replacement() {
        if ins.gate.arity() >= 2 {
            d_multi += 1;
        }
        if matches!(ins.gate, Gate::T | Gate::Tdg) {
            d_t += 1;
        }
    }
    (d_len, d_multi, d_t)
}

/// An optimization objective: smaller is better.
pub trait CostFn: Send + Sync {
    /// The cost of a circuit.
    fn cost(&self, circuit: &Circuit) -> f64;

    /// Short display name.
    fn name(&self) -> &'static str;

    /// The cost change `cost(circuit ⊕ patch) − cost(circuit)` a patch
    /// would cause, **without** applying it.
    ///
    /// The default implementation materializes a patched clone — correct
    /// for any objective but O(circuit). Every shipped objective
    /// overrides it with an O(edit span) computation from the patch
    /// alone; custom structure-dependent objectives (e.g. depth-based)
    /// can rely on the default.
    fn delta(&self, circuit: &Circuit, patch: &Patch) -> f64 {
        self.cost(&circuit.with_patch(patch)) - self.cost(circuit)
    }
}

/// Minimize the number of multi-qubit gates (the NISQ objective).
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoQubitCount;

impl CostFn for TwoQubitCount {
    fn cost(&self, circuit: &Circuit) -> f64 {
        circuit.two_qubit_count() as f64
    }
    fn name(&self) -> &'static str {
        "2q-count"
    }
    fn delta(&self, circuit: &Circuit, patch: &Patch) -> f64 {
        let (_, d_multi, _) = patch_count_deltas(circuit, patch);
        d_multi as f64
    }
}

/// Minimize total gate count.
#[derive(Debug, Clone, Copy, Default)]
pub struct GateCount;

impl CostFn for GateCount {
    fn cost(&self, circuit: &Circuit) -> f64 {
        circuit.len() as f64
    }
    fn name(&self) -> &'static str {
        "gate-count"
    }
    fn delta(&self, _circuit: &Circuit, patch: &Patch) -> f64 {
        patch.len_delta() as f64
    }
}

/// The FTQC objective of Example 5.1: `t_weight·#T + cx_weight·#CX`.
#[derive(Debug, Clone, Copy)]
pub struct TWeighted {
    /// Weight on `T`/`T†` gates.
    pub t_weight: f64,
    /// Weight on multi-qubit gates.
    pub cx_weight: f64,
}

impl Default for TWeighted {
    fn default() -> Self {
        // The paper's Example 5.1: cost = 2·#T + #CX.
        TWeighted {
            t_weight: 2.0,
            cx_weight: 1.0,
        }
    }
}

impl CostFn for TWeighted {
    fn cost(&self, circuit: &Circuit) -> f64 {
        self.t_weight * circuit.t_count() as f64 + self.cx_weight * circuit.two_qubit_count() as f64
    }
    fn name(&self) -> &'static str {
        "t-weighted"
    }
    fn delta(&self, circuit: &Circuit, patch: &Patch) -> f64 {
        let (_, d_multi, d_t) = patch_count_deltas(circuit, patch);
        self.t_weight * d_t as f64 + self.cx_weight * d_multi as f64
    }
}

/// Lexicographic `(T count, CX count)` objective used when running GUOQ on
/// folded output (Fig. 14): reduce CX without ever increasing T.
#[derive(Debug, Clone, Copy, Default)]
pub struct TThenCx;

impl CostFn for TThenCx {
    fn cost(&self, circuit: &Circuit) -> f64 {
        // A large multiplier makes T strictly dominate (circuits in the
        // suite stay far below 1e6 CX).
        1e6 * circuit.t_count() as f64 + circuit.two_qubit_count() as f64
    }
    fn name(&self) -> &'static str {
        "t-then-cx"
    }
    fn delta(&self, circuit: &Circuit, patch: &Patch) -> f64 {
        let (_, d_multi, d_t) = patch_count_deltas(circuit, patch);
        1e6 * d_t as f64 + d_multi as f64
    }
}

/// Negative log-fidelity under a calibration model (maximizing fidelity).
#[derive(Debug, Clone, Copy)]
pub struct NegLogFidelity {
    /// The device error model.
    pub model: CalibrationModel,
}

impl CostFn for NegLogFidelity {
    fn cost(&self, circuit: &Circuit) -> f64 {
        self.model.neg_log_fidelity(circuit)
    }
    fn name(&self) -> &'static str {
        "neg-log-fidelity"
    }
    fn delta(&self, circuit: &Circuit, patch: &Patch) -> f64 {
        // Additive over gates: Σ −ln(1−e) per gate class.
        let (d_len, d_multi, _) = patch_count_deltas(circuit, patch);
        let d_one = d_len - d_multi;
        -(d_one as f64 * (1.0 - self.model.single_qubit_error).ln()
            + d_multi as f64 * (1.0 - self.model.two_qubit_error).ln())
    }
}

/// Counts gates of a specific mnemonic (helper for analyses and tests).
pub fn count_gate(circuit: &Circuit, name: &str) -> usize {
    circuit.count_where(|i| i.gate.name() == name)
}

/// True when `gate` is a `T`-family gate.
pub fn is_t_gate(gate: Gate) -> bool {
    matches!(gate, Gate::T | Gate::Tdg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::T, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Tdg, &[1]);
        c.push(Gate::H, &[0]);
        c
    }

    #[test]
    fn objectives_disagree_as_designed() {
        let c = sample();
        assert_eq!(TwoQubitCount.cost(&c), 1.0);
        assert_eq!(GateCount.cost(&c), 4.0);
        assert_eq!(TWeighted::default().cost(&c), 2.0 * 2.0 + 1.0);
        assert_eq!(TThenCx.cost(&c), 2e6 + 1.0);
    }

    #[test]
    fn t_then_cx_lexicographic() {
        let mut fewer_t = Circuit::new(2);
        for _ in 0..100 {
            fewer_t.push(Gate::Cx, &[0, 1]);
        }
        fewer_t.push(Gate::T, &[0]);
        let mut fewer_cx = Circuit::new(2);
        fewer_cx.push(Gate::T, &[0]);
        fewer_cx.push(Gate::T, &[1]);
        // One T beats two T's regardless of CX overhead.
        assert!(TThenCx.cost(&fewer_t) < TThenCx.cost(&fewer_cx));
    }

    #[test]
    fn count_gate_by_name() {
        let c = sample();
        assert_eq!(count_gate(&c, "cx"), 1);
        assert_eq!(count_gate(&c, "t"), 1);
        assert_eq!(count_gate(&c, "tdg"), 1);
    }
}
