//! Optimization objectives (paper §5.1).
//!
//! A cost function maps a circuit to a real number to *minimize*. The
//! paper's examples are all expressible here: two-qubit-gate count for
//! NISQ, `2·#T + #CX` for FTQC (Example 5.1), and negative log-fidelity
//! under a device calibration model (§6 metrics).

use crate::fidelity::CalibrationModel;
use qcir::{Circuit, Gate};

/// An optimization objective: smaller is better.
pub trait CostFn: Send + Sync {
    /// The cost of a circuit.
    fn cost(&self, circuit: &Circuit) -> f64;

    /// Short display name.
    fn name(&self) -> &'static str;
}

/// Minimize the number of multi-qubit gates (the NISQ objective).
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoQubitCount;

impl CostFn for TwoQubitCount {
    fn cost(&self, circuit: &Circuit) -> f64 {
        circuit.two_qubit_count() as f64
    }
    fn name(&self) -> &'static str {
        "2q-count"
    }
}

/// Minimize total gate count.
#[derive(Debug, Clone, Copy, Default)]
pub struct GateCount;

impl CostFn for GateCount {
    fn cost(&self, circuit: &Circuit) -> f64 {
        circuit.len() as f64
    }
    fn name(&self) -> &'static str {
        "gate-count"
    }
}

/// The FTQC objective of Example 5.1: `t_weight·#T + cx_weight·#CX`.
#[derive(Debug, Clone, Copy)]
pub struct TWeighted {
    /// Weight on `T`/`T†` gates.
    pub t_weight: f64,
    /// Weight on multi-qubit gates.
    pub cx_weight: f64,
}

impl Default for TWeighted {
    fn default() -> Self {
        // The paper's Example 5.1: cost = 2·#T + #CX.
        TWeighted {
            t_weight: 2.0,
            cx_weight: 1.0,
        }
    }
}

impl CostFn for TWeighted {
    fn cost(&self, circuit: &Circuit) -> f64 {
        self.t_weight * circuit.t_count() as f64
            + self.cx_weight * circuit.two_qubit_count() as f64
    }
    fn name(&self) -> &'static str {
        "t-weighted"
    }
}

/// Lexicographic `(T count, CX count)` objective used when running GUOQ on
/// folded output (Fig. 14): reduce CX without ever increasing T.
#[derive(Debug, Clone, Copy, Default)]
pub struct TThenCx;

impl CostFn for TThenCx {
    fn cost(&self, circuit: &Circuit) -> f64 {
        // A large multiplier makes T strictly dominate (circuits in the
        // suite stay far below 1e6 CX).
        1e6 * circuit.t_count() as f64 + circuit.two_qubit_count() as f64
    }
    fn name(&self) -> &'static str {
        "t-then-cx"
    }
}

/// Negative log-fidelity under a calibration model (maximizing fidelity).
#[derive(Debug, Clone, Copy)]
pub struct NegLogFidelity {
    /// The device error model.
    pub model: CalibrationModel,
}

impl CostFn for NegLogFidelity {
    fn cost(&self, circuit: &Circuit) -> f64 {
        self.model.neg_log_fidelity(circuit)
    }
    fn name(&self) -> &'static str {
        "neg-log-fidelity"
    }
}

/// Counts gates of a specific mnemonic (helper for analyses and tests).
pub fn count_gate(circuit: &Circuit, name: &str) -> usize {
    circuit.count_where(|i| i.gate.name() == name)
}

/// True when `gate` is a `T`-family gate.
pub fn is_t_gate(gate: Gate) -> bool {
    matches!(gate, Gate::T | Gate::Tdg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::T, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Tdg, &[1]);
        c.push(Gate::H, &[0]);
        c
    }

    #[test]
    fn objectives_disagree_as_designed() {
        let c = sample();
        assert_eq!(TwoQubitCount.cost(&c), 1.0);
        assert_eq!(GateCount.cost(&c), 4.0);
        assert_eq!(TWeighted::default().cost(&c), 2.0 * 2.0 + 1.0);
        assert_eq!(TThenCx.cost(&c), 2e6 + 1.0);
    }

    #[test]
    fn t_then_cx_lexicographic() {
        let mut fewer_t = Circuit::new(2);
        for _ in 0..100 {
            fewer_t.push(Gate::Cx, &[0, 1]);
        }
        fewer_t.push(Gate::T, &[0]);
        let mut fewer_cx = Circuit::new(2);
        fewer_cx.push(Gate::T, &[0]);
        fewer_cx.push(Gate::T, &[1]);
        // One T beats two T's regardless of CX overhead.
        assert!(TThenCx.cost(&fewer_t) < TThenCx.cost(&fewer_cx));
    }

    #[test]
    fn count_gate_by_name() {
        let c = sample();
        assert_eq!(count_gate(&c, "cx"), 1);
        assert_eq!(count_gate(&c, "t"), 1);
        assert_eq!(count_gate(&c, "tdg"), 1);
    }
}
