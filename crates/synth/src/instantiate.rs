//! Template circuits and numerical parameter instantiation.
//!
//! This is the numerical core of continuous-gate-set synthesis, mirroring
//! BQSKit's QSearch instantiation step: a *template* is a fixed circuit
//! structure (CX placements interleaved with parameterized `U3` gates);
//! *instantiation* finds angles minimizing the distance to a target
//! unitary with Adam over analytic gradients.

use qmath::{c64, embed, Mat, C64};
use rand::Rng;

/// One operation in a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TOp {
    /// A parameterized `U3` gate; its three angles live at
    /// `params[pidx..pidx+3]`.
    U3 {
        /// Target qubit.
        qubit: usize,
        /// Offset of (θ, φ, λ) in the parameter vector.
        pidx: usize,
    },
    /// A fixed CX gate.
    Cx {
        /// Control qubit.
        c: usize,
        /// Target qubit.
        t: usize,
    },
}

/// A parameterized circuit structure.
#[derive(Debug, Clone)]
pub struct Template {
    n_qubits: usize,
    ops: Vec<TOp>,
    n_params: usize,
}

impl Template {
    /// Builds the standard QSearch-style template: a `U3` on every qubit,
    /// then for each CX placement a CX followed by `U3`s on both involved
    /// qubits.
    pub fn with_cx_sequence(n_qubits: usize, cx: &[(usize, usize)]) -> Self {
        let mut ops = Vec::new();
        let mut pidx = 0;
        for q in 0..n_qubits {
            ops.push(TOp::U3 { qubit: q, pidx });
            pidx += 3;
        }
        for &(c, t) in cx {
            assert!(c < n_qubits && t < n_qubits && c != t, "bad CX placement");
            ops.push(TOp::Cx { c, t });
            for q in [c, t] {
                ops.push(TOp::U3 { qubit: q, pidx });
                pidx += 3;
            }
        }
        Template {
            n_qubits,
            ops,
            n_params: pidx,
        }
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of CX gates in the structure.
    pub fn cx_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, TOp::Cx { .. }))
            .count()
    }

    /// The operations.
    pub fn ops(&self) -> &[TOp] {
        &self.ops
    }

    /// Evaluates the unitary at the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != n_params`.
    pub fn unitary(&self, params: &[f64]) -> Mat {
        assert_eq!(params.len(), self.n_params, "parameter count");
        let dim = 1usize << self.n_qubits;
        let mut v = Mat::identity(dim);
        for op in &self.ops {
            let m = self.op_matrix(op, params);
            v = m.matmul(&v);
        }
        v
    }

    fn op_matrix(&self, op: &TOp, params: &[f64]) -> Mat {
        match *op {
            TOp::U3 { qubit, pidx } => embed(
                &qmath::gates::u3(params[pidx], params[pidx + 1], params[pidx + 2]),
                self.n_qubits,
                &[qubit],
            ),
            TOp::Cx { c, t } => embed(&qmath::gates::cx(), self.n_qubits, &[c, t]),
        }
    }

    /// Converts instantiated parameters into a `qcir` circuit of
    /// `U3` + `CX` gates.
    pub fn to_circuit(&self, params: &[f64]) -> qcir::Circuit {
        let mut c = qcir::Circuit::new(self.n_qubits);
        for op in &self.ops {
            match *op {
                TOp::U3 { qubit, pidx } => c.push(
                    qcir::Gate::U3(params[pidx], params[pidx + 1], params[pidx + 2]),
                    &[qubit as qcir::Qubit],
                ),
                TOp::Cx { c: cc, t } => {
                    c.push(qcir::Gate::Cx, &[cc as qcir::Qubit, t as qcir::Qubit])
                }
            }
        }
        c
    }
}

/// Partial derivatives of the `U3` matrix with respect to (θ, φ, λ).
fn u3_grads(theta: f64, phi: f64, lambda: f64) -> [Mat; 3] {
    let (ct, st) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    let (ep, el, epl) = (C64::cis(phi), C64::cis(lambda), C64::cis(phi + lambda));
    let dtheta = Mat::mat2(
        c64(-st / 2.0, 0.0),
        el.scale(-ct / 2.0),
        ep.scale(ct / 2.0),
        epl.scale(-st / 2.0),
    );
    let i = C64::I;
    let dphi = Mat::mat2(C64::ZERO, C64::ZERO, i * ep.scale(st), i * epl.scale(ct));
    let dlambda = Mat::mat2(C64::ZERO, i * el.scale(-st), C64::ZERO, i * epl.scale(ct));
    [dtheta, dphi, dlambda]
}

/// Result of an instantiation run.
#[derive(Debug, Clone)]
pub struct Instantiation {
    /// Optimized parameters.
    pub params: Vec<f64>,
    /// Accurate Hilbert–Schmidt distance to the target at `params`.
    pub distance: f64,
}

/// Accurate Hilbert–Schmidt distance, immune to the `1 − |w|/N`
/// cancellation (now shared with the cache's verify-on-hit path as
/// [`qmath::dist::accurate_hs_distance`]; re-exported here for the
/// existing synthesis call sites).
pub use qmath::dist::accurate_hs_distance;

/// Options for [`instantiate`].
#[derive(Debug, Clone)]
pub struct InstantiateOpts {
    /// Number of random restarts.
    pub restarts: usize,
    /// Adam iterations per restart.
    pub iters: usize,
    /// Initial learning rate.
    pub lr: f64,
    /// Stop early once the accurate distance falls below this.
    pub target: f64,
    /// Warm start for the first restart (zeros when `None`).
    pub init: Option<Vec<f64>>,
}

impl Default for InstantiateOpts {
    fn default() -> Self {
        InstantiateOpts {
            restarts: 4,
            iters: 400,
            lr: 0.15,
            target: 1e-10,
            init: None,
        }
    }
}

/// Optimizes template parameters to approximate `target` (up to global
/// phase), returning the best instantiation found.
///
/// # Panics
///
/// Panics if the target dimension does not match the template.
pub fn instantiate<R: Rng + ?Sized>(
    template: &Template,
    target: &Mat,
    opts: &InstantiateOpts,
    rng: &mut R,
) -> Instantiation {
    let dim = 1usize << template.n_qubits();
    assert_eq!(target.rows(), dim, "target dimension mismatch");
    let np = template.n_params();
    let mut best = Instantiation {
        params: vec![0.0; np],
        distance: f64::INFINITY,
    };
    if np == 0 {
        let d = accurate_hs_distance(target, &template.unitary(&[]));
        return Instantiation {
            params: vec![],
            distance: d,
        };
    }

    for restart in 0..opts.restarts {
        let mut params: Vec<f64> = if restart == 0 {
            match &opts.init {
                Some(init) if init.len() == np => init.clone(),
                _ => vec![0.0; np],
            }
        } else {
            (0..np)
                .map(|_| (rng.random::<f64>() - 0.5) * 2.0 * std::f64::consts::PI)
                .collect()
        };
        let mut m = vec![0.0; np];
        let mut vv = vec![0.0; np];
        let (b1, b2, eps) = (0.9, 0.999, 1e-9);
        let mut lr = opts.lr;
        for it in 0..opts.iters {
            let grad = cost_gradient(template, target, &params);
            for k in 0..np {
                m[k] = b1 * m[k] + (1.0 - b1) * grad[k];
                vv[k] = b2 * vv[k] + (1.0 - b2) * grad[k] * grad[k];
                let mh = m[k] / (1.0 - b1.powi(it as i32 + 1));
                let vh = vv[k] / (1.0 - b2.powi(it as i32 + 1));
                params[k] -= lr * mh / (vh.sqrt() + eps);
            }
            lr *= 0.995;
            if it % 25 == 24 || it + 1 == opts.iters {
                let d = accurate_hs_distance(target, &template.unitary(&params));
                if d < best.distance {
                    best = Instantiation {
                        params: params.clone(),
                        distance: d,
                    };
                }
                if d <= opts.target {
                    return best;
                }
                // Once Adam is inside the basin, Levenberg–Marquardt
                // closes the remaining gap quadratically.
                if d < 1e-2 {
                    let mut polished = params.clone();
                    let pd = gauss_newton_polish(template, target, &mut polished, 25);
                    if pd < best.distance {
                        best = Instantiation {
                            params: polished,
                            distance: pd,
                        };
                    }
                    if best.distance <= opts.target {
                        return best;
                    }
                    break; // LM stalled: continue with the next restart
                }
            }
        }
    }
    // Final LM attempt from the overall best point.
    if best.distance.is_finite() && best.distance > opts.target {
        let mut polished = best.params.clone();
        let pd = gauss_newton_polish(template, target, &mut polished, 40);
        if pd < best.distance {
            best = Instantiation {
                params: polished,
                distance: pd,
            };
        }
    }
    best
}

/// Evaluates the template unitary and the partial derivative `∂V/∂θ_k`
/// for every parameter (via prefix/suffix products).
fn value_and_grads(template: &Template, params: &[f64]) -> (Mat, Vec<Mat>) {
    let dim = 1usize << template.n_qubits();
    let ops = template.ops();
    let g = ops.len();
    // Prefix products: pre[i] = M_{i-1} … M_0 (pre[0] = I).
    let mut pre = Vec::with_capacity(g + 1);
    pre.push(Mat::identity(dim));
    for op in ops {
        let m = template.op_matrix(op, params);
        let last = pre.last().expect("non-empty prefix");
        pre.push(m.matmul(last));
    }
    // Suffix products: suf[i] = M_{g-1} … M_{i+1} (suf[g-1] = I).
    let mut suf = vec![Mat::identity(dim); g];
    for i in (0..g.saturating_sub(1)).rev() {
        let m = template.op_matrix(&ops[i + 1], params);
        suf[i] = suf[i + 1].matmul(&m);
    }
    let v = pre.last().expect("non-empty prefix").clone();
    let mut grads = vec![Mat::zeros(dim, dim); params.len()];
    for (i, op) in ops.iter().enumerate() {
        if let TOp::U3 { qubit, pidx } = *op {
            let partials = u3_grads(params[pidx], params[pidx + 1], params[pidx + 2]);
            for (k, dm2) in partials.iter().enumerate() {
                let dm = embed(dm2, template.n_qubits(), &[qubit]);
                grads[pidx + k] = suf[i].matmul(&dm).matmul(&pre[i]);
            }
        }
    }
    (v, grads)
}

/// Gradient of `C(θ) = 1 − |Tr(U†V(θ))| / N`.
fn cost_gradient(template: &Template, target: &Mat, params: &[f64]) -> Vec<f64> {
    let dim = 1usize << template.n_qubits();
    let (v, dvs) = value_and_grads(template, params);
    let mut w = C64::ZERO;
    for (a, b) in target.as_slice().iter().zip(v.as_slice()) {
        w += a.conj() * *b;
    }
    let n = dim as f64;
    let wabs = w.abs().max(1e-30);
    let wdir = c64(w.re / wabs, w.im / wabs);
    let mut grad = vec![0.0; params.len()];
    for (k, dv) in dvs.iter().enumerate() {
        let mut dw = C64::ZERO;
        for (a, b) in target.as_slice().iter().zip(dv.as_slice()) {
            dw += a.conj() * *b;
        }
        // d(1 − |w|/N) = −Re(conj(wdir)·dw)/N
        grad[k] = -(wdir.conj() * dw).re / n;
    }
    grad
}

/// Levenberg–Marquardt polish on the phase-aligned residuals
/// `vec(e^{-iφ}V(θ) − U)` — converges quadratically once inside the
/// basin, which Adam alone cannot do at 1e-10 scales.
fn gauss_newton_polish(template: &Template, target: &Mat, params: &mut [f64], iters: usize) -> f64 {
    let np = params.len();
    if np == 0 {
        return accurate_hs_distance(target, &template.unitary(params));
    }
    let mut best_d = accurate_hs_distance(target, &template.unitary(params));
    let mut lambda = 1e-9;
    for _ in 0..iters {
        let (v, dvs) = value_and_grads(template, params);
        let mut w = C64::ZERO;
        for (a, b) in target.as_slice().iter().zip(v.as_slice()) {
            w += a.conj() * *b;
        }
        if w.abs() < 1e-12 {
            break;
        }
        let phase = C64::cis(-w.arg());
        // Residual r and Jacobian J (real view, 2N² rows).
        let nn = v.as_slice().len();
        let mut r = vec![0.0; 2 * nn];
        for (i, (a, b)) in target.as_slice().iter().zip(v.as_slice()).enumerate() {
            let e = *b * phase - *a;
            r[2 * i] = e.re;
            r[2 * i + 1] = e.im;
        }
        // Normal equations JᵀJ δ = −Jᵀr, built column-by-column. The
        // global phase is a nuisance parameter: include its derivative
        // column (−i·e^{-iφ}V) so the solve is exact Gauss–Newton on the
        // quotient space (its δ component is simply discarded — the next
        // realignment absorbs it).
        let nv = np + 1;
        let mut jtj = vec![0.0; nv * nv];
        let mut jtr = vec![0.0; nv];
        let mut cols: Vec<Vec<f64>> = dvs
            .iter()
            .map(|dv| {
                let mut col = vec![0.0; 2 * nn];
                for (i, z) in dv.as_slice().iter().enumerate() {
                    let e = *z * phase;
                    col[2 * i] = e.re;
                    col[2 * i + 1] = e.im;
                }
                col
            })
            .collect();
        let mut phase_col = vec![0.0; 2 * nn];
        for (i, z) in v.as_slice().iter().enumerate() {
            let e = (-C64::I) * (*z * phase);
            phase_col[2 * i] = e.re;
            phase_col[2 * i + 1] = e.im;
        }
        cols.push(phase_col);
        for a in 0..nv {
            for b in a..nv {
                let dot: f64 = cols[a].iter().zip(&cols[b]).map(|(x, y)| x * y).sum();
                jtj[a * nv + b] = dot;
                jtj[b * nv + a] = dot;
            }
            jtr[a] = cols[a].iter().zip(&r).map(|(x, y)| x * y).sum();
        }
        // Damped solve with step-halving fallback.
        let mut improved = false;
        for _attempt in 0..6 {
            let mut m = jtj.clone();
            for a in 0..nv {
                m[a * nv + a] += lambda * (1.0 + jtj[a * nv + a]);
            }
            if let Some(delta) = solve_dense(&m, &jtr, nv) {
                let cand: Vec<f64> = params.iter().zip(&delta).map(|(p, d)| p - d).collect();
                let d = accurate_hs_distance(target, &template.unitary(&cand));
                if d < best_d {
                    params.copy_from_slice(&cand);
                    best_d = d;
                    lambda = (lambda * 0.3).max(1e-14);
                    improved = true;
                    break;
                }
            }
            lambda *= 10.0;
        }
        if !improved || best_d < 1e-14 {
            break;
        }
    }
    best_d
}

/// Gaussian elimination with partial pivoting for small dense systems.
fn solve_dense(m: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    let mut a = m.to_vec();
    let mut x = b.to_vec();
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for row in col + 1..n {
            if a[row * n + col].abs() > a[piv * n + col].abs() {
                piv = row;
            }
        }
        if a[piv * n + col].abs() < 1e-300 {
            return None;
        }
        if piv != col {
            for k in 0..n {
                a.swap(col * n + k, piv * n + k);
            }
            x.swap(col, piv);
        }
        let d = a[col * n + col];
        for row in col + 1..n {
            let f = a[row * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= f * a[col * n + k];
            }
            x[row] -= f * x[col];
        }
    }
    for col in (0..n).rev() {
        let mut acc = x[col];
        for k in col + 1..n {
            acc -= a[col * n + k] * x[k];
        }
        x[col] = acc / a[col * n + col];
    }
    Some(x)
}

/// Snaps parameters to nearby multiples of π/4 when doing so does not
/// worsen the distance to `target` (keeps synthesized circuits clean and
/// helps downstream rebasing drop trivial rotations).
pub fn snap_params(template: &Template, target: &Mat, params: &mut [f64], tol: f64) {
    let quarter = std::f64::consts::FRAC_PI_4;
    let mut current = accurate_hs_distance(target, &template.unitary(params));
    for k in 0..params.len() {
        let snapped = (params[k] / quarter).round() * quarter;
        if (snapped - params[k]).abs() < 1e-4 && snapped != params[k] {
            let old = params[k];
            params[k] = snapped;
            let d = accurate_hs_distance(target, &template.unitary(params));
            if d <= current.max(tol) {
                current = d.min(current);
            } else {
                params[k] = old;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::random::random_unitary;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(2);
        let tpl = Template::with_cx_sequence(2, &[(0, 1)]);
        let target = random_unitary(4, &mut rng);
        let params: Vec<f64> = (0..tpl.n_params()).map(|k| 0.3 * k as f64 - 1.0).collect();
        let grad = cost_gradient(&tpl, &target, &params);
        let cost = |p: &[f64]| {
            let v = tpl.unitary(p);
            let mut w = C64::ZERO;
            for (a, b) in target.as_slice().iter().zip(v.as_slice()) {
                w += a.conj() * *b;
            }
            1.0 - w.abs() / 4.0
        };
        let h = 1e-6;
        for k in 0..params.len() {
            let mut up = params.clone();
            up[k] += h;
            let mut dn = params.clone();
            dn[k] -= h;
            let fd = (cost(&up) - cost(&dn)) / (2.0 * h);
            assert!(
                (fd - grad[k]).abs() < 1e-5,
                "param {k}: fd {fd} vs analytic {}",
                grad[k]
            );
        }
    }

    #[test]
    fn instantiates_identity_with_zero_cx() {
        let mut rng = SmallRng::seed_from_u64(3);
        let tpl = Template::with_cx_sequence(2, &[]);
        let target = Mat::identity(4);
        let r = instantiate(&tpl, &target, &InstantiateOpts::default(), &mut rng);
        assert!(r.distance < 1e-8, "distance {}", r.distance);
    }

    #[test]
    fn instantiates_product_of_1q_gates() {
        let mut rng = SmallRng::seed_from_u64(4);
        let u0 = random_unitary(2, &mut rng);
        let u1 = random_unitary(2, &mut rng);
        let target = u0.kron(&u1);
        let tpl = Template::with_cx_sequence(2, &[]);
        let r = instantiate(&tpl, &target, &InstantiateOpts::default(), &mut rng);
        assert!(r.distance < 1e-8, "distance {}", r.distance);
    }

    #[test]
    fn instantiates_cx_itself() {
        let mut rng = SmallRng::seed_from_u64(5);
        let tpl = Template::with_cx_sequence(2, &[(0, 1)]);
        let target = qmath::gates::cx();
        let r = instantiate(&tpl, &target, &InstantiateOpts::default(), &mut rng);
        assert!(r.distance < 1e-8, "distance {}", r.distance);
    }

    #[test]
    fn three_cx_reaches_random_two_qubit_unitary() {
        let mut rng = SmallRng::seed_from_u64(6);
        let target = random_unitary(4, &mut rng);
        let tpl = Template::with_cx_sequence(2, &[(0, 1), (1, 0), (0, 1)]);
        let opts = InstantiateOpts {
            restarts: 8,
            iters: 800,
            ..InstantiateOpts::default()
        };
        let r = instantiate(&tpl, &target, &opts, &mut rng);
        assert!(r.distance < 1e-6, "distance {}", r.distance);
    }

    #[test]
    fn to_circuit_matches_template_unitary() {
        let mut rng = SmallRng::seed_from_u64(7);
        let tpl = Template::with_cx_sequence(2, &[(0, 1)]);
        let params: Vec<f64> = (0..tpl.n_params())
            .map(|_| rng.random::<f64>() * 2.0 - 1.0)
            .collect();
        let c = tpl.to_circuit(&params);
        let d = accurate_hs_distance(&tpl.unitary(&params), &c.unitary());
        assert!(d < 1e-10);
    }

    #[test]
    fn accurate_distance_handles_tiny_gaps() {
        let u = qmath::gates::rz(1.0);
        let v = qmath::gates::rz(1.0 + 1e-9);
        let d = accurate_hs_distance(&u, &v);
        // sin-like scaling: Δ ≈ θerr/2 · sqrt(…): must be ~5e-10, not 0 or 1e-8 noise.
        assert!(d > 1e-11 && d < 1e-8, "d = {d}");
    }

    #[test]
    fn snapping_cleans_near_zero_angles() {
        let tpl = Template::with_cx_sequence(1, &[]);
        let target = qmath::gates::u3(std::f64::consts::FRAC_PI_2, 0.0, 0.0);
        let mut params = vec![std::f64::consts::FRAC_PI_2 + 1e-9, 1e-9, -1e-9];
        snap_params(&tpl, &target, &mut params, 1e-8);
        assert_eq!(params[1], 0.0);
        assert_eq!(params[2], 0.0);
        assert!((params[0] - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }
}
