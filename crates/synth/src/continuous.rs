//! Synthesis for continuous gate sets (1, 2 and 3 qubits).
//!
//! * 1 qubit: analytic ZYZ via [`qcir::rebase::decompose_1q`].
//! * 2 qubits: CX-count escalation — try templates with 0, 1, 2, 3 CX
//!   gates in order and return the first that instantiates within
//!   tolerance (3 CX is universal for two qubits, so this terminates).
//! * 3 qubits: QSearch-style A* over CX placement sequences, each node
//!   scored by its instantiated distance (BQSKit's bottom-up search).

use crate::instantiate::{
    accurate_hs_distance, instantiate, snap_params, InstantiateOpts, Template,
};
use qcir::{rebase, Circuit, GateSet};
use qmath::Mat;
use rand::Rng;

/// Options for the continuous synthesizers.
#[derive(Debug, Clone)]
pub struct SynthOpts {
    /// Success threshold on the (accurate) Hilbert–Schmidt distance.
    pub tol: f64,
    /// Instantiation options used during structure search.
    pub search: InstantiateOpts,
    /// Instantiation options used to polish the accepted structure.
    pub polish: InstantiateOpts,
    /// 3-qubit search: maximum number of CX placements.
    pub max_cx: usize,
    /// 3-qubit search: maximum number of structure nodes to instantiate.
    pub max_nodes: usize,
}

impl Default for SynthOpts {
    fn default() -> Self {
        SynthOpts {
            tol: 1e-8,
            search: InstantiateOpts {
                restarts: 2,
                iters: 250,
                lr: 0.15,
                target: 1e-10,
                init: None,
            },
            polish: InstantiateOpts {
                restarts: 4,
                iters: 700,
                lr: 0.1,
                target: 1e-12,
                init: None,
            },
            max_cx: 8,
            max_nodes: 48,
        }
    }
}

/// A synthesized circuit together with its measured distance.
#[derive(Debug, Clone)]
pub struct Synthesized {
    /// The circuit, in `U3`/`CX` form (rebase to a target set afterwards).
    pub circuit: Circuit,
    /// Accurate Hilbert–Schmidt distance to the requested unitary.
    pub distance: f64,
}

/// Synthesizes a 1-qubit unitary directly (analytic, exact).
pub fn synthesize_1q(target: &Mat, set: GateSet) -> Option<Synthesized> {
    let circuit = rebase::decompose_1q(target, set).ok()?;
    let distance = if circuit.is_empty() {
        accurate_hs_distance(target, &Mat::identity(2))
    } else {
        accurate_hs_distance(target, &circuit.unitary())
    };
    Some(Synthesized { circuit, distance })
}

/// Synthesizes a 2-qubit unitary by CX-count escalation.
///
/// Returns the first structure whose instantiation reaches `opts.tol`;
/// guaranteed to succeed at 3 CX for any 2-qubit unitary (up to numerical
/// convergence — restarts mitigate local minima).
pub fn synthesize_2q<R: Rng + ?Sized>(
    target: &Mat,
    opts: &SynthOpts,
    rng: &mut R,
) -> Option<Synthesized> {
    assert_eq!(target.rows(), 4, "synthesize_2q expects a 4x4 unitary");
    let structures: [&[(usize, usize)]; 4] =
        [&[], &[(0, 1)], &[(0, 1), (1, 0)], &[(0, 1), (1, 0), (0, 1)]];
    for cx in structures {
        let tpl = Template::with_cx_sequence(2, cx);
        let probe = instantiate(&tpl, target, &opts.search, rng);
        if probe.distance <= opts.tol * 10.0 {
            // Polish (warm-started from the probe) and snap.
            let polished = instantiate(
                &tpl,
                target,
                &InstantiateOpts {
                    restarts: 1,
                    init: Some(probe.params.clone()),
                    ..opts.polish.clone()
                },
                rng,
            );
            let mut params = if polished.distance < probe.distance {
                polished.params
            } else {
                probe.params
            };
            snap_params(&tpl, target, &mut params, opts.tol);
            let d = accurate_hs_distance(target, &tpl.unitary(&params));
            if d <= opts.tol {
                return Some(Synthesized {
                    circuit: tpl.to_circuit(&params),
                    distance: d,
                });
            }
        }
    }
    // Last resort: heavy multistart on the full 3-CX template.
    let tpl = Template::with_cx_sequence(2, &[(0, 1), (1, 0), (0, 1)]);
    let r = instantiate(&tpl, target, &opts.polish, rng);
    if r.distance <= opts.tol {
        let mut params = r.params;
        snap_params(&tpl, target, &mut params, opts.tol);
        let d = accurate_hs_distance(target, &tpl.unitary(&params));
        return Some(Synthesized {
            circuit: tpl.to_circuit(&params),
            distance: d,
        });
    }
    None
}

/// QSearch-style A* synthesis of a 3-qubit unitary.
///
/// Frontier nodes are CX placement sequences; each is scored by its
/// instantiated distance plus a depth penalty, and the best node is
/// expanded by appending one of the six directed pairs. Returns `None`
/// if the search exhausts its node budget without reaching `opts.tol`.
pub fn synthesize_3q<R: Rng + ?Sized>(
    target: &Mat,
    opts: &SynthOpts,
    rng: &mut R,
) -> Option<Synthesized> {
    assert_eq!(target.rows(), 8, "synthesize_3q expects an 8x8 unitary");
    // Undirected pairs suffice: the surrounding U3s absorb direction.
    const PAIRS: [(usize, usize); 3] = [(0, 1), (0, 2), (1, 2)];

    #[derive(Clone)]
    struct Node {
        cx: Vec<(usize, usize)>,
        score: f64,
        dist: f64,
        params: Vec<f64>,
    }

    let eval = |cx: &[(usize, usize)], rng: &mut R| -> (f64, Vec<f64>) {
        let tpl = Template::with_cx_sequence(3, cx);
        let r = instantiate(&tpl, target, &opts.search, rng);
        (r.distance, r.params)
    };

    let mut frontier: Vec<Node> = Vec::new();
    let (d0, p0) = eval(&[], rng);
    frontier.push(Node {
        cx: vec![],
        score: d0,
        dist: d0,
        params: p0,
    });
    let mut evaluated = 1usize;
    let depth_penalty = 1e-3;

    let mut best: Option<Node> = None;
    while evaluated < opts.max_nodes {
        // Pop the lowest-score node.
        let idx = frontier
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.score.partial_cmp(&b.1.score).expect("no NaN scores"))
            .map(|(i, _)| i)?;
        let node = frontier.swap_remove(idx);
        if node.dist <= opts.tol * 10.0 {
            best = Some(node);
            break;
        }
        if node.cx.len() >= opts.max_cx {
            continue;
        }
        for &pair in &PAIRS {
            if node.cx.last() == Some(&pair) && node.cx.len() >= 2 {
                // Three identical pairs in a row never help; two can.
                let l = node.cx.len();
                if l >= 2 && node.cx[l - 1] == pair && node.cx[l - 2] == pair {
                    continue;
                }
            }
            let mut cx = node.cx.clone();
            cx.push(pair);
            let (d, p) = eval(&cx, rng);
            evaluated += 1;
            frontier.push(Node {
                score: d + depth_penalty * cx.len() as f64,
                dist: d,
                cx,
                params: p,
            });
            if evaluated >= opts.max_nodes {
                break;
            }
        }
    }
    // Fall back to the best frontier node if the budget ran out.
    let node = match best {
        Some(n) => n,
        None => frontier
            .into_iter()
            .min_by(|a, b| a.dist.partial_cmp(&b.dist).expect("no NaN"))?,
    };

    // Polish, warm-started from the node's parameters.
    let tpl = Template::with_cx_sequence(3, &node.cx);
    let polished = instantiate(
        &tpl,
        target,
        &InstantiateOpts {
            init: Some(node.params.clone()),
            ..opts.polish.clone()
        },
        rng,
    );
    let (mut params, dist) = if polished.distance < node.dist {
        (polished.params, polished.distance)
    } else {
        (node.params, node.dist)
    };
    if dist > opts.tol {
        return None;
    }
    snap_params(&tpl, target, &mut params, opts.tol);
    let d = accurate_hs_distance(target, &tpl.unitary(&params));
    Some(Synthesized {
        circuit: tpl.to_circuit(&params),
        distance: d,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Gate;
    use qmath::random::random_unitary;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn synth_1q_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(11);
        for set in [
            GateSet::Ibmq20,
            GateSet::IbmEagle,
            GateSet::Ionq,
            GateSet::Nam,
        ] {
            let u = random_unitary(2, &mut rng);
            let s = synthesize_1q(&u, set).unwrap();
            assert!(s.distance < 1e-7, "{set}: {}", s.distance);
        }
    }

    #[test]
    fn escalation_finds_zero_cx_for_local_unitary() {
        let mut rng = SmallRng::seed_from_u64(12);
        let u0 = random_unitary(2, &mut rng);
        let u1 = random_unitary(2, &mut rng);
        let target = u0.kron(&u1);
        let s = synthesize_2q(&target, &SynthOpts::default(), &mut rng).unwrap();
        assert_eq!(s.circuit.two_qubit_count(), 0);
        assert!(s.distance < 1e-8);
    }

    #[test]
    fn escalation_finds_one_cx_for_cx() {
        let mut rng = SmallRng::seed_from_u64(13);
        let s = synthesize_2q(&qmath::gates::cx(), &SynthOpts::default(), &mut rng).unwrap();
        assert!(s.circuit.two_qubit_count() <= 1);
        assert!(s.distance < 1e-8);
    }

    #[test]
    fn random_2q_unitary_synthesizes_with_three_cx() {
        let mut rng = SmallRng::seed_from_u64(14);
        let target = random_unitary(4, &mut rng);
        let s = synthesize_2q(&target, &SynthOpts::default(), &mut rng).unwrap();
        assert!(s.circuit.two_qubit_count() <= 3);
        assert!(s.distance < 1e-8, "distance {}", s.distance);
        // And the produced circuit really implements the unitary.
        let d = accurate_hs_distance(&target, &s.circuit.unitary());
        assert!(d < 1e-7);
    }

    #[test]
    fn swap_needs_three_cx() {
        let mut rng = SmallRng::seed_from_u64(15);
        let s = synthesize_2q(&qmath::gates::swap(), &SynthOpts::default(), &mut rng).unwrap();
        assert_eq!(s.circuit.two_qubit_count(), 3);
        assert!(s.distance < 1e-8);
    }

    #[test]
    fn three_qubit_search_compresses_redundant_circuit() {
        // A circuit that is secretly only one CX deep: CX(0,1) with junk
        // 1q gates — the search should find a ≤1-CX structure quickly.
        let mut rng = SmallRng::seed_from_u64(16);
        let mut c = Circuit::new(3);
        c.push(Gate::Rz(0.4), &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rx(-0.3), &[1]);
        c.push(Gate::Rz(0.9), &[2]);
        let target = c.unitary();
        let s = synthesize_3q(&target, &SynthOpts::default(), &mut rng).unwrap();
        assert!(s.circuit.two_qubit_count() <= 1);
        assert!(s.distance < 1e-8, "distance {}", s.distance);
    }

    #[test]
    fn three_qubit_search_handles_two_cx_targets() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut c = Circuit::new(3);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.7), &[1]);
        c.push(Gate::Cx, &[1, 2]);
        let target = c.unitary();
        let s = synthesize_3q(&target, &SynthOpts::default(), &mut rng).unwrap();
        assert!(
            s.circuit.two_qubit_count() <= 2,
            "got {}",
            s.circuit.two_qubit_count()
        );
        assert!(s.distance < 1e-8);
    }
}
