//! The resynthesis transformation: subcircuit → unitary → new circuit.
//!
//! This is the `resynth : (C × ℝ) → C` function of the paper's §4.1 — a
//! thin wrapper that computes the subcircuit's unitary, invokes the
//! appropriate synthesizer for the gate set and width, rebases the result,
//! and reports the *measured* Hilbert–Schmidt distance so the caller can
//! charge the ε-budget exactly (Thm. 4.2 accounting).

use crate::continuous::{synthesize_1q, synthesize_2q, synthesize_3q, SynthOpts};
use crate::finite::{synthesize_finite, Database1q, FiniteSynthOpts};
use crate::instantiate::accurate_hs_distance;
use qcache::{QCache, Registry};
use qcir::{rebase, Circuit, GateSet};
use qmath::Mat;
use rand::Rng;
use std::sync::{Arc, OnceLock};

/// Maximum subcircuit width resynthesis accepts (the paper limits random
/// subcircuits to 3 qubits; unitary size is exponential in width).
pub const MAX_RESYNTH_QUBITS: usize = 3;

/// Hashes the synthesis-power knobs of a profile (restart counts,
/// iteration caps, node/CX/length bounds) into the opaque fingerprint
/// the memo cache uses to expire negative entries on profile changes.
fn budget_profile_fingerprint(opts: &ResynthOpts) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        let mut x = h ^ v.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }
    let c = &opts.continuous;
    let f = &opts.finite;
    let mut h = 0x51CA_FFE5u64;
    for v in [
        c.search.restarts as u64,
        c.search.iters as u64,
        c.polish.restarts as u64,
        c.polish.iters as u64,
        c.max_cx as u64,
        c.max_nodes as u64,
        f.iters as u64,
        f.restarts as u64,
        f.max_len as u64,
    ] {
        h = mix(h, v);
    }
    // 0 means "no profile declared yet" on the cache side.
    h.max(1)
}

/// A resynthesis outcome.
#[derive(Debug, Clone)]
pub struct Resynthesized {
    /// The replacement subcircuit, native to the target gate set.
    pub circuit: Circuit,
    /// Measured Hilbert–Schmidt distance to the original subcircuit.
    pub epsilon: f64,
}

/// Configuration for a [`Resynthesizer`].
#[derive(Debug, Clone, Default)]
pub struct ResynthOpts {
    /// Options for continuous synthesis.
    pub continuous: SynthOpts,
    /// Options for finite-set synthesis.
    pub finite: FiniteSynthOpts,
}

impl ResynthOpts {
    /// A cheap profile for *in-loop* resynthesis (GUOQ calls resynthesis
    /// thousands of times per run; each call must stay in the tens of
    /// milliseconds). Single-sweep optimizers (the BQSKit-style baseline)
    /// keep the thorough default profile instead.
    pub fn fast() -> Self {
        let mut o = ResynthOpts::default();
        o.continuous.search.restarts = 1;
        o.continuous.search.iters = 120;
        o.continuous.polish.restarts = 1;
        o.continuous.polish.iters = 250;
        o.continuous.max_nodes = 12;
        o.continuous.max_cx = 6;
        o.finite.iters = 1200;
        o.finite.restarts = 2;
        o.finite.max_len = 8;
        o
    }
}

/// How a resynthesis call interacted with the memo cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The replacement was served (and matrix-verified) from the cache.
    Hit,
    /// A known-failure marker was served: the instantiation was skipped
    /// and the call reports no replacement — the saved work of a hit,
    /// without a circuit.
    NegativeHit,
    /// The cache was consulted, missed (or rejected its entry), and a
    /// fresh instantiation ran (its result — success or failure — was
    /// recorded in the cache).
    Miss,
    /// No cache was supplied (or the input was refused before the cache
    /// could be consulted).
    Bypass,
}

/// The shared fast-profile resynthesizers (one per gate set per
/// process); see [`shared_resynthesizer`].
static SHARED_FAST: Registry<Resynthesizer> = Registry::new();
/// The shared thorough-profile resynthesizers.
static SHARED_THOROUGH: Registry<Resynthesizer> = Registry::new();
/// The 1-qubit BFS database for finite sets: ~16k entries, by far the
/// most expensive piece of resynthesizer setup, and a pure constant —
/// built once per process and shared by every resynthesizer.
static DB_1Q: OnceLock<Arc<Database1q>> = OnceLock::new();

/// Options profile for [`shared_resynthesizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResynthProfile {
    /// [`ResynthOpts::fast`] — the in-loop GUOQ profile.
    Fast,
    /// [`ResynthOpts::default`] — the single-sweep baseline profile.
    Thorough,
}

/// The process-wide shared resynthesizer for `set` under `profile`,
/// built on first request (the per-gate-set rule of the `qcache`
/// [`Registry`]): jobs no longer pay resynthesizer setup, and every
/// engine in the process points at the same instance.
pub fn shared_resynthesizer(set: GateSet, profile: ResynthProfile) -> Arc<Resynthesizer> {
    match profile {
        ResynthProfile::Fast => {
            SHARED_FAST.get_or_init(set, || Resynthesizer::with_opts(set, ResynthOpts::fast()))
        }
        ResynthProfile::Thorough => SHARED_THOROUGH.get_or_init(set, || Resynthesizer::new(set)),
    }
}

/// Resynthesizes subcircuits for a fixed gate set.
///
/// Construction is cheap for continuous sets; for Clifford+T the
/// 1-qubit BFS database is built once per process and shared (cloning a
/// resynthesizer clones an `Arc`, not the database).
#[derive(Debug, Clone)]
pub struct Resynthesizer {
    set: GateSet,
    opts: ResynthOpts,
    db_1q: Option<Arc<Database1q>>,
    /// Fingerprint of the synthesis-budget profile (restart counts,
    /// iteration caps, replacement-length bounds), declared to the memo
    /// cache on every consult so negative entries recorded under a
    /// smaller profile expire when the budget grows (see
    /// [`QCache::note_budget_profile`]).
    profile_fp: u64,
}

impl Resynthesizer {
    /// Creates a resynthesizer for `set` with default options.
    pub fn new(set: GateSet) -> Self {
        Self::with_opts(set, ResynthOpts::default())
    }

    /// Creates a resynthesizer with explicit options.
    pub fn with_opts(set: GateSet, opts: ResynthOpts) -> Self {
        let db_1q = if set.is_continuous() {
            None
        } else {
            Some(
                DB_1Q
                    .get_or_init(|| Arc::new(Database1q::build(9, 16384)))
                    .clone(),
            )
        };
        let profile_fp = budget_profile_fingerprint(&opts);
        Resynthesizer {
            set,
            opts,
            db_1q,
            profile_fp,
        }
    }

    /// The target gate set.
    pub fn gate_set(&self) -> GateSet {
        self.set
    }

    /// Resynthesizes `sub` (≤ 3 qubits) with error tolerance `eps`.
    ///
    /// Returns a native replacement whose measured distance to `sub` is at
    /// most `eps`, or `None` when synthesis fails, exceeds the tolerance,
    /// or the input is too wide. No gate-count judgement is made here —
    /// accepting or rejecting the replacement is the optimizer's decision.
    pub fn resynthesize<R: Rng + ?Sized>(
        &self,
        sub: &Circuit,
        eps: f64,
        rng: &mut R,
    ) -> Option<Resynthesized> {
        self.resynthesize_cached(sub, eps, rng, None).0
    }

    /// [`Self::resynthesize`] through a memo cache: the subcircuit's
    /// unitary is fingerprinted and looked up **before** any numerical
    /// instantiation; a verified hit returns the cached replacement
    /// (with its *measured* distance to this exact target — collisions
    /// are rejected by [`QCache::lookup`]'s matrix check, so the
    /// ε accounting on the hit path is as exact as on the miss path),
    /// and a known-failure entry short-circuits to `None` (a doomed
    /// instantiation costs the same budget as a successful one —
    /// skipping it is half the cache's win on repeat traffic). A miss
    /// falls through to fresh synthesis and populates the cache with
    /// the result, successful or not.
    ///
    /// Note that a hit consumes no RNG draws while a miss consumes the
    /// synthesizer's usual stream, so cached and uncached searches
    /// explore different (equally sound) trajectories.
    pub fn resynthesize_cached<R: Rng + ?Sized>(
        &self,
        sub: &Circuit,
        eps: f64,
        rng: &mut R,
        cache: Option<&QCache>,
    ) -> (Option<Resynthesized>, CacheOutcome) {
        let n = sub.num_qubits();
        if n == 0 || n > MAX_RESYNTH_QUBITS || sub.is_empty() {
            return (None, CacheOutcome::Bypass);
        }
        let Some(cache) = cache else {
            let result = self
                .synthesize_target(&sub.unitary(), n, sub.len(), eps, rng)
                .map(|(native, _, measured)| Resynthesized {
                    circuit: native,
                    epsilon: measured,
                });
            return (result, CacheOutcome::Bypass);
        };
        // Declare this call's budget profile before consulting: a
        // "fails at (ε, budget)" recorded under a smaller profile must
        // not be served to this (possibly grown) one.
        cache.note_budget_profile(self.profile_fp);
        let target = sub.unitary();
        let fp = qcache::fingerprint(&target, self.set);
        // The cache is consulted under the same replacement-length
        // budget fresh synthesis would run with, so a hit never serves
        // a circuit this call's own instantiation could not have
        // produced, and a known-failure under a tighter budget never
        // blocks a call with a roomier one.
        let len_budget = self.length_budget(n, sub.len());
        match cache.lookup(&fp, &target, eps, len_budget) {
            qcache::Lookup::Hit(hit) => {
                return (
                    Some(Resynthesized {
                        circuit: hit.circuit,
                        epsilon: hit.epsilon,
                    }),
                    CacheOutcome::Hit,
                )
            }
            qcache::Lookup::KnownFailure => return (None, CacheOutcome::NegativeHit),
            qcache::Lookup::Miss => {}
        }
        match self.synthesize_target(&target, n, sub.len(), eps, rng) {
            Some((native, native_u, measured)) => {
                cache.insert(fp, &native, native_u);
                (
                    Some(Resynthesized {
                        circuit: native,
                        epsilon: measured,
                    }),
                    CacheOutcome::Miss,
                )
            }
            None => {
                cache.insert_failure(fp, eps, len_budget);
                (None, CacheOutcome::Miss)
            }
        }
    }

    /// The replacement-length budget `synthesize_target` runs with for
    /// an `n`-qubit, `sub_len`-gate window: the finite multi-qubit path
    /// caps MCMC at strictly below the window (and at the profile's
    /// `max_len`); every other path is uncapped.
    fn length_budget(&self, n: usize, sub_len: usize) -> usize {
        if self.set.is_continuous() || n == 1 {
            usize::MAX
        } else {
            self.opts
                .finite
                .max_len
                .min(sub_len.saturating_sub(1))
                .max(1)
        }
    }

    /// The synthesis core: target unitary → native replacement + its
    /// unitary + measured distance (`None` on failure or out-of-ε).
    fn synthesize_target<R: Rng + ?Sized>(
        &self,
        target: &Mat,
        n: usize,
        sub_len: usize,
        eps: f64,
        rng: &mut R,
    ) -> Option<(Circuit, Mat, f64)> {
        let mut opts = self.opts.clone();
        opts.continuous.tol = opts.continuous.tol.min(eps.max(1e-12));

        let raw = if self.set.is_continuous() {
            match n {
                1 => synthesize_1q(target, self.set).map(|s| s.circuit),
                2 => synthesize_2q(target, &opts.continuous, rng).map(|s| s.circuit),
                _ => synthesize_3q(target, &opts.continuous, rng).map(|s| s.circuit),
            }
        } else {
            match n {
                1 => self
                    .db_1q
                    .as_ref()
                    .and_then(|db| db.lookup(target))
                    .or_else(|| synthesize_finite(target, 1, &opts.finite, rng)),
                _ => {
                    // Cap the length at one less than the input so MCMC
                    // only returns strictly smaller circuits; wider
                    // budgets just waste time.
                    let mut fo = opts.finite.clone();
                    fo.max_len = fo.max_len.min(sub_len.saturating_sub(1)).max(1);
                    synthesize_finite(target, n, &fo, rng)
                }
            }
        }?;

        let native = rebase::rebase(&raw, self.set).ok()?;
        let native = qcir::circuit::Circuit::from_instructions(
            native.num_qubits(),
            native
                .iter()
                .filter(|i| !i.gate.is_identity(1e-9))
                .copied()
                .collect(),
        );
        let native_u = if native.is_empty() {
            Mat::identity(1 << n)
        } else {
            native.unitary()
        };
        let measured = accurate_hs_distance(target, &native_u);
        if measured > eps {
            return None;
        }
        Some((native, native_u, measured))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Gate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn paper_fig5_example() {
        // Resynthesizing Rz(π/2);CX;H;Rz(π/2) (2 qubits) must produce an
        // equivalent circuit — and a good synthesizer finds the 3-gate
        // form of Fig. 5.
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(FRAC_PI_2), &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::H, &[1]);
        c.push(Gate::Rz(FRAC_PI_2), &[0]);
        let rs = Resynthesizer::new(GateSet::Nam);
        let mut rng = SmallRng::seed_from_u64(31);
        let out = rs.resynthesize(&c, 1e-8, &mut rng).unwrap();
        assert!(out.epsilon < 1e-8);
        assert!(qsim::circuits_equivalent(&c, &out.circuit, 1e-6));
        assert!(out.circuit.two_qubit_count() <= 1);
    }

    #[test]
    fn deep_rz_comb_collapses() {
        // Fig. 6b: a deep alternation of Rz and CX on 2 qubits should
        // resynthesize to something drastically smaller.
        let mut c = Circuit::new(2);
        for k in 0..8 {
            c.push(Gate::Rz(FRAC_PI_2 / 2.0), &[0]);
            if k % 2 == 0 {
                c.push(Gate::Cx, &[0, 1]);
                c.push(Gate::Cx, &[0, 1]);
            }
        }
        let rs = Resynthesizer::new(GateSet::Nam);
        let mut rng = SmallRng::seed_from_u64(32);
        let out = rs.resynthesize(&c, 1e-8, &mut rng).unwrap();
        assert!(out.circuit.len() < c.len() / 2);
        assert!(qsim::circuits_equivalent(&c, &out.circuit, 1e-6));
    }

    #[test]
    fn respects_eps_budget_zero() {
        // With eps = 0 only numerically-exact replacements pass; the
        // 1-qubit analytic path qualifies (distance ~1e-16).
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0.4), &[0]);
        c.push(Gate::Rz(0.5), &[0]);
        let rs = Resynthesizer::new(GateSet::IbmEagle);
        let mut rng = SmallRng::seed_from_u64(33);
        let out = rs.resynthesize(&c, 1e-12, &mut rng).unwrap();
        assert!(out.epsilon <= 1e-12);
        assert!(out.circuit.len() <= 1);
    }

    #[test]
    fn clifford_t_pair_compresses() {
        let mut c = Circuit::new(1);
        c.push(Gate::T, &[0]);
        c.push(Gate::T, &[0]);
        let rs = Resynthesizer::new(GateSet::CliffordT);
        let mut rng = SmallRng::seed_from_u64(34);
        let out = rs.resynthesize(&c, 1e-7, &mut rng).unwrap();
        assert_eq!(out.circuit.len(), 1);
        assert_eq!(out.circuit.t_count(), 0); // S, not T
    }

    #[test]
    fn cached_resynthesis_hits_on_repeat_and_verifies() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(FRAC_PI_2), &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::H, &[1]);
        c.push(Gate::Rz(FRAC_PI_2), &[0]);
        let rs = Resynthesizer::new(GateSet::Nam);
        let cache = QCache::with_gate_budget(1024);
        let mut rng = SmallRng::seed_from_u64(41);
        let (first, o1) = rs.resynthesize_cached(&c, 1e-8, &mut rng, Some(&cache));
        let first = first.unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        let (second, o2) = rs.resynthesize_cached(&c, 1e-8, &mut rng, Some(&cache));
        let second = second.unwrap();
        assert_eq!(o2, CacheOutcome::Hit);
        assert_eq!(second.circuit, first.circuit);
        assert!(second.epsilon <= 1e-8);
        assert!(qsim::circuits_equivalent(&c, &second.circuit, 1e-6));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        // A global-phase-rotated variant of the same window also hits
        // (the fingerprint is phase-invariant and verification measures
        // against the *new* target).
        let mut shifted = Circuit::new(2);
        shifted.push(Gate::Rz(FRAC_PI_2), &[0]);
        shifted.push(Gate::Cx, &[0, 1]);
        shifted.push(Gate::H, &[1]);
        shifted.push(Gate::P(FRAC_PI_2), &[0]); // Rz ~ P up to global phase
        let (found, o3) = rs.resynthesize_cached(&shifted, 1e-6, &mut rng, Some(&cache));
        assert!(found.is_some());
        assert_eq!(o3, CacheOutcome::Hit);
    }

    #[test]
    fn failed_synthesis_is_negative_cached() {
        // ε = 0 on a non-identity 2q window: synthesis must fail, and
        // the failure must be recorded so the retry skips straight to
        // `None` (a negative hit, no fresh instantiation).
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(0.37), &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.91), &[1]);
        let rs = Resynthesizer::with_opts(GateSet::Nam, ResynthOpts::fast());
        let cache = QCache::with_gate_budget(1024);
        let mut rng = SmallRng::seed_from_u64(51);
        let (r1, o1) = rs.resynthesize_cached(&c, 0.0, &mut rng, Some(&cache));
        assert!(r1.is_none());
        assert_eq!(o1, CacheOutcome::Miss);
        let s1 = cache.stats();
        assert_eq!((s1.misses, s1.inserts), (1, 1));
        let (r2, o2) = rs.resynthesize_cached(&c, 0.0, &mut rng, Some(&cache));
        assert!(r2.is_none());
        assert_eq!(o2, CacheOutcome::NegativeHit);
        let s2 = cache.stats();
        assert_eq!(s2.negative_hits, 1, "retry must be served the failure");
        assert_eq!(s2.misses, 1, "no second instantiation");
        // A looser ε is allowed to try again (and succeeds here).
        let (out, outcome) = rs.resynthesize_cached(&c, 1e-6, &mut rng, Some(&cache));
        let out = out.expect("loose eps succeeds");
        assert_eq!(outcome, CacheOutcome::Miss);
        assert!(qsim::circuits_equivalent(&c, &out.circuit, 1e-5));
    }

    #[test]
    fn grown_budget_profile_retries_instead_of_serving_stale_failure() {
        // A failure negative-cached under the cheap fast profile must
        // not doom the same window for a resynthesizer with a grown
        // budget sharing the cache: the thorough consult re-declares
        // its (different) profile, the stale entry expires, and a
        // fresh instantiation runs.
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(0.37), &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.91), &[1]);
        let fast = Resynthesizer::with_opts(GateSet::Nam, ResynthOpts::fast());
        let grown = Resynthesizer::new(GateSet::Nam); // thorough profile
        assert_ne!(fast.profile_fp, grown.profile_fp);
        let cache = QCache::with_gate_budget(1024);
        let mut rng = SmallRng::seed_from_u64(61);
        let (r1, o1) = fast.resynthesize_cached(&c, 0.0, &mut rng, Some(&cache));
        assert!(r1.is_none());
        assert_eq!(o1, CacheOutcome::Miss);
        // Same profile: the failure is served.
        let (_, o2) = fast.resynthesize_cached(&c, 0.0, &mut rng, Some(&cache));
        assert_eq!(o2, CacheOutcome::NegativeHit);
        // Grown profile: NOT served the stale failure — it retries.
        let (_, o3) = grown.resynthesize_cached(&c, 0.0, &mut rng, Some(&cache));
        assert_eq!(
            o3,
            CacheOutcome::Miss,
            "a grown budget must retry, not inherit the cheap profile's failure"
        );
    }

    #[test]
    fn shared_resynthesizer_is_one_instance_per_set() {
        let a = shared_resynthesizer(GateSet::Nam, ResynthProfile::Fast);
        let b = shared_resynthesizer(GateSet::Nam, ResynthProfile::Fast);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shared_resynthesizer(GateSet::Ionq, ResynthProfile::Fast);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.gate_set(), GateSet::Ionq);
    }

    #[test]
    fn too_wide_input_refused() {
        let c = Circuit::new(4);
        let rs = Resynthesizer::new(GateSet::Nam);
        let mut rng = SmallRng::seed_from_u64(35);
        assert!(rs.resynthesize(&c, 1e-8, &mut rng).is_none());
    }

    #[test]
    fn ionq_resynthesis_native() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rx(0.3), &[0]);
        c.push(Gate::Rxx(0.7), &[0, 1]);
        c.push(Gate::Ry(-0.4), &[1]);
        let rs = Resynthesizer::new(GateSet::Ionq);
        let mut rng = SmallRng::seed_from_u64(36);
        let out = rs.resynthesize(&c, 1e-6, &mut rng).unwrap();
        for ins in out.circuit.iter() {
            assert!(GateSet::Ionq.contains(ins.gate), "leaked {}", ins.gate);
        }
        assert!(qsim::circuits_equivalent(&c, &out.circuit, 1e-5));
    }
}
