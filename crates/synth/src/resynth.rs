//! The resynthesis transformation: subcircuit → unitary → new circuit.
//!
//! This is the `resynth : (C × ℝ) → C` function of the paper's §4.1 — a
//! thin wrapper that computes the subcircuit's unitary, invokes the
//! appropriate synthesizer for the gate set and width, rebases the result,
//! and reports the *measured* Hilbert–Schmidt distance so the caller can
//! charge the ε-budget exactly (Thm. 4.2 accounting).

use crate::continuous::{synthesize_1q, synthesize_2q, synthesize_3q, SynthOpts};
use crate::finite::{synthesize_finite, Database1q, FiniteSynthOpts};
use crate::instantiate::accurate_hs_distance;
use qcir::{rebase, Circuit, GateSet};
use rand::Rng;

/// Maximum subcircuit width resynthesis accepts (the paper limits random
/// subcircuits to 3 qubits; unitary size is exponential in width).
pub const MAX_RESYNTH_QUBITS: usize = 3;

/// A resynthesis outcome.
#[derive(Debug, Clone)]
pub struct Resynthesized {
    /// The replacement subcircuit, native to the target gate set.
    pub circuit: Circuit,
    /// Measured Hilbert–Schmidt distance to the original subcircuit.
    pub epsilon: f64,
}

/// Configuration for a [`Resynthesizer`].
#[derive(Debug, Clone, Default)]
pub struct ResynthOpts {
    /// Options for continuous synthesis.
    pub continuous: SynthOpts,
    /// Options for finite-set synthesis.
    pub finite: FiniteSynthOpts,
}

impl ResynthOpts {
    /// A cheap profile for *in-loop* resynthesis (GUOQ calls resynthesis
    /// thousands of times per run; each call must stay in the tens of
    /// milliseconds). Single-sweep optimizers (the BQSKit-style baseline)
    /// keep the thorough default profile instead.
    pub fn fast() -> Self {
        let mut o = ResynthOpts::default();
        o.continuous.search.restarts = 1;
        o.continuous.search.iters = 120;
        o.continuous.polish.restarts = 1;
        o.continuous.polish.iters = 250;
        o.continuous.max_nodes = 12;
        o.continuous.max_cx = 6;
        o.finite.iters = 1200;
        o.finite.restarts = 2;
        o.finite.max_len = 8;
        o
    }
}

/// Resynthesizes subcircuits for a fixed gate set.
///
/// Construction is cheap for continuous sets; for Clifford+T it builds the
/// 1-qubit BFS database once.
#[derive(Debug, Clone)]
pub struct Resynthesizer {
    set: GateSet,
    opts: ResynthOpts,
    db_1q: Option<Database1q>,
}

impl Resynthesizer {
    /// Creates a resynthesizer for `set` with default options.
    pub fn new(set: GateSet) -> Self {
        Self::with_opts(set, ResynthOpts::default())
    }

    /// Creates a resynthesizer with explicit options.
    pub fn with_opts(set: GateSet, opts: ResynthOpts) -> Self {
        let db_1q = if set.is_continuous() {
            None
        } else {
            Some(Database1q::build(9, 16384))
        };
        Resynthesizer { set, opts, db_1q }
    }

    /// The target gate set.
    pub fn gate_set(&self) -> GateSet {
        self.set
    }

    /// Resynthesizes `sub` (≤ 3 qubits) with error tolerance `eps`.
    ///
    /// Returns a native replacement whose measured distance to `sub` is at
    /// most `eps`, or `None` when synthesis fails, exceeds the tolerance,
    /// or the input is too wide. No gate-count judgement is made here —
    /// accepting or rejecting the replacement is the optimizer's decision.
    pub fn resynthesize<R: Rng + ?Sized>(
        &self,
        sub: &Circuit,
        eps: f64,
        rng: &mut R,
    ) -> Option<Resynthesized> {
        let n = sub.num_qubits();
        if n == 0 || n > MAX_RESYNTH_QUBITS || sub.is_empty() {
            return None;
        }
        let target = sub.unitary();
        let mut opts = self.opts.clone();
        opts.continuous.tol = opts.continuous.tol.min(eps.max(1e-12));

        let raw = if self.set.is_continuous() {
            match n {
                1 => synthesize_1q(&target, self.set).map(|s| s.circuit),
                2 => synthesize_2q(&target, &opts.continuous, rng).map(|s| s.circuit),
                _ => synthesize_3q(&target, &opts.continuous, rng).map(|s| s.circuit),
            }
        } else {
            match n {
                1 => self
                    .db_1q
                    .as_ref()
                    .and_then(|db| db.lookup(&target))
                    .or_else(|| synthesize_finite(&target, 1, &opts.finite, rng)),
                _ => {
                    // Cap the length at one less than the input so MCMC
                    // only returns strictly smaller circuits; wider
                    // budgets just waste time.
                    let mut fo = opts.finite.clone();
                    fo.max_len = fo.max_len.min(sub.len().saturating_sub(1)).max(1);
                    synthesize_finite(&target, n, &fo, rng)
                }
            }
        }?;

        let native = rebase::rebase(&raw, self.set).ok()?;
        let native = qcir::circuit::Circuit::from_instructions(
            native.num_qubits(),
            native
                .iter()
                .filter(|i| !i.gate.is_identity(1e-9))
                .copied()
                .collect(),
        );
        let measured = if native.is_empty() {
            accurate_hs_distance(&target, &qmath::Mat::identity(1 << n))
        } else {
            accurate_hs_distance(&target, &native.unitary())
        };
        if measured > eps {
            return None;
        }
        Some(Resynthesized {
            circuit: native,
            epsilon: measured,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Gate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn paper_fig5_example() {
        // Resynthesizing Rz(π/2);CX;H;Rz(π/2) (2 qubits) must produce an
        // equivalent circuit — and a good synthesizer finds the 3-gate
        // form of Fig. 5.
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(FRAC_PI_2), &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::H, &[1]);
        c.push(Gate::Rz(FRAC_PI_2), &[0]);
        let rs = Resynthesizer::new(GateSet::Nam);
        let mut rng = SmallRng::seed_from_u64(31);
        let out = rs.resynthesize(&c, 1e-8, &mut rng).unwrap();
        assert!(out.epsilon < 1e-8);
        assert!(qsim::circuits_equivalent(&c, &out.circuit, 1e-6));
        assert!(out.circuit.two_qubit_count() <= 1);
    }

    #[test]
    fn deep_rz_comb_collapses() {
        // Fig. 6b: a deep alternation of Rz and CX on 2 qubits should
        // resynthesize to something drastically smaller.
        let mut c = Circuit::new(2);
        for k in 0..8 {
            c.push(Gate::Rz(FRAC_PI_2 / 2.0), &[0]);
            if k % 2 == 0 {
                c.push(Gate::Cx, &[0, 1]);
                c.push(Gate::Cx, &[0, 1]);
            }
        }
        let rs = Resynthesizer::new(GateSet::Nam);
        let mut rng = SmallRng::seed_from_u64(32);
        let out = rs.resynthesize(&c, 1e-8, &mut rng).unwrap();
        assert!(out.circuit.len() < c.len() / 2);
        assert!(qsim::circuits_equivalent(&c, &out.circuit, 1e-6));
    }

    #[test]
    fn respects_eps_budget_zero() {
        // With eps = 0 only numerically-exact replacements pass; the
        // 1-qubit analytic path qualifies (distance ~1e-16).
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0.4), &[0]);
        c.push(Gate::Rz(0.5), &[0]);
        let rs = Resynthesizer::new(GateSet::IbmEagle);
        let mut rng = SmallRng::seed_from_u64(33);
        let out = rs.resynthesize(&c, 1e-12, &mut rng).unwrap();
        assert!(out.epsilon <= 1e-12);
        assert!(out.circuit.len() <= 1);
    }

    #[test]
    fn clifford_t_pair_compresses() {
        let mut c = Circuit::new(1);
        c.push(Gate::T, &[0]);
        c.push(Gate::T, &[0]);
        let rs = Resynthesizer::new(GateSet::CliffordT);
        let mut rng = SmallRng::seed_from_u64(34);
        let out = rs.resynthesize(&c, 1e-7, &mut rng).unwrap();
        assert_eq!(out.circuit.len(), 1);
        assert_eq!(out.circuit.t_count(), 0); // S, not T
    }

    #[test]
    fn too_wide_input_refused() {
        let c = Circuit::new(4);
        let rs = Resynthesizer::new(GateSet::Nam);
        let mut rng = SmallRng::seed_from_u64(35);
        assert!(rs.resynthesize(&c, 1e-8, &mut rng).is_none());
    }

    #[test]
    fn ionq_resynthesis_native() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rx(0.3), &[0]);
        c.push(Gate::Rxx(0.7), &[0, 1]);
        c.push(Gate::Ry(-0.4), &[1]);
        let rs = Resynthesizer::new(GateSet::Ionq);
        let mut rng = SmallRng::seed_from_u64(36);
        let out = rs.resynthesize(&c, 1e-6, &mut rng).unwrap();
        for ins in out.circuit.iter() {
            assert!(GateSet::Ionq.contains(ins.gate), "leaked {}", ins.gate);
        }
        assert!(qsim::circuits_equivalent(&c, &out.circuit, 1e-5));
    }
}
