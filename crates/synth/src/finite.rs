//! Synthetiq-style synthesis for finite gate sets (Clifford+T).
//!
//! Two components, mirroring the paper's Q4 instantiation:
//!
//! * a BFS **database** of minimal 1-qubit Clifford+T circuits up to a
//!   bounded depth, keyed by a phase-normalized unitary fingerprint;
//! * a simulated-annealing **MCMC search** over fixed-length gate
//!   sequences (Synthetiq's core loop [43]): random single-gate mutations
//!   accepted by a Metropolis rule on the Hilbert–Schmidt distance.
//!
//! Finite-set synthesis is much harder than continuous synthesis — the
//! paper leans on this fact to explain why rewrite rules carry more weight
//! in the FTQC regime (Fig. 13); our implementation reproduces exactly
//! that asymmetry.

use crate::instantiate::accurate_hs_distance;
use qcir::{Circuit, Gate, Qubit};
use qmath::Mat;
use rand::Rng;
use std::collections::HashMap;

/// The 1-qubit Clifford+T alphabet.
const GATES_1Q: [Gate; 6] = [Gate::H, Gate::S, Gate::Sdg, Gate::T, Gate::Tdg, Gate::X];

/// Phase-normalized fingerprint of a unitary, robust to 1e-6 wobble.
fn fingerprint(u: &Mat) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut best = qmath::C64::ZERO;
    for z in u.as_slice() {
        if z.abs() > best.abs() + 1e-9 {
            best = *z;
        }
    }
    let phase = if best.abs() > 1e-9 {
        qmath::C64::cis(-best.arg())
    } else {
        qmath::C64::ONE
    };
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for z in u.as_slice() {
        let w = *z * phase;
        ((w.re * 1e5).round() as i64).hash(&mut h);
        ((w.im * 1e5).round() as i64).hash(&mut h);
    }
    h.finish()
}

/// A BFS database of minimal 1-qubit Clifford+T sequences.
#[derive(Debug, Clone)]
pub struct Database1q {
    map: HashMap<u64, Vec<Gate>>,
}

impl Database1q {
    /// Builds the database by breadth-first enumeration up to `max_len`
    /// gates (deduplicated by fingerprint, so only minimal sequences are
    /// stored) with at most `cap` entries.
    pub fn build(max_len: usize, cap: usize) -> Self {
        let mut map: HashMap<u64, Vec<Gate>> = HashMap::new();
        let mut frontier: Vec<(Mat, Vec<Gate>)> = vec![(Mat::identity(2), vec![])];
        map.insert(fingerprint(&Mat::identity(2)), vec![]);
        for _depth in 0..max_len {
            let mut next = Vec::new();
            for (u, seq) in &frontier {
                for &g in &GATES_1Q {
                    let nu = g.matrix().matmul(u);
                    let fp = fingerprint(&nu);
                    if map.len() >= cap {
                        return Database1q { map };
                    }
                    if let std::collections::hash_map::Entry::Vacant(e) = map.entry(fp) {
                        let mut nseq = seq.clone();
                        nseq.push(g);
                        e.insert(nseq.clone());
                        next.push((nu, nseq));
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        Database1q { map }
    }

    /// Number of distinct unitaries stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a minimal sequence for `target` (up to global phase).
    pub fn lookup(&self, target: &Mat) -> Option<Circuit> {
        let seq = self.map.get(&fingerprint(target))?;
        let mut c = Circuit::new(1);
        for &g in seq {
            c.push(g, &[0]);
        }
        // Defend against fingerprint collisions.
        let d = if c.is_empty() {
            accurate_hs_distance(target, &Mat::identity(2))
        } else {
            accurate_hs_distance(target, &c.unitary())
        };
        if d < 1e-6 {
            Some(c)
        } else {
            None
        }
    }
}

/// Options for the MCMC search.
#[derive(Debug, Clone)]
pub struct FiniteSynthOpts {
    /// Success threshold (Clifford+T targets match exactly; this absorbs
    /// floating-point noise only).
    pub tol: f64,
    /// Maximum circuit length to try.
    pub max_len: usize,
    /// Annealing iterations per length per restart.
    pub iters: usize,
    /// Restarts per length.
    pub restarts: usize,
    /// Initial Metropolis temperature (geometric decay to ~1% of this).
    pub temp: f64,
}

impl Default for FiniteSynthOpts {
    fn default() -> Self {
        FiniteSynthOpts {
            tol: 1e-7,
            max_len: 12,
            iters: 4000,
            restarts: 3,
            temp: 0.3,
        }
    }
}

/// The gate pool for an `n`-qubit Clifford+T MCMC search: every 1q gate on
/// every qubit plus every directed CX, plus `None` (an identity slot, so
/// the effective length can shrink below the nominal one).
fn gate_pool(n: usize) -> Vec<Option<(Gate, Vec<Qubit>)>> {
    let mut pool: Vec<Option<(Gate, Vec<Qubit>)>> = vec![None];
    for q in 0..n as Qubit {
        for &g in &GATES_1Q {
            pool.push(Some((g, vec![q])));
        }
    }
    for c in 0..n as Qubit {
        for t in 0..n as Qubit {
            if c != t {
                pool.push(Some((Gate::Cx, vec![c, t])));
            }
        }
    }
    pool
}

/// Synthesizes a Clifford+T circuit for `target` on `n_qubits` with at
/// most `opts.max_len` gates, via simulated annealing over fixed-length
/// sequences (Synthetiq-style). Lengths are tried in increasing order, so
/// the result is as short as the search can certify.
pub fn synthesize_finite<R: Rng + ?Sized>(
    target: &Mat,
    n_qubits: usize,
    opts: &FiniteSynthOpts,
    rng: &mut R,
) -> Option<Circuit> {
    assert_eq!(target.rows(), 1 << n_qubits, "target dimension mismatch");
    let pool = gate_pool(n_qubits);
    let dim = 1usize << n_qubits;

    // Quick exits: identity.
    if accurate_hs_distance(target, &Mat::identity(dim)) <= opts.tol {
        return Some(Circuit::new(n_qubits));
    }

    for len in 1..=opts.max_len {
        for _restart in 0..opts.restarts {
            // Random initial sequence.
            let mut slots: Vec<Option<(Gate, Vec<Qubit>)>> = (0..len)
                .map(|_| pool[rng.random_range(0..pool.len())].clone())
                .collect();
            let mut cost = sequence_distance(&slots, n_qubits, target);
            let mut temp = opts.temp;
            let decay = (0.01f64).powf(1.0 / opts.iters as f64);
            for _it in 0..opts.iters {
                if cost <= opts.tol {
                    break;
                }
                let pos = rng.random_range(0..len);
                let old = slots[pos].clone();
                slots[pos] = pool[rng.random_range(0..pool.len())].clone();
                let new_cost = sequence_distance(&slots, n_qubits, target);
                let accept =
                    new_cost <= cost || rng.random::<f64>() < ((cost - new_cost) / temp).exp();
                if accept {
                    cost = new_cost;
                } else {
                    slots[pos] = old;
                }
                temp *= decay;
            }
            if cost <= opts.tol {
                let mut c = Circuit::new(n_qubits);
                for slot in slots.into_iter().flatten() {
                    c.push(slot.0, &slot.1);
                }
                return Some(c);
            }
        }
    }
    None
}

fn sequence_distance(slots: &[Option<(Gate, Vec<Qubit>)>], n_qubits: usize, target: &Mat) -> f64 {
    let mut c = Circuit::new(n_qubits);
    for slot in slots.iter().flatten() {
        c.push(slot.0, &slot.1);
    }
    if c.is_empty() {
        accurate_hs_distance(target, &Mat::identity(1 << n_qubits))
    } else {
        accurate_hs_distance(target, &c.unitary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn database_contains_cliffords() {
        let db = Database1q::build(6, 4096);
        assert!(db.len() > 50);
        // S·S = Z must be found as a 2-gate (or shorter) sequence.
        let z = db.lookup(&qmath::gates::z()).unwrap();
        assert!(z.len() <= 2);
        // T itself.
        let t = db.lookup(&qmath::gates::t()).unwrap();
        assert_eq!(t.len(), 1);
        // H S H needs 3 gates or fewer.
        let hsh = qmath::gates::h()
            .matmul(&qmath::gates::s())
            .matmul(&qmath::gates::h());
        let c = db.lookup(&hsh).unwrap();
        assert!(c.len() <= 3);
        assert!(accurate_hs_distance(&hsh, &c.unitary()) < 1e-7);
    }

    #[test]
    fn database_rejects_non_clifford_t() {
        let db = Database1q::build(6, 4096);
        assert!(db.lookup(&qmath::gates::rz(0.123)).is_none());
    }

    #[test]
    fn mcmc_finds_single_gate() {
        let mut rng = SmallRng::seed_from_u64(21);
        let c = synthesize_finite(
            &qmath::gates::s(),
            1,
            &FiniteSynthOpts {
                max_len: 2,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(c.len() <= 2);
        assert!(accurate_hs_distance(&qmath::gates::s(), &c.unitary()) < 1e-7);
    }

    #[test]
    fn mcmc_compresses_tt_to_s() {
        let mut rng = SmallRng::seed_from_u64(22);
        let target = qmath::gates::t().matmul(&qmath::gates::t());
        let c = synthesize_finite(
            &target,
            1,
            &FiniteSynthOpts {
                max_len: 2,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(c.len(), 1, "T·T should compress to a single S");
    }

    #[test]
    fn mcmc_synthesizes_cz_from_clifford_t() {
        // CZ = H(t) CX H(t): 3 gates.
        let mut rng = SmallRng::seed_from_u64(23);
        let c = synthesize_finite(
            &qmath::gates::cz(),
            2,
            &FiniteSynthOpts {
                max_len: 4,
                iters: 6000,
                restarts: 4,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(accurate_hs_distance(&qmath::gates::cz(), &c.unitary()) < 1e-7);
        assert!(c.len() <= 4);
    }

    #[test]
    fn identity_synthesizes_to_empty() {
        let mut rng = SmallRng::seed_from_u64(24);
        let c =
            synthesize_finite(&Mat::identity(4), 2, &FiniteSynthOpts::default(), &mut rng).unwrap();
        assert!(c.is_empty());
    }
}
