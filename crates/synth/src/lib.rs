//! `qsynth` — unitary synthesis (the paper's "slow" System 2).
//!
//! * [`instantiate`]: template circuits + Adam over analytic gradients
//!   (the numerical core, mirroring BQSKit's instantiation)
//! * [`continuous`]: 1q analytic / 2q CX-escalation / 3q QSearch-style A*
//! * [`finite`]: Synthetiq-style simulated annealing for Clifford+T,
//!   plus a BFS database of minimal 1-qubit sequences
//! * [`resynth`]: the paper's `resynth(C, ε)` wrapper with measured-ε
//!   reporting for exact Thm-4.2 budget accounting
//!
//! ```
//! use qcir::{Circuit, Gate, GateSet};
//! use qsynth::Resynthesizer;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // Two mergeable rotations: resynthesis finds the 1-gate form.
//! let mut c = Circuit::new(1);
//! c.push(Gate::Rz(0.2), &[0]);
//! c.push(Gate::Rz(0.3), &[0]);
//! let rs = Resynthesizer::new(GateSet::IbmEagle);
//! let mut rng = SmallRng::seed_from_u64(0);
//! let out = rs.resynthesize(&c, 1e-8, &mut rng).unwrap();
//! assert!(out.circuit.len() <= 1);
//! ```

#![warn(missing_docs)]

pub mod continuous;
pub mod finite;
pub mod instantiate;
pub mod resynth;

pub use instantiate::accurate_hs_distance;
pub use resynth::{
    shared_resynthesizer, CacheOutcome, ResynthProfile, Resynthesized, Resynthesizer,
    MAX_RESYNTH_QUBITS,
};
