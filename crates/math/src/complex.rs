//! A minimal complex-number type.
//!
//! The workspace deliberately avoids external linear-algebra crates, so the
//! complex arithmetic used throughout lives here. [`C64`] is a plain
//! `f64`-pair value type with the usual field operations.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// ```
/// use qmath::C64;
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for [`C64`].
///
/// ```
/// use qmath::{c64, C64};
/// assert_eq!(c64(1.0, 2.0), C64::new(1.0, 2.0));
/// ```
#[inline]
pub const fn c64(re: f64, im: f64) -> C64 {
    C64 { re, im }
}

impl C64 {
    /// The additive identity.
    pub const ZERO: C64 = c64(0.0, 0.0);
    /// The multiplicative identity.
    pub const ONE: C64 = c64(1.0, 0.0);
    /// The imaginary unit.
    pub const I: C64 = c64(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a real-valued complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Returns `e^{iθ}` (a point on the unit circle).
    ///
    /// ```
    /// use qmath::C64;
    /// let u = C64::cis(std::f64::consts::PI);
    /// assert!((u.re + 1.0).abs() < 1e-15 && u.im.abs() < 1e-15);
    /// ```
    #[inline]
    pub fn cis(theta: f64) -> Self {
        c64(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Does not panic; dividing by zero yields non-finite components, as for
    /// `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        c64(self.re * k, self.im * k)
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within `tol` (per component distance).
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a·b⁻¹
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        c64(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_ops() {
        let a = c64(1.0, 2.0);
        let b = c64(-3.0, 0.5);
        assert_eq!(a + b, c64(-2.0, 2.5));
        assert_eq!(a - b, c64(4.0, 1.5));
        assert_eq!(a * b, c64(1.0 * -3.0 - 2.0 * 0.5, 1.0 * 0.5 + 2.0 * -3.0));
        let q = a / b;
        assert!((q * b).approx_eq(a, 1e-12));
    }

    #[test]
    fn conj_and_norm() {
        let a = c64(3.0, -4.0);
        assert_eq!(a.conj(), c64(3.0, 4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..32 {
            let t = k as f64 * 0.3;
            assert!((C64::cis(t).abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn arg_roundtrip() {
        for k in -10..=10 {
            let t = k as f64 * 0.31;
            let z = C64::cis(t).scale(2.5);
            let diff = (z.arg() - t).rem_euclid(2.0 * std::f64::consts::PI);
            assert!(diff < 1e-12 || (2.0 * std::f64::consts::PI - diff) < 1e-12);
        }
    }

    #[test]
    fn inv_inverts() {
        let a = c64(0.7, -1.3);
        assert!((a * a.inv()).approx_eq(C64::ONE, 1e-14));
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", C64::ZERO).is_empty());
        assert!(format!("{}", c64(1.0, -1.0)).contains('-'));
    }
}
