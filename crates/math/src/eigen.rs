//! Eigen decomposition of small real symmetric matrices.
//!
//! A classic cyclic Jacobi rotation scheme: more than accurate enough for
//! the ≤8×8 matrices that appear in this workspace (e.g. analysing
//! Hermitian observables in the workload generators and tests).

/// Eigenvalues and eigenvectors of a real symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Row-major orthogonal matrix whose *columns* are the eigenvectors,
    /// ordered to match `values`.
    pub vectors: Vec<f64>,
    /// Dimension of the problem.
    pub n: usize,
}

impl SymEigen {
    /// Returns eigenvector `k` as a `Vec`.
    pub fn vector(&self, k: usize) -> Vec<f64> {
        (0..self.n).map(|i| self.vectors[i * self.n + k]).collect()
    }
}

/// Computes the eigendecomposition of a real symmetric matrix given in
/// row-major order.
///
/// # Panics
///
/// Panics if `a.len() != n * n`.
pub fn jacobi_eigen(a: &[f64], n: usize) -> SymEigen {
    assert_eq!(a.len(), n * n, "matrix data must be n*n");
    let mut m = a.to_vec();
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let idx = |i: usize, j: usize| i * n + j;
    for _sweep in 0..100 {
        // Off-diagonal Frobenius mass.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[idx(i, j)] * m[idx(i, j)];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[idx(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[idx(p, p)];
                let aqq = m[idx(q, q)];
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Rotate rows/columns p, q.
                for k in 0..n {
                    let mkp = m[idx(k, p)];
                    let mkq = m[idx(k, q)];
                    m[idx(k, p)] = c * mkp - s * mkq;
                    m[idx(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[idx(p, k)];
                    let mqk = m[idx(q, k)];
                    m[idx(p, k)] = c * mpk - s * mqk;
                    m[idx(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[idx(k, p)];
                    let vkq = v[idx(k, q)];
                    v[idx(k, p)] = c * vkp - s * vkq;
                    v[idx(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort ascending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[idx(i, i)].partial_cmp(&m[idx(j, j)]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m[idx(i, i)]).collect();
    let mut vectors = vec![0.0; n * n];
    for (new_col, &old_col) in order.iter().enumerate() {
        for i in 0..n {
            vectors[idx(i, new_col)] = v[idx(i, old_col)];
        }
    }
    SymEigen { values, vectors, n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_symmetric(n: usize, rng: &mut SmallRng) -> Vec<f64> {
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let x: f64 = rng.random::<f64>() * 2.0 - 1.0;
                a[i * n + j] = x;
                a[j * n + i] = x;
            }
        }
        a
    }

    #[test]
    fn reconstructs_matrix() {
        let mut rng = SmallRng::seed_from_u64(101);
        for n in [2usize, 3, 4, 6, 8] {
            let a = random_symmetric(n, &mut rng);
            let e = jacobi_eigen(&a, n);
            // A v_k = λ_k v_k for each k.
            for k in 0..n {
                let vk = e.vector(k);
                for i in 0..n {
                    let mut av = 0.0;
                    for j in 0..n {
                        av += a[i * n + j] * vk[j];
                    }
                    assert!((av - e.values[k] * vk[i]).abs() < 1e-8, "n={n} k={k} i={i}");
                }
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let mut rng = SmallRng::seed_from_u64(103);
        let n = 5;
        let a = random_symmetric(n, &mut rng);
        let e = jacobi_eigen(&a, n);
        for p in 0..n {
            for q in 0..n {
                let dot: f64 = (0..n)
                    .map(|i| e.vectors[i * n + p] * e.vectors[i * n + q])
                    .sum();
                let expect = if p == q { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn diagonal_matrix_trivial() {
        let a = vec![3.0, 0.0, 0.0, -1.0];
        let e = jacobi_eigen(&a, 2);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn values_sorted() {
        let mut rng = SmallRng::seed_from_u64(107);
        let a = random_symmetric(6, &mut rng);
        let e = jacobi_eigen(&a, 6);
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }
}
