//! Fixed-size 2×2 / 4×4 complex matrices on the stack.
//!
//! [`Mat2`] and [`Mat4`] are the hot-path counterparts of [`Mat`]: plain
//! `Copy` arrays (`[C64; 4]` / `[C64; 16]`) with no heap allocation, so
//! the optimizer's inner loop can build gate unitaries, multiply them,
//! and measure distances without touching the allocator. The kernels use
//! fixed trip counts over contiguous arrays, which the compiler can
//! unroll and autovectorize.
//!
//! Every kernel mirrors the arithmetic of the corresponding [`Mat`]
//! operation exactly — same `ikj` loop order, same zero-skip, same
//! summation order in [`hs_distance`](Mat2::hs_distance) — so replacing
//! a `Mat` computation with its small-matrix twin produces bit-identical
//! floats. [`Mat`] remains the representation for large compositions
//! (8×8 and up); conversion in both directions is lossless.

use crate::complex::C64;
use crate::matrix::Mat;
use std::ops::{Index, IndexMut};

macro_rules! small_mat {
    ($name:ident, $dim:expr, $len:expr, $label:expr) => {
        impl $name {
            /// Rows (= columns) of the matrix.
            pub const DIM: usize = $dim;

            /// Builds a matrix from row-major entries.
            #[inline]
            pub const fn new(entries: [C64; $len]) -> Self {
                $name(entries)
            }

            /// The zero matrix.
            #[inline]
            pub const fn zero() -> Self {
                $name([C64::ZERO; $len])
            }

            /// The identity matrix.
            #[inline]
            pub const fn identity() -> Self {
                let mut m = [C64::ZERO; $len];
                let mut i = 0;
                while i < $dim {
                    m[i * $dim + i] = C64::ONE;
                    i += 1;
                }
                $name(m)
            }

            /// Borrow of the row-major entries.
            #[inline]
            pub fn as_slice(&self) -> &[C64] {
                &self.0
            }

            /// Mutable borrow of the row-major entries.
            #[inline]
            pub fn as_mut_slice(&mut self) -> &mut [C64] {
                &mut self.0
            }

            /// The row-major entries by value.
            #[inline]
            pub const fn into_array(self) -> [C64; $len] {
                self.0
            }

            /// Matrix product `self · rhs`.
            ///
            /// Same `ikj` order and zero-skip as [`Mat::matmul`], so the
            /// result is bit-identical to the heap version.
            #[inline]
            pub fn matmul(&self, rhs: &$name) -> $name {
                let mut out = [C64::ZERO; $len];
                for i in 0..$dim {
                    for k in 0..$dim {
                        let aik = self.0[i * $dim + k];
                        if aik.re == 0.0 && aik.im == 0.0 {
                            continue;
                        }
                        for j in 0..$dim {
                            out[i * $dim + j] += aik * rhs.0[k * $dim + j];
                        }
                    }
                }
                $name(out)
            }

            /// Conjugate transpose `self†`.
            #[inline]
            pub fn adjoint(&self) -> $name {
                let mut out = [C64::ZERO; $len];
                for i in 0..$dim {
                    for j in 0..$dim {
                        out[j * $dim + i] = self.0[i * $dim + j].conj();
                    }
                }
                $name(out)
            }

            /// Trace (sum of diagonal entries).
            #[inline]
            pub fn trace(&self) -> C64 {
                let mut t = C64::ZERO;
                for i in 0..$dim {
                    t += self.0[i * $dim + i];
                }
                t
            }

            /// Frobenius norm `sqrt(Σ |a_ij|²)`.
            #[inline]
            pub fn frobenius_norm(&self) -> f64 {
                self.0.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
            }

            /// Scales every entry by a complex factor.
            #[inline]
            pub fn scaled(&self, k: C64) -> $name {
                let mut out = self.0;
                for z in &mut out {
                    *z *= k;
                }
                $name(out)
            }

            /// Entrywise approximate equality within `tol`.
            #[inline]
            pub fn approx_eq(&self, other: &$name, tol: f64) -> bool {
                self.0
                    .iter()
                    .zip(&other.0)
                    .all(|(a, b)| a.approx_eq(*b, tol))
            }

            /// Hilbert–Schmidt distance (paper Def. 3.2), phase-invariant.
            ///
            /// Same formula and summation order as
            /// [`hs_distance`](crate::dist::hs_distance) on [`Mat`].
            #[inline]
            pub fn hs_distance(&self, other: &$name) -> f64 {
                let mut t = C64::ZERO;
                for (a, b) in self.0.iter().zip(&other.0) {
                    t += a.conj() * *b;
                }
                let o = (t.abs() / $dim as f64).min(1.0);
                (1.0 - o * o).max(0.0).sqrt()
            }

            /// Lossless widening into a heap [`Mat`].
            #[inline]
            pub fn to_mat(&self) -> Mat {
                Mat::from_vec($dim, $dim, self.0.to_vec())
            }

            /// Lossless narrowing from a heap [`Mat`].
            ///
            /// # Panics
            ///
            /// Panics if `m` is not exactly the expected dimension.
            #[inline]
            pub fn from_mat(m: &Mat) -> $name {
                assert_eq!(
                    (m.rows(), m.cols()),
                    ($dim, $dim),
                    concat!($label, "::from_mat needs a ", $label, "-sized matrix")
                );
                let mut out = [C64::ZERO; $len];
                out.copy_from_slice(m.as_slice());
                $name(out)
            }
        }

        impl Index<(usize, usize)> for $name {
            type Output = C64;
            #[inline]
            fn index(&self, (i, j): (usize, usize)) -> &C64 {
                &self.0[i * $dim + j]
            }
        }

        impl IndexMut<(usize, usize)> for $name {
            #[inline]
            fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
                &mut self.0[i * $dim + j]
            }
        }

        impl From<$name> for Mat {
            #[inline]
            fn from(m: $name) -> Mat {
                m.to_mat()
            }
        }
    };
}

/// A 2×2 complex matrix stored inline (row-major `[C64; 4]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat2([C64; 4]);

/// A 4×4 complex matrix stored inline (row-major `[C64; 16]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4([C64; 16]);

small_mat!(Mat2, 2, 4, "Mat2");
small_mat!(Mat4, 4, 16, "Mat4");

impl Mat2 {
    /// Builds a 2×2 matrix from four entries in row-major order
    /// (the inline twin of [`Mat::mat2`]).
    #[inline]
    pub const fn of(a: C64, b: C64, c: C64, d: C64) -> Mat2 {
        Mat2([a, b, c, d])
    }

    /// Kronecker (tensor) product `self ⊗ rhs`, landing in a [`Mat4`].
    ///
    /// Same entry order and zero-skip as [`Mat::kron`].
    #[inline]
    pub fn kron(&self, rhs: &Mat2) -> Mat4 {
        let mut out = [C64::ZERO; 16];
        for i in 0..2 {
            for j in 0..2 {
                let a = self.0[i * 2 + j];
                if a.re == 0.0 && a.im == 0.0 {
                    continue;
                }
                for p in 0..2 {
                    for q in 0..2 {
                        out[(i * 2 + p) * 4 + (j * 2 + q)] = a * rhs.0[p * 2 + q];
                    }
                }
            }
        }
        Mat4(out)
    }
}

impl Mat4 {
    /// Builds a diagonal 4×4 matrix from its diagonal entries.
    #[inline]
    pub const fn diag(d: [C64; 4]) -> Mat4 {
        let mut m = [C64::ZERO; 16];
        let mut i = 0;
        while i < 4 {
            m[i * 4 + i] = d[i];
            i += 1;
        }
        Mat4(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::dist::hs_distance;
    use crate::gates;
    use crate::random::random_unitary;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rand2(rng: &mut SmallRng) -> (Mat2, Mat) {
        let m = random_unitary(2, rng);
        (Mat2::from_mat(&m), m)
    }

    fn rand4(rng: &mut SmallRng) -> (Mat4, Mat) {
        let m = random_unitary(4, rng);
        (Mat4::from_mat(&m), m)
    }

    #[test]
    fn matmul_bit_identical_to_mat() {
        let mut rng = SmallRng::seed_from_u64(41);
        for _ in 0..20 {
            let (a2, a) = rand2(&mut rng);
            let (b2, b) = rand2(&mut rng);
            assert_eq!(a2.matmul(&b2).as_slice(), a.matmul(&b).as_slice());
            let (c4, c) = rand4(&mut rng);
            let (d4, d) = rand4(&mut rng);
            assert_eq!(c4.matmul(&d4).as_slice(), c.matmul(&d).as_slice());
        }
    }

    #[test]
    fn adjoint_and_trace_match_mat() {
        let mut rng = SmallRng::seed_from_u64(43);
        let (a2, a) = rand2(&mut rng);
        assert_eq!(a2.adjoint().as_slice(), a.dagger().as_slice());
        assert_eq!(a2.trace(), a.trace());
        let (b4, b) = rand4(&mut rng);
        assert_eq!(b4.adjoint().as_slice(), b.dagger().as_slice());
        assert_eq!(b4.trace(), b.trace());
    }

    #[test]
    fn kron_matches_mat() {
        let mut rng = SmallRng::seed_from_u64(47);
        let (a2, a) = rand2(&mut rng);
        let (b2, b) = rand2(&mut rng);
        assert_eq!(a2.kron(&b2).as_slice(), a.kron(&b).as_slice());
    }

    #[test]
    fn hs_distance_matches_mat() {
        let mut rng = SmallRng::seed_from_u64(53);
        let (a2, a) = rand2(&mut rng);
        let (b2, b) = rand2(&mut rng);
        assert_eq!(a2.hs_distance(&b2), hs_distance(&a, &b));
        assert!(a2.hs_distance(&a2) < 1e-15);
        let (c4, c) = rand4(&mut rng);
        let (d4, d) = rand4(&mut rng);
        assert_eq!(c4.hs_distance(&d4), hs_distance(&c, &d));
    }

    #[test]
    fn identity_and_diag() {
        assert_eq!(Mat2::identity().as_slice(), Mat::identity(2).as_slice());
        assert_eq!(Mat4::identity().as_slice(), Mat::identity(4).as_slice());
        let d = [c64(1.0, 0.0), c64(0.0, 1.0), c64(-1.0, 0.0), c64(2.0, 0.5)];
        assert_eq!(Mat4::diag(d).as_slice(), Mat::diag(&d).as_slice());
    }

    #[test]
    fn conversion_round_trips() {
        let g = gates::u3(0.7, -0.2, 1.9);
        let small = Mat2::from_mat(&g);
        assert_eq!(small.to_mat().as_slice(), g.as_slice());
        let cx = gates::cx();
        assert_eq!(Mat4::from_mat(&cx).to_mat().as_slice(), cx.as_slice());
    }

    #[test]
    #[should_panic(expected = "from_mat")]
    fn from_mat_rejects_wrong_dim() {
        let _ = Mat2::from_mat(&Mat::identity(4));
    }
}
