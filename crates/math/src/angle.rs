//! Angle arithmetic helpers.
//!
//! Rotation angles throughout the workspace are plain `f64` radians; these
//! helpers keep them canonical (normalized into `(-π, π]`) and provide the
//! approximate comparisons that rewrite-rule matching and dead-rotation
//! elimination rely on.

use std::f64::consts::PI;

/// Default tolerance for treating two angles as equal.
pub const ANGLE_TOL: f64 = 1e-9;

/// Normalizes an angle into the half-open interval `(-π, π]`.
///
/// ```
/// use qmath::angle::normalize;
/// use std::f64::consts::PI;
/// assert!((normalize(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((normalize(-3.0 * PI) - PI).abs() < 1e-12);
/// ```
pub fn normalize(theta: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut t = theta % two_pi;
    if t <= -PI {
        t += two_pi;
    } else if t > PI {
        t -= two_pi;
    }
    t
}

/// True when `a ≡ b (mod 2π)` within `tol`.
pub fn approx_eq_mod_2pi(a: f64, b: f64, tol: f64) -> bool {
    let d = normalize(a - b).abs();
    d <= tol || (2.0 * PI - d) <= tol
}

/// True when `theta ≡ 0 (mod 2π)` within [`ANGLE_TOL`].
pub fn is_zero_mod_2pi(theta: f64) -> bool {
    approx_eq_mod_2pi(theta, 0.0, ANGLE_TOL)
}

/// True when `theta` is (close to) an integer multiple of `π/4`, the
/// Clifford+T-expressible angles.
pub fn is_pi4_multiple(theta: f64, tol: f64) -> bool {
    let q = normalize(theta) / (PI / 4.0);
    (q - q.round()).abs() * (PI / 4.0) <= tol
}

/// Rounds `theta` to the nearest multiple of `π/4` and returns the
/// multiplier in `0..8` (i.e. `theta ≈ k·π/4 (mod 2π)`).
///
/// Returns `None` if `theta` is not within `tol` of such a multiple.
pub fn pi4_multiple_of(theta: f64, tol: f64) -> Option<u8> {
    if !is_pi4_multiple(theta, tol) {
        return None;
    }
    let q = (normalize(theta) / (PI / 4.0)).round() as i64;
    Some(q.rem_euclid(8) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_in_range() {
        for k in -20..=20 {
            let t = k as f64 * 0.7;
            let n = normalize(t);
            assert!(n > -PI - 1e-12 && n <= PI + 1e-12);
            assert!(approx_eq_mod_2pi(t, n, 1e-9));
        }
    }

    #[test]
    fn zero_detection() {
        assert!(is_zero_mod_2pi(0.0));
        assert!(is_zero_mod_2pi(2.0 * PI));
        assert!(is_zero_mod_2pi(-4.0 * PI + 1e-12));
        assert!(!is_zero_mod_2pi(0.1));
        assert!(!is_zero_mod_2pi(PI));
    }

    #[test]
    fn pi4_multiples() {
        assert_eq!(pi4_multiple_of(0.0, 1e-9), Some(0));
        assert_eq!(pi4_multiple_of(PI / 4.0, 1e-9), Some(1));
        assert_eq!(pi4_multiple_of(PI / 2.0, 1e-9), Some(2));
        assert_eq!(pi4_multiple_of(PI, 1e-9), Some(4));
        assert_eq!(pi4_multiple_of(-PI / 4.0, 1e-9), Some(7));
        assert_eq!(pi4_multiple_of(2.0 * PI + PI / 4.0, 1e-9), Some(1));
        assert_eq!(pi4_multiple_of(0.3, 1e-9), None);
    }

    #[test]
    fn mod_2pi_wraparound_edges() {
        assert!(approx_eq_mod_2pi(PI, -PI, 1e-9));
        assert!(approx_eq_mod_2pi(PI - 1e-12, -PI + 1e-12, 1e-9));
    }
}
