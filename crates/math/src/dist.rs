//! Distance metrics between unitaries.
//!
//! The central metric is the Hilbert–Schmidt distance (paper Def. 3.2),
//! which is invariant under global phase and cheap to compute:
//!
//! `Δ(U, V) = sqrt(1 − |Tr(U†V)|² / N²)`

use crate::matrix::Mat;

/// Normalized trace overlap `|Tr(U†V)| / N` in `[0, 1]`.
///
/// Equal to 1 exactly when `U = e^{iφ} V`.
///
/// # Panics
///
/// Panics if the matrices are not square with equal dimensions.
pub fn trace_overlap(u: &Mat, v: &Mat) -> f64 {
    assert_eq!(u.rows(), u.cols(), "trace_overlap requires square matrices");
    assert_eq!(u.rows(), v.rows(), "dimension mismatch in trace_overlap");
    assert_eq!(v.rows(), v.cols(), "trace_overlap requires square matrices");
    let n = u.rows() as f64;
    // Tr(U†V) = Σ_ij conj(U_ij) V_ij — avoids forming the product.
    let mut t = crate::complex::C64::ZERO;
    for (a, b) in u.as_slice().iter().zip(v.as_slice()) {
        t += a.conj() * *b;
    }
    (t.abs() / n).min(1.0)
}

/// Hilbert–Schmidt distance `Δ(U, V)` from Definition 3.2 of the paper.
///
/// Ranges over `[0, 1]`; zero iff the unitaries are equal up to global
/// phase.
///
/// ```
/// use qmath::{gates, dist::hs_distance};
/// assert!(hs_distance(&gates::x(), &gates::x()) < 1e-15);
/// assert!(hs_distance(&gates::x(), &gates::z()) > 0.9);
/// ```
pub fn hs_distance(u: &Mat, v: &Mat) -> f64 {
    let o = trace_overlap(u, v);
    (1.0 - o * o).max(0.0).sqrt()
}

/// [`hs_distance`] with full precision near zero.
///
/// The plain formula `sqrt(1 − o²)` catastrophically cancels for
/// near-identical unitaries: an overlap `o = 1 − 1e-16` (pure float
/// noise) already reads as Δ ≈ 1.5e-8, which would swamp ε budgets in
/// the 1e-9 range. This variant phase-aligns `V` to `U`, accumulates
/// the elementwise squared distance `d² = Σ|V'ᵢⱼ − Uᵢⱼ|²` (exactly 0
/// for identical inputs), and maps it through
/// `Δ = sqrt(x·(2−x))` with `x = 1 − o = d²/2N`. Use it wherever the
/// measured distance is charged against a tight ε budget (resynthesis
/// accounting, cache verify-on-hit).
///
/// # Panics
///
/// Panics if the matrices are not square with equal dimensions.
pub fn accurate_hs_distance(u: &Mat, v: &Mat) -> f64 {
    assert_eq!(
        u.rows(),
        u.cols(),
        "accurate_hs_distance needs square matrices"
    );
    assert_eq!(
        u.rows(),
        v.rows(),
        "dimension mismatch in accurate_hs_distance"
    );
    assert_eq!(
        v.rows(),
        v.cols(),
        "accurate_hs_distance needs square matrices"
    );
    let n = u.rows() as f64;
    let mut w = crate::complex::C64::ZERO;
    for (a, b) in u.as_slice().iter().zip(v.as_slice()) {
        w += a.conj() * *b;
    }
    if w.abs() < 1e-12 {
        return 1.0;
    }
    let phase = crate::complex::C64::cis(-w.arg());
    let mut d2 = 0.0;
    for (a, b) in u.as_slice().iter().zip(v.as_slice()) {
        d2 += (*b * phase - *a).norm_sqr();
    }
    // 1 − |w|/N = d² / (2N); Δ = sqrt(x·(2−x)) with x = 1 − |w|/N.
    let x = (d2 / (2.0 * n)).min(1.0);
    (x * (2.0 - x)).max(0.0).sqrt()
}

/// True when `U ≡_ε V` (approximate equivalence, paper Def. 3.3).
pub fn approx_equiv(u: &Mat, v: &Mat, eps: f64) -> bool {
    hs_distance(u, v) <= eps
}

/// True when `U ≡ V` up to global phase within numerical tolerance `tol`
/// measured in Hilbert–Schmidt distance.
pub fn phase_equiv(u: &Mat, v: &Mat, tol: f64) -> bool {
    hs_distance(u, v) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;
    use crate::gates;

    #[test]
    fn distance_zero_for_equal() {
        let u = gates::u3(0.4, 1.1, -0.3);
        assert!(hs_distance(&u, &u) < 1e-15);
    }

    #[test]
    fn distance_invariant_to_global_phase() {
        let u = gates::u3(0.4, 1.1, -0.3);
        let v = u.scaled(C64::cis(2.1));
        assert!(hs_distance(&u, &v) < 1e-7);
        assert!(phase_equiv(&u, &v, 1e-7));
    }

    #[test]
    fn distance_symmetric() {
        let u = gates::rx(0.3);
        let v = gates::ry(0.8);
        assert!((hs_distance(&u, &v) - hs_distance(&v, &u)).abs() < 1e-15);
    }

    #[test]
    fn orthogonal_paulis_are_far() {
        assert!((hs_distance(&gates::x(), &gates::y()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_perturbation_small_distance() {
        let u = gates::rz(1.0);
        let v = gates::rz(1.0 + 1e-6);
        let d = hs_distance(&u, &v);
        assert!(d < 1e-5, "d = {d}");
        assert!(approx_equiv(&u, &v, 1e-5));
    }

    #[test]
    fn triangle_like_additivity() {
        // The paper's Thm 4.2 relies on Δ(U, W) ≤ Δ(U, V) + Δ(V, W).
        let u = gates::rz(0.2);
        let v = gates::rz(0.2 + 1e-3);
        let w = gates::rz(0.2 + 2e-3);
        assert!(hs_distance(&u, &w) <= hs_distance(&u, &v) + hs_distance(&v, &w) + 1e-12);
    }
}
