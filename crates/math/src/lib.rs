//! `qmath` — dense complex linear algebra for quantum circuit optimization.
//!
//! This crate is the numerical foundation of the GUOQ reproduction. It is
//! deliberately dependency-free (apart from `rand`) and provides:
//!
//! * [`C64`]: complex numbers ([`complex`])
//! * [`Mat`]: dense complex matrices, Kronecker products, embeddings
//!   ([`matrix`])
//! * [`Mat2`]/[`Mat4`]: fixed-size stack-allocated matrices for the
//!   optimizer hot path ([`smallmat`])
//! * standard gate unitaries ([`gates`])
//! * the Hilbert–Schmidt distance of the paper's Definition 3.2 ([`dist`])
//! * angle canonicalization utilities ([`angle`])
//! * analytic single-qubit ZYZ/U3 decomposition ([`decompose`])
//! * Haar-random unitaries and states ([`random`])
//! * statevector kernels shared by the simulator ([`statevec`])
//! * a Jacobi eigensolver for small symmetric systems ([`eigen`])
//!
//! # Example
//!
//! Verifying the paper's Figure 5 resynthesis example — the circuit
//! `Rz(π/2) q0; CX q0 q1; H q1; Rz(π/2) q0` is equivalent (up to global
//! phase) to `Rz(π) q0; CX q0 q1; H q1`:
//!
//! ```
//! use qmath::{gates, matrix::embed, dist::hs_distance};
//!
//! let rz0 = |t: f64| embed(&gates::rz(t), 2, &[0]);
//! let h1 = embed(&gates::h(), 2, &[1]);
//! let cx = gates::cx();
//!
//! // Circuits compose right-to-left: first gate is rightmost.
//! let lhs = rz0(std::f64::consts::FRAC_PI_2)
//!     .matmul(&h1).matmul(&cx)
//!     .matmul(&rz0(std::f64::consts::FRAC_PI_2));
//! let rhs = h1.matmul(&cx).matmul(&rz0(std::f64::consts::PI));
//! assert!(hs_distance(&lhs, &rhs) < 1e-7);
//! ```

#![warn(missing_docs)]

pub mod angle;
pub mod complex;
pub mod decompose;
pub mod dist;
pub mod eigen;
pub mod gates;
pub mod matrix;
pub mod random;
pub mod smallmat;
pub mod statevec;

pub use complex::{c64, C64};
pub use dist::hs_distance;
pub use matrix::{embed, Mat};
pub use smallmat::{Mat2, Mat4};
