//! Analytic single-qubit decompositions.
//!
//! Any 2×2 unitary factors as `U = e^{iα} Rz(φ) Ry(θ) Rz(λ)` (ZYZ Euler
//! angles). This is the workhorse for one-qubit resynthesis: merge a run of
//! one-qubit gates into a single matrix, then re-emit the minimal sequence
//! for the target gate set.

use crate::complex::C64;
use crate::gates;
use crate::matrix::Mat;

/// ZYZ Euler decomposition of a 2×2 unitary:
/// `U = e^{iα} · Rz(φ) · Ry(θ) · Rz(λ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zyz {
    /// Global phase `α`.
    pub alpha: f64,
    /// Leftmost Z angle `φ`.
    pub phi: f64,
    /// Middle Y angle `θ`, in `[0, π]`.
    pub theta: f64,
    /// Rightmost Z angle `λ`.
    pub lambda: f64,
}

impl Zyz {
    /// Reconstructs the unitary `e^{iα} Rz(φ) Ry(θ) Rz(λ)`.
    pub fn to_matrix(self) -> Mat {
        gates::rz(self.phi)
            .matmul(&gates::ry(self.theta))
            .matmul(&gates::rz(self.lambda))
            .scaled(C64::cis(self.alpha))
    }
}

/// Computes the ZYZ Euler decomposition of a 2×2 unitary.
///
/// The returned angles reconstruct `u` exactly (including global phase)
/// within numerical tolerance.
///
/// # Panics
///
/// Panics if `u` is not 2×2. Behaviour is unspecified (but non-panicking)
/// for matrices that are far from unitary.
///
/// ```
/// use qmath::{gates, decompose::zyz_decompose, dist::hs_distance};
/// let u = gates::u3(0.7, -1.1, 2.2);
/// let d = zyz_decompose(&u);
/// assert!(hs_distance(&d.to_matrix(), &u) < 1e-7);
/// ```
pub fn zyz_decompose(u: &Mat) -> Zyz {
    assert_eq!(u.rows(), 2, "zyz_decompose requires a 2x2 matrix");
    assert_eq!(u.cols(), 2, "zyz_decompose requires a 2x2 matrix");
    // Pull out the phase that makes det = 1 (SU(2) projection).
    let det = u[(0, 0)] * u[(1, 1)] - u[(0, 1)] * u[(1, 0)];
    let alpha0 = det.arg() / 2.0;
    let inv_phase = C64::cis(-alpha0);
    let v00 = u[(0, 0)] * inv_phase;
    let v10 = u[(1, 0)] * inv_phase;
    let v11 = u[(1, 1)] * inv_phase;

    let theta = 2.0 * v10.abs().atan2(v00.abs());
    let (phi, lambda) = if v10.abs() < 1e-12 {
        // θ ≈ 0: only φ+λ is fixed; put it all in φ.
        (2.0 * v11.arg(), 0.0)
    } else if v00.abs() < 1e-12 {
        // θ ≈ π: only φ−λ is fixed; put it all in φ.
        (2.0 * v10.arg(), 0.0)
    } else {
        let sum = 2.0 * v11.arg(); // φ + λ
        let diff = 2.0 * v10.arg(); // φ − λ
        ((sum + diff) / 2.0, (sum - diff) / 2.0)
    };
    let zyz = Zyz {
        alpha: alpha0,
        phi,
        theta,
        lambda,
    };
    // Fix the residual π ambiguity from the sqrt of the determinant by
    // comparing against the input including phase.
    let rec = zyz.to_matrix();
    let diff = (&rec - u).frobenius_norm();
    if diff > 1e-8 {
        Zyz {
            alpha: alpha0 + std::f64::consts::PI,
            ..zyz
        }
    } else {
        zyz
    }
}

/// Parameters of `U3(θ, φ, λ)` plus global phase reproducing a 2×2
/// unitary: `U = e^{iγ} · U3(θ, φ, λ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct U3Params {
    /// Global phase `γ`.
    pub gamma: f64,
    /// `θ` parameter.
    pub theta: f64,
    /// `φ` parameter.
    pub phi: f64,
    /// `λ` parameter.
    pub lambda: f64,
}

/// Expresses a 2×2 unitary as a single `U3` gate with a global phase.
///
/// Uses the identity `U3(θ,φ,λ) = e^{i(φ+λ)/2} Rz(φ) Ry(θ) Rz(λ)`.
pub fn u3_params(u: &Mat) -> U3Params {
    let z = zyz_decompose(u);
    U3Params {
        gamma: z.alpha - (z.phi + z.lambda) / 2.0,
        theta: z.theta,
        phi: z.phi,
        lambda: z.lambda,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::hs_distance;
    use crate::random::random_unitary;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    #[test]
    fn zyz_roundtrip_random() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let u = random_unitary(2, &mut rng);
            let d = zyz_decompose(&u);
            let rec = d.to_matrix();
            assert!(
                (&rec - &u).frobenius_norm() < 1e-9,
                "reconstruction failed: {d:?}"
            );
        }
    }

    #[test]
    fn zyz_on_named_gates() {
        for (name, g) in [
            ("x", gates::x()),
            ("y", gates::y()),
            ("z", gates::z()),
            ("h", gates::h()),
            ("s", gates::s()),
            ("t", gates::t()),
            ("sx", gates::sx()),
        ] {
            let d = zyz_decompose(&g);
            assert!(
                (&d.to_matrix() - &g).frobenius_norm() < 1e-12,
                "gate {name}"
            );
        }
    }

    #[test]
    fn zyz_identity_has_zero_theta() {
        let d = zyz_decompose(&Mat::identity(2));
        assert!(d.theta.abs() < 1e-12);
    }

    #[test]
    fn u3_params_match_gate() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..100 {
            let u = random_unitary(2, &mut rng);
            let p = u3_params(&u);
            let rec = gates::u3(p.theta, p.phi, p.lambda).scaled(C64::cis(p.gamma));
            assert!((&rec - &u).frobenius_norm() < 1e-9);
            assert!(hs_distance(&gates::u3(p.theta, p.phi, p.lambda), &u) < 1e-7);
        }
    }

    #[test]
    fn theta_in_principal_range() {
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..100 {
            let u = random_unitary(2, &mut rng);
            let d = zyz_decompose(&u);
            assert!(d.theta >= -1e-12 && d.theta <= PI + 1e-12);
        }
    }
}
