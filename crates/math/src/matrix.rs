//! Dense complex matrices.
//!
//! [`Mat`] is a row-major dense matrix of [`C64`]. Sizes in this workspace
//! are small (unitaries on at most ~8 qubits, i.e. 256×256), so the simple
//! cache-friendly `ikj` multiplication is plenty fast and keeps the code
//! auditable.

use crate::complex::C64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// ```
/// use qmath::Mat;
/// let id = Mat::identity(4);
/// assert!(id.clone().matmul(&id).approx_eq(&id, 1e-15));
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl Mat {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Mat { rows, cols, data }
    }

    /// Creates a square matrix from rows of `(re, im)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not all the same length.
    pub fn from_rows(rows: &[Vec<C64>]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Mat::from_rows");
            data.extend_from_slice(row);
        }
        Mat::from_vec(r, c, data)
    }

    /// Creates a 2×2 matrix from four entries in row-major order.
    pub fn mat2(a: C64, b: C64, c: C64, d: C64) -> Self {
        Mat::from_vec(2, 2, vec![a, b, c, d])
    }

    /// Creates a diagonal square matrix from the given diagonal entries.
    pub fn diag(d: &[C64]) -> Self {
        let n = d.len();
        let mut m = Mat::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable borrow of the row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik.re == 0.0 && aik.im == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for j in 0..rhs.cols {
                    orow[j] += aik * rrow[j];
                }
            }
        }
        out
    }

    /// Conjugate transpose `self†`.
    pub fn dagger(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Transpose (without conjugation).
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a.re == 0.0 && a.im == 0.0 {
                    continue;
                }
                for p in 0..rhs.rows {
                    for q in 0..rhs.cols {
                        out[(i * rhs.rows + p, j * rhs.cols + q)] = a * rhs[(p, q)];
                    }
                }
            }
        }
        out
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert_eq!(self.rows, self.cols, "trace of non-square matrix");
        let mut t = C64::ZERO;
        for i in 0..self.rows {
            t += self[(i, i)];
        }
        t
    }

    /// Frobenius norm `sqrt(Σ |a_ij|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Scales every entry by a complex factor.
    pub fn scaled(&self, k: C64) -> Mat {
        let mut out = self.clone();
        for z in &mut out.data {
            *z *= k;
        }
        out
    }

    /// Entrywise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Mat, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// True when `self† · self ≈ I` within `tol` (Frobenius distance).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let p = self.dagger().matmul(self);
        let id = Mat::identity(self.rows);
        (&p - &id).frobenius_norm() <= tol
    }

    /// Largest-magnitude entry of the matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Multiplies `self` by the global phase that best aligns it with
    /// `target` (least-squares over `Tr(target† self)`), returning the
    /// aligned copy. Useful for comparing unitaries modulo global phase.
    pub fn phase_aligned_to(&self, target: &Mat) -> Mat {
        let t = target.dagger().matmul(self).trace();
        if t.abs() < 1e-300 {
            return self.clone();
        }
        let phase = C64::cis(-t.arg());
        self.scaled(phase)
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| *a + *b)
            .collect();
        Mat::from_vec(self.rows, self.cols, data)
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| *a - *b)
            .collect();
        Mat::from_vec(self.rows, self.cols, data)
    }
}

impl Mul for &Mat {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// Embeds a `2^k × 2^k` gate matrix acting on the given qubits into the
/// full `2^n × 2^n` space.
///
/// Qubit 0 is the most significant bit of the state index (big-endian), so
/// `embed(&CX, 2, &[0, 1])` reproduces the `U_CX` matrix from the paper's
/// Example 3.1.
///
/// # Panics
///
/// Panics if `gate` is not `2^k × 2^k` for `k = qubits.len()`, if any qubit
/// index is out of range, or if qubit indices repeat.
pub fn embed(gate: &Mat, n: usize, qubits: &[usize]) -> Mat {
    let k = qubits.len();
    let dk = 1usize << k;
    assert_eq!(gate.rows(), dk, "gate size does not match qubit count");
    assert_eq!(gate.cols(), dk, "gate size does not match qubit count");
    for (i, &q) in qubits.iter().enumerate() {
        assert!(q < n, "qubit {q} out of range for {n} qubits");
        assert!(!qubits[..i].contains(&q), "repeated qubit {q} in embedding");
    }
    let dn = 1usize << n;
    // Bit position (from LSB) of each target qubit in the state index.
    let bits: Vec<usize> = qubits.iter().map(|&q| n - 1 - q).collect();
    let target_mask: usize = bits.iter().map(|&b| 1usize << b).sum();

    let mut out = Mat::zeros(dn, dn);
    for col in 0..dn {
        // Decompose the column index into (rest bits, gate-subspace index).
        let rest = col & !target_mask;
        let mut gcol = 0usize;
        for (pos, &b) in bits.iter().enumerate() {
            if (col >> b) & 1 == 1 {
                gcol |= 1 << (k - 1 - pos);
            }
        }
        for grow in 0..dk {
            let v = gate[(grow, gcol)];
            if v.re == 0.0 && v.im == 0.0 {
                continue;
            }
            let mut row = rest;
            for (pos, &b) in bits.iter().enumerate() {
                if (grow >> (k - 1 - pos)) & 1 == 1 {
                    row |= 1 << b;
                }
            }
            out[(row, col)] = v;
        }
    }
    out
}

/// Convenience: `c64` re-export used by matrix literals in tests.
pub use crate::complex::c64 as centry;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn x() -> Mat {
        Mat::mat2(C64::ZERO, C64::ONE, C64::ONE, C64::ZERO)
    }

    #[test]
    fn identity_is_unitary() {
        assert!(Mat::identity(8).is_unitary(1e-15));
    }

    #[test]
    fn matmul_identity() {
        let m = Mat::from_vec(
            2,
            2,
            vec![c64(1.0, 2.0), c64(3.0, -1.0), c64(0.0, 1.0), c64(2.0, 2.0)],
        );
        assert!(m.matmul(&Mat::identity(2)).approx_eq(&m, 0.0));
        assert!(Mat::identity(2).matmul(&m).approx_eq(&m, 0.0));
    }

    #[test]
    fn dagger_involution() {
        let m = Mat::from_vec(
            2,
            3,
            vec![
                c64(1.0, 2.0),
                c64(3.0, -1.0),
                c64(0.5, 0.0),
                c64(0.0, 1.0),
                c64(2.0, 2.0),
                c64(-1.0, 0.25),
            ],
        );
        assert!(m.dagger().dagger().approx_eq(&m, 0.0));
        assert_eq!(m.dagger().rows(), 3);
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = Mat::diag(&[c64(1.0, 0.0), c64(2.0, 0.0)]);
        let b = x();
        let k = a.kron(&b);
        assert_eq!(k.rows(), 4);
        assert_eq!(k[(0, 1)], C64::ONE);
        assert_eq!(k[(2, 3)], c64(2.0, 0.0));
        assert_eq!(k[(0, 2)], C64::ZERO);
    }

    #[test]
    fn trace_of_identity() {
        assert_eq!(Mat::identity(4).trace(), c64(4.0, 0.0));
    }

    #[test]
    fn embed_x_on_second_of_two() {
        // X on qubit 1 of 2 should be I ⊗ X in big-endian convention.
        let e = embed(&x(), 2, &[1]);
        let expect = Mat::identity(2).kron(&x());
        assert!(e.approx_eq(&expect, 0.0));
    }

    #[test]
    fn embed_x_on_first_of_two() {
        let e = embed(&x(), 2, &[0]);
        let expect = x().kron(&Mat::identity(2));
        assert!(e.approx_eq(&expect, 0.0));
    }

    #[test]
    fn embed_cx_matches_paper_example() {
        // CX with control qubit 0, target qubit 1 (paper Example 3.1).
        let cx = Mat::from_vec(
            4,
            4,
            vec![
                C64::ONE,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ONE,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ONE,
                C64::ZERO,
                C64::ZERO,
                C64::ONE,
                C64::ZERO,
            ],
        );
        let e = embed(&cx, 2, &[0, 1]);
        assert!(e.approx_eq(&cx, 0.0));
        // Reversed qubit order swaps control and target.
        let e2 = embed(&cx, 2, &[1, 0]);
        let expect = Mat::from_vec(
            4,
            4,
            vec![
                C64::ONE,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ZERO,
                C64::ONE,
                C64::ZERO,
                C64::ZERO,
                C64::ONE,
                C64::ZERO,
                C64::ZERO,
                C64::ONE,
                C64::ZERO,
                C64::ZERO,
            ],
        );
        assert!(e2.approx_eq(&expect, 0.0));
    }

    #[test]
    fn embed_preserves_unitarity() {
        let g = x();
        for n in 1..=4 {
            for q in 0..n {
                assert!(embed(&g, n, &[q]).is_unitary(1e-12));
            }
        }
    }

    #[test]
    fn phase_alignment() {
        let m = Mat::identity(4);
        let rotated = m.scaled(C64::cis(1.234));
        let aligned = rotated.phase_aligned_to(&m);
        assert!(aligned.approx_eq(&m, 1e-12));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
