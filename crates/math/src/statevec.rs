//! Raw statevector kernels.
//!
//! These functions apply small gate matrices to a `2^n` amplitude vector
//! in place. The higher-level simulator in the `qsim` crate wraps them with
//! circuit awareness; they live here so both the simulator and the
//! equivalence fingerprinting in `qrewrite` can share them.
//!
//! Convention: qubit 0 is the most significant bit of the state index
//! (matching [`crate::matrix::embed`]).

use crate::complex::C64;
use crate::matrix::Mat;

/// Applies a 2×2 gate to qubit `q` of an `n`-qubit state, in place.
///
/// # Panics
///
/// Panics if `state.len() != 2^n`, `q >= n`, or the gate is not 2×2.
pub fn apply_1q(state: &mut [C64], n: usize, q: usize, gate: &Mat) {
    assert_eq!((gate.rows(), gate.cols()), (2, 2), "gate must be 2x2");
    apply_1q_slice(state, n, q, gate.as_slice());
}

/// [`apply_1q`] on a raw row-major 4-entry unitary (e.g. a
/// [`Mat2`](crate::smallmat::Mat2) slice) — no heap matrix required.
///
/// # Panics
///
/// Panics if `state.len() != 2^n`, `q >= n`, or `g.len() != 4`.
pub fn apply_1q_slice(state: &mut [C64], n: usize, q: usize, g: &[C64]) {
    assert_eq!(state.len(), 1 << n, "state length must be 2^n");
    assert!(q < n, "qubit index out of range");
    assert_eq!(g.len(), 4, "gate must be 2x2");
    let bit = n - 1 - q;
    let stride = 1usize << bit;
    let (g00, g01, g10, g11) = (g[0], g[1], g[2], g[3]);
    let mut base = 0usize;
    while base < state.len() {
        for i in base..base + stride {
            let a = state[i];
            let b = state[i + stride];
            state[i] = g00 * a + g01 * b;
            state[i + stride] = g10 * a + g11 * b;
        }
        base += stride << 1;
    }
}

/// Applies a `2^k × 2^k` gate to the given qubits of an `n`-qubit state,
/// in place. Works for any `k ≤ n`; specialized paths exist for `k = 1`.
///
/// # Panics
///
/// Panics if dimensions disagree or qubits repeat / are out of range.
pub fn apply_gate(state: &mut [C64], n: usize, qubits: &[usize], gate: &Mat) {
    let k = qubits.len();
    if k != 1 {
        let dk = 1usize << k;
        assert_eq!((gate.rows(), gate.cols()), (dk, dk), "gate size mismatch");
    }
    apply_gate_slice(state, n, qubits, gate.as_slice());
}

/// Up to this many target qubits the scatter/gather scratch lives on the
/// stack; beyond it the kernel falls back to heap buffers. Gate arities
/// in the IR are ≤ 3, so the hot path never spills.
const STACK_QUBITS: usize = 4;

/// [`apply_gate`] on a raw row-major `2^k × 2^k` unitary slice.
///
/// For `k ≤ 4` target qubits the kernel is allocation-free (stack
/// scratch); larger gates fall back to heap buffers. The arithmetic is
/// identical either way.
///
/// # Panics
///
/// Panics if dimensions disagree or qubits repeat / are out of range.
pub fn apply_gate_slice(state: &mut [C64], n: usize, qubits: &[usize], gm: &[C64]) {
    let k = qubits.len();
    if k == 1 {
        apply_1q_slice(state, n, qubits[0], gm);
        return;
    }
    assert_eq!(state.len(), 1 << n, "state length must be 2^n");
    let dk = 1usize << k;
    assert_eq!(gm.len(), dk * dk, "gate size mismatch");
    for (i, &q) in qubits.iter().enumerate() {
        assert!(q < n, "qubit index out of range");
        assert!(!qubits[..i].contains(&q), "repeated qubit in apply_gate");
    }
    if k <= STACK_QUBITS {
        let mut bits = [0usize; STACK_QUBITS];
        for (b, &q) in bits.iter_mut().zip(qubits) {
            *b = n - 1 - q;
        }
        let mut offsets = [0usize; 1 << STACK_QUBITS];
        let mut buf = [C64::ZERO; 1 << STACK_QUBITS];
        apply_gate_core(state, &bits[..k], &mut offsets[..dk], &mut buf[..dk], gm);
    } else {
        let bits: Vec<usize> = qubits.iter().map(|&q| n - 1 - q).collect();
        let mut offsets = vec![0usize; dk];
        let mut buf = vec![C64::ZERO; dk];
        apply_gate_core(state, &bits, &mut offsets, &mut buf, gm);
    }
}

/// Shared scatter/gather loop of [`apply_gate_slice`]: the caller
/// provides the per-qubit bit positions and `2^k`-sized scratch.
fn apply_gate_core(
    state: &mut [C64],
    bits: &[usize],
    offsets: &mut [usize],
    buf: &mut [C64],
    gm: &[C64],
) {
    let k = bits.len();
    let dk = offsets.len();
    let target_mask: usize = bits.iter().map(|&b| 1usize << b).sum();

    // Offsets of each of the 2^k basis combinations within a group.
    for (g, off) in offsets.iter_mut().enumerate() {
        *off = 0;
        for (pos, &b) in bits.iter().enumerate() {
            if (g >> (k - 1 - pos)) & 1 == 1 {
                *off |= 1 << b;
            }
        }
    }

    for base in 0..state.len() {
        if base & target_mask != 0 {
            continue;
        }
        for (g, &off) in offsets.iter().enumerate() {
            buf[g] = state[base | off];
        }
        for (r, &off) in offsets.iter().enumerate() {
            let mut acc = C64::ZERO;
            let row = &gm[r * dk..(r + 1) * dk];
            for (c, &b) in buf.iter().enumerate() {
                acc += row[c] * b;
            }
            state[base | off] = acc;
        }
    }
}

/// Overlap `⟨a|b⟩` of two state vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn inner(a: &[C64], b: &[C64]) -> C64 {
    assert_eq!(a.len(), b.len(), "state length mismatch");
    let mut acc = C64::ZERO;
    for (x, y) in a.iter().zip(b) {
        acc += x.conj() * *y;
    }
    acc
}

/// Phase-invariant distance between normalized states:
/// `sqrt(max(0, 1 − |⟨a|b⟩|²))`.
pub fn state_distance(a: &[C64], b: &[C64]) -> f64 {
    let o = inner(a, b).abs().min(1.0);
    (1.0 - o * o).max(0.0).sqrt()
}

/// Returns the all-zeros basis state `|0…0⟩` on `n` qubits.
pub fn zero_state(n: usize) -> Vec<C64> {
    let mut v = vec![C64::ZERO; 1 << n];
    v[0] = C64::ONE;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::matrix::embed;
    use crate::random::{random_state, random_unitary};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn apply_via_embed(state: &[C64], n: usize, qubits: &[usize], gate: &Mat) -> Vec<C64> {
        let big = embed(gate, n, qubits);
        let mut out = vec![C64::ZERO; state.len()];
        for r in 0..state.len() {
            let mut acc = C64::ZERO;
            for c in 0..state.len() {
                acc += big[(r, c)] * state[c];
            }
            out[r] = acc;
        }
        out
    }

    #[test]
    fn apply_1q_matches_embedding() {
        let mut rng = SmallRng::seed_from_u64(17);
        for n in 1..=4 {
            for q in 0..n {
                let g = random_unitary(2, &mut rng);
                let s0 = random_state(1 << n, &mut rng);
                let expect = apply_via_embed(&s0, n, &[q], &g);
                let mut got = s0.clone();
                apply_1q(&mut got, n, q, &g);
                for (a, b) in got.iter().zip(&expect) {
                    assert!(a.approx_eq(*b, 1e-10));
                }
            }
        }
    }

    #[test]
    fn apply_2q_matches_embedding() {
        let mut rng = SmallRng::seed_from_u64(19);
        for n in 2..=4 {
            for q0 in 0..n {
                for q1 in 0..n {
                    if q0 == q1 {
                        continue;
                    }
                    let g = random_unitary(4, &mut rng);
                    let s0 = random_state(1 << n, &mut rng);
                    let expect = apply_via_embed(&s0, n, &[q0, q1], &g);
                    let mut got = s0.clone();
                    apply_gate(&mut got, n, &[q0, q1], &g);
                    for (a, b) in got.iter().zip(&expect) {
                        assert!(a.approx_eq(*b, 1e-10), "n={n} q0={q0} q1={q1}");
                    }
                }
            }
        }
    }

    #[test]
    fn apply_3q_matches_embedding() {
        let mut rng = SmallRng::seed_from_u64(23);
        let n = 4;
        let g = random_unitary(8, &mut rng);
        let s0 = random_state(1 << n, &mut rng);
        let expect = apply_via_embed(&s0, n, &[2, 0, 3], &g);
        let mut got = s0.clone();
        apply_gate(&mut got, n, &[2, 0, 3], &g);
        for (a, b) in got.iter().zip(&expect) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }

    #[test]
    fn slice_kernels_bit_identical_to_mat_path() {
        use crate::smallmat::{Mat2, Mat4};
        let mut rng = SmallRng::seed_from_u64(37);
        let n = 4;
        let g2 = random_unitary(2, &mut rng);
        let g4 = random_unitary(4, &mut rng);
        let g8 = random_unitary(8, &mut rng);
        let s0 = random_state(1 << n, &mut rng);

        let mut a = s0.clone();
        let mut b = s0.clone();
        apply_1q(&mut a, n, 2, &g2);
        apply_1q_slice(&mut b, n, 2, Mat2::from_mat(&g2).as_slice());
        assert_eq!(a, b);

        let mut a = s0.clone();
        let mut b = s0.clone();
        apply_gate(&mut a, n, &[3, 1], &g4);
        apply_gate_slice(&mut b, n, &[3, 1], Mat4::from_mat(&g4).as_slice());
        assert_eq!(a, b);

        let mut a = s0.clone();
        let mut b = s0;
        apply_gate(&mut a, n, &[0, 2, 3], &g8);
        apply_gate_slice(&mut b, n, &[0, 2, 3], g8.as_slice());
        assert_eq!(a, b);
    }

    #[test]
    fn norm_preserved() {
        let mut rng = SmallRng::seed_from_u64(29);
        let mut s = random_state(8, &mut rng);
        apply_gate(&mut s, 3, &[0, 2], &gates::cx());
        apply_1q(&mut s, 3, 1, &gates::h());
        let n: f64 = s.iter().map(|z| z.norm_sqr()).sum();
        assert!((n - 1.0).abs() < 1e-12);
    }

    #[test]
    fn state_distance_zero_and_phase_invariant() {
        let mut rng = SmallRng::seed_from_u64(31);
        let s = random_state(8, &mut rng);
        let mut t = s.clone();
        for z in &mut t {
            *z *= C64::cis(0.9);
        }
        assert!(state_distance(&s, &t) < 1e-10);
    }

    #[test]
    fn cx_on_zero_state_stays_zero() {
        let mut s = zero_state(2);
        apply_gate(&mut s, 2, &[0, 1], &gates::cx());
        assert!(s[0].approx_eq(C64::ONE, 1e-15));
    }

    #[test]
    fn bell_state() {
        let mut s = zero_state(2);
        apply_1q(&mut s, 2, 0, &gates::h());
        apply_gate(&mut s, 2, &[0, 1], &gates::cx());
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(s[0].approx_eq(C64::real(r), 1e-12));
        assert!(s[3].approx_eq(C64::real(r), 1e-12));
        assert!(s[1].abs() < 1e-12 && s[2].abs() < 1e-12);
    }
}
