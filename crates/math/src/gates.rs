//! Standard gate unitaries.
//!
//! These free functions return the conventional matrices used throughout
//! the workspace. Conventions follow OpenQASM 2/3 and the paper:
//! `Rz(θ) = diag(e^{-iθ/2}, e^{iθ/2})`, `U3(θ,φ,λ)` as in OpenQASM, and
//! `CX` with the control on the first (most significant) qubit.
//!
//! The entry values are defined once, in the stack-allocated [`small`]
//! constructors ([`Mat2`](crate::smallmat::Mat2) /
//! [`Mat4`](crate::smallmat::Mat4)); the heap [`Mat`] versions here
//! delegate to them, so the two tables can never drift and the hot path
//! can fetch one- and two-qubit unitaries without allocating.

use crate::matrix::Mat;

/// Stack-allocated gate unitaries — the same matrices as the top-level
/// constructors, as [`Mat2`]/[`Mat4`] values that never touch the heap.
/// Three-qubit gates (`CCX`, `CCZ`) are 8×8 and stay [`Mat`]-only.
pub mod small {
    use crate::complex::{c64, C64};
    use crate::smallmat::{Mat2, Mat4};
    use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_2, FRAC_PI_4};

    /// Pauli X.
    pub fn x() -> Mat2 {
        Mat2::of(C64::ZERO, C64::ONE, C64::ONE, C64::ZERO)
    }

    /// Pauli Y.
    pub fn y() -> Mat2 {
        Mat2::of(C64::ZERO, -C64::I, C64::I, C64::ZERO)
    }

    /// Pauli Z.
    pub fn z() -> Mat2 {
        Mat2::of(C64::ONE, C64::ZERO, C64::ZERO, -C64::ONE)
    }

    /// Hadamard.
    pub fn h() -> Mat2 {
        let s = c64(FRAC_1_SQRT_2, 0.0);
        Mat2::of(s, s, s, -s)
    }

    /// Phase gate `S = diag(1, i)`.
    pub fn s() -> Mat2 {
        Mat2::of(C64::ONE, C64::ZERO, C64::ZERO, C64::I)
    }

    /// Inverse phase gate `S† = diag(1, -i)`.
    pub fn sdg() -> Mat2 {
        Mat2::of(C64::ONE, C64::ZERO, C64::ZERO, -C64::I)
    }

    /// T gate `diag(1, e^{iπ/4})`.
    pub fn t() -> Mat2 {
        Mat2::of(C64::ONE, C64::ZERO, C64::ZERO, C64::cis(FRAC_PI_4))
    }

    /// Inverse T gate.
    pub fn tdg() -> Mat2 {
        Mat2::of(C64::ONE, C64::ZERO, C64::ZERO, C64::cis(-FRAC_PI_4))
    }

    /// Square root of X: `SX = e^{iπ/4} Rx(π/2)`.
    pub fn sx() -> Mat2 {
        let a = c64(0.5, 0.5);
        let b = c64(0.5, -0.5);
        Mat2::of(a, b, b, a)
    }

    /// Inverse square root of X.
    pub fn sxdg() -> Mat2 {
        sx().adjoint()
    }

    /// X rotation `Rx(θ) = exp(-iθX/2)`.
    pub fn rx(theta: f64) -> Mat2 {
        let c = c64((theta / 2.0).cos(), 0.0);
        let s = c64(0.0, -(theta / 2.0).sin());
        Mat2::of(c, s, s, c)
    }

    /// Y rotation `Ry(θ) = exp(-iθY/2)`.
    pub fn ry(theta: f64) -> Mat2 {
        let c = c64((theta / 2.0).cos(), 0.0);
        let s = (theta / 2.0).sin();
        Mat2::of(c, c64(-s, 0.0), c64(s, 0.0), c)
    }

    /// Z rotation `Rz(θ) = exp(-iθZ/2) = diag(e^{-iθ/2}, e^{iθ/2})`.
    pub fn rz(theta: f64) -> Mat2 {
        Mat2::of(
            C64::cis(-theta / 2.0),
            C64::ZERO,
            C64::ZERO,
            C64::cis(theta / 2.0),
        )
    }

    /// Phase gate `P(λ) = diag(1, e^{iλ})` (a.k.a. `U1`).
    pub fn p(lambda: f64) -> Mat2 {
        Mat2::of(C64::ONE, C64::ZERO, C64::ZERO, C64::cis(lambda))
    }

    /// OpenQASM `U3(θ, φ, λ)`.
    pub fn u3(theta: f64, phi: f64, lambda: f64) -> Mat2 {
        let (ct, st) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        Mat2::of(
            c64(ct, 0.0),
            C64::cis(lambda).scale(-st),
            C64::cis(phi).scale(st),
            C64::cis(phi + lambda).scale(ct),
        )
    }

    /// OpenQASM `U2(φ, λ) = U3(π/2, φ, λ)`.
    pub fn u2(phi: f64, lambda: f64) -> Mat2 {
        u3(FRAC_PI_2, phi, lambda)
    }

    /// Controlled-X with control on the first (most significant) qubit.
    pub fn cx() -> Mat4 {
        let mut m = Mat4::identity();
        m[(2, 2)] = C64::ZERO;
        m[(3, 3)] = C64::ZERO;
        m[(2, 3)] = C64::ONE;
        m[(3, 2)] = C64::ONE;
        m
    }

    /// Controlled-Z.
    pub fn cz() -> Mat4 {
        let mut m = Mat4::identity();
        m[(3, 3)] = -C64::ONE;
        m
    }

    /// Controlled-phase `CP(λ) = diag(1,1,1,e^{iλ})`.
    pub fn cp(lambda: f64) -> Mat4 {
        let mut m = Mat4::identity();
        m[(3, 3)] = C64::cis(lambda);
        m
    }

    /// Controlled-`Rz(θ)` (control on first qubit).
    pub fn crz(theta: f64) -> Mat4 {
        let mut m = Mat4::identity();
        m[(2, 2)] = C64::cis(-theta / 2.0);
        m[(3, 3)] = C64::cis(theta / 2.0);
        m
    }

    /// SWAP gate.
    pub fn swap() -> Mat4 {
        let mut m = Mat4::zero();
        m[(0, 0)] = C64::ONE;
        m[(1, 2)] = C64::ONE;
        m[(2, 1)] = C64::ONE;
        m[(3, 3)] = C64::ONE;
        m
    }

    /// Two-qubit XX rotation `Rxx(θ) = exp(-iθ XX/2)`.
    pub fn rxx(theta: f64) -> Mat4 {
        let c = c64((theta / 2.0).cos(), 0.0);
        let s = c64(0.0, -(theta / 2.0).sin());
        let mut m = Mat4::zero();
        for i in 0..4 {
            m[(i, i)] = c;
            m[(i, 3 - i)] = s;
        }
        m
    }

    /// Two-qubit YY rotation `Ryy(θ) = exp(-iθ YY/2)`.
    pub fn ryy(theta: f64) -> Mat4 {
        let c = c64((theta / 2.0).cos(), 0.0);
        let s = c64(0.0, (theta / 2.0).sin());
        let ms = c64(0.0, -(theta / 2.0).sin());
        let mut m = Mat4::zero();
        m[(0, 0)] = c;
        m[(1, 1)] = c;
        m[(2, 2)] = c;
        m[(3, 3)] = c;
        m[(0, 3)] = s;
        m[(3, 0)] = s;
        m[(1, 2)] = ms;
        m[(2, 1)] = ms;
        m
    }

    /// Two-qubit ZZ rotation `Rzz(θ) = exp(-iθ ZZ/2)`.
    pub fn rzz(theta: f64) -> Mat4 {
        let e = C64::cis(-theta / 2.0);
        let f = C64::cis(theta / 2.0);
        Mat4::diag([e, f, f, e])
    }
}

/// Pauli X.
pub fn x() -> Mat {
    small::x().to_mat()
}

/// Pauli Y.
pub fn y() -> Mat {
    small::y().to_mat()
}

/// Pauli Z.
pub fn z() -> Mat {
    small::z().to_mat()
}

/// Hadamard.
pub fn h() -> Mat {
    small::h().to_mat()
}

/// Phase gate `S = diag(1, i)`.
pub fn s() -> Mat {
    small::s().to_mat()
}

/// Inverse phase gate `S† = diag(1, -i)`.
pub fn sdg() -> Mat {
    small::sdg().to_mat()
}

/// T gate `diag(1, e^{iπ/4})`.
pub fn t() -> Mat {
    small::t().to_mat()
}

/// Inverse T gate.
pub fn tdg() -> Mat {
    small::tdg().to_mat()
}

/// Square root of X: `SX = e^{iπ/4} Rx(π/2)`.
pub fn sx() -> Mat {
    small::sx().to_mat()
}

/// Inverse square root of X.
pub fn sxdg() -> Mat {
    small::sxdg().to_mat()
}

/// X rotation `Rx(θ) = exp(-iθX/2)`.
pub fn rx(theta: f64) -> Mat {
    small::rx(theta).to_mat()
}

/// Y rotation `Ry(θ) = exp(-iθY/2)`.
pub fn ry(theta: f64) -> Mat {
    small::ry(theta).to_mat()
}

/// Z rotation `Rz(θ) = exp(-iθZ/2) = diag(e^{-iθ/2}, e^{iθ/2})`.
pub fn rz(theta: f64) -> Mat {
    small::rz(theta).to_mat()
}

/// Phase gate `P(λ) = diag(1, e^{iλ})` (a.k.a. `U1`).
pub fn p(lambda: f64) -> Mat {
    small::p(lambda).to_mat()
}

/// OpenQASM `U3(θ, φ, λ)`.
pub fn u3(theta: f64, phi: f64, lambda: f64) -> Mat {
    small::u3(theta, phi, lambda).to_mat()
}

/// OpenQASM `U2(φ, λ) = U3(π/2, φ, λ)`.
pub fn u2(phi: f64, lambda: f64) -> Mat {
    small::u2(phi, lambda).to_mat()
}

/// Controlled-X with control on the first (most significant) qubit.
pub fn cx() -> Mat {
    small::cx().to_mat()
}

/// Controlled-Z.
pub fn cz() -> Mat {
    small::cz().to_mat()
}

/// Controlled-phase `CP(λ) = diag(1,1,1,e^{iλ})`.
pub fn cp(lambda: f64) -> Mat {
    small::cp(lambda).to_mat()
}

/// Controlled-`Rz(θ)` (control on first qubit).
pub fn crz(theta: f64) -> Mat {
    small::crz(theta).to_mat()
}

/// SWAP gate.
pub fn swap() -> Mat {
    small::swap().to_mat()
}

/// Two-qubit XX rotation `Rxx(θ) = exp(-iθ XX/2)`.
pub fn rxx(theta: f64) -> Mat {
    small::rxx(theta).to_mat()
}

/// Two-qubit YY rotation `Ryy(θ) = exp(-iθ YY/2)`.
pub fn ryy(theta: f64) -> Mat {
    small::ryy(theta).to_mat()
}

/// Two-qubit ZZ rotation `Rzz(θ) = exp(-iθ ZZ/2)`.
pub fn rzz(theta: f64) -> Mat {
    small::rzz(theta).to_mat()
}

/// Toffoli (CCX) with controls on the first two qubits.
pub fn ccx() -> Mat {
    use crate::complex::C64;
    let mut m = Mat::identity(8);
    m[(6, 6)] = C64::ZERO;
    m[(7, 7)] = C64::ZERO;
    m[(6, 7)] = C64::ONE;
    m[(7, 6)] = C64::ONE;
    m
}

/// CCZ with phases on `|111⟩`.
pub fn ccz() -> Mat {
    use crate::complex::C64;
    let mut m = Mat::identity(8);
    m[(7, 7)] = -C64::ONE;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::hs_distance;
    use std::f64::consts::PI;

    #[test]
    fn all_gates_unitary() {
        let gates: Vec<Mat> = vec![
            x(),
            y(),
            z(),
            h(),
            s(),
            sdg(),
            t(),
            tdg(),
            sx(),
            sxdg(),
            rx(0.7),
            ry(-1.3),
            rz(2.2),
            p(0.4),
            u2(0.1, 0.2),
            u3(1.0, 2.0, 3.0),
            cx(),
            cz(),
            cp(0.9),
            crz(1.1),
            swap(),
            rxx(0.5),
            ryy(0.5),
            rzz(0.5),
            ccx(),
            ccz(),
        ];
        for g in gates {
            assert!(g.is_unitary(1e-12), "not unitary: {g:?}");
        }
    }

    #[test]
    fn t_squared_is_s() {
        assert!(t().matmul(&t()).approx_eq(&s(), 1e-15));
    }

    #[test]
    fn s_squared_is_z() {
        assert!(s().matmul(&s()).approx_eq(&z(), 1e-15));
    }

    #[test]
    fn sx_squared_is_x() {
        assert!(sx().matmul(&sx()).approx_eq(&x(), 1e-15));
    }

    #[test]
    fn h_conjugates_x_to_z() {
        let hxh = h().matmul(&x()).matmul(&h());
        assert!(hxh.approx_eq(&z(), 1e-15));
    }

    #[test]
    fn rz_pi_is_z_up_to_phase() {
        assert!(hs_distance(&rz(PI), &z()) < 1e-7);
    }

    #[test]
    fn rx_is_h_rz_h() {
        let theta = 0.83;
        let lhs = rx(theta);
        let rhs = h().matmul(&rz(theta)).matmul(&h());
        assert!(hs_distance(&lhs, &rhs) < 1e-7);
    }

    #[test]
    fn u3_is_rz_ry_rz_up_to_phase() {
        let (theta, phi, lambda) = (0.3, 1.4, -0.9);
        let lhs = u3(theta, phi, lambda);
        let rhs = rz(phi).matmul(&ry(theta)).matmul(&rz(lambda));
        assert!(hs_distance(&lhs, &rhs) < 1e-7);
    }

    #[test]
    fn p_equals_rz_up_to_phase() {
        assert!(hs_distance(&p(0.77), &rz(0.77)) < 1e-7);
    }

    #[test]
    fn cz_symmetric() {
        assert!(cz().approx_eq(&cz().transpose(), 0.0));
    }

    #[test]
    fn swap_conjugates_cx() {
        // SWAP · CX(0,1) · SWAP = CX(1,0)
        let lhs = swap().matmul(&cx()).matmul(&swap());
        let cx10 = crate::matrix::embed(&cx(), 2, &[1, 0]);
        assert!(lhs.approx_eq(&cx10, 1e-15));
    }

    #[test]
    fn rzz_is_cx_rz_cx() {
        let theta = 0.9;
        let rz1 = crate::matrix::embed(&rz(theta), 2, &[1]);
        let rhs = cx().matmul(&rz1).matmul(&cx());
        assert!(hs_distance(&rzz(theta), &rhs) < 1e-7);
    }

    #[test]
    fn ccz_is_h_ccx_h() {
        let h2 = crate::matrix::embed(&h(), 3, &[2]);
        let rhs = h2.matmul(&ccx()).matmul(&h2);
        assert!(rhs.approx_eq(&ccz(), 1e-12));
    }

    #[test]
    fn small_constructors_match_heap_table() {
        // The Mat table delegates to `small`, but pin the agreement
        // explicitly for a parameterized sample of each family.
        assert_eq!(
            small::u3(0.3, 1.4, -0.9).as_slice(),
            u3(0.3, 1.4, -0.9).as_slice()
        );
        assert_eq!(small::rz(2.2).as_slice(), rz(2.2).as_slice());
        assert_eq!(small::cx().as_slice(), cx().as_slice());
        assert_eq!(small::rzz(0.5).as_slice(), rzz(0.5).as_slice());
        assert_eq!(small::sxdg().as_slice(), sxdg().as_slice());
    }
}
