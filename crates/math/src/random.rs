//! Random sampling of unitaries and states.
//!
//! Haar-ish random unitaries are produced by Gram–Schmidt orthonormalizing
//! a complex Gaussian matrix; random states by normalizing a Gaussian
//! vector. These are used by the synthesis tests, the rule-synthesis
//! fingerprinting, and the statevector equivalence checker.

use crate::complex::{c64, C64};
use crate::matrix::Mat;
use rand::Rng;

/// Draws a standard complex Gaussian (both components `N(0, 1)`).
pub fn gaussian_c64<R: Rng + ?Sized>(rng: &mut R) -> C64 {
    // Box–Muller transform.
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    let r = (-2.0 * u1.ln()).sqrt();
    let t = 2.0 * std::f64::consts::PI * u2;
    c64(r * t.cos(), r * t.sin())
}

/// Samples an `n × n` unitary approximately from the Haar measure.
///
/// Generates a complex Gaussian matrix and orthonormalizes its columns via
/// modified Gram–Schmidt.
///
/// ```
/// use qmath::random::random_unitary;
/// use rand::{rngs::SmallRng, SeedableRng};
/// let mut rng = SmallRng::seed_from_u64(1);
/// let u = random_unitary(4, &mut rng);
/// assert!(u.is_unitary(1e-10));
/// ```
#[allow(clippy::needless_range_loop)] // index math over column pairs
pub fn random_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Mat {
    loop {
        let mut cols: Vec<Vec<C64>> = (0..n)
            .map(|_| (0..n).map(|_| gaussian_c64(rng)).collect())
            .collect();
        let mut ok = true;
        for j in 0..n {
            // Remove projections onto previous columns (twice, for stability).
            for _pass in 0..2 {
                for k in 0..j {
                    let mut dot = C64::ZERO;
                    for i in 0..n {
                        dot += cols[k][i].conj() * cols[j][i];
                    }
                    for i in 0..n {
                        let sub = dot * cols[k][i];
                        cols[j][i] -= sub;
                    }
                }
            }
            let norm: f64 = cols[j].iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            if norm < 1e-8 {
                ok = false;
                break;
            }
            for z in &mut cols[j] {
                *z = z.scale(1.0 / norm);
            }
        }
        if !ok {
            continue; // astronomically unlikely degenerate draw; resample
        }
        let mut m = Mat::zeros(n, n);
        for (j, col) in cols.iter().enumerate() {
            for i in 0..n {
                m[(i, j)] = col[i];
            }
        }
        return m;
    }
}

/// Samples a normalized random state vector of dimension `dim`.
pub fn random_state<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Vec<C64> {
    let mut v: Vec<C64> = (0..dim).map(|_| gaussian_c64(rng)).collect();
    let norm: f64 = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    for z in &mut v {
        *z = z.scale(1.0 / norm);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_unitaries_are_unitary() {
        let mut rng = SmallRng::seed_from_u64(3);
        for n in [2usize, 4, 8] {
            for _ in 0..10 {
                let u = random_unitary(n, &mut rng);
                assert!(u.is_unitary(1e-9), "n = {n}");
            }
        }
    }

    #[test]
    fn random_states_normalized() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20 {
            let s = random_state(16, &mut rng);
            let n: f64 = s.iter().map(|z| z.norm_sqr()).sum();
            assert!((n - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let ua = random_unitary(4, &mut a);
        let ub = random_unitary(4, &mut b);
        assert!(ua.approx_eq(&ub, 0.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let ua = random_unitary(4, &mut a);
        let ub = random_unitary(4, &mut b);
        assert!(!ua.approx_eq(&ub, 1e-3));
    }
}
