//! The lock-striped, bounded, LRU-evicting resynthesis memo table.

use crate::fingerprint::Fingerprint;
use qcir::Circuit;
use qmath::dist::accurate_hs_distance;
use qmath::Mat;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Configuration for a [`QCache`].
#[derive(Debug, Clone)]
pub struct QCacheOpts {
    /// Size budget, measured in **gates across all cached replacement
    /// circuits** (an empty replacement weighs 1). The budget is split
    /// evenly over the stripes; each stripe evicts least-recently-used
    /// entries once it exceeds its share, always retaining at least its
    /// most recent entry.
    pub gate_budget: usize,
    /// Number of lock stripes. Concurrent engines (shard workers,
    /// parallel service jobs) contend per stripe, not per cache.
    /// Clamped to ≥ 1.
    pub stripes: usize,
}

impl Default for QCacheOpts {
    fn default() -> Self {
        QCacheOpts {
            gate_budget: 65_536,
            stripes: 16,
        }
    }
}

/// Counter snapshot of a [`QCache`] (see [`QCache::stats`]).
///
/// `hits`, `negative_hits`, `misses` and `verify_rejects` partition
/// the lookups: a lookup either verified and served a replacement
/// (hit), served a known-failure marker (negative hit), found nothing
/// servable (miss), or found an entry that failed the exact-matrix
/// check (reject — a fingerprint collision or an entry coarser than
/// the requested ε).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served a replacement from the cache (after matrix
    /// verification).
    pub hits: u64,
    /// Lookups served a known-failure (negative) entry — the saved
    /// instantiation work of a hit, without a replacement.
    pub negative_hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Lookups whose entry failed the verify-on-hit matrix check.
    pub verify_rejects: u64,
    /// Entries inserted (including overwrites of an existing key).
    pub inserts: u64,
    /// Entries evicted by the LRU size bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Total gate weight currently resident.
    pub gates: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.negative_hits + self.misses + self.verify_rejects;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.negative_hits) as f64 / total as f64
        }
    }
}

/// The three outcomes of a [`QCache::lookup`].
// `Hit` dwarfs the unit variants because `CacheHit` carries the served
// circuit; callers immediately destructure it, so boxing would only
// add an allocation to the cache-hit fast path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Lookup {
    /// A verified replacement was served.
    Hit(CacheHit),
    /// Synthesis of this fingerprint is known to fail at the queried ε
    /// (or looser) under the queried length budget (or roomier) — the
    /// caller should skip the instantiation and treat the call as a
    /// failed synthesis.
    KnownFailure,
    /// Nothing (servable) cached; the caller synthesizes and inserts.
    Miss,
}

impl Lookup {
    /// The served replacement, if this outcome is a [`Lookup::Hit`].
    pub fn hit(self) -> Option<CacheHit> {
        match self {
            Lookup::Hit(hit) => Some(hit),
            _ => None,
        }
    }

    /// True for [`Lookup::KnownFailure`].
    pub fn is_known_failure(&self) -> bool {
        matches!(self, Lookup::KnownFailure)
    }
}

/// A verified cache hit.
#[derive(Debug, Clone)]
pub struct CacheHit {
    /// The cached replacement circuit (native to the fingerprint's gate
    /// set).
    pub circuit: Circuit,
    /// **Measured** Hilbert–Schmidt distance between the query target
    /// and the replacement's unitary — exact ε accounting for the hit,
    /// independent of what the original synthesis measured.
    pub epsilon: f64,
}

// Positive entries dominate a warm cache, so sizing entries for the
// circuit + unitary payload is the common case, not waste; negative
// entries are comparatively rare.
#[allow(clippy::large_enum_variant)]
enum Stored {
    /// A synthesized replacement circuit plus its true unitary (stored
    /// so verification costs one small matrix comparison instead of a
    /// circuit simulation).
    Positive { circuit: Circuit, unitary: Mat },
    /// Synthesis *failed* for this fingerprint at tolerance `eps` under
    /// a replacement-length budget of `max_len` — the loosest (ε,
    /// budget) a failure has been observed at. Served for queries at
    /// that ε or tighter **and** that length budget or tighter (a
    /// caller with a roomier budget may succeed where the capped
    /// attempt failed): skipping a known-failing instantiation saves
    /// the same numerical work as a positive hit, and "no replacement"
    /// is always a sound answer (the optimizer just makes no move).
    ///
    /// `epoch` stamps the synthesis-budget *profile* the failure was
    /// observed under (see [`QCache::note_budget_profile`]): a failure
    /// recorded under a small profile (few restarts/iterations) stops
    /// being served once the profile grows — stale-epoch entries read
    /// as misses, so the caller retries with its stronger budget.
    Negative {
        eps: f64,
        max_len: usize,
        epoch: u64,
    },
}

struct Entry {
    stored: Stored,
    weight: usize,
    stamp: u64,
}

/// A borrowed view of one resident entry, as yielded by
/// [`QCache::for_each_entry`] (the snapshot writer's iteration).
pub(crate) enum EntryView<'a> {
    /// A synthesized replacement and its true unitary.
    Positive {
        circuit: &'a Circuit,
        unitary: &'a Mat,
    },
    /// A current-epoch known-failure marker.
    Negative { eps: f64, max_len: usize },
}

#[derive(Default)]
struct Stripe {
    map: HashMap<Fingerprint, Entry>,
    gates: usize,
    clock: u64,
}

/// One tallied cache event: a per-instance [`qtrace::Counter`] (so
/// [`QCache::stats`] stays an exact per-cache delta, which the engine
/// tests and `GuoqResult`'s per-run cache fields depend on) mirrored
/// into the process-wide registry series of the same event (so a
/// Prometheus scrape sees all caches' traffic without bespoke atomics).
struct Tally {
    local: qtrace::Counter,
    global: &'static qtrace::Counter,
}

impl Tally {
    fn new(global_name: &'static str) -> Self {
        Tally {
            local: qtrace::Counter::new(),
            global: qtrace::counter(global_name),
        }
    }

    fn inc(&self) {
        self.local.inc();
        self.global.inc();
    }

    fn get(&self) -> u64 {
        self.local.get()
    }
}

/// The concurrent memo table mapping [`Fingerprint`] → synthesized
/// replacement circuit. See the [crate docs](crate) for the design;
/// the essentials:
///
/// * **Lock-striped**: the fingerprint hash selects one of
///   [`QCacheOpts::stripes`] independently locked shards.
/// * **Bounded**: total replacement gates are capped by
///   [`QCacheOpts::gate_budget`]; least-recently-used entries are
///   evicted per stripe.
/// * **Verify-on-hit**: [`lookup`](Self::lookup) compares the query
///   target against the entry's stored unitary and serves the entry
///   only within the caller's ε — collisions are harmless, and the
///   returned [`CacheHit::epsilon`] is measured, not assumed.
///
/// The one integrity contract sits on [`insert`](Self::insert): the
/// supplied unitary must be the circuit's true unitary (debug builds
/// assert it). Everything downstream — including poisoned or colliding
/// entries — is covered by the verification.
pub struct QCache {
    stripes: Vec<Mutex<Stripe>>,
    stripe_budget: usize,
    hits: Tally,
    negative_hits: Tally,
    misses: Tally,
    verify_rejects: Tally,
    inserts: Tally,
    evictions: Tally,
    /// Current negative-entry epoch: entries stamped with an older
    /// epoch are stale (recorded under a different synthesis-budget
    /// profile) and read as misses.
    negative_epoch: AtomicU64,
    /// Fingerprint of the last budget profile observed by
    /// [`note_budget_profile`](Self::note_budget_profile) (0 = none
    /// yet).
    profile_stamp: AtomicU64,
}

impl QCache {
    /// Creates a cache from options.
    pub fn new(opts: QCacheOpts) -> Self {
        let n = opts.stripes.max(1);
        QCache {
            stripes: (0..n).map(|_| Mutex::new(Stripe::default())).collect(),
            stripe_budget: opts.gate_budget / n,
            hits: Tally::new("qcache_hits_total"),
            negative_hits: Tally::new("qcache_negative_hits_total"),
            misses: Tally::new("qcache_misses_total"),
            verify_rejects: Tally::new("qcache_verify_rejects_total"),
            inserts: Tally::new("qcache_inserts_total"),
            evictions: Tally::new("qcache_evictions_total"),
            negative_epoch: AtomicU64::new(0),
            profile_stamp: AtomicU64::new(0),
        }
    }

    /// Declares the synthesis-budget profile (an opaque fingerprint of
    /// whatever knobs bound synthesis power — restarts, iterations,
    /// replacement-length caps) behind the caller's lookups. A *change*
    /// of profile bumps the negative-entry epoch
    /// ([`bump_negative_epoch`](Self::bump_negative_epoch)): "fails at
    /// (ε, budget)" was observed under the old profile, and a grown
    /// profile deserves a retry. The first observation sets the stamp
    /// without invalidating anything; alternating profiles over one
    /// shared cache degrade gracefully (negatives keep expiring —
    /// sound, just less negative-cache leverage). Positive entries are
    /// untouched: a verified replacement is correct under any budget
    /// within the caller's length cap.
    pub fn note_budget_profile(&self, fingerprint: u64) {
        let prev = self.profile_stamp.swap(fingerprint, Ordering::Relaxed);
        if prev != 0 && prev != fingerprint {
            self.bump_negative_epoch();
        }
    }

    /// Expires every resident *negative* entry: subsequent lookups
    /// treat them as misses until a fresh failure is recorded under
    /// the new epoch. (The entries stay resident until LRU eviction or
    /// a re-failure overwrites them; staleness is checked at lookup.)
    pub fn bump_negative_epoch(&self) {
        self.negative_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Creates a cache with the default stripe count and the given gate
    /// budget.
    pub fn with_gate_budget(gate_budget: usize) -> Self {
        QCache::new(QCacheOpts {
            gate_budget,
            ..QCacheOpts::default()
        })
    }

    fn stripe(&self, fp: &Fingerprint) -> &Mutex<Stripe> {
        &self.stripes[(fp.hash() % self.stripes.len() as u64) as usize]
    }

    /// Looks up `fp` for `target`: serves a replacement only if its
    /// stored unitary is within `eps` of `target` (the verify-on-hit
    /// check that makes fingerprint collisions harmless) and its length
    /// is within the caller's `max_len` budget (so a hit never hands
    /// back a circuit the caller's own synthesis budget could not have
    /// produced — pass `usize::MAX` for no cap), serves
    /// [`Lookup::KnownFailure`] if synthesis is recorded failing at
    /// this ε (or looser) under this length budget (or looser), and
    /// [`Lookup::Miss`] otherwise. A served entry has its LRU stamp
    /// refreshed.
    pub fn lookup(&self, fp: &Fingerprint, target: &Mat, eps: f64, max_len: usize) -> Lookup {
        let mut stripe = self.stripe(fp).lock().expect("qcache stripe poisoned");
        let stripe = &mut *stripe;
        let Some(entry) = stripe.map.get_mut(fp) else {
            self.misses.inc();
            return Lookup::Miss;
        };
        match &entry.stored {
            Stored::Negative {
                eps: failed_at,
                max_len: failed_len,
                epoch,
            } => {
                if *epoch != self.negative_epoch.load(Ordering::Relaxed) {
                    // Stale: recorded under a previous budget profile.
                    // The grown (or otherwise changed) budget deserves
                    // a fresh attempt.
                    self.misses.inc();
                    Lookup::Miss
                } else if eps <= *failed_at && max_len <= *failed_len {
                    stripe.clock += 1;
                    entry.stamp = stripe.clock;
                    self.negative_hits.inc();
                    Lookup::KnownFailure
                } else {
                    // A looser request (in ε or in length budget) might
                    // succeed where the tighter one failed; let the
                    // caller try.
                    self.misses.inc();
                    Lookup::Miss
                }
            }
            Stored::Positive { circuit, unitary } => {
                if circuit.len() > max_len {
                    // Producible-by-fresh-synthesis contract: the entry
                    // (synthesized under some other window's budget) is
                    // longer than this caller's own synthesis could
                    // return; let it synthesize within its budget.
                    self.misses.inc();
                    return Lookup::Miss;
                }
                if unitary.rows() != target.rows() {
                    // Cannot happen through `fingerprint` (the dim is
                    // part of the key), but a defensive reject beats a
                    // panic.
                    self.verify_rejects.inc();
                    return Lookup::Miss;
                }
                let measured = accurate_hs_distance(target, unitary);
                if measured > eps {
                    self.verify_rejects.inc();
                    return Lookup::Miss;
                }
                let hit = CacheHit {
                    circuit: circuit.clone(),
                    epsilon: measured,
                };
                stripe.clock += 1;
                entry.stamp = stripe.clock;
                self.hits.inc();
                Lookup::Hit(hit)
            }
        }
    }

    /// Inserts (or overwrites) the replacement for `fp`. `unitary` must
    /// be `circuit`'s true unitary — it is what every future
    /// verification trusts. Evicts least-recently-used entries while
    /// the stripe exceeds its gate budget (always retaining the newest
    /// entry).
    pub fn insert(&self, fp: Fingerprint, circuit: &Circuit, unitary: Mat) {
        debug_assert!(
            circuit.is_empty() || accurate_hs_distance(&circuit.unitary(), &unitary) < 1e-9,
            "insert contract violated: supplied unitary is not the circuit's"
        );
        debug_assert_eq!(unitary.rows(), fp.dim(), "unitary/fingerprint dim mismatch");
        let weight = circuit.len().max(1);
        self.store(
            fp,
            Stored::Positive {
                circuit: circuit.clone(),
                unitary,
            },
            weight,
        );
    }

    /// Inserts a positive entry restored from a persisted snapshot.
    ///
    /// Unlike [`insert`](Self::insert) this does not assert the
    /// circuit/unitary contract even in debug builds: a snapshot is
    /// external input and may carry a poisoned pair despite a valid
    /// checksum (e.g. a bit flip inside one record's payload that
    /// happens to keep its checksum — or simply an attacker-written
    /// file). Verify-on-hit makes any such entry a harmless
    /// `verify_reject`; aborting the load would turn a recoverable
    /// corruption into downtime.
    pub(crate) fn insert_loaded(&self, fp: Fingerprint, circuit: Circuit, unitary: Mat) {
        let weight = circuit.len().max(1);
        self.store(fp, Stored::Positive { circuit, unitary }, weight);
    }

    /// The raw budget-profile stamp (see
    /// [`note_budget_profile`](Self::note_budget_profile); 0 = none
    /// observed yet). Persisted in snapshots so restored negative
    /// entries keep their profile scoping across a restart.
    pub(crate) fn profile_stamp_raw(&self) -> u64 {
        self.profile_stamp.load(Ordering::Relaxed)
    }

    /// Adopts a snapshot's persisted profile stamp, but only if this
    /// cache has not observed a profile of its own yet — a snapshot
    /// loaded into a live table must not un-declare the live profile.
    /// After adoption, [`note_budget_profile`](Self::note_budget_profile)
    /// with a *different* profile expires the loaded negatives exactly
    /// as it would have expired the originals.
    pub(crate) fn adopt_profile_stamp(&self, stamp: u64) {
        let _ = self
            .profile_stamp
            .compare_exchange(0, stamp, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Visits every resident non-stale entry in stripe-major,
    /// ascending-recency order (least recently used first), so a
    /// consumer that replays the visit order through inserts — the
    /// snapshot save/load cycle — reproduces each stripe's LRU order.
    /// Negative entries from an expired epoch are skipped: they are
    /// already dead to lookups and a restart must not revive them.
    ///
    /// Holds one stripe lock at a time; entries inserted or evicted
    /// concurrently may be missed (a snapshot is a best-effort
    /// checkpoint, not a consistent dump).
    pub(crate) fn for_each_entry(&self, mut f: impl FnMut(&Fingerprint, EntryView<'_>)) {
        let epoch = self.negative_epoch.load(Ordering::Relaxed);
        for stripe in &self.stripes {
            let stripe = stripe.lock().expect("qcache stripe poisoned");
            let mut entries: Vec<_> = stripe
                .map
                .iter()
                .filter_map(|(fp, e)| {
                    let view = match &e.stored {
                        Stored::Positive { circuit, unitary } => {
                            EntryView::Positive { circuit, unitary }
                        }
                        Stored::Negative {
                            eps,
                            max_len,
                            epoch: entry_epoch,
                        } => {
                            if *entry_epoch != epoch {
                                return None;
                            }
                            EntryView::Negative {
                                eps: *eps,
                                max_len: *max_len,
                            }
                        }
                    };
                    Some((e.stamp, fp, view))
                })
                .collect();
            entries.sort_by_key(|(stamp, ..)| *stamp);
            for (_, fp, view) in entries {
                f(fp, view);
            }
        }
    }

    /// Records that synthesizing `fp` **failed** at tolerance `eps`
    /// under a replacement-length budget of `max_len`, so future
    /// lookups at that (ε, budget) or tighter skip the doomed
    /// instantiation (a failed numerical synthesis costs the same
    /// multi-restart budget as a successful one — on repeat traffic the
    /// failures dominate the misses without this). Never displaces a
    /// positive entry; repeated failures keep the loosest failing
    /// (ε, budget) pair.
    pub fn insert_failure(&self, fp: Fingerprint, eps: f64, max_len: usize) {
        let epoch = self.negative_epoch.load(Ordering::Relaxed);
        let mut stripe = self.stripe(&fp).lock().expect("qcache stripe poisoned");
        let (eps, max_len) = match stripe.map.get(&fp) {
            Some(Entry {
                stored: Stored::Positive { .. },
                ..
            }) => return, // a servable replacement trumps a failure marker
            Some(Entry {
                stored:
                    Stored::Negative {
                        eps: prior_eps,
                        max_len: prior_len,
                        epoch: prior_epoch,
                    },
                ..
            }) if *prior_epoch == epoch => {
                // Only replace when the new observation dominates the
                // stored one — a componentwise max would fabricate an
                // (ε, budget) failure that was never observed.
                if eps >= *prior_eps && max_len >= *prior_len {
                    (eps, max_len)
                } else {
                    return;
                }
            }
            // A stale-epoch marker carries no information about the
            // current profile: the fresh observation replaces it.
            Some(_) | None => (eps, max_len),
        };
        self.store_locked(
            &mut stripe,
            fp,
            Stored::Negative {
                eps,
                max_len,
                epoch,
            },
            1,
        );
    }

    fn store(&self, fp: Fingerprint, stored: Stored, weight: usize) {
        let mut stripe = self.stripe(&fp).lock().expect("qcache stripe poisoned");
        self.store_locked(&mut stripe, fp, stored, weight);
    }

    fn store_locked(&self, stripe: &mut Stripe, fp: Fingerprint, stored: Stored, weight: usize) {
        stripe.clock += 1;
        let stamp = stripe.clock;
        let old = stripe.map.insert(
            fp,
            Entry {
                stored,
                weight,
                stamp,
            },
        );
        stripe.gates += weight;
        if let Some(old) = old {
            stripe.gates -= old.weight;
        }
        self.inserts.inc();

        while stripe.gates > self.stripe_budget && stripe.map.len() > 1 {
            // LRU scan: stripes stay small (a few hundred entries at
            // most under the default budget), so a linear min-stamp
            // scan beats maintaining an intrusive list.
            let lru = *stripe
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k)
                .expect("non-empty stripe");
            let evicted = stripe.map.remove(&lru).expect("lru key present");
            stripe.gates -= evicted.weight;
            self.evictions.inc();
        }
    }

    /// A consistent-enough counter snapshot (entries/gates are summed
    /// per stripe; concurrent mutation may skew totals by in-flight
    /// operations).
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut gates = 0;
        for s in &self.stripes {
            let s = s.lock().expect("qcache stripe poisoned");
            entries += s.map.len();
            gates += s.gates;
        }
        CacheStats {
            hits: self.hits.get(),
            negative_hits: self.negative_hits.get(),
            misses: self.misses.get(),
            verify_rejects: self.verify_rejects.get(),
            inserts: self.inserts.get(),
            evictions: self.evictions.get(),
            entries,
            gates,
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.stats().entries
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for QCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("QCache")
            .field("entries", &s.entries)
            .field("gates", &s.gates)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("verify_rejects", &s.verify_rejects)
            .field("evictions", &s.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;
    use qcir::{Gate, GateSet};
    use std::sync::Arc;

    fn rz_circuit(theta: f64) -> (Circuit, Mat) {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(theta), &[0]);
        let u = c.unitary();
        (c, u)
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let cache = QCache::new(QCacheOpts::default());
        let (c, u) = rz_circuit(0.7);
        let fp = fingerprint(&u, GateSet::Nam);
        assert!(cache.lookup(&fp, &u, 1e-9, usize::MAX).hit().is_none());
        cache.insert(fp, &c, u.clone());
        let hit = cache
            .lookup(&fp, &u, 1e-9, usize::MAX)
            .hit()
            .expect("hit after insert");
        assert_eq!(hit.circuit, c);
        assert!(hit.epsilon < 1e-12);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.verify_rejects), (1, 1, 0));
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn poisoned_entry_is_rejected_by_verification() {
        // Simulate a fingerprint collision: the key says Rz(0.3) but the
        // stored pair is a (self-consistent) Rz(2.9) entry. The lookup's
        // exact-matrix verification must refuse to serve it.
        let cache = QCache::new(QCacheOpts::default());
        let (_, target) = rz_circuit(0.3);
        let (poison_c, poison_u) = rz_circuit(2.9);
        let fp = fingerprint(&target, GateSet::Nam);
        cache.insert(fp, &poison_c, poison_u);
        assert!(cache.lookup(&fp, &target, 1e-6, usize::MAX).hit().is_none());
        let s = cache.stats();
        assert_eq!(s.verify_rejects, 1);
        assert_eq!(s.hits, 0);
        // A fresh (honest) insert under the same key repairs the slot.
        let (good_c, good_u) = rz_circuit(0.3);
        cache.insert(fp, &good_c, good_u);
        assert!(cache.lookup(&fp, &target, 1e-6, usize::MAX).hit().is_some());
    }

    #[test]
    fn entry_coarser_than_requested_eps_is_rejected() {
        let cache = QCache::new(QCacheOpts::default());
        let (_, target) = rz_circuit(0.5);
        let (near_c, near_u) = rz_circuit(0.5 + 1e-4);
        let fp = fingerprint(&target, GateSet::Nam);
        cache.insert(fp, &near_c, near_u);
        // Loose ε: served, with the measured (nonzero) distance.
        let hit = cache
            .lookup(&fp, &target, 1e-3, usize::MAX)
            .hit()
            .expect("loose eps hit");
        assert!(hit.epsilon > 0.0 && hit.epsilon <= 1e-3);
        // Tight ε: the same entry no longer qualifies.
        assert!(cache.lookup(&fp, &target, 1e-9, usize::MAX).hit().is_none());
        assert_eq!(cache.stats().verify_rejects, 1);
    }

    #[test]
    fn lru_eviction_respects_gate_budget() {
        // One stripe, budget 6 gates; 3-gate entries → at most 2 fit.
        let cache = QCache::new(QCacheOpts {
            gate_budget: 6,
            stripes: 1,
        });
        let mut fps = Vec::new();
        for k in 0..3 {
            let mut c = Circuit::new(1);
            for j in 0..3 {
                c.push(Gate::Rz(0.1 + k as f64 + j as f64 * 0.01), &[0]);
            }
            let u = c.unitary();
            let fp = fingerprint(&u, GateSet::Nam);
            cache.insert(fp, &c, u.clone());
            fps.push((fp, u));
        }
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(s.gates <= 6);
        // The oldest entry (k = 0) is the evicted one.
        assert!(cache
            .lookup(&fps[0].0, &fps[0].1, 1e-9, usize::MAX)
            .hit()
            .is_none());
        assert!(cache
            .lookup(&fps[2].0, &fps[2].1, 1e-9, usize::MAX)
            .hit()
            .is_some());
    }

    #[test]
    fn lookup_refreshes_lru_order() {
        let cache = QCache::new(QCacheOpts {
            gate_budget: 6,
            stripes: 1,
        });
        let entry = |theta: f64| {
            let mut c = Circuit::new(1);
            for j in 0..3 {
                c.push(Gate::Rz(theta + j as f64 * 0.01), &[0]);
            }
            let u = c.unitary();
            let fp = fingerprint(&u, GateSet::Nam);
            (c, u, fp)
        };
        let (c0, u0, fp0) = entry(0.2);
        let (c1, u1, fp1) = entry(1.2);
        cache.insert(fp0, &c0, u0.clone());
        cache.insert(fp1, &c1, u1.clone());
        // Touch the older entry, then overflow: the *untouched* one goes.
        assert!(cache.lookup(&fp0, &u0, 1e-9, usize::MAX).hit().is_some());
        let (c2, u2, fp2) = entry(2.2);
        cache.insert(fp2, &c2, u2);
        assert!(cache.lookup(&fp0, &u0, 1e-9, usize::MAX).hit().is_some());
        assert!(cache.lookup(&fp1, &u1, 1e-9, usize::MAX).hit().is_none());
    }

    #[test]
    fn known_failures_are_served_and_yield_to_positives() {
        let cache = QCache::new(QCacheOpts::default());
        let (c, u) = rz_circuit(1.1);
        let fp = fingerprint(&u, GateSet::Nam);
        cache.insert_failure(fp, 1e-6, 8);
        // Same or tighter (ε, length budget): the failure is served.
        assert!(cache.lookup(&fp, &u, 1e-6, 8).is_known_failure());
        assert!(cache.lookup(&fp, &u, 1e-9, 4).is_known_failure());
        // Looser ε might succeed: treated as a miss.
        assert!(matches!(cache.lookup(&fp, &u, 1e-3, 8), Lookup::Miss));
        // So might a roomier length budget.
        assert!(matches!(cache.lookup(&fp, &u, 1e-6, 20), Lookup::Miss));
        // Repeated dominating failures widen the stored pair.
        cache.insert_failure(fp, 1e-4, 8);
        assert!(cache.lookup(&fp, &u, 1e-4, 8).is_known_failure());
        let s = cache.stats();
        assert_eq!(s.negative_hits, 3);
        assert_eq!(s.misses, 2);
        // A later success overwrites the failure marker…
        cache.insert(fp, &c, u.clone());
        assert!(cache.lookup(&fp, &u, 1e-9, usize::MAX).hit().is_some());
        // …and a subsequent failure report cannot displace it.
        cache.insert_failure(fp, 1.0, usize::MAX);
        assert!(cache.lookup(&fp, &u, 1e-9, usize::MAX).hit().is_some());
    }

    #[test]
    fn negative_entries_expire_when_the_budget_profile_changes() {
        let cache = QCache::new(QCacheOpts::default());
        let (c, u) = rz_circuit(0.9);
        let fp = fingerprint(&u, GateSet::Nam);
        // First profile observation: stamps without invalidating.
        cache.note_budget_profile(11);
        cache.insert_failure(fp, 1e-6, 8);
        assert!(cache.lookup(&fp, &u, 1e-6, 8).is_known_failure());
        // Re-declaring the same profile changes nothing.
        cache.note_budget_profile(11);
        assert!(cache.lookup(&fp, &u, 1e-6, 8).is_known_failure());
        // A grown budget profile expires the failure: the caller
        // retries instead of being served a stale "fails".
        cache.note_budget_profile(42);
        assert!(matches!(cache.lookup(&fp, &u, 1e-6, 8), Lookup::Miss));
        // A re-failure under the new profile is cached (replacing the
        // stale-epoch marker outright, no dominance check) and served
        // again.
        cache.insert_failure(fp, 1e-6, 8);
        assert!(cache.lookup(&fp, &u, 1e-6, 8).is_known_failure());
        // Positive entries never expire with the profile.
        cache.note_budget_profile(77);
        cache.insert(fp, &c, u.clone());
        assert!(cache.lookup(&fp, &u, 1e-9, usize::MAX).hit().is_some());
        cache.note_budget_profile(78);
        assert!(cache.lookup(&fp, &u, 1e-9, usize::MAX).hit().is_some());
    }

    #[test]
    fn explicit_epoch_bump_expires_negatives() {
        let cache = QCache::new(QCacheOpts::default());
        let (_, u) = rz_circuit(0.2);
        let fp = fingerprint(&u, GateSet::Nam);
        cache.insert_failure(fp, 1e-6, 8);
        assert!(cache.lookup(&fp, &u, 1e-6, 8).is_known_failure());
        cache.bump_negative_epoch();
        assert!(matches!(cache.lookup(&fp, &u, 1e-6, 8), Lookup::Miss));
    }

    #[test]
    fn negative_entries_participate_in_lru() {
        let cache = QCache::new(QCacheOpts {
            gate_budget: 2,
            stripes: 1,
        });
        let (_, u1) = rz_circuit(0.1);
        let (_, u2) = rz_circuit(0.2);
        let (_, u3) = rz_circuit(0.3);
        cache.insert_failure(fingerprint(&u1, GateSet::Nam), 1e-6, 4);
        cache.insert_failure(fingerprint(&u2, GateSet::Nam), 1e-6, 4);
        cache.insert_failure(fingerprint(&u3, GateSet::Nam), 1e-6, 4);
        let s = cache.stats();
        assert_eq!(s.entries, 2, "weight-1 negatives must evict at budget 2");
        assert_eq!(s.evictions, 1);
        assert!(!cache
            .lookup(&fingerprint(&u1, GateSet::Nam), &u1, 1e-6, 4)
            .is_known_failure());
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(QCache::new(QCacheOpts {
            gate_budget: 4096,
            stripes: 4,
        }));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for k in 0..200 {
                        let (c, u) = rz_circuit(0.01 * (k % 50) as f64 + t as f64);
                        let fp = fingerprint(&u, GateSet::Nam);
                        if let Lookup::Hit(hit) = cache.lookup(&fp, &u, 1e-9, usize::MAX) {
                            assert!(hit.epsilon < 1e-9);
                        } else {
                            cache.insert(fp, &c, u);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses + s.verify_rejects, 800);
        assert!(s.hits > 0, "repeated keys must hit: {s:?}");
    }
}
