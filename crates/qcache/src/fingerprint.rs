//! Phase-invariant window fingerprints.
//!
//! A resynthesis window is identified by its unitary *up to global
//! phase* (the paper's Def. 3.2 distance is phase-invariant, so two
//! windows whose unitaries differ only by `e^{iφ}` have identical
//! resynthesis answers) together with the target gate set (the same
//! unitary synthesizes to different circuits for different sets).
//!
//! The fingerprint canonicalizes the phase — every entry is rotated by
//! the conjugate phase of the largest-modulus entry, making that entry
//! real positive — then quantizes the entries onto a fixed grid and
//! hashes the grid coordinates. Quantization makes the hash stable
//! under the ~1e-12 float noise of different evaluation orders, at the
//! price of *boundary* effects: two unitaries within distance ~grid of
//! each other may still land in different cells. Both failure modes are
//! benign by construction:
//!
//! * a **false miss** (same window, different hash) just re-synthesizes
//!   — correctness is untouched, and the dominant traffic (bit-identical
//!   repeated windows, e.g. a repeated job under the same seed) hashes
//!   bit-identically;
//! * a **false hit** (different windows, same hash) is caught by the
//!   exact-matrix verification [`QCache::lookup`](crate::QCache::lookup)
//!   performs before serving any entry.

use qcir::GateSet;
use qmath::Mat;

/// Quantization grid for the hashed matrix entries. Coarse enough that
/// float noise from different gate-application orders cannot move an
/// entry across a cell boundary in practice, fine enough that distinct
/// small-circuit unitaries essentially never share a cell pattern (and
/// when they do, verification rejects the entry).
const GRID: f64 = 1e7;

/// A phase-invariant identity for a resynthesis request: quantized
/// unitary hash + matrix dimension + target gate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    hash: u64,
    dim: u32,
    set: GateSet,
}

impl Fingerprint {
    /// The 64-bit content hash (also selects the cache stripe).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Dimension of the fingerprinted unitary (2^qubits).
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// The target gate set this request synthesizes into.
    pub fn gate_set(&self) -> GateSet {
        self.set
    }

    /// Reassembles a fingerprint from its raw parts (snapshot load).
    ///
    /// Only for deserialization of fingerprints previously produced by
    /// [`fingerprint`]: a fabricated hash can never cause a wrong
    /// answer (lookups verify the stored unitary against the query
    /// before serving), only wasted slots.
    pub(crate) fn from_raw(hash: u64, dim: u32, set: GateSet) -> Fingerprint {
        Fingerprint { hash, dim, set }
    }
}

/// SplitMix64 finalizer: one cheap, well-mixed step per quantized value.
/// Also the mixing step of the snapshot record checksum.
pub(crate) fn mix(mut h: u64, v: u64) -> u64 {
    h ^= v;
    h = h.wrapping_add(0x9E3779B97F4A7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D049BB133111EB);
    h ^ (h >> 31)
}

fn quantize(x: f64) -> u64 {
    // `+0.0` collapses -0.0 onto 0.0 so the two zero encodings hash
    // identically after rounding.
    ((x * GRID).round() + 0.0).to_bits()
}

/// Computes the phase/global-phase-invariant fingerprint of `target`
/// for synthesis into `set`.
///
/// # Panics
///
/// Panics if `target` is not square or is the 0×0 matrix.
pub fn fingerprint(target: &Mat, set: GateSet) -> Fingerprint {
    assert_eq!(
        target.rows(),
        target.cols(),
        "fingerprint needs a square matrix"
    );
    assert!(target.rows() > 0, "fingerprint needs a non-empty matrix");
    // Canonicalize the global phase: rotate so the largest-modulus entry
    // becomes real positive. The reference entry is chosen with a small
    // relative hysteresis so near-ties resolve to the same (earliest)
    // entry for nearby unitaries; an unstable choice only costs a false
    // miss, never a wrong hit.
    let data = target.as_slice();
    let mut best = 0usize;
    let mut best_norm = data[0].norm_sqr();
    for (i, z) in data.iter().enumerate().skip(1) {
        let n = z.norm_sqr();
        if n > best_norm * (1.0 + 1e-9) {
            best = i;
            best_norm = n;
        }
    }
    let anchor = data[best];
    let inv_phase = if anchor.abs() > 0.0 {
        anchor.conj().scale(1.0 / anchor.abs())
    } else {
        qmath::C64::ONE // degenerate (non-unitary) input: hash as-is
    };

    let mut h = mix(0x9CAC_5E00_51B1_E2F1, target.rows() as u64);
    for z in data {
        let w = *z * inv_phase;
        h = mix(h, quantize(w.re));
        h = mix(h, quantize(w.im));
    }
    h = mix(h, set.id() as u64);
    Fingerprint {
        hash: h,
        dim: target.rows() as u32,
        set,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::{gates, C64};

    #[test]
    fn invariant_under_global_phase() {
        let u = gates::u3(0.7, -0.2, 1.9);
        for phi in [0.1, 1.0, 2.7, -3.0] {
            let v = u.scaled(C64::cis(phi));
            assert_eq!(fingerprint(&u, GateSet::Nam), fingerprint(&v, GateSet::Nam));
        }
    }

    #[test]
    fn distinguishes_unitaries() {
        let a = fingerprint(&gates::x(), GateSet::Nam);
        let b = fingerprint(&gates::z(), GateSet::Nam);
        let c = fingerprint(&gates::h(), GateSet::Nam);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn distinguishes_gate_sets_and_dims() {
        let x = gates::x();
        assert_ne!(
            fingerprint(&x, GateSet::Nam),
            fingerprint(&x, GateSet::CliffordT)
        );
        assert_ne!(
            fingerprint(&Mat::identity(2), GateSet::Nam),
            fingerprint(&Mat::identity(4), GateSet::Nam)
        );
    }

    #[test]
    fn stable_under_tiny_noise() {
        // Sub-grid perturbations (the float noise of different gate
        // application orders) must not move the hash.
        let u = gates::cx();
        let mut v = u.clone();
        for z in v.as_mut_slice() {
            *z += C64::new(1e-13, -1e-13);
        }
        assert_eq!(fingerprint(&u, GateSet::Nam), fingerprint(&v, GateSet::Nam));
    }

    #[test]
    fn separates_distinct_rotations() {
        // A sweep of distinct Rz angles must produce distinct hashes
        // (the grid is far finer than any angle step a rule uses).
        let mut seen = std::collections::HashSet::new();
        for k in 0..1000 {
            let u = gates::rz(0.001 * k as f64);
            seen.insert(fingerprint(&u, GateSet::Nam).hash());
        }
        assert_eq!(seen.len(), 1000);
    }
}
