//! Persistent cache tier: the memo table's snapshot file.
//!
//! The 176× warm-cache win is process-local without this module — a
//! worker restart (crash, deploy, failover respawn) starts cold. The
//! snapshot serializes the resident entries to a file next to the job
//! journals so a restarted worker reloads its memo table in one
//! streaming pass. Both entry kinds persist: positive replacements
//! (circuit + true unitary) and known-failure markers, the latter
//! scoped by the persisted budget-profile stamp so a restart under a
//! *different* synthesis budget expires them exactly as a live profile
//! change would.
//!
//! # File format (`QCSNAP1`)
//!
//! ```text
//! magic            8 bytes      b"QCSNAP1\n"
//! profile stamp    u64 LE       QCache budget-profile fingerprint
//! record*          [u32 len LE][u64 checksum LE][payload: len bytes]
//! ```
//!
//! The checksum covers the payload bytes. A payload starts with a
//! record-type byte and the fingerprint:
//!
//! ```text
//! type             u8           0 = positive, 1 = negative
//! fp.hash          u64 LE
//! fp.dim           u32 LE
//! gate-set id      u8           (dense index, `GateSet::id`)
//! -- positive --
//! qubits           u32 LE       circuit width
//! delta len        u32 LE
//! delta            ASCII        `CircuitDelta::diff(empty, circuit)` line
//! unitary          dim² × (re f64-bits LE, im f64-bits LE)
//! -- negative --
//! eps              f64-bits LE  loosest observed failing tolerance
//! max_len          u64 LE       failing replacement-length budget
//! ```
//!
//! The circuit rides as a [`CircuitDelta`] against the empty circuit —
//! the same bit-exact (hex IEEE-754 parameters) codec the v2 wire
//! protocol trusts — and the unitary as raw `f64` bit patterns, so the
//! reloaded entry verifies against future queries with exactly the
//! matrix the original synthesis measured.
//!
//! # Corruption tolerance
//!
//! Loading is streaming and *damage-skipping*: a record whose checksum
//! does not match its payload is skipped and the scan continues at the
//! declared record boundary. A corrupted **length** field desyncs the
//! stream — every subsequent pseudo-record then fails its checksum
//! (2⁻⁶⁴ per frame to pass by fluke) and the tail is effectively
//! abandoned; an insane length (over [`MAX_RECORD_BYTES`] or past EOF)
//! abandons the tail immediately. Either way the load returns the
//! checksum-valid prefix records and never panics, and even a record
//! whose corruption survives the checksum is harmless: the table
//! verifies every served entry against the query unitary
//! ([`QCache::lookup`] verify-on-hit), so the worst a poisoned
//! positive costs is one `verify_reject`, and a poisoned negative can
//! only suppress an optimization ("no replacement" is always sound),
//! never corrupt a circuit.
//!
//! Saving writes the full snapshot to a `.tmp` sibling, fsyncs, then
//! atomically renames over the destination — a crash mid-flush leaves
//! the previous snapshot intact, never a half-written file.

use crate::fingerprint::{mix, Fingerprint};
use crate::table::{EntryView, QCache};
use qcir::{Circuit, CircuitDelta, GateSet};
use qmath::{Mat, C64};
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::Path;

/// Leading magic of a snapshot file (versioned: a format change bumps
/// the digit and old files simply fail the magic check → cold start).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"QCSNAP1\n";

/// Upper bound on one record's declared payload length. Far above any
/// real entry (a 6-qubit window's unitary is 64 KiB) and low enough
/// that a corrupted length field cannot provoke a giant allocation.
pub const MAX_RECORD_BYTES: usize = 1 << 26;

const RECORD_POSITIVE: u8 = 0;
const RECORD_NEGATIVE: u8 = 1;

/// Outcome counters of a snapshot save or load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Records written (save) or restored into the table (load).
    pub records: usize,
    /// Damaged records skipped by their checksum, plus one for a
    /// missing/garbage header, plus one for an abandoned tail (save: 0).
    pub skipped: usize,
    /// Bytes written (save) or consumed (load).
    pub bytes: u64,
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h = 0x51AB_CAFE_F00D_D154;
    for chunk in payload.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(word));
    }
    mix(h, payload.len() as u64)
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn encode_payload(fp: &Fingerprint, view: &EntryView<'_>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    buf.push(match view {
        EntryView::Positive { .. } => RECORD_POSITIVE,
        EntryView::Negative { .. } => RECORD_NEGATIVE,
    });
    push_u64(&mut buf, fp.hash());
    push_u32(&mut buf, fp.dim() as u32);
    buf.push(fp.gate_set().id() as u8);
    match view {
        EntryView::Positive { circuit, unitary } => {
            let delta = CircuitDelta::diff(&Circuit::new(circuit.num_qubits()), circuit).encode();
            let cells = unitary.as_slice();
            buf.reserve(12 + delta.len() + cells.len() * 16);
            push_u32(&mut buf, circuit.num_qubits() as u32);
            push_u32(&mut buf, delta.len() as u32);
            buf.extend_from_slice(delta.as_bytes());
            for z in cells {
                push_u64(&mut buf, z.re.to_bits());
                push_u64(&mut buf, z.im.to_bits());
            }
        }
        EntryView::Negative { eps, max_len } => {
            push_u64(&mut buf, eps.to_bits());
            push_u64(&mut buf, *max_len as u64);
        }
    }
    buf
}

/// A forgiving little-endian cursor: every accessor returns `None`
/// past the end instead of panicking, so a checksum-valid-by-fluke or
/// future-versioned payload decodes to "skip", never to an abort.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let slice = self.buf.get(self.at..end)?;
        self.at = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

// Variant sizes differ by design: a positive record carries a full
// circuit + unitary, a negative one just the failure envelope. The
// value lives only for the span of one decode, so boxing buys nothing.
#[allow(clippy::large_enum_variant)]
enum Decoded {
    Positive(Fingerprint, Circuit, Mat),
    Negative(Fingerprint, f64, usize),
}

/// Decodes one checksum-valid payload. `None` means structurally
/// damaged (skip the record); sanity checks are deliberately strict —
/// a record that cannot round-trip exactly is worthless, because the
/// whole point of the stored unitary is exact verify-on-hit.
fn decode_payload(payload: &[u8]) -> Option<Decoded> {
    let mut cur = Cursor {
        buf: payload,
        at: 0,
    };
    let kind = cur.u8()?;
    let hash = cur.u64()?;
    let dim = cur.u32()?;
    let set = GateSet::from_id(cur.u8()? as usize)?;
    let fp = Fingerprint::from_raw(hash, dim, set);
    let decoded = match kind {
        RECORD_POSITIVE => {
            let qubits = cur.u32()? as usize;
            if qubits > 16 || dim as usize != 1usize << qubits {
                return None;
            }
            let delta_len = cur.u32()? as usize;
            let delta = std::str::from_utf8(cur.take(delta_len)?).ok()?;
            let mut circuit = Circuit::new(qubits);
            CircuitDelta::decode(delta).ok()?.apply(&mut circuit).ok()?;
            let cells = (dim as usize) * (dim as usize);
            let mut data = Vec::with_capacity(cells);
            for _ in 0..cells {
                let re = f64::from_bits(cur.u64()?);
                let im = f64::from_bits(cur.u64()?);
                data.push(C64::new(re, im));
            }
            let unitary = Mat::from_vec(dim as usize, dim as usize, data);
            Decoded::Positive(fp, circuit, unitary)
        }
        RECORD_NEGATIVE => {
            let eps = f64::from_bits(cur.u64()?);
            if !eps.is_finite() || eps < 0.0 {
                return None;
            }
            let max_len = usize::try_from(cur.u64()?).ok()?;
            Decoded::Negative(fp, eps, max_len)
        }
        _ => return None, // future record type: skip, don't guess
    };
    if cur.at != payload.len() {
        return None; // trailing garbage: not a record we wrote
    }
    Some(decoded)
}

impl QCache {
    /// Serializes every resident entry to `path`, atomically: the
    /// snapshot is first written (and fsynced) to a `path + ".tmp"`
    /// sibling, then renamed into place, so a crash at any instant
    /// leaves either the old snapshot or the new one — never a torn
    /// file. Entries are written per stripe in LRU → MRU order so a
    /// reload reproduces each stripe's eviction order; stale-epoch
    /// negatives are excluded.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating, writing, syncing, or renaming the
    /// temporary file.
    pub fn save_snapshot(&self, path: &Path) -> io::Result<SnapshotStats> {
        let tmp = {
            let mut os = path.as_os_str().to_owned();
            os.push(".tmp");
            std::path::PathBuf::from(os)
        };
        let mut out = BufWriter::new(File::create(&tmp)?);
        out.write_all(SNAPSHOT_MAGIC)?;
        let mut stats = SnapshotStats::default();
        let mut failure = out.write_all(&self.profile_stamp_raw().to_le_bytes()).err();
        stats.bytes = (SNAPSHOT_MAGIC.len() + 8) as u64;
        self.for_each_entry(|fp, view| {
            if failure.is_some() {
                return;
            }
            let payload = encode_payload(fp, &view);
            let mut frame = Vec::with_capacity(12 + payload.len());
            push_u32(&mut frame, payload.len() as u32);
            push_u64(&mut frame, checksum(&payload));
            frame.extend_from_slice(&payload);
            match out.write_all(&frame) {
                Ok(()) => {
                    stats.records += 1;
                    stats.bytes += frame.len() as u64;
                }
                Err(e) => failure = Some(e),
            }
        });
        if let Some(e) = failure {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        let file = out.into_inner().map_err(|e| e.into_error())?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        Ok(stats)
    }

    /// Streams `path` into the table, restoring every checksum-valid
    /// record and **skipping** anything damaged — wrong magic, a torn
    /// or bit-flipped record, a desynced tail. Corruption is an
    /// expected input (that is the point of the format), so it is
    /// reported in [`SnapshotStats::skipped`], not as an error; the
    /// load itself never panics. The persisted budget-profile stamp is
    /// adopted if this cache has not observed a profile of its own, so
    /// restored failure markers expire on the first *different*
    /// profile declaration, exactly like the originals.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (the file exists but cannot be read).
    /// A missing file is a normal cold start: `Ok` with zero records.
    pub fn load_snapshot(&self, path: &Path) -> io::Result<SnapshotStats> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(SnapshotStats::default()),
            Err(e) => return Err(e),
        };
        let mut input = BufReader::new(file);
        let mut stats = SnapshotStats::default();
        let mut head = [0u8; 16];
        match read_exact_or_eof(&mut input, &mut head)? {
            n if n < head.len() || head[..8] != *SNAPSHOT_MAGIC => {
                stats.skipped += 1;
                stats.bytes += n as u64;
                return Ok(stats); // not (or no longer) a snapshot: cold start
            }
            n => stats.bytes += n as u64,
        }
        self.adopt_profile_stamp(u64::from_le_bytes(head[8..16].try_into().expect("8 bytes")));
        let mut header = [0u8; 12];
        loop {
            match read_exact_or_eof(&mut input, &mut header)? {
                0 => break, // clean end
                n if n < header.len() => {
                    // Torn mid-header (crash during a pre-atomic-rename
                    // writer, or a truncation fault): abandon the tail.
                    stats.skipped += 1;
                    stats.bytes += n as u64;
                    break;
                }
                n => stats.bytes += n as u64,
            }
            let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
            let sum = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
            if len > MAX_RECORD_BYTES {
                // A corrupted length field; nothing downstream of it can
                // be trusted (or even safely sized). Abandon the tail.
                stats.skipped += 1;
                break;
            }
            let mut payload = vec![0u8; len];
            match read_exact_or_eof(&mut input, &mut payload)? {
                n if n < len => {
                    stats.skipped += 1;
                    stats.bytes += n as u64;
                    break; // truncated inside the payload
                }
                n => stats.bytes += n as u64,
            }
            if checksum(&payload) != sum {
                stats.skipped += 1;
                continue; // damaged record; the boundary may still hold
            }
            match decode_payload(&payload) {
                Some(Decoded::Positive(fp, circuit, unitary)) => {
                    self.insert_loaded(fp, circuit, unitary);
                    stats.records += 1;
                }
                Some(Decoded::Negative(fp, eps, max_len)) => {
                    self.insert_failure(fp, eps, max_len);
                    stats.records += 1;
                }
                None => stats.skipped += 1, // checksum-valid but malformed
            }
        }
        Ok(stats)
    }
}

/// `read_exact` that reports a clean-or-torn EOF as a short count
/// instead of an error: returns how many bytes were read (`buf.len()`
/// means complete).
fn read_exact_or_eof(input: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut at = 0;
    while at < buf.len() {
        match input.read(&mut buf[at..]) {
            Ok(0) => break,
            Ok(n) => at += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;
    use crate::table::QCacheOpts;
    use qcir::Gate;

    fn sample_cache(entries: usize) -> (QCache, Vec<(Fingerprint, Mat)>) {
        let cache = QCache::new(QCacheOpts::default());
        let mut keys = Vec::new();
        for k in 0..entries {
            let mut c = Circuit::new(2);
            c.push(Gate::Rz(0.1 + k as f64 * 0.37), &[0]);
            c.push(Gate::Cx, &[0, 1]);
            c.push(Gate::H, &[1]);
            let u = c.unitary();
            let fp = fingerprint(&u, GateSet::Nam);
            cache.insert(fp, &c, u.clone());
            keys.push((fp, u));
        }
        (cache, keys)
    }

    #[test]
    fn round_trip_restores_every_entry() {
        let dir = std::env::temp_dir().join("qcsnap-roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.qcs");
        let (cache, keys) = sample_cache(5);
        let saved = cache.save_snapshot(&path).unwrap();
        assert_eq!(saved.records, 5);
        assert_eq!(saved.skipped, 0);

        let fresh = QCache::new(QCacheOpts::default());
        let loaded = fresh.load_snapshot(&path).unwrap();
        assert_eq!(loaded.records, 5);
        assert_eq!(loaded.skipped, 0);
        assert_eq!(loaded.bytes, saved.bytes);
        for (fp, u) in &keys {
            let hit = fresh
                .lookup(fp, u, 1e-9, usize::MAX)
                .hit()
                .expect("reloaded entry must serve");
            assert!(hit.epsilon < 1e-12);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_cold_start() {
        let cache = QCache::new(QCacheOpts::default());
        let stats = cache
            .load_snapshot(Path::new("/nonexistent/dir/cache.qcs"))
            .unwrap();
        assert_eq!(stats, SnapshotStats::default());
        assert!(cache.is_empty());
    }

    #[test]
    fn negative_entries_survive_with_their_profile_scope() {
        let dir = std::env::temp_dir().join("qcsnap-negative");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.qcs");
        let cache = QCache::new(QCacheOpts::default());
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0.8), &[0]);
        let u = c.unitary();
        let fp = fingerprint(&u, GateSet::Nam);
        cache.note_budget_profile(31);
        cache.insert_failure(fp, 1e-6, 8);
        assert_eq!(cache.save_snapshot(&path).unwrap().records, 1);

        // Restart under the SAME profile: the failure marker is served.
        let same = QCache::new(QCacheOpts::default());
        assert_eq!(same.load_snapshot(&path).unwrap().records, 1);
        same.note_budget_profile(31);
        assert!(same.lookup(&fp, &u, 1e-6, 8).is_known_failure());

        // Restart under a DIFFERENT profile: the marker expires, the
        // caller retries with its own budget.
        let other = QCache::new(QCacheOpts::default());
        assert_eq!(other.load_snapshot(&path).unwrap().records, 1);
        other.note_budget_profile(99);
        assert!(matches!(
            other.lookup(&fp, &u, 1e-6, 8),
            crate::Lookup::Miss
        ));

        // Stale-epoch negatives are not persisted at all.
        cache.note_budget_profile(99);
        assert_eq!(cache.save_snapshot(&path).unwrap().records, 0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn save_preserves_lru_order_across_reload() {
        // Single stripe, tight budget: insert 3, reload into an equally
        // tight cache, insert a 4th — the same (oldest) entry must be
        // the eviction victim on both sides of the snapshot.
        let opts = || QCacheOpts {
            gate_budget: 9,
            stripes: 1,
        };
        let entry = |theta: f64| {
            let mut c = Circuit::new(1);
            for j in 0..3 {
                c.push(Gate::Rz(theta + j as f64 * 0.01), &[0]);
            }
            let u = c.unitary();
            let fp = fingerprint(&u, GateSet::Nam);
            (c, u, fp)
        };
        let cache = QCache::new(opts());
        let (c0, u0, fp0) = entry(0.4);
        let (c1, u1, fp1) = entry(1.4);
        let (c2, u2, fp2) = entry(2.4);
        cache.insert(fp0, &c0, u0.clone());
        cache.insert(fp1, &c1, u1.clone());
        cache.insert(fp2, &c2, u2.clone());
        // Refresh fp0 so fp1 is the LRU entry.
        assert!(cache.lookup(&fp0, &u0, 1e-9, usize::MAX).hit().is_some());

        let dir = std::env::temp_dir().join("qcsnap-lru");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.qcs");
        cache.save_snapshot(&path).unwrap();
        let fresh = QCache::new(opts());
        assert_eq!(fresh.load_snapshot(&path).unwrap().records, 3);

        let (c3, u3, fp3) = entry(3.4);
        fresh.insert(fp3, &c3, u3);
        assert!(
            fresh.lookup(&fp1, &u1, 1e-9, usize::MAX).hit().is_none(),
            "the pre-snapshot LRU entry must still be the eviction victim"
        );
        assert!(fresh.lookup(&fp0, &u0, 1e-9, usize::MAX).hit().is_some());
        assert!(fresh.lookup(&fp2, &u2, 1e-9, usize::MAX).hit().is_some());
        let _ = fs::remove_file(&path);
    }
}
