//! `qcache` — process-wide amortization for the slow path.
//!
//! GUOQ interleaves fast rewrites with slow numerical resynthesis, and
//! the slow path dominates wall-clock: one resynthesis call runs a
//! multi-restart numerical optimization (or an MCMC walk for finite
//! sets) that costs milliseconds, while a rewrite probe costs
//! microseconds. Two structural facts make that cost amortizable:
//!
//! 1. **Windows repeat.** The ≤3-qubit subcircuits the search feeds to
//!    resynthesis recur — within one run (the search revisits windows),
//!    across parallel shard workers (POPQC-style sharding multiplies
//!    identical small windows), and across jobs (a service sees the
//!    same circuits and circuit families again and again). The unitary
//!    of a window, not its gate list, determines the answer.
//! 2. **Setup repeats.** The per-gate-set rule corpus and resynthesizer
//!    (including the Clifford+T BFS database) are pure functions of the
//!    gate set, yet were rebuilt for every job.
//!
//! This crate provides the two pieces that exploit them:
//!
//! * [`QCache`] — a lock-striped, bounded, LRU-evicting concurrent memo
//!   table mapping a [`Fingerprint`] (phase-invariant unitary hash +
//!   gate-set id) to a previously synthesized replacement circuit. A
//!   hit is **verified against the exact matrix** before it is served:
//!   the stored replacement's true unitary is compared to the query
//!   target, so a fingerprint collision (or quantization accident) is
//!   harmless — it is rejected and counted, never returned. The
//!   returned ε is the *measured* distance between the query target
//!   and the replacement, so the optimizer's Thm. 4.2 error accounting
//!   stays exact on the hit path.
//! * [`Registry`] — a tiny per-gate-set once-cell table so rule corpora
//!   and resynthesizer setup are built once per process, not once per
//!   job (`qrewrite::shared_rules_for`, `qsynth::shared_resynthesizer`
//!   are the instantiations).
//!
//! The cache is deliberately *advisory*: a lookup that misses, or a hit
//! that fails verification, simply falls back to fresh synthesis. The
//! optimizer's acceptance rule sees cached candidates exactly like
//! fresh ones, so enabling the cache can never violate soundness — only
//! change which (equally ε-bounded) candidates the stochastic search
//! happens to explore.

#![warn(missing_docs)]

pub mod fingerprint;
pub mod registry;
pub mod snapshot;
pub mod table;

pub use fingerprint::{fingerprint, Fingerprint};
pub use registry::Registry;
pub use snapshot::{SnapshotStats, MAX_RECORD_BYTES, SNAPSHOT_MAGIC};
pub use table::{CacheHit, CacheStats, Lookup, QCache, QCacheOpts};
