//! Per-gate-set once-cell registry for process-wide shared setup.
//!
//! A rule corpus or a resynthesizer is a pure function of its gate set,
//! yet the service layer was rebuilding both for every job (the
//! Clifford+T resynthesizer alone carries a 16k-entry BFS database).
//! A [`Registry`] is the minimal fix: one slot per [`GateSet`], each a
//! `OnceLock<Arc<T>>`, so the first requester builds and every later
//! requester (on any thread) gets the same `Arc` — lock-free after
//! initialization, and initialization of different gate sets never
//! contends.

use qcir::GateSet;
use std::sync::{Arc, OnceLock};

/// A per-[`GateSet`] build-once table. `const`-constructible, so it can
/// back a `static` (see `qrewrite::shared_rules_for` /
/// `qsynth::shared_resynthesizer`).
pub struct Registry<T> {
    slots: [OnceLock<Arc<T>>; GateSet::ALL.len()],
}

impl<T> Registry<T> {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Registry {
            slots: [const { OnceLock::new() }; GateSet::ALL.len()],
        }
    }

    /// Returns the shared value for `set`, building it with `init` on
    /// the first request. Concurrent first requests for the *same* set
    /// race benignly (`OnceLock` keeps exactly one winner; a losing
    /// `init` result is dropped).
    pub fn get_or_init(&self, set: GateSet, init: impl FnOnce() -> T) -> Arc<T> {
        self.slots[set.id()]
            .get_or_init(|| Arc::new(init()))
            .clone()
    }

    /// The shared value for `set`, if one has been built.
    pub fn get(&self, set: GateSet) -> Option<Arc<T>> {
        self.slots[set.id()].get().cloned()
    }
}

impl<T> Default for Registry<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn builds_once_per_gate_set() {
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        let reg: Registry<Vec<u8>> = Registry::new();
        let build = |tag: u8| {
            BUILDS.fetch_add(1, Ordering::Relaxed);
            vec![tag; 3]
        };
        let a = reg.get_or_init(GateSet::Nam, || build(1));
        let b = reg.get_or_init(GateSet::Nam, || build(2));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, vec![1, 1, 1]);
        assert_eq!(BUILDS.load(Ordering::Relaxed), 1);
        let c = reg.get_or_init(GateSet::Ionq, || build(3));
        assert_eq!(*c, vec![3, 3, 3]);
        assert_eq!(BUILDS.load(Ordering::Relaxed), 2);
        assert!(reg.get(GateSet::CliffordT).is_none());
        assert!(reg.get(GateSet::Ionq).is_some());
    }

    #[test]
    fn shared_across_threads() {
        static REG: Registry<u64> = Registry::new();
        let handles: Vec<_> = (0..8)
            .map(|t| std::thread::spawn(move || *REG.get_or_init(GateSet::IbmEagle, || t)))
            .collect();
        let values: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(values.windows(2).all(|w| w[0] == w[1]), "{values:?}");
    }
}
