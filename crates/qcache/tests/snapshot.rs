//! Corruption tolerance of the cache-snapshot codec, exercised the
//! brute-force way: truncate the file at **every** byte offset, flip
//! bytes at arbitrary offsets, and prove the load never panics, loads
//! only checksum-valid records, and that everything it does load still
//! serves correct (verify-on-hit-clean) answers.

use proptest::prelude::*;
use qcache::{fingerprint, Fingerprint, QCache, QCacheOpts};
use qcir::{Circuit, Gate, GateSet};
use qmath::Mat;
use std::fs;

const ENTRIES: usize = 6;

/// A deterministic populated cache: `ENTRIES` distinct 2-qubit
/// replacements plus one known-failure marker.
fn populated() -> (QCache, Vec<(Fingerprint, Mat)>) {
    let cache = QCache::new(QCacheOpts::default());
    cache.note_budget_profile(0xB0D6E7);
    let mut keys = Vec::new();
    for k in 0..ENTRIES {
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(0.2 + k as f64 * 0.51), &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::T, &[1]);
        let u = c.unitary();
        let fp = fingerprint(&u, GateSet::Nam);
        cache.insert(fp, &c, u.clone());
        keys.push((fp, u));
    }
    let mut hard = Circuit::new(2);
    hard.push(Gate::Rz(2.913), &[0]);
    hard.push(Gate::Cx, &[1, 0]);
    let hard_u = hard.unitary();
    cache.insert_failure(fingerprint(&hard_u, GateSet::Nam), 1e-9, 2);
    (cache, keys)
}

/// Saves the populated cache once and returns its snapshot bytes.
fn snapshot_bytes(tag: &str) -> (Vec<u8>, Vec<(Fingerprint, Mat)>) {
    let dir = std::env::temp_dir().join(format!("qcsnap-fuzz-{tag}"));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.qcs");
    let (cache, keys) = populated();
    let saved = cache.save_snapshot(&path).unwrap();
    assert_eq!(saved.records, ENTRIES + 1);
    let bytes = fs::read(&path).unwrap();
    assert_eq!(bytes.len() as u64, saved.bytes);
    let _ = fs::remove_file(&path);
    (bytes, keys)
}

/// Writes `bytes` to a scratch file, loads it into a fresh cache, and
/// checks the universal corruption invariants: no panic (by arriving
/// here), no I/O error, never more records than were saved, and every
/// key that still serves verifies exactly.
fn load_mutant(tag: &str, bytes: &[u8], keys: &[(Fingerprint, Mat)]) -> (QCache, usize, usize) {
    let path = std::env::temp_dir()
        .join(format!("qcsnap-fuzz-{tag}"))
        .join("mutant.qcs");
    fs::write(&path, bytes).unwrap();
    let cache = QCache::new(QCacheOpts::default());
    let stats = cache.load_snapshot(&path).unwrap();
    let _ = fs::remove_file(&path);
    assert!(
        stats.records <= ENTRIES + 1,
        "loaded {} records from a {}-record snapshot",
        stats.records,
        ENTRIES + 1
    );
    assert!(stats.bytes <= bytes.len() as u64);
    for (fp, u) in keys {
        if let Some(hit) = cache.lookup(fp, u, 1e-9, usize::MAX).hit() {
            assert!(
                hit.epsilon < 1e-12,
                "a loaded entry served a non-exact replacement"
            );
            let d = qmath::dist::accurate_hs_distance(&hit.circuit.unitary(), u);
            assert!(
                d < 1e-9,
                "a served circuit does not implement the query unitary (d = {d:.3e})"
            );
        }
    }
    (cache, stats.records, stats.skipped)
}

/// Truncation at **every** byte offset: the load returns the
/// checksum-valid record prefix (monotone in the cut point) and never
/// panics. This is the crash-during-non-atomic-copy / torn-disk case.
#[test]
fn truncation_at_every_byte_loads_only_valid_prefix() {
    let (bytes, keys) = snapshot_bytes("trunc");
    let mut prev_records = 0usize;
    for cut in 0..=bytes.len() {
        let (_, records, skipped) = load_mutant("trunc", &bytes[..cut], &keys);
        assert!(
            records >= prev_records,
            "record count regressed at cut {cut}: {records} < {prev_records}"
        );
        prev_records = prev_records.max(records);
        if cut < bytes.len() {
            assert!(
                records < ENTRIES + 1 || skipped == 0,
                "a truncated file cannot contain every record AND damage"
            );
        }
    }
    assert_eq!(prev_records, ENTRIES + 1, "the full file loads everything");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-byte corruption anywhere in the file: the load never
    /// panics, and the damaged region is detected — strictly fewer
    /// records load than were saved (a 64-bit checksum cannot be
    /// fooled by one flipped byte), with the damage surfaced in
    /// `skipped`.
    #[test]
    fn flipped_byte_is_always_detected(
        seed in 0usize..1usize << 30,
        mask in 1u16..256u16,
    ) {
        let (mut bytes, keys) = snapshot_bytes("flip");
        let at = seed % bytes.len();
        bytes[at] ^= mask as u8;
        let (_, records, skipped) = load_mutant("flip", &bytes, &keys);
        if (8..16).contains(&at) {
            // The profile-stamp field is unchecksummed by design: a
            // wrong stamp only changes *when* restored negatives
            // expire, which is sound either way. Records still load.
            prop_assert_eq!(records, ENTRIES + 1);
        } else {
            prop_assert!(
                records < ENTRIES + 1,
                "a flipped byte at {at} went unnoticed ({records} records loaded)"
            );
            prop_assert!(skipped >= 1, "flip at {at} was not surfaced as a skip");
        }
    }

    /// Multi-byte shotgun corruption: still no panic, still no
    /// over-loading, still only exact entries served.
    #[test]
    fn shotgun_corruption_never_panics(
        offsets in proptest::collection::vec((0usize..1 << 30, 1u16..256u16), 1..12),
    ) {
        let (mut bytes, keys) = snapshot_bytes("shotgun");
        for (seed, mask) in offsets {
            let at = seed % bytes.len();
            bytes[at] ^= mask as u8;
        }
        load_mutant("shotgun", &bytes, &keys);
    }

    /// Appending garbage after a valid snapshot (a crashed writer that
    /// was *not* using the atomic-rename path, or block-device slack):
    /// every real record loads; the garbage tail is skipped.
    #[test]
    fn garbage_tail_is_skipped(
        tail in proptest::collection::vec(0u16..256u16, 1..200),
    ) {
        let (mut bytes, keys) = snapshot_bytes("tail");
        bytes.extend(tail.into_iter().map(|b| b as u8));
        let (_, records, skipped) = load_mutant("tail", &bytes, &keys);
        prop_assert_eq!(records, ENTRIES + 1);
        prop_assert!(skipped >= 1);
    }
}
