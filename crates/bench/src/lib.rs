//! `guoq-bench` — the evaluation harness.
//!
//! One binary per paper figure/table (see DESIGN.md §4); this library
//! holds the shared plumbing: CLI options, the benchmark runner, and the
//! better/match/worse comparison tables the paper reports.

#![warn(missing_docs)]

use guoq::baselines::Optimizer;
use guoq::cost::CostFn;
use guoq::{Budget, CalibrationModel};
use qcir::{Circuit, GateSet};
use std::time::Duration;
use workloads::{Benchmark, SuiteScale};

/// Common command-line options for every harness binary.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Per-(tool, benchmark) time budget.
    pub budget: Duration,
    /// Suite scale.
    pub scale: SuiteScale,
    /// Base RNG seed.
    pub seed: u64,
    /// Trials per benchmark for the stochastic tools (paper: 10).
    pub trials: usize,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            budget: Duration::from_millis(400),
            scale: SuiteScale::Default,
            seed: 0xA5A5,
            trials: 1,
        }
    }
}

impl HarnessOpts {
    /// Parses `--budget-ms N`, `--suite smoke|default|full`, `--seed N`,
    /// `--trials N` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let need = |i: usize| -> &str {
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("missing value for {}", args[i]))
            };
            match args[i].as_str() {
                "--budget-ms" => {
                    opts.budget = Duration::from_millis(need(i).parse().expect("budget-ms"));
                    i += 2;
                }
                "--suite" => {
                    opts.scale = match need(i) {
                        "smoke" => SuiteScale::Smoke,
                        "default" => SuiteScale::Default,
                        "full" => SuiteScale::Full,
                        other => panic!("unknown suite `{other}`"),
                    };
                    i += 2;
                }
                "--seed" => {
                    opts.seed = need(i).parse().expect("seed");
                    i += 2;
                }
                "--trials" => {
                    opts.trials = need(i).parse().expect("trials");
                    i += 2;
                }
                other => panic!(
                    "unknown flag `{other}`; expected --budget-ms / --suite / --seed / --trials"
                ),
            }
        }
        opts
    }
}

/// A metric extracted from an optimized circuit, relative to the input.
pub type Metric = fn(original: &Circuit, optimized: &Circuit, set: GateSet) -> f64;

/// Two-qubit gate reduction `1 − opt/orig` (higher is better).
pub fn two_qubit_reduction(original: &Circuit, optimized: &Circuit, _set: GateSet) -> f64 {
    let orig = original.two_qubit_count();
    if orig == 0 {
        return 0.0;
    }
    1.0 - optimized.two_qubit_count() as f64 / orig as f64
}

/// T-gate reduction (higher is better).
pub fn t_reduction(original: &Circuit, optimized: &Circuit, _set: GateSet) -> f64 {
    let orig = original.t_count();
    if orig == 0 {
        return 0.0;
    }
    1.0 - optimized.t_count() as f64 / orig as f64
}

/// Total gate-count reduction.
pub fn gate_reduction(original: &Circuit, optimized: &Circuit, _set: GateSet) -> f64 {
    if original.is_empty() {
        return 0.0;
    }
    1.0 - optimized.len() as f64 / original.len() as f64
}

/// Circuit fidelity under the set's calibration model.
pub fn fidelity(_original: &Circuit, optimized: &Circuit, set: GateSet) -> f64 {
    CalibrationModel::for_gate_set(set).fidelity(optimized)
}

/// Result of one tool on one benchmark.
#[derive(Debug, Clone)]
pub struct ToolRun {
    /// Metric values, one per requested metric.
    pub metrics: Vec<f64>,
    /// Optimized circuit size (total gates).
    pub gates: usize,
}

/// A full comparison: per-benchmark metric values for every tool.
pub struct Comparison {
    /// Tool names; `tools[0]` is the reference (GUOQ).
    pub tools: Vec<String>,
    /// Metric names.
    pub metric_names: Vec<&'static str>,
    /// Benchmark names.
    pub benchmarks: Vec<String>,
    /// `results[tool][bench]`.
    pub results: Vec<Vec<ToolRun>>,
}

/// Runs every tool on every benchmark and collects the metrics.
pub fn run_comparison(
    suite: &[Benchmark],
    tools: &[(&dyn Optimizer, &dyn CostFn)],
    metrics: &[(&'static str, Metric)],
    budget: Duration,
) -> Comparison {
    let mut results = Vec::new();
    for (tool, cost) in tools {
        let mut per_bench = Vec::new();
        for b in suite {
            let out = tool.optimize(&b.circuit, *cost, Budget::Time(budget));
            let vals = metrics
                .iter()
                .map(|(_, m)| m(&b.circuit, &out, b.set))
                .collect();
            per_bench.push(ToolRun {
                metrics: vals,
                gates: out.len(),
            });
        }
        results.push(per_bench);
    }
    Comparison {
        tools: tools.iter().map(|(t, _)| t.name()).collect(),
        metric_names: metrics.iter().map(|(n, _)| *n).collect(),
        benchmarks: suite.iter().map(|b| b.name.clone()).collect(),
        results,
    }
}

/// Counts (better, match, worse) of the reference tool (index 0) against
/// `tool` on metric `m`, with the paper's matching tolerance.
pub fn better_match_worse(cmp: &Comparison, tool: usize, m: usize) -> (usize, usize, usize) {
    let tol = 1e-9;
    let mut counts = (0usize, 0usize, 0usize);
    for b in 0..cmp.benchmarks.len() {
        let ours = cmp.results[0][b].metrics[m];
        let theirs = cmp.results[tool][b].metrics[m];
        if ours > theirs + tol {
            counts.0 += 1;
        } else if (ours - theirs).abs() <= tol {
            counts.1 += 1;
        } else {
            counts.2 += 1;
        }
    }
    counts
}

/// Mean of a metric over all benchmarks for one tool.
pub fn mean_metric(cmp: &Comparison, tool: usize, m: usize) -> f64 {
    let n = cmp.benchmarks.len().max(1);
    cmp.results[tool].iter().map(|r| r.metrics[m]).sum::<f64>() / n as f64
}

/// Prints the paper-style comparison block for one metric: a per-tool
/// summary ("GUOQ better/match/worse") plus mean values.
pub fn print_figure(cmp: &Comparison, m: usize, title: &str) {
    let total = cmp.benchmarks.len();
    println!(
        "== {title} ({total} benchmarks, metric: {}) ==",
        cmp.metric_names[m]
    );
    println!(
        "  {:<34} {:>8}   vs {}: better / match / worse",
        "tool", "mean", cmp.tools[0]
    );
    for t in 0..cmp.tools.len() {
        let mean = mean_metric(cmp, t, m);
        if t == 0 {
            println!("  {:<34} {mean:>8.4}   (reference)", cmp.tools[t]);
        } else {
            let (b, eq, w) = better_match_worse(cmp, t, m);
            println!(
                "  {:<34} {mean:>8.4}   {b:>4} / {eq:>4} / {w:>4}   ({:.1}% better-or-match)",
                cmp.tools[t],
                100.0 * (b + eq) as f64 / total.max(1) as f64
            );
        }
    }
}

/// Prints a per-benchmark detail table for one metric.
pub fn print_detail(cmp: &Comparison, m: usize) {
    print!("  {:<20}", "benchmark");
    for t in &cmp.tools {
        print!(" {:>22}", truncate(t, 22));
    }
    println!();
    for b in 0..cmp.benchmarks.len() {
        print!("  {:<20}", truncate(&cmp.benchmarks[b], 20));
        for t in 0..cmp.tools.len() {
            print!(" {:>22.4}", cmp.results[t][b].metrics[m]);
        }
        println!();
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        s[..n].to_string()
    }
}

/// Which GUOQ configuration a [`GuoqTool`] runs (the paper's ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuoqMode {
    /// Full GUOQ (rewrites + resynthesis, tightly interleaved).
    Full,
    /// `GUOQ-REWRITE` (Fig. 10/13).
    RewriteOnly,
    /// `GUOQ-RESYNTH` (Fig. 10/13).
    ResynthOnly,
    /// `GUOQ-SEQ-REWRITE-RESYNTH` (Fig. 11).
    SeqRewriteResynth,
    /// `GUOQ-SEQ-RESYNTH-REWRITE` (Fig. 11).
    SeqResynthRewrite,
}

/// GUOQ (or one of its ablations) behind the harness [`Optimizer`] trait.
pub struct GuoqTool {
    set: GateSet,
    mode: GuoqMode,
    /// Global error tolerance ε_f (paper: 1e-8; scaled per DESIGN.md).
    pub eps_total: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GuoqTool {
    /// Creates a GUOQ harness tool.
    pub fn new(set: GateSet, mode: GuoqMode, eps_total: f64, seed: u64) -> Self {
        GuoqTool {
            set,
            mode,
            eps_total,
            seed,
        }
    }

    fn opts(&self, budget: Budget) -> guoq::GuoqOpts {
        guoq::GuoqOpts {
            budget,
            eps_total: self.eps_total,
            seed: self.seed,
            // Budget scaling (EXPERIMENTS.md): the paper runs 1 h per
            // circuit with resynthesis sampled 1.5% of the time (~40k
            // slow calls per run). At sub-second harness budgets the same
            // ratio yields single-digit resynthesis calls, so the harness
            // raises the share to keep the fast/slow *work* mix, not the
            // draw mix, comparable.
            resynth_probability: 0.08,
            ..Default::default()
        }
    }
}

impl Optimizer for GuoqTool {
    fn name(&self) -> String {
        match self.mode {
            GuoqMode::Full => "guoq".into(),
            GuoqMode::RewriteOnly => "guoq-rewrite".into(),
            GuoqMode::ResynthOnly => "guoq-resynth".into(),
            GuoqMode::SeqRewriteResynth => "guoq-seq-rewrite-resynth".into(),
            GuoqMode::SeqResynthRewrite => "guoq-seq-resynth-rewrite".into(),
        }
    }

    fn optimize(&self, circuit: &Circuit, cost: &dyn CostFn, budget: Budget) -> Circuit {
        use guoq::baselines::{sequential_guoq, SeqOrder};
        use guoq::Guoq;
        let opts = self.opts(budget);
        match self.mode {
            GuoqMode::Full => {
                Guoq::for_gate_set(self.set, opts)
                    .optimize(circuit, cost)
                    .circuit
            }
            GuoqMode::RewriteOnly => {
                Guoq::rewrite_only(self.set, opts)
                    .optimize(circuit, cost)
                    .circuit
            }
            GuoqMode::ResynthOnly => {
                Guoq::resynth_only(self.set, opts)
                    .optimize(circuit, cost)
                    .circuit
            }
            GuoqMode::SeqRewriteResynth => {
                sequential_guoq(circuit, self.set, cost, SeqOrder::RewriteThenResynth, opts).circuit
            }
            GuoqMode::SeqResynthRewrite => {
                sequential_guoq(circuit, self.set, cost, SeqOrder::ResynthThenRewrite, opts).circuit
            }
        }
    }
}

/// The standard set of baseline tools for a NISQ gate-set comparison
/// (Figs. 1, 8, 9): returns boxed optimizers labelled by archetype.
pub fn nisq_baselines(set: GateSet, eps_total: f64, seed: u64) -> Vec<Box<dyn Optimizer>> {
    use guoq::baselines::*;
    vec![
        Box::new(PipelineOptimizer::new(set, PipelinePreset::Heavy)),
        Box::new(PipelineOptimizer::new(set, PipelinePreset::Light)),
        Box::new(PipelineOptimizer::new(set, PipelinePreset::Medium)),
        Box::new(PartitionResynth::new(set, eps_total, seed)),
        Box::new(BeamSearch::new(set, 8, seed)),
        Box::new(BanditRewriter::new(set, seed)),
    ]
}

/// The iteration-throughput bench workload shared by `guoq_iter` and
/// `guoq_parallel`: a circuit of roughly `len` gates on a fixed
/// 12-qubit register built from a repeated tile, so rewrite
/// opportunities occur at a size-independent rate (constant-span
/// edits).
///
/// The tile is mostly irredundant (so the circuit keeps its size and
/// the engines spend their time probing, as a converged anytime search
/// does), contains Rz–CX structure that fires equal-cost commutation
/// rewrites (plateau churn), and every fourth tile carries one
/// cancellable CX pair — a constant-span improvement trickle whose
/// density is independent of circuit size.
pub fn tiled_workload(len: usize) -> Circuit {
    use qcir::Gate;
    const Q: u32 = 12;
    let mut c = Circuit::new(Q as usize);
    let mut base = 0u32;
    let mut tile = 0u32;
    while c.len() + 13 <= len {
        let a = base % Q;
        let b = (base + 1) % Q;
        let d = (base + 5) % Q;
        c.push(Gate::Cx, &[a, b]);
        c.push(Gate::T, &[b]);
        c.push(Gate::Rz(0.37), &[a]);
        c.push(Gate::Cx, &[b, d]);
        c.push(Gate::H, &[d]);
        c.push(Gate::T, &[a]);
        c.push(Gate::Cx, &[a, d]);
        c.push(Gate::Rz(0.81), &[b]);
        c.push(Gate::H, &[b]);
        c.push(Gate::T, &[d]);
        if tile % 4 == 3 {
            c.push(Gate::Cx, &[a, b]);
            c.push(Gate::Cx, &[a, b]);
        }
        base = base.wrapping_add(3);
        tile += 1;
    }
    while c.len() < len {
        c.push(Gate::T, &[(c.len() as u32) % Q]);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use guoq::baselines::{PipelineOptimizer, PipelinePreset};
    use guoq::cost::TwoQubitCount;

    #[test]
    fn comparison_counts_consistent() {
        let suite = workloads::suite(GateSet::Nam, SuiteScale::Smoke);
        let p1 = PipelineOptimizer::new(GateSet::Nam, PipelinePreset::Heavy);
        let p2 = PipelineOptimizer::new(GateSet::Nam, PipelinePreset::Light);
        let cost = TwoQubitCount;
        let tools: Vec<(&dyn Optimizer, &dyn CostFn)> = vec![(&p1, &cost), (&p2, &cost)];
        let cmp = run_comparison(
            &suite,
            &tools,
            &[("2q-red", two_qubit_reduction)],
            Duration::from_millis(50),
        );
        let (b, m, w) = better_match_worse(&cmp, 1, 0);
        assert_eq!(b + m + w, suite.len());
    }

    #[test]
    fn metrics_behave() {
        let mut orig = Circuit::new(2);
        orig.push(qcir::Gate::Cx, &[0, 1]);
        orig.push(qcir::Gate::Cx, &[0, 1]);
        let opt = Circuit::new(2);
        assert_eq!(two_qubit_reduction(&orig, &opt, GateSet::Nam), 1.0);
        assert_eq!(gate_reduction(&orig, &opt, GateSet::Nam), 1.0);
        assert!(fidelity(&orig, &opt, GateSet::Nam) > fidelity(&orig, &orig, GateSet::Nam));
    }
}
