//! Figure 11: how to combine rewriting and resynthesis (Q3) — GUOQ vs.
//! the coarse sequential phase splits and vs. MaxBeam over the same
//! transformation set.
//!
//! Paper shape: tight random interleaving beats both sequential orders
//! and the beam instantiation.

use guoq::baselines::*;
use guoq::cost::TwoQubitCount;
use guoq_bench::*;
use qcir::GateSet;

fn main() {
    let opts = HarnessOpts::from_args();
    let set = GateSet::Ibmq20;
    let suite = workloads::suite(set, opts.scale);
    let eps = 1e-6;
    let cost = TwoQubitCount;

    let full = GuoqTool::new(set, GuoqMode::Full, eps, opts.seed);
    let seq_rw = GuoqTool::new(set, GuoqMode::SeqRewriteResynth, eps, opts.seed);
    let seq_rs = GuoqTool::new(set, GuoqMode::SeqResynthRewrite, eps, opts.seed);
    let beam = BeamSearch::new(set, 8, opts.seed).with_resynthesis(set, eps);
    let tools: Vec<(&dyn Optimizer, &dyn guoq::cost::CostFn)> = vec![
        (&full, &cost),
        (&seq_rw, &cost),
        (&seq_rs, &cost),
        (&beam, &cost),
    ];

    let cmp = run_comparison(
        &suite,
        &tools,
        &[("2q-reduction", two_qubit_reduction)],
        opts.budget,
    );
    print_figure(&cmp, 0, "Fig. 11 — search-strategy comparison (ibmq20)");
    println!();
    println!(
        "paper reference: GUOQ better/match vs SEQ-RW-RS 196/247, SEQ-RS-RW 203/247, BEAM 168/247"
    );
}
