//! Ablation of GUOQ's two key hyperparameters (DESIGN.md §6):
//!
//! * the resynthesis weight (paper §5.3 fixes it at 1.5%), and
//! * the acceptance temperature `t` (paper §6: sweep 0 → 10, chose 10).

use guoq::cost::TwoQubitCount;
use guoq::{Budget, Guoq, GuoqOpts};
use guoq_bench::HarnessOpts;
use qcir::{rebase::rebase, GateSet};

fn main() {
    let opts = HarnessOpts::from_args();
    let set = GateSet::Ibmq20;
    let circuit = rebase(&workloads::generators::barenco_tof(8), set).expect("rebase");
    println!(
        "== Knob ablation on barenco_tof_8 / ibmq20 ({} gates, {} two-qubit) ==",
        circuit.len(),
        circuit.two_qubit_count()
    );

    println!("-- resynthesis probability (paper: 0.015) --");
    for p in [0.0, 0.005, 0.015, 0.05, 0.25, 1.0] {
        let g = Guoq::for_gate_set(
            set,
            GuoqOpts {
                budget: Budget::Time(opts.budget),
                eps_total: 1e-6,
                resynth_probability: p,
                seed: opts.seed,
                ..Default::default()
            },
        );
        let r = g.optimize(&circuit, &TwoQubitCount);
        println!(
            "   p = {p:<6} → 2q {} → {}   ({} iters, {} resynth hits)",
            circuit.two_qubit_count(),
            r.circuit.two_qubit_count(),
            r.iterations,
            r.resynth_hits
        );
    }

    println!("-- acceptance temperature t (paper sweep: 0..10, chose 10) --");
    for t in [0.0, 1.0, 3.0, 10.0, 30.0] {
        let g = Guoq::for_gate_set(
            set,
            GuoqOpts {
                budget: Budget::Time(opts.budget),
                eps_total: 1e-6,
                temperature: t,
                seed: opts.seed,
                ..Default::default()
            },
        );
        let r = g.optimize(&circuit, &TwoQubitCount);
        println!(
            "   t = {t:<5} → 2q {} → {}   ({} accepted / {} iters)",
            circuit.two_qubit_count(),
            r.circuit.two_qubit_count(),
            r.accepted,
            r.iterations
        );
    }
}
