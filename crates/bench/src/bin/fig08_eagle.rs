//! Figure 8: comparison on the ibm-eagle gate set — 2q reduction and
//! fidelity vs. the NISQ baseline archetypes.
//!
//! Paper shape: GUOQ outperforms every tool on ≥ 80% (2q) / 74% (fidelity)
//! of benchmarks; mean 2q reduction 28% vs next-best 18%.

use guoq::cost::NegLogFidelity;
use guoq::CalibrationModel;
use guoq_bench::*;
use qcir::GateSet;

fn main() {
    let opts = HarnessOpts::from_args();
    let set = GateSet::IbmEagle;
    let suite = workloads::suite(set, opts.scale);
    let eps = 1e-6;
    // The paper's GUOQ instantiation maximizes fidelity on this figure.
    let cost = NegLogFidelity {
        model: CalibrationModel::for_gate_set(set),
    };

    let guoq_tool = GuoqTool::new(set, GuoqMode::Full, eps, opts.seed);
    let baselines = nisq_baselines(set, eps, opts.seed);
    let mut tools: Vec<(&dyn guoq::baselines::Optimizer, &dyn guoq::cost::CostFn)> =
        vec![(&guoq_tool, &cost)];
    for b in &baselines {
        tools.push((b.as_ref(), &cost));
    }

    let cmp = run_comparison(
        &suite,
        &tools,
        &[
            ("2q-reduction", two_qubit_reduction),
            ("fidelity", fidelity),
        ],
        opts.budget,
    );
    print_figure(&cmp, 0, "Fig. 8 (top) — ibm-eagle, 2q gate reduction");
    println!();
    print_figure(&cmp, 1, "Fig. 8 (bottom) — ibm-eagle, fidelity");
    println!();
    println!("paper reference: mean 2q reduction — GUOQ 28%, Quarl 18%, TKET 7%");
}
