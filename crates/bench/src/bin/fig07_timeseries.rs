//! Figure 7: best-so-far 2q count over time for `barenco_tof_10` and
//! `qft_20` under (1) rewrites only, (2) resynthesis only, (3) combined.
//!
//! Paper shape: rewrites plateau early; resynthesis alone moves slowly;
//! the combination escapes the plateau and wins.

use guoq::cost::TwoQubitCount;
use guoq::{Budget, Guoq, GuoqOpts};
use guoq_bench::HarnessOpts;
use qcir::{rebase::rebase, GateSet};

fn main() {
    let opts = HarnessOpts::from_args();
    let set = GateSet::Ibmq20;
    let budget = Budget::Time(opts.budget.max(std::time::Duration::from_millis(500)));

    let cases = [
        ("barenco_tof_10", workloads::generators::barenco_tof(10)),
        ("qft_20", workloads::generators::qft(20)),
    ];
    for (name, raw) in cases {
        let circuit = rebase(&raw, set).expect("rebase");
        println!(
            "== Fig. 7 — {name} ({} gates, {} two-qubit) ==",
            circuit.len(),
            circuit.two_qubit_count()
        );
        for (label, guoq) in [
            (
                "combined",
                Guoq::for_gate_set(set, series_opts(budget, opts.seed)),
            ),
            (
                "rewrite-only",
                Guoq::rewrite_only(set, series_opts(budget, opts.seed)),
            ),
            (
                "resynth-only",
                Guoq::resynth_only(set, series_opts(budget, opts.seed)),
            ),
        ] {
            let r = guoq.optimize(&circuit, &TwoQubitCount);
            print!("  {label:<14} series(t[s]→2q):");
            for p in &r.history {
                print!(" {:.2}→{}", p.seconds, p.best_two_qubit);
            }
            println!();
            println!(
                "  {label:<14} final 2q = {} (from {}), {} iterations",
                r.circuit.two_qubit_count(),
                circuit.two_qubit_count(),
                r.iterations
            );
        }
        println!();
    }
    println!("paper reference: combined < resynth-only < rewrite-only (lower 2q is better)");
}

fn series_opts(budget: Budget, seed: u64) -> GuoqOpts {
    GuoqOpts {
        budget,
        eps_total: 1e-6,
        seed,
        record_history: true,
        ..Default::default()
    }
}
