//! Figure 13: the Q2 ablation revisited on Clifford+T — in the FTQC
//! regime rewrite rules contribute MORE than (finite-set) resynthesis,
//! inverting the continuous-set picture of Fig. 10.

use guoq::cost::TWeighted;
use guoq_bench::*;
use qcir::GateSet;

fn main() {
    let opts = HarnessOpts::from_args();
    let set = GateSet::CliffordT;
    let suite = workloads::suite(set, opts.scale);
    let eps = 1e-6;
    let cost = TWeighted::default();

    let full = GuoqTool::new(set, GuoqMode::Full, eps, opts.seed);
    let rewrite = GuoqTool::new(set, GuoqMode::RewriteOnly, eps, opts.seed);
    let resynth = GuoqTool::new(set, GuoqMode::ResynthOnly, eps, opts.seed);
    let tools: Vec<(&dyn guoq::baselines::Optimizer, &dyn guoq::cost::CostFn)> =
        vec![(&full, &cost), (&rewrite, &cost), (&resynth, &cost)];

    let cmp = run_comparison(&suite, &tools, &[("t-reduction", t_reduction)], opts.budget);
    print_figure(&cmp, 0, "Fig. 13 — Clifford+T ablation (T reduction)");
    println!();
    println!("paper reference: vs GUOQ-REWRITE 102 better / 95 match / 50 worse;");
    println!("                 vs GUOQ-RESYNTH 183 better / 32 match / 32 worse");
}
