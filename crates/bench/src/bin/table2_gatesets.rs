//! Table 2: summary of the evaluation gate sets.

use qcir::GateSet;

fn main() {
    println!("== Table 2 — gate sets ==");
    println!(
        "  {:<12} {:<34} {:<15}",
        "Gate set", "Gates", "Architecture"
    );
    for set in GateSet::ALL {
        println!(
            "  {:<12} {:<34} {:<15}",
            set.name(),
            set.gate_names().join(", "),
            set.architecture()
        );
    }
}
