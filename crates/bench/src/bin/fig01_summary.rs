//! Figure 1: GUOQ vs. state-of-the-art on 2-qubit-gate reduction for the
//! ibmq20 gate set (ε = 1e-8-scale approximation allowed).
//!
//! Paper shape: GUOQ better-or-match on 80–97% of benchmarks per tool.

use guoq::cost::TwoQubitCount;
use guoq_bench::*;
use qcir::GateSet;

fn main() {
    let opts = HarnessOpts::from_args();
    let set = GateSet::Ibmq20;
    let suite = workloads::suite(set, opts.scale);
    let eps = 1e-6;
    let cost = TwoQubitCount;

    let guoq_tool = GuoqTool::new(set, GuoqMode::Full, eps, opts.seed);
    let baselines = nisq_baselines(set, eps, opts.seed);
    let mut tools: Vec<(&dyn guoq::baselines::Optimizer, &dyn guoq::cost::CostFn)> =
        vec![(&guoq_tool, &cost)];
    for b in &baselines {
        tools.push((b.as_ref(), &cost));
    }

    let cmp = run_comparison(
        &suite,
        &tools,
        &[("2q-reduction", two_qubit_reduction)],
        opts.budget,
    );
    print_figure(
        &cmp,
        0,
        "Fig. 1 — GUOQ vs. state-of-the-art (ibmq20, 2q reduction)",
    );
    println!();
    println!("paper reference: GUOQ better/match vs Qiskit 94.3%, TKET 87.9%, VOQC 88.3%,");
    println!("                 BQSKit 87.0%, QUESO 97.2%, Quartz 96.0%, Quarl* 80.2%");
}
