//! Table 1: measured characteristics of rewrite rules vs. resynthesis —
//! speed, gate-count scaling, qubit-count scaling, approximation.

use guoq::transform::{ResynthPass, RulePass, Transformation};
use qcir::{rebase::rebase, GateSet};
use qsynth::Resynthesizer;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let set = GateSet::IbmEagle;
    let mut rng = SmallRng::seed_from_u64(1);
    let circuit = rebase(&workloads::generators::qft(12), set).expect("rebase");

    // Speed: mean wall time per application.
    let rules = qrewrite::rules_for(set);
    let rule_pass = RulePass::new(rules[0].clone());
    let t0 = Instant::now();
    let mut fired = 0;
    for _ in 0..200 {
        if rule_pass.apply(&circuit, &mut rng).is_some() {
            fired += 1;
        }
    }
    let rule_us = t0.elapsed().as_micros() as f64 / 200.0;

    let resynth = ResynthPass::new(std::sync::Arc::new(Resynthesizer::new(set)), 3, 1e-6);
    let t0 = Instant::now();
    let mut hits = 0;
    for _ in 0..10 {
        if resynth.apply(&circuit, &mut rng).is_some() {
            hits += 1;
        }
    }
    let resynth_us = t0.elapsed().as_micros() as f64 / 10.0;

    println!("== Table 1 — rewrite rules vs. resynthesis (measured) ==");
    println!("  {:<26} {:>18} {:>18}", "", "rewrite rules", "resynthesis");
    println!(
        "  {:<26} {:>15.0} µs {:>15.0} µs",
        "time per application", rule_us, resynth_us
    );
    println!(
        "  {:<26} {:>18} {:>18}",
        "limited by # gates", "yes (≤3-gate LHS)", "no (any depth)"
    );
    println!(
        "  {:<26} {:>18} {:>18}",
        "limited by # qubits", "no", "yes (≤3 qubits)"
    );
    println!(
        "  {:<26} {:>18} {:>18}",
        "approximate", "no (ε = 0)", "yes (ε > 0)"
    );
    println!();
    println!(
        "  measured speed ratio: resynthesis is {:.0}× slower per application",
        resynth_us / rule_us.max(1.0)
    );
    println!("  (applications fired: rules {fired}/200, resynthesis {hits}/10)");
    println!("paper reference: Table 1 — fast ✓/✗, gate-limit ✓/✗, qubit-limit ✗/✓, approx ✗/✓");
}
