//! Figure 9: comparison on the ionq gate set (Rx/Ry/Rz/Rxx) vs. the
//! Qiskit-, BQSKit- and QUESO-archetype baselines.
//!
//! Paper shape: rewrite rules struggle on ionq (3-gate pattern limit), so
//! resynthesis-capable tools shine; GUOQ beats QUESO on ~98% of
//! benchmarks.

use guoq::baselines::*;
use guoq::cost::TwoQubitCount;
use guoq_bench::*;
use qcir::GateSet;

fn main() {
    let opts = HarnessOpts::from_args();
    let set = GateSet::Ionq;
    let suite = workloads::suite(set, opts.scale);
    let eps = 1e-6;
    let cost = TwoQubitCount;

    let guoq_tool = GuoqTool::new(set, GuoqMode::Full, eps, opts.seed);
    let qiskit = PipelineOptimizer::new(set, PipelinePreset::Heavy);
    let bqskit = PartitionResynth::new(set, eps, opts.seed);
    let queso = BeamSearch::new(set, 8, opts.seed);
    let tools: Vec<(&dyn Optimizer, &dyn guoq::cost::CostFn)> = vec![
        (&guoq_tool, &cost),
        (&qiskit, &cost),
        (&bqskit, &cost),
        (&queso, &cost),
    ];

    let cmp = run_comparison(
        &suite,
        &tools,
        &[
            ("2q-reduction", two_qubit_reduction),
            ("fidelity", fidelity),
        ],
        opts.budget,
    );
    print_figure(&cmp, 0, "Fig. 9 (top) — ionq, 2q (rxx) gate reduction");
    println!();
    print_figure(&cmp, 1, "Fig. 9 (bottom) — ionq, fidelity");
    println!();
    println!("paper reference: GUOQ better/match vs Qiskit 235/247, BQSKit 187/247, QUESO 247/247");
}
