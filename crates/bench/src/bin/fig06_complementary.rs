//! Figure 6: the complementary strengths of rewriting and resynthesis.
//!
//! 6a: a QFT-like CX ladder followed by its own inverse — trivial for two
//! rewrite rules, intractable for blind 3-qubit resynthesis rounds.
//! 6b: a deep 2-qubit Rz/CX comb — one resynthesis call collapses it; the
//! rewrite path needs a long, specific rule sequence.

use guoq::cost::TwoQubitCount;
use guoq::{Budget, Guoq, GuoqOpts};
use guoq_bench::HarnessOpts;
use qcir::{rebase::rebase, Circuit, Gate, GateSet};

fn ladder_with_inverse(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..n - 1 {
        c.push(Gate::Cx, &[i as u32, (i + 1) as u32]);
    }
    for i in (0..n - 1).rev() {
        c.push(Gate::Cx, &[i as u32, (i + 1) as u32]);
    }
    c
}

fn deep_rz_comb(len: usize) -> Circuit {
    let mut c = Circuit::new(3);
    for k in 0..len {
        c.push(Gate::Rz(std::f64::consts::PI / 4.0), &[(k % 3) as u32]);
        c.push(Gate::Cx, &[(k % 3) as u32, ((k + 1) % 3) as u32]);
        c.push(Gate::Cx, &[(k % 3) as u32, ((k + 1) % 3) as u32]);
    }
    c
}

fn run(label: &str, circuit: &Circuit, opts: &HarnessOpts) {
    let set = GateSet::Nam;
    let native = rebase(circuit, set).expect("rebase");
    println!(
        "-- {label}: {} gates, {} two-qubit --",
        native.len(),
        native.two_qubit_count()
    );
    for (mode, g) in [
        ("rewrite-only", Guoq::rewrite_only(set, mk(opts))),
        ("resynth-only", Guoq::resynth_only(set, mk(opts))),
        ("combined", Guoq::for_gate_set(set, mk(opts))),
    ] {
        let r = g.optimize(&native, &TwoQubitCount);
        println!(
            "   {mode:<14} 2q: {} → {}   ({} iterations)",
            native.two_qubit_count(),
            r.circuit.two_qubit_count(),
            r.iterations
        );
    }
}

fn mk(opts: &HarnessOpts) -> GuoqOpts {
    GuoqOpts {
        budget: Budget::Time(opts.budget),
        eps_total: 1e-6,
        seed: opts.seed,
        ..Default::default()
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    println!("== Fig. 6a — wide CX ladder + inverse (rewrites win) ==");
    run("ladder_12", &ladder_with_inverse(12), &opts);
    println!();
    println!("== Fig. 6b — deep Rz/CX comb on 3 qubits (resynthesis wins) ==");
    run("comb_24", &deep_rz_comb(24), &opts);
}
