//! Figure 10: the Q2 ablation — full GUOQ vs. rewrite-only vs.
//! resynthesis-only on the ibmq20 gate set.
//!
//! Paper shape: both ablations lose; resynthesis carries most of the
//! reduction, rewrites push it further.

use guoq::cost::TwoQubitCount;
use guoq_bench::*;
use qcir::GateSet;

fn main() {
    let opts = HarnessOpts::from_args();
    let set = GateSet::Ibmq20;
    let suite = workloads::suite(set, opts.scale);
    let eps = 1e-6;
    let cost = TwoQubitCount;

    let full = GuoqTool::new(set, GuoqMode::Full, eps, opts.seed);
    let rewrite = GuoqTool::new(set, GuoqMode::RewriteOnly, eps, opts.seed);
    let resynth = GuoqTool::new(set, GuoqMode::ResynthOnly, eps, opts.seed);
    let tools: Vec<(&dyn guoq::baselines::Optimizer, &dyn guoq::cost::CostFn)> =
        vec![(&full, &cost), (&rewrite, &cost), (&resynth, &cost)];

    let cmp = run_comparison(
        &suite,
        &tools,
        &[("2q-reduction", two_qubit_reduction)],
        opts.budget,
    );
    print_figure(
        &cmp,
        0,
        "Fig. 10 — unifying rewrites & resynthesis (ibmq20)",
    );
    println!();
    println!("paper reference: GUOQ better/match vs GUOQ-REWRITE 226/247, vs GUOQ-RESYNTH 224/247");
}
