//! Runs every figure/table harness in sequence at the given scale,
//! mirroring the paper's full evaluation. Pass-through flags:
//! `--budget-ms`, `--suite`, `--seed`.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table1_characteristics",
        "table2_gatesets",
        "fig01_summary",
        "fig06_complementary",
        "fig07_timeseries",
        "fig08_eagle",
        "fig09_ionq",
        "fig10_ablation",
        "fig11_search",
        "fig12_cliffordt",
        "fig13_ablation_ft",
        "fig14_fold_then_guoq",
        "fig15_suite",
    ];
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        println!("\n######## {bin} ########");
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
        }
    }
}
