//! Figure 12: the fault-tolerant Clifford+T comparison — T-gate reduction
//! (top) and CX reduction (bottom) against the Qiskit-, BQSKit-,
//! Synthetiq-, QUESO- and PyZX-archetype baselines.
//!
//! Paper shape: GUOQ beats everything on CX reduction; on T reduction it
//! beats everything except the ZX-style rotation folder (our `qfold`).

use guoq::baselines::*;
use guoq::cost::{CostFn, TWeighted};
use guoq::Budget;
use guoq_bench::*;
use qcir::{Circuit, GateSet};

/// PyZX stand-in: one rotation-folding pass (see DESIGN.md §3).
struct FoldTool;

impl Optimizer for FoldTool {
    fn name(&self) -> String {
        "fold (pyzx-substitute)".into()
    }
    fn optimize(&self, circuit: &Circuit, _cost: &dyn CostFn, _budget: Budget) -> Circuit {
        qfold::fold_rotations(circuit, qfold::EmitStyle::CliffordT)
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let set = GateSet::CliffordT;
    let suite = workloads::suite(set, opts.scale);
    let eps = 1e-6;
    // FTQC objective: T primary, CX secondary (paper Example 5.1).
    let cost = TWeighted::default();

    let guoq_tool = GuoqTool::new(set, GuoqMode::Full, eps, opts.seed);
    let qiskit = PipelineOptimizer::new(set, PipelinePreset::Heavy);
    let bqskit = PartitionResynth::new(set, eps, opts.seed);
    let queso = BeamSearch::new(set, 8, opts.seed);
    let fold = FoldTool;
    let tools: Vec<(&dyn Optimizer, &dyn CostFn)> = vec![
        (&guoq_tool, &cost),
        (&qiskit, &cost),
        (&bqskit, &cost),
        (&queso, &cost),
        (&fold, &cost),
    ];

    let cmp = run_comparison(
        &suite,
        &tools,
        &[
            ("t-reduction", t_reduction),
            ("2q-reduction", two_qubit_reduction),
        ],
        opts.budget,
    );
    print_figure(&cmp, 0, "Fig. 12 (top) — Clifford+T, T-gate reduction");
    println!();
    print_figure(&cmp, 1, "Fig. 12 (bottom) — Clifford+T, CX reduction");
    println!();
    println!("paper reference: GUOQ ≥ everything on CX; PyZX wins T on 136/247 (GUOQ better-or-match 45%)");
}
