//! Figure 15 (Appendix B): histogram of total gate counts of the
//! benchmark suite, per gate set (log-scale bins).

use guoq_bench::*;
use qcir::GateSet;

fn main() {
    let opts = HarnessOpts::from_args();
    for set in GateSet::ALL {
        let suite = workloads::suite(set, opts.scale);
        println!(
            "== Fig. 15 — suite gate counts for {set} ({} circuits) ==",
            suite.len()
        );
        // Log10 bins: [10^k, 10^(k+1)).
        let mut bins = [0usize; 8];
        let (mut min_g, mut max_g, mut min_q, mut max_q) = (usize::MAX, 0, usize::MAX, 0);
        for b in &suite {
            let g = b.circuit.len().max(1);
            let k = (g as f64).log10().floor() as usize;
            bins[k.min(7)] += 1;
            min_g = min_g.min(g);
            max_g = max_g.max(g);
            min_q = min_q.min(b.circuit.num_qubits());
            max_q = max_q.max(b.circuit.num_qubits());
        }
        for (k, count) in bins.iter().enumerate() {
            if *count > 0 {
                println!("  10^{k}–10^{}: {:<4} {}", k + 1, count, "#".repeat(*count));
            }
        }
        println!("  gates ∈ [{min_g}, {max_g}], qubits ∈ [{min_q}, {max_q}]");
        println!();
    }
    println!("paper reference: 247 circuits, 4–36 qubits, gate counts ~10^2 to >10^4");
}
