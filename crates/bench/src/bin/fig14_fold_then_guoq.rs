//! Figure 14: running GUOQ on the output of the T-count optimizer — GUOQ
//! cuts CX substantially *without increasing T* (lexicographic cost).
//!
//! Paper shape: 32% mean CX reduction on PyZX output, T preserved.

use guoq::baselines::Optimizer;
use guoq::cost::TThenCx;
use guoq::Budget;
use guoq_bench::*;
use qcir::GateSet;
use qfold::{fold_rotations, EmitStyle};

fn main() {
    let opts = HarnessOpts::from_args();
    let set = GateSet::CliffordT;
    let suite = workloads::suite(set, opts.scale);
    let eps = 1e-6;
    let cost = TThenCx;
    let guoq_tool = GuoqTool::new(set, GuoqMode::Full, eps, opts.seed);

    println!("== Fig. 14 — GUOQ on fold (PyZX-substitute) output ==");
    println!(
        "  {:<20} {:>7} {:>7} {:>9} {:>9} {:>8}",
        "benchmark", "T:fold", "T:guoq", "CX:fold", "CX:guoq", "CX-red"
    );
    let (mut t_preserved, mut total, mut cx_red_sum) = (0usize, 0usize, 0.0f64);
    for b in &suite {
        let folded = fold_rotations(&b.circuit, EmitStyle::CliffordT);
        let out = guoq_tool.optimize(&folded, &cost, Budget::Time(opts.budget));
        let red = if folded.two_qubit_count() > 0 {
            1.0 - out.two_qubit_count() as f64 / folded.two_qubit_count() as f64
        } else {
            0.0
        };
        println!(
            "  {:<20} {:>7} {:>7} {:>9} {:>9} {:>7.1}%",
            b.name,
            folded.t_count(),
            out.t_count(),
            folded.two_qubit_count(),
            out.two_qubit_count(),
            100.0 * red
        );
        total += 1;
        if out.t_count() <= folded.t_count() {
            t_preserved += 1;
        }
        cx_red_sum += red;
    }
    println!();
    println!(
        "T not increased on {t_preserved}/{total} benchmarks; mean CX reduction {:.1}%",
        100.0 * cx_red_sum / total.max(1) as f64
    );
    println!("paper reference: CX cut 32% on average with T never increased (237/243 better)");
}
