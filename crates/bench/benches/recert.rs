//! Incremental re-optimization economics: what a certificate buys.
//!
//! Section 1 — **EDIT vs cold re-run**: a certifying job optimizes a
//! large tiled workload on a journaled server and finishes with a
//! local-optimality certificate; a client then splices a small edit
//! (a handful of gates, well under 5% of the circuit) into the served
//! best and re-optimizes through the v2 `EDIT` verb. The rebased
//! certificate lets the continuation re-probe only the dirtied
//! windows and terminate early, so its wall-clock is compared against
//! a **cold** full re-optimization of the edited circuit at the same
//! budget — same final quality, a fraction of the time.
//!
//! Section 2 — **early termination**: the same plateaued circuit is
//! re-submitted once with certification on and once off, at one
//! iteration budget. The uncertified run burns the whole budget
//! confirming what it already knows; the certified run proves local
//! optimality window by window and stops.
//!
//! The summary goes to `BENCH_recert.json` in the repository root.
//!
//! Run with: `cargo bench --bench recert`
//! CI smoke: `RECERT_GATES=400 RECERT_ITERS=8000 cargo bench --bench recert`

use crossbeam_channel::{bounded, Receiver};
use guoq::cost::GateCount;
use guoq::{Budget, Engine, Guoq, GuoqOpts};
use guoq_bench::tiled_workload;
use qcir::edit::Patch;
use qcir::{qasm, Circuit, Gate, GateSet};
use qserve::{EngineSel, Frame, JobRequest, JobSummary, Objective, ServeOpts, Server};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Drains frames until `DONE`, returning the summary and any
/// `CERTIFIED` frame's `(coverage, windows)` seen on the way.
fn wait_done(rx: &Receiver<Frame>, id: u64) -> (JobSummary, Option<(f64, u64)>) {
    let mut cert = None;
    loop {
        match rx
            .recv_timeout(Duration::from_secs(3600))
            .expect("frame before DONE")
        {
            Frame::Certified {
                id: got,
                coverage,
                windows,
                ..
            } if got == id => cert = Some((coverage, windows)),
            Frame::Done(s) if s.id == id => return (s, cert),
            Frame::Error {
                id: got, message, ..
            } if got == id => {
                panic!("job {got} rejected: {message}")
            }
            _ => {}
        }
    }
}

fn request(id: u64, iters: u64, seed: u64, certify: bool, qasm: String) -> JobRequest {
    JobRequest {
        id,
        engine: EngineSel::Serial,
        iters,
        time_ms: 0,
        seed,
        eps: 1e-8,
        objective: Objective::GateCount,
        overwrite: false,
        certify,
        qasm,
    }
}

fn main() {
    let gates: usize = std::env::var("RECERT_GATES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let iters: u64 = std::env::var("RECERT_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000);

    let dir = std::env::temp_dir().join(format!("recert-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeOpts {
        worker_budget: 1,
        cache_gates: 0,
        max_time_ms: 3_600_000,
        journal_dir: Some(dir.clone()),
        ..Default::default()
    });
    let handle = server.handle();
    let (tx, rx) = bounded(16 * 1024);
    handle.handle_frame(Frame::Hello { version: 2 }, &tx);

    // Offline prep, outside every timed comparison: bring the raw
    // workload to its plateau once. Certificates are for jobs that
    // have converged — submitting a mid-descent circuit would spend
    // the budget on ordinary improvements, not proofs.
    let raw = tiled_workload(gates);
    let pre = Guoq::for_gate_set(
        GateSet::Nam,
        GuoqOpts {
            budget: Budget::Iterations(iters),
            eps_total: 1e-8,
            seed: 0xABCD,
            engine: Engine::Incremental,
            ..Default::default()
        },
    )
    .optimize(&raw, &GateCount);
    let input = pre.circuit;

    // Section 1a: the initial certifying optimization.
    let started = Instant::now();
    handle.handle_frame(
        Frame::Submit(request(1, iters, 0xC397, true, qasm::to_qasm_line(&input))),
        &tx,
    );
    let (done1, cert1) = wait_done(&rx, 1);
    let initial_s = started.elapsed().as_secs_f64();
    let (coverage1, windows1) = cert1.unwrap_or((0.0, 0));
    println!(
        "recert initial: {} gates -> cost {} in {:.2}s ({} iters, coverage {:.3}, {} windows)",
        input.len(),
        done1.cost,
        initial_s,
        done1.iterations,
        coverage1,
        windows1
    );

    // Section 1b: a small client edit — one redundancy-rich 6-gate tile
    // spliced mid-circuit (a fraction of a percent of a 10k-gate run).
    let best = qasm::from_qasm(&done1.qasm).expect("DONE qasm");
    let mut donor = Circuit::new(12);
    donor.push(Gate::Cx, &[0, 1]);
    donor.push(Gate::H, &[1]);
    donor.push(Gate::T, &[0]);
    donor.push(Gate::H, &[1]);
    donor.push(Gate::Cx, &[0, 1]);
    donor.push(Gate::T, &[2]);
    let delta = qcir::CircuitDelta::from_ops(
        best.len(),
        vec![Patch::new(
            Vec::new(),
            (0..donor.len()).map(|i| donor.instruction(i)).collect(),
            best.len() / 2,
        )],
    );
    let mut edited = best.clone();
    delta.apply(&mut edited).expect("edit applies");
    let edit_fraction = donor.len() as f64 / best.len().max(1) as f64;

    let started = Instant::now();
    handle.handle_frame(
        Frame::Edit {
            id: 1,
            delta: delta.encode(),
        },
        &tx,
    );
    let (done2, cert2) = wait_done(&rx, 1);
    let edit_s = started.elapsed().as_secs_f64();
    let (coverage2, windows2) = cert2.unwrap_or((0.0, 0));

    // Section 1c: the cold baseline — a full re-optimization of the
    // edited circuit at the same budget, no certificate to lean on.
    let started = Instant::now();
    let cold = Guoq::for_gate_set(
        GateSet::Nam,
        GuoqOpts {
            budget: Budget::Iterations(iters),
            eps_total: 1e-8,
            seed: 0xC397,
            engine: Engine::Incremental,
            ..Default::default()
        },
    )
    .optimize(&edited, &GateCount);
    let cold_s = started.elapsed().as_secs_f64();
    let speedup = if edit_s > 0.0 { cold_s / edit_s } else { 0.0 };
    println!(
        "recert edit ({} gates, {:.2}% of circuit): EDIT {:.2}s @ cost {} ({} iters, coverage {:.3}) vs cold {:.2}s @ cost {} ({} iters) = {:.1}x faster",
        donor.len(),
        100.0 * edit_fraction,
        edit_s,
        done2.cost,
        done2.iterations,
        coverage2,
        cold_s,
        cold.cost,
        cold.iterations,
        speedup
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // Section 2: early termination on an already-plateaued circuit —
    // certification turns "burn the rest of the budget" into "prove
    // local optimality and stop".
    let run = |certify: bool, seed: u64| {
        let t = Instant::now();
        let r = Guoq::for_gate_set(
            GateSet::Nam,
            GuoqOpts {
                budget: Budget::Iterations(iters),
                eps_total: 1e-8,
                seed,
                engine: Engine::Incremental,
                certify,
                ..Default::default()
            },
        )
        .optimize(&best, &GateCount);
        (t.elapsed().as_secs_f64(), r)
    };
    let (plain_s, plain) = run(false, 0xE11);
    let (cert_s, certified) = run(true, 0xE11);
    let et_coverage = certified.certificate.as_ref().map_or(0.0, |c| c.coverage());
    let iter_savings = 1.0 - certified.iterations as f64 / plain.iterations.max(1) as f64;
    println!(
        "recert early-term: plateaued {} gates, budget {} iters: uncertified {:.2}s/{} iters vs certified {:.2}s/{} iters (coverage {:.3}) = {:.1}% of the budget saved",
        best.len(),
        iters,
        plain_s,
        plain.iterations,
        cert_s,
        certified.iterations,
        et_coverage,
        100.0 * iter_savings
    );

    let mut json = String::from("{\n  \"benchmark\": \"recert\",\n");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(json, "  \"gates_raw\": {},", raw.len());
    let _ = writeln!(json, "  \"gates\": {},", input.len());
    let _ = writeln!(json, "  \"iters_budget\": {iters},");
    let _ = writeln!(
        json,
        "  \"initial\": {{\"seconds\": {:.4}, \"cost\": {}, \"iterations\": {}, \"coverage\": {:.4}, \"windows\": {}}},",
        initial_s, done1.cost, done1.iterations, coverage1, windows1
    );
    let _ = writeln!(
        json,
        "  \"edit\": {{\"gates_touched\": {}, \"fraction\": {:.5}, \"seconds\": {:.4}, \"cost\": {}, \"iterations\": {}, \"coverage\": {:.4}, \"windows\": {}}},",
        donor.len(), edit_fraction, edit_s, done2.cost, done2.iterations, coverage2, windows2
    );
    let _ = writeln!(
        json,
        "  \"cold\": {{\"seconds\": {:.4}, \"cost\": {}, \"iterations\": {}}},",
        cold_s, cold.cost, cold.iterations
    );
    let _ = writeln!(json, "  \"edit_speedup_x\": {speedup:.2},");
    let _ = writeln!(
        json,
        "  \"early_termination\": {{\"uncertified_seconds\": {:.4}, \"uncertified_iterations\": {}, \"certified_seconds\": {:.4}, \"certified_iterations\": {}, \"coverage\": {:.4}, \"budget_saved\": {:.4}}}",
        plain_s, plain.iterations, cert_s, certified.iterations, et_coverage, iter_savings
    );
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recert.json");
    std::fs::write(path, &json).expect("write BENCH_recert.json");
    println!("wrote {path}");
}
