//! Resynthesis memo-cache leverage: iteration throughput and hit rate
//! of GUOQ on a resynthesis-heavy workload, swept over cache size ×
//! repeated-job mix.
//!
//! Each row plays a stream of jobs (full GUOQ, elevated resynthesis
//! probability so the slow path dominates, as it does at paper-scale
//! budgets) through one shared cache handle — the qserve serving shape
//! — and reports end-to-end iterations/sec plus the cache counters.
//! Mixes:
//!
//! * `repeat` — every job is the same circuit + seed (a client
//!   resubmitting its workload; the steady state of a long-lived
//!   service with recurring traffic),
//! * `half` — alternates two distinct jobs,
//! * `fresh` — every job is a new circuit and seed (the adversarial
//!   mix: only within-job window repeats can hit).
//!
//! `cache_gates = 0` rows run cold (no cache) and are the baseline the
//! headline speedup compares against. The summary goes to
//! `BENCH_qcache.json` in the repository root.
//!
//! Run with: `cargo bench --bench qcache`
//! CI smoke: `QCACHE_BENCH_JOBS=4 QCACHE_BENCH_ITERS=400 cargo bench --bench qcache`

use guoq::cost::GateCount;
use guoq::{Budget, Guoq, GuoqOpts, QCache};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use workloads::generators::rotation_comb;

struct Row {
    cache_gates: usize,
    mix: &'static str,
    jobs: usize,
    iters_per_job: u64,
    seconds: f64,
    iters_per_sec: f64,
    resynth_calls: u64,
    hits: u64,
    negative_hits: u64,
    misses: u64,
    verify_rejects: u64,
    evictions: u64,
    hit_rate: f64,
}

fn run(cache_gates: usize, mix: &'static str, jobs: usize, iters_per_job: u64) -> Row {
    let cache = (cache_gates > 0).then(|| Arc::new(QCache::with_gate_budget(cache_gates)));
    let circuits = [
        rotation_comb(6, 240, 0xC0FFEE),
        rotation_comb(6, 240, 0xFACADE),
    ];
    let mut total_iterations = 0u64;
    let mut resynth_calls = 0u64;
    let started = Instant::now();
    for j in 0..jobs {
        let (circuit, seed) = match (mix, j % 2) {
            ("repeat", _) => (&circuits[0], 0xBEEF),
            ("half", parity) => (&circuits[parity], 0xBEEF + parity as u64),
            _ => (&circuits[j % 2], 0xBEEF + j as u64), // fresh seeds
        };
        let opts = GuoqOpts {
            budget: Budget::Iterations(iters_per_job),
            eps_total: 1e-6,
            seed,
            // The paper's 1-hour budget performs ~40k slow calls; at
            // bench budgets the same draw rate would barely touch the
            // slow path, so raise the share until resynthesis dominates
            // wall-clock — the regime the cache exists for.
            resynth_probability: 0.25,
            cache: cache.clone(),
            ..Default::default()
        };
        let r = Guoq::for_gate_set(qcir::GateSet::Nam, opts).optimize(circuit, &GateCount);
        total_iterations += r.iterations;
        resynth_calls += r.resynth_hits;
    }
    let seconds = started.elapsed().as_secs_f64();
    let stats = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
    Row {
        cache_gates,
        mix,
        jobs,
        iters_per_job,
        seconds,
        iters_per_sec: total_iterations as f64 / seconds,
        resynth_calls,
        hits: stats.hits,
        negative_hits: stats.negative_hits,
        misses: stats.misses,
        verify_rejects: stats.verify_rejects,
        evictions: stats.evictions,
        hit_rate: stats.hit_rate(),
    }
}

fn main() {
    let jobs: usize = std::env::var("QCACHE_BENCH_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let iters: u64 = std::env::var("QCACHE_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_500);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    for cache_gates in [0usize, 4_096, 65_536] {
        for mix in ["repeat", "half", "fresh"] {
            let row = run(cache_gates, mix, jobs, iters);
            println!(
                "qcache cache={:<6} mix={:<7} {:>9.0} iters/s  (hit rate {:>5.1}%, {} resynth, {} evictions, {:.2}s)",
                row.cache_gates,
                row.mix,
                row.iters_per_sec,
                100.0 * row.hit_rate,
                row.resynth_calls,
                row.evictions,
                row.seconds
            );
            rows.push(row);
        }
    }

    let rate = |gates: usize, mix: &str| {
        rows.iter()
            .find(|r| r.cache_gates == gates && r.mix == mix)
            .map(|r| r.iters_per_sec)
            .unwrap_or(0.0)
    };
    let speedup = rate(65_536, "repeat") / rate(0, "repeat").max(1e-9);
    let repeat_hit_rate = rows
        .iter()
        .find(|r| r.cache_gates == 65_536 && r.mix == "repeat")
        .map(|r| r.hit_rate)
        .unwrap_or(0.0);
    println!(
        "qcache headline: repeat-mix {speedup:.2}x iters/s vs cold, {:.1}% hit rate",
        100.0 * repeat_hit_rate
    );

    let mut json = String::from("{\n  \"benchmark\": \"qcache\",\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "  \"headline\": {{\"repeat_speedup_vs_cold\": {speedup:.3}, \"repeat_hit_rate\": {repeat_hit_rate:.4}}},"
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"cache_gates\": {}, \"mix\": \"{}\", \"jobs\": {}, \"iters_per_job\": {}, \"seconds\": {:.4}, \"iters_per_sec\": {:.1}, \"resynth_calls\": {}, \"hits\": {}, \"negative_hits\": {}, \"misses\": {}, \"verify_rejects\": {}, \"evictions\": {}, \"hit_rate\": {:.4}}}{}",
            r.cache_gates, r.mix, r.jobs, r.iters_per_job, r.seconds, r.iters_per_sec,
            r.resynth_calls, r.hits, r.negative_hits, r.misses, r.verify_rejects, r.evictions, r.hit_rate,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_qcache.json");
    std::fs::write(path, &json).expect("write BENCH_qcache.json");
    println!("wrote {path}");
}
