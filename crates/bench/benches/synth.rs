//! Cost of the slow path: unitary synthesis at 1, 2 and 3 qubits.
//! (These numbers substantiate the measured Table 1.)

use criterion::{criterion_group, criterion_main, Criterion};
use qcir::GateSet;
use qmath::random::random_unitary;
use qsynth::continuous::{synthesize_1q, synthesize_2q, SynthOpts};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_synth(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let u1 = random_unitary(2, &mut rng);
    c.bench_function("synthesize_1q_analytic", |b| {
        b.iter(|| black_box(synthesize_1q(&u1, GateSet::IbmEagle)));
    });

    let u2 = random_unitary(4, &mut rng);
    let mut group = c.benchmark_group("slow");
    group.sample_size(10);
    group.bench_function("synthesize_2q_random", |b| {
        let mut r = SmallRng::seed_from_u64(3);
        b.iter(|| black_box(synthesize_2q(&u2, &SynthOpts::default(), &mut r)));
    });
    group.finish();
}

criterion_group!(benches, bench_synth);
criterion_main!(benches);
