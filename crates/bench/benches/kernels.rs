//! Microbenchmarks of the numerical kernels underlying both optimizers.

use criterion::{criterion_group, criterion_main, Criterion};
use qmath::random::{random_state, random_unitary};
use qmath::statevec::apply_gate;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let a8 = random_unitary(8, &mut rng);
    let b8 = random_unitary(8, &mut rng);
    c.bench_function("matmul_8x8", |b| {
        b.iter(|| black_box(a8.matmul(&b8)));
    });

    let a64 = random_unitary(64, &mut rng);
    let b64 = random_unitary(64, &mut rng);
    c.bench_function("matmul_64x64", |b| {
        b.iter(|| black_box(a64.matmul(&b64)));
    });

    c.bench_function("hs_distance_64", |b| {
        b.iter(|| black_box(qmath::hs_distance(&a64, &b64)));
    });

    let g2 = random_unitary(4, &mut rng);
    let mut state = random_state(1 << 16, &mut rng);
    c.bench_function("statevec_apply_2q_16q", |b| {
        b.iter(|| {
            apply_gate(&mut state, 16, &[3, 11], &g2);
            black_box(state[0])
        });
    });

    let u2 = random_unitary(2, &mut rng);
    c.bench_function("zyz_decompose", |b| {
        b.iter(|| black_box(qmath::decompose::zyz_decompose(&u2)));
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
