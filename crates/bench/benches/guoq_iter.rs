//! Iteration throughput of the GUOQ inner loop: incremental patch engine
//! vs the legacy clone–rebuild engine, across circuit sizes.
//!
//! The workload is a repeated tile of redundant gates, so rewrite
//! opportunities occur at a size-independent rate (constant-span edits).
//! For each size the bench runs `GUOQ-REWRITE` under a fixed wall-clock
//! budget with both engines and reports iterations per second, writing a
//! `BENCH_guoq_iter.json` summary to the repository root.
//!
//! Run with: `cargo bench --bench guoq_iter`

use guoq::cost::TwoQubitCount;
use guoq::{Budget, Engine, Guoq, GuoqOpts};
use guoq_bench::tiled_workload;
use qcir::{Circuit, GateSet};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Row {
    size: usize,
    engine: &'static str,
    iterations: u64,
    seconds: f64,
    iters_per_sec: f64,
    accepted: u64,
    final_cost: f64,
}

fn run(circuit: &Circuit, engine: Engine, budget: Duration) -> Row {
    let opts = GuoqOpts {
        budget: Budget::Time(budget),
        eps_total: 1e-6,
        seed: 0xBEEF,
        engine,
        ..Default::default()
    };
    let g = Guoq::rewrite_only(GateSet::Nam, opts);
    let started = Instant::now();
    let r = g.optimize(circuit, &TwoQubitCount);
    let seconds = started.elapsed().as_secs_f64();
    Row {
        size: circuit.len(),
        engine: match engine {
            Engine::Incremental => "incremental",
            Engine::CloneRebuild => "clone-rebuild",
            Engine::Sharded { .. } => "sharded", // measured by guoq_parallel
        },
        iterations: r.iterations,
        seconds,
        iters_per_sec: r.iterations as f64 / seconds,
        accepted: r.accepted,
        final_cost: r.cost,
    }
}

fn main() {
    let budget = Duration::from_millis(
        std::env::var("GUOQ_ITER_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(750),
    );
    let sizes = [100usize, 1_000, 10_000, 50_000];
    let mut rows: Vec<Row> = Vec::new();
    for &size in &sizes {
        let circuit = tiled_workload(size);
        for engine in [Engine::CloneRebuild, Engine::Incremental] {
            let row = run(&circuit, engine, budget);
            println!(
                "guoq_iter size={:<6} engine={:<14} {:>12.0} iters/s  ({} iters, {} accepted, cost {})",
                row.size, row.engine, row.iters_per_sec, row.iterations, row.accepted, row.final_cost
            );
            rows.push(row);
        }
    }

    // Headline ratios for the acceptance criteria.
    let rate = |size: usize, engine: &str| {
        rows.iter()
            .find(|r| r.size == size && r.engine == engine)
            .map(|r| r.iters_per_sec)
            .unwrap_or(f64::NAN)
    };
    let speedup_1k = rate(1_000, "incremental") / rate(1_000, "clone-rebuild");
    let scaling_ratio = rate(100, "incremental") / rate(10_000, "incremental");
    // Near-flat scaling criterion: 50k-gate throughput stays within 2x of
    // 1k-gate throughput for the incremental engine (ratio ≥ 0.5).
    let ratio_1k_to_50k = rate(50_000, "incremental") / rate(1_000, "incremental");
    println!("speedup @1k gates: {speedup_1k:.1}x (incremental vs clone-rebuild)");
    println!(
        "incremental scaling 100→10k gates: {scaling_ratio:.2}x slowdown (constant-span edits)"
    );
    println!("incremental iters/sec ratio 1k→50k gates: {ratio_1k_to_50k:.3} (≥0.5 = near-flat)");

    let mut json = String::from("{\n  \"benchmark\": \"guoq_iter\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"size\": {}, \"engine\": \"{}\", \"iterations\": {}, \"seconds\": {:.4}, \"iters_per_sec\": {:.1}, \"accepted\": {}, \"final_cost\": {}}}{}",
            r.size,
            r.engine,
            r.iterations,
            r.seconds,
            r.iters_per_sec,
            r.accepted,
            r.final_cost,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    // Per-size scaling summary for the incremental engine: the curve the
    // acceptance criteria read (iters/sec by size, plus the 1k→50k ratio).
    let mut scaling = String::from("{");
    for (i, &size) in sizes.iter().enumerate() {
        let _ = write!(
            scaling,
            "{}\"{}\": {:.1}",
            if i > 0 { ", " } else { "" },
            size,
            rate(size, "incremental")
        );
    }
    scaling.push('}');
    let _ = write!(
        json,
        "  ],\n  \"speedup_1k\": {speedup_1k:.2},\n  \"scaling_100_to_10k\": {scaling_ratio:.3},\n  \"ratio_1k_to_50k\": {ratio_1k_to_50k:.3},\n  \"incremental_iters_per_sec_by_size\": {scaling}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_guoq_iter.json");
    std::fs::write(path, &json).expect("write BENCH_guoq_iter.json");
    println!("wrote {path}");
}
