//! Iteration throughput of the GUOQ inner loop: incremental patch engine
//! vs the legacy clone–rebuild engine, across circuit sizes.
//!
//! The workload is a repeated tile of redundant gates, so rewrite
//! opportunities occur at a size-independent rate (constant-span edits).
//! For each size the bench runs `GUOQ-REWRITE` under a fixed wall-clock
//! budget with both engines and reports iterations per second, writing a
//! `BENCH_guoq_iter.json` summary to the repository root.
//!
//! Run with: `cargo bench --bench guoq_iter`

use guoq::cost::TwoQubitCount;
use guoq::{Budget, Engine, Guoq, GuoqOpts};
use guoq_bench::tiled_workload;
use qcir::{Circuit, GateSet};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Row {
    size: usize,
    engine: &'static str,
    iterations: u64,
    seconds: f64,
    iters_per_sec: f64,
    accepted: u64,
    final_cost: f64,
}

fn run(circuit: &Circuit, engine: Engine, budget: Duration, name: &'static str) -> Row {
    let opts = GuoqOpts {
        budget: Budget::Time(budget),
        eps_total: 1e-6,
        seed: 0xBEEF,
        engine,
        ..Default::default()
    };
    let g = Guoq::rewrite_only(GateSet::Nam, opts);
    let started = Instant::now();
    let r = g.optimize(circuit, &TwoQubitCount);
    let seconds = started.elapsed().as_secs_f64();
    Row {
        size: circuit.len(),
        engine: name,
        iterations: r.iterations,
        seconds,
        iters_per_sec: r.iterations as f64 / seconds,
        accepted: r.accepted,
        final_cost: r.cost,
    }
}

fn main() {
    let budget = Duration::from_millis(
        std::env::var("GUOQ_ITER_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(750),
    );
    let sizes = [100usize, 1_000, 10_000, 50_000];
    let mut rows: Vec<Row> = Vec::new();
    for &size in &sizes {
        let circuit = tiled_workload(size);
        for (engine, name) in [
            (Engine::CloneRebuild, "clone-rebuild"),
            (Engine::Incremental, "incremental"),
        ] {
            let row = run(&circuit, engine, budget, name);
            println!(
                "guoq_iter size={:<6} engine={:<14} {:>12.0} iters/s  ({} iters, {} accepted, cost {})",
                row.size, row.engine, row.iters_per_sec, row.iterations, row.accepted, row.final_cost
            );
            rows.push(row);
        }
    }

    // Telemetry honesty rows at the headline size: the observability
    // layer budgets ≤ 2% iters/sec overhead (rejected iterations never
    // read a clock; only rare slow spans do). Interleaved best-of-3
    // pairs cancel thermal/scheduler drift. These engine names are
    // unknown to the CI regression compare, which skips them — they
    // exist to make the overhead measurable, not to gate.
    let circuit = tiled_workload(10_000);
    let mut best: [Option<Row>; 2] = [None, None];
    for _ in 0..3 {
        for (i, (enabled, name)) in [
            (false, "incremental-notrace"),
            (true, "incremental-telemetry"),
        ]
        .into_iter()
        .enumerate()
        {
            qtrace::set_enabled(enabled);
            let row = run(&circuit, Engine::Incremental, budget, name);
            if best[i]
                .as_ref()
                .is_none_or(|b| row.iters_per_sec > b.iters_per_sec)
            {
                best[i] = Some(row);
            }
        }
    }
    qtrace::set_enabled(true);
    for row in best.into_iter().flatten() {
        println!(
            "guoq_iter size={:<6} engine={:<14} {:>12.0} iters/s  ({} iters, {} accepted, cost {})",
            row.size, row.engine, row.iters_per_sec, row.iterations, row.accepted, row.final_cost
        );
        rows.push(row);
    }

    // Headline ratios for the acceptance criteria.
    let rate = |size: usize, engine: &str| {
        rows.iter()
            .find(|r| r.size == size && r.engine == engine)
            .map(|r| r.iters_per_sec)
            .unwrap_or(f64::NAN)
    };
    let speedup_1k = rate(1_000, "incremental") / rate(1_000, "clone-rebuild");
    let scaling_ratio = rate(100, "incremental") / rate(10_000, "incremental");
    // Near-flat scaling criterion: 50k-gate throughput stays within 2x of
    // 1k-gate throughput for the incremental engine (ratio ≥ 0.5).
    let ratio_1k_to_50k = rate(50_000, "incremental") / rate(1_000, "incremental");
    // Fraction of iters/sec lost to telemetry at 10k gates (negative =
    // within noise); the observability acceptance bound is ≤ 0.02.
    let telemetry_overhead_10k =
        1.0 - rate(10_000, "incremental-telemetry") / rate(10_000, "incremental-notrace");
    println!("speedup @1k gates: {speedup_1k:.1}x (incremental vs clone-rebuild)");
    println!(
        "incremental scaling 100→10k gates: {scaling_ratio:.2}x slowdown (constant-span edits)"
    );
    println!("incremental iters/sec ratio 1k→50k gates: {ratio_1k_to_50k:.3} (≥0.5 = near-flat)");
    println!(
        "telemetry overhead @10k gates: {:.2}% iters/sec (budget ≤ 2%)",
        telemetry_overhead_10k * 100.0
    );

    let mut json = String::from("{\n  \"benchmark\": \"guoq_iter\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"size\": {}, \"engine\": \"{}\", \"iterations\": {}, \"seconds\": {:.4}, \"iters_per_sec\": {:.1}, \"accepted\": {}, \"final_cost\": {}}}{}",
            r.size,
            r.engine,
            r.iterations,
            r.seconds,
            r.iters_per_sec,
            r.accepted,
            r.final_cost,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    // Per-size scaling summary for the incremental engine: the curve the
    // acceptance criteria read (iters/sec by size, plus the 1k→50k ratio).
    let mut scaling = String::from("{");
    for (i, &size) in sizes.iter().enumerate() {
        let _ = write!(
            scaling,
            "{}\"{}\": {:.1}",
            if i > 0 { ", " } else { "" },
            size,
            rate(size, "incremental")
        );
    }
    scaling.push('}');
    let _ = write!(
        json,
        "  ],\n  \"speedup_1k\": {speedup_1k:.2},\n  \"scaling_100_to_10k\": {scaling_ratio:.3},\n  \"ratio_1k_to_50k\": {ratio_1k_to_50k:.3},\n  \"telemetry_overhead_10k\": {telemetry_overhead_10k:.4},\n  \"incremental_iters_per_sec_by_size\": {scaling}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_guoq_iter.json");
    std::fs::write(path, &json).expect("write BENCH_guoq_iter.json");
    println!("wrote {path}");
}
