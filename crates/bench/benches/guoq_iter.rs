//! End-to-end iteration rate of Algorithm 1 on a realistic workload.

use criterion::{criterion_group, criterion_main, Criterion};
use guoq::cost::TwoQubitCount;
use guoq::{Budget, Guoq, GuoqOpts};
use qcir::{rebase::rebase, GateSet};
use std::hint::black_box;

fn bench_guoq(c: &mut Criterion) {
    let set = GateSet::IbmEagle;
    let circuit = rebase(&workloads::generators::qaoa_maxcut(12, 2, 7), set).expect("rebase");
    let mut group = c.benchmark_group("guoq");
    group.sample_size(10);
    group.bench_function("guoq_200_iters_qaoa12", |b| {
        b.iter(|| {
            let opts = GuoqOpts {
                budget: Budget::Iterations(200),
                eps_total: 1e-6,
                ..Default::default()
            };
            let g = Guoq::rewrite_only(set, opts);
            black_box(g.optimize(&circuit, &TwoQubitCount))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_guoq);
criterion_main!(benches);
