//! Throughput of the fast path: rule matching and full rewrite passes.

use criterion::{criterion_group, criterion_main, Criterion};
use qcir::{rebase::rebase, GateSet};
use std::hint::black_box;

fn bench_rewrite(c: &mut Criterion) {
    let set = GateSet::IbmEagle;
    let circuit = rebase(&workloads::generators::qft(16), set).expect("rebase");
    let rules = qrewrite::rules_for(set);
    let merge = rules.iter().find(|r| r.name() == "rz-merge").unwrap();
    let cancel = rules.iter().find(|r| r.name() == "cx-cancel").unwrap();

    c.bench_function("rule_pass_rz_merge_qft16", |b| {
        b.iter(|| black_box(qrewrite::apply_rule_pass(&circuit, merge, 0)));
    });
    c.bench_function("rule_pass_cx_cancel_qft16", |b| {
        b.iter(|| black_box(qrewrite::apply_rule_pass(&circuit, cancel, 0)));
    });
    c.bench_function("fuse_1q_runs_qft16", |b| {
        b.iter(|| black_box(qrewrite::fusion::fuse_1q_runs(&circuit, set)));
    });
    c.bench_function("fold_rotations_qft16", |b| {
        b.iter(|| black_box(qfold::fold_rotations(&circuit, qfold::EmitStyle::Rz)));
    });
}

criterion_group!(benches, bench_rewrite);
criterion_main!(benches);
