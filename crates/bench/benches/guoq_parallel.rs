//! Throughput of the sharded parallel engine vs the serial incremental
//! engine, across circuit sizes and worker counts.
//!
//! The workload is the same mostly-irredundant repeated tile as
//! `guoq_iter` (sparse cancellable-pair trickle, plateau churn — see
//! [`guoq_bench::tiled_workload`]), so rewrite opportunities occur at
//! a size-independent rate. Every
//! configuration runs `GUOQ-REWRITE` under a fixed wall-clock budget;
//! for `Engine::Sharded` the reported iterations are the *aggregate*
//! across all shard workers, so `iters_per_sec` measures pool
//! throughput. The summary goes to `BENCH_guoq_parallel.json` in the
//! repository root, alongside the host's logical CPU count — the
//! sharded engine's scaling is bounded by physical parallelism, so the
//! worker sweep only separates from the serial baseline when the host
//! grants the pool real cores (on a single-CPU host the interesting
//! quantity is the protocol overhead, i.e. how close the ratio stays
//! to 1.0).
//!
//! Run with: `cargo bench --bench guoq_parallel`

use guoq::cost::TwoQubitCount;
use guoq::{Budget, Engine, Guoq, GuoqOpts};
use guoq_bench::tiled_workload;
use qcir::{Circuit, GateSet};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Row {
    size: usize,
    engine: String,
    workers: usize,
    iterations: u64,
    seconds: f64,
    iters_per_sec: f64,
    accepted: u64,
    cross_home: u64,
    final_cost: f64,
}

fn run(circuit: &Circuit, engine: Engine, budget: Duration) -> Row {
    let opts = GuoqOpts {
        budget: Budget::Time(budget),
        eps_total: 1e-6,
        seed: 0xBEEF,
        engine,
        ..Default::default()
    };
    let g = Guoq::rewrite_only(GateSet::Nam, opts);
    let started = Instant::now();
    let r = g.optimize(circuit, &TwoQubitCount);
    let seconds = started.elapsed().as_secs_f64();
    let (engine_name, workers) = match engine {
        Engine::Incremental => ("incremental".to_string(), 1),
        Engine::CloneRebuild => ("clone-rebuild".to_string(), 1),
        Engine::Sharded { workers } => (format!("sharded-{workers}w"), workers),
    };
    Row {
        size: circuit.len(),
        engine: engine_name,
        workers,
        iterations: r.iterations,
        seconds,
        iters_per_sec: r.iterations as f64 / seconds,
        accepted: r.accepted,
        cross_home: r.worker_stats.iter().map(|s| s.cross_home).sum(),
        final_cost: r.cost,
    }
}

fn main() {
    let budget = Duration::from_millis(
        std::env::var("GUOQ_PAR_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(600),
    );
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sizes = [1_000usize, 10_000, 50_000];
    let worker_counts = [1usize, 2, 4, 8];
    let mut rows: Vec<Row> = Vec::new();
    for &size in &sizes {
        let circuit = tiled_workload(size);
        let mut engines = vec![Engine::Incremental];
        engines.extend(
            worker_counts
                .iter()
                .map(|&w| Engine::Sharded { workers: w }),
        );
        for engine in engines {
            let row = run(&circuit, engine, budget);
            println!(
                "guoq_parallel size={:<6} engine={:<14} {:>12.0} iters/s  ({} iters, {} accepted, {} cross-home, cost {})",
                row.size,
                row.engine,
                row.iters_per_sec,
                row.iterations,
                row.accepted,
                row.cross_home,
                row.final_cost
            );
            rows.push(row);
        }
    }

    // Headline ratio for the acceptance criterion: aggregate sharded
    // throughput at 4 workers over the serial incremental engine.
    let rate = |size: usize, engine: &str| {
        rows.iter()
            .find(|r| r.size == size && r.engine == engine)
            .map(|r| r.iters_per_sec)
            .unwrap_or(f64::NAN)
    };
    let speedup = |size: usize| rate(size, "sharded-4w") / rate(size, "incremental");
    let (speedup_1k_4w, speedup_10k_4w, speedup_50k_4w) =
        (speedup(1_000), speedup(10_000), speedup(50_000));
    for (label, s) in [
        ("1k", speedup_1k_4w),
        ("10k", speedup_10k_4w),
        ("50k", speedup_50k_4w),
    ] {
        println!("aggregate speedup @{label} gates, 4 workers: {s:.2}x");
    }
    println!("host has {host_cpus} CPU(s)");
    if host_cpus < 4 {
        println!(
            "note: host grants fewer CPUs than the 4-worker pool, so these \
             ratios exclude parallel scaling; what remains is the protocol \
             overhead (≈1x at sizes where the serial engine is compute-bound) \
             plus sharding's O(shard) accept costs, which dominate once the \
             serial engine's O(circuit) accept costs become memory-bound \
             (the 50k row)"
        );
    }

    let mut json = String::from("{\n  \"benchmark\": \"guoq_parallel\",\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"budget_ms\": {},", budget.as_millis());
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"size\": {}, \"engine\": \"{}\", \"workers\": {}, \"iterations\": {}, \"seconds\": {:.4}, \"iters_per_sec\": {:.1}, \"accepted\": {}, \"cross_home\": {}, \"final_cost\": {}}}{}",
            r.size,
            r.engine,
            r.workers,
            r.iterations,
            r.seconds,
            r.iters_per_sec,
            r.accepted,
            r.cross_home,
            r.final_cost,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"speedup_1k_4_workers\": {speedup_1k_4w:.3},\n  \"speedup_10k_4_workers\": {speedup_10k_4w:.3},\n  \"speedup_50k_4_workers\": {speedup_50k_4w:.3}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_guoq_parallel.json"
    );
    std::fs::write(path, &json).expect("write BENCH_guoq_parallel.json");
    println!("wrote {path}");
}
