//! Service throughput of the `qserve` job manager: many small
//! iteration-budgeted jobs multiplexed onto a bounded worker budget,
//! submitted through the in-process handle (no socket overhead — this
//! measures admission, scheduling, streaming, and teardown).
//!
//! Rows sweep the worker budget and the job mix (serial vs sharded)
//! and report end-to-end jobs/sec plus the snapshot frames streamed.
//! The summary goes to `BENCH_qserve.json` in the repository root.
//!
//! Run with: `cargo bench --bench qserve`
//! CI smoke: `QSERVE_BENCH_JOBS=4 QSERVE_BENCH_ITERS=300 cargo bench --bench qserve`

use crossbeam_channel::bounded;
use guoq_bench::tiled_workload;
use qcir::qasm;
use qserve::{EngineSel, Frame, JobRequest, Objective, ServeOpts, Server};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Row {
    workers: usize,
    mix: &'static str,
    jobs: usize,
    iters_per_job: u64,
    seconds: f64,
    jobs_per_sec: f64,
    snapshots: u64,
    total_iterations: u64,
}

fn run(workers: usize, mix: &'static str, jobs: usize, iters_per_job: u64) -> Row {
    let server = Server::start(ServeOpts {
        worker_budget: workers,
        max_queued: jobs + 1,
        // The bench measures throughput, not the wall cap: on a loaded
        // host the default 30 s cap can watchdog-cancel a queued-up
        // job mid-bench and invalidate the row.
        max_time_ms: 3_600_000,
        ..Default::default()
    });
    let handle = server.handle();
    let (tx, rx) = bounded(16 * 1024);
    let circuit = tiled_workload(480);
    let line = qasm::to_qasm_line(&circuit);
    let started = Instant::now();
    for j in 0..jobs {
        let engine = match (mix, j % 2) {
            ("serial", _) => EngineSel::Serial,
            (_, 0) => EngineSel::Sharded(2.min(workers)),
            _ => EngineSel::Serial,
        };
        handle.handle_frame(
            Frame::Submit(JobRequest {
                id: j as u64 + 1,
                engine,
                iters: iters_per_job,
                time_ms: 0,
                seed: 0xBEEF + j as u64,
                eps: 1e-8,
                objective: Objective::GateCount,
                qasm: line.clone(),
            }),
            &tx,
        );
    }
    let mut done = 0usize;
    let mut snapshots = 0u64;
    let mut total_iterations = 0u64;
    while done < jobs {
        match rx
            .recv_timeout(Duration::from_secs(600))
            .expect("bench timed out")
        {
            Frame::Done(s) => {
                assert!(!s.cancelled, "bench job cancelled unexpectedly");
                total_iterations += s.iterations;
                done += 1;
            }
            Frame::Snapshot { .. } => snapshots += 1,
            Frame::Error { id, message } => panic!("job {id} rejected: {message}"),
            _ => {}
        }
    }
    let seconds = started.elapsed().as_secs_f64();
    server.shutdown();
    Row {
        workers,
        mix,
        jobs,
        iters_per_job,
        seconds,
        jobs_per_sec: jobs as f64 / seconds,
        snapshots,
        total_iterations,
    }
}

fn main() {
    let jobs: usize = std::env::var("QSERVE_BENCH_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let iters: u64 = std::env::var("QSERVE_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        for mix in ["serial", "mixed"] {
            let row = run(workers, mix, jobs, iters);
            println!(
                "qserve workers={:<2} mix={:<6} {:>6.2} jobs/s  ({} jobs x {} iters, {} snapshots, {:.2}s)",
                row.workers, row.mix, row.jobs_per_sec, row.jobs, row.iters_per_job,
                row.snapshots, row.seconds
            );
            rows.push(row);
        }
    }

    let mut json = String::from("{\n  \"benchmark\": \"qserve\",\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"mix\": \"{}\", \"jobs\": {}, \"iters_per_job\": {}, \"seconds\": {:.4}, \"jobs_per_sec\": {:.3}, \"snapshots\": {}, \"total_iterations\": {}}}{}",
            r.workers, r.mix, r.jobs, r.iters_per_job, r.seconds, r.jobs_per_sec,
            r.snapshots, r.total_iterations,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_qserve.json");
    std::fs::write(path, &json).expect("write BENCH_qserve.json");
    println!("wrote {path}");
}
