//! Service throughput of the `qserve` job manager: many small
//! iteration-budgeted jobs multiplexed onto a bounded worker budget,
//! submitted through the in-process handle (no socket overhead — this
//! measures admission, scheduling, streaming, and teardown).
//!
//! Rows sweep the worker budget and the job mix (serial vs sharded)
//! and report end-to-end jobs/sec plus the snapshot frames streamed.
//! The summary goes to `BENCH_qserve.json` in the repository root.
//!
//! A second section measures the **wire cost of the improvement
//! stream**: mean bytes per improvement for a protocol-v2 session
//! (DELTA frames + periodic checkpoints) against what the same
//! improvements cost as v1 full-QASM SNAPSHOT frames, per circuit
//! size — the `delta_rows` of `BENCH_qserve.json` track the snapshot
//! wire savings alongside jobs/sec.
//!
//! Run with: `cargo bench --bench qserve`
//! CI smoke: `QSERVE_BENCH_JOBS=4 QSERVE_BENCH_ITERS=300 cargo bench --bench qserve`

use crossbeam_channel::bounded;
use guoq_bench::tiled_workload;
use qcir::qasm;
use qserve::{EngineSel, Frame, JobRequest, Objective, ServeOpts, Server};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Row {
    workers: usize,
    mix: &'static str,
    jobs: usize,
    iters_per_job: u64,
    seconds: f64,
    jobs_per_sec: f64,
    snapshots: u64,
    total_iterations: u64,
}

fn run(workers: usize, mix: &'static str, jobs: usize, iters_per_job: u64) -> Row {
    let server = Server::start(ServeOpts {
        worker_budget: workers,
        max_queued: jobs + 1,
        // The bench measures throughput, not the wall cap: on a loaded
        // host the default 30 s cap can watchdog-cancel a queued-up
        // job mid-bench and invalidate the row.
        max_time_ms: 3_600_000,
        ..Default::default()
    });
    let handle = server.handle();
    let (tx, rx) = bounded(16 * 1024);
    let circuit = tiled_workload(480);
    let line = qasm::to_qasm_line(&circuit);
    let started = Instant::now();
    for j in 0..jobs {
        let engine = match (mix, j % 2) {
            ("serial", _) => EngineSel::Serial,
            (_, 0) => EngineSel::Sharded(2.min(workers)),
            _ => EngineSel::Serial,
        };
        handle.handle_frame(
            Frame::Submit(JobRequest {
                id: j as u64 + 1,
                engine,
                iters: iters_per_job,
                time_ms: 0,
                seed: 0xBEEF + j as u64,
                eps: 1e-8,
                objective: Objective::GateCount,
                overwrite: false,
                certify: false,
                qasm: line.clone(),
            }),
            &tx,
        );
    }
    let mut done = 0usize;
    let mut snapshots = 0u64;
    let mut total_iterations = 0u64;
    while done < jobs {
        match rx
            .recv_timeout(Duration::from_secs(600))
            .expect("bench timed out")
        {
            Frame::Done(s) => {
                assert!(!s.cancelled, "bench job cancelled unexpectedly");
                total_iterations += s.iterations;
                done += 1;
            }
            Frame::Snapshot { .. } => snapshots += 1,
            Frame::Error { id, message, .. } => panic!("job {id} rejected: {message}"),
            _ => {}
        }
    }
    let seconds = started.elapsed().as_secs_f64();
    server.shutdown();
    Row {
        workers,
        mix,
        jobs,
        iters_per_job,
        seconds,
        jobs_per_sec: jobs as f64 / seconds,
        snapshots,
        total_iterations,
    }
}

struct DeltaRow {
    gates: usize,
    improvements: u64,
    /// Mean bytes per improvement as v2 actually ships it (DELTA
    /// frames, plus the periodic full-snapshot checkpoints — honest
    /// accounting, checkpoints included).
    mean_v2_bytes: f64,
    /// Mean bytes the same improvements would cost as v1 full-QASM
    /// SNAPSHOT frames.
    mean_full_bytes: f64,
    savings_x: f64,
}

/// One serial v2 job at the given circuit size; reconstructs the
/// stream client-side to price each improvement in both protocols.
fn run_delta_row(gates: usize, iters: u64) -> DeltaRow {
    let server = Server::start(ServeOpts {
        worker_budget: 1,
        max_time_ms: 3_600_000,
        cache_gates: 0,
        ..Default::default()
    });
    let handle = server.handle();
    let (tx, rx) = bounded(64 * 1024);
    handle.handle_frame(Frame::Hello { version: 2 }, &tx);
    let circuit = tiled_workload(gates);
    handle.handle_frame(
        Frame::Submit(JobRequest {
            id: 1,
            engine: EngineSel::Serial,
            iters,
            time_ms: 0,
            seed: 0xD00D,
            eps: 1e-8,
            objective: Objective::GateCount,
            overwrite: false,
            certify: false,
            qasm: qasm::to_qasm_line(&circuit),
        }),
        &tx,
    );
    let mut current: Option<qcir::Circuit> = None;
    let mut improvements = 0u64;
    let mut v2_bytes = 0u64;
    let mut full_bytes = 0u64;
    let mut snapshots_seen = 0u64;
    loop {
        let frame = rx
            .recv_timeout(Duration::from_secs(600))
            .expect("delta bench timed out");
        match &frame {
            Frame::Snapshot { qasm, .. } => {
                snapshots_seen += 1;
                current = Some(qasm::from_qasm(qasm).expect("snapshot qasm"));
                if snapshots_seen > 1 {
                    // A checkpoint improvement: v2 paid the full frame.
                    improvements += 1;
                    let len = frame.encode().len() as u64;
                    v2_bytes += len;
                    full_bytes += len;
                }
            }
            Frame::Delta {
                id,
                cost,
                epsilon,
                iterations,
                seconds,
                delta,
                ..
            } => {
                improvements += 1;
                v2_bytes += frame.encode().len() as u64;
                let d = qcir::CircuitDelta::decode(delta).expect("decodable");
                let cur = current.as_mut().expect("delta before checkpoint");
                d.apply(cur).expect("delta chains");
                // Price the same improvement as a v1 full snapshot.
                full_bytes += Frame::Snapshot {
                    id: *id,
                    cost: *cost,
                    epsilon: *epsilon,
                    iterations: *iterations,
                    seconds: *seconds,
                    qasm: qasm::to_qasm_line(cur),
                }
                .encode()
                .len() as u64;
            }
            Frame::Done(_) => break,
            Frame::Error { id, message, .. } => panic!("job {id} rejected: {message}"),
            _ => {}
        }
    }
    server.shutdown();
    let n = improvements.max(1) as f64;
    let mean_v2 = v2_bytes as f64 / n;
    let mean_full = full_bytes as f64 / n;
    DeltaRow {
        gates,
        improvements,
        mean_v2_bytes: mean_v2,
        mean_full_bytes: mean_full,
        savings_x: if mean_v2 > 0.0 {
            mean_full / mean_v2
        } else {
            0.0
        },
    }
}

fn main() {
    let jobs: usize = std::env::var("QSERVE_BENCH_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let iters: u64 = std::env::var("QSERVE_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        for mix in ["serial", "mixed"] {
            let row = run(workers, mix, jobs, iters);
            println!(
                "qserve workers={:<2} mix={:<6} {:>6.2} jobs/s  ({} jobs x {} iters, {} snapshots, {:.2}s)",
                row.workers, row.mix, row.jobs_per_sec, row.jobs, row.iters_per_job,
                row.snapshots, row.seconds
            );
            rows.push(row);
        }
    }

    // Wire-cost section: bytes per improvement, delta stream vs full
    // QASM snapshots, per circuit size.
    let mut delta_rows = Vec::new();
    for gates in [1_000usize, 10_000] {
        let row = run_delta_row(gates, iters.max(1_000));
        println!(
            "qserve delta {:>6} gates: {:>4} improvements, {:>9.1} B/improvement (v2) vs {:>11.1} B (full) = {:.1}x smaller",
            row.gates, row.improvements, row.mean_v2_bytes, row.mean_full_bytes, row.savings_x
        );
        delta_rows.push(row);
    }

    let mut json = String::from("{\n  \"benchmark\": \"qserve\",\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"mix\": \"{}\", \"jobs\": {}, \"iters_per_job\": {}, \"seconds\": {:.4}, \"jobs_per_sec\": {:.3}, \"snapshots\": {}, \"total_iterations\": {}}}{}",
            r.workers, r.mix, r.jobs, r.iters_per_job, r.seconds, r.jobs_per_sec,
            r.snapshots, r.total_iterations,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"delta_rows\": [\n");
    for (i, r) in delta_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"gates\": {}, \"improvements\": {}, \"mean_v2_bytes\": {:.1}, \"mean_full_qasm_bytes\": {:.1}, \"savings_x\": {:.2}}}{}",
            r.gates, r.improvements, r.mean_v2_bytes, r.mean_full_bytes, r.savings_x,
            if i + 1 == delta_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_qserve.json");
    std::fs::write(path, &json).expect("write BENCH_qserve.json");
    println!("wrote {path}");
}
