//! Fleet-mode throughput and failover overhead: real `qserve` worker
//! processes under the `qserve::fleet` router, measured end to end
//! (spawn, placement, streaming, journalling, cache snapshots).
//!
//! Three runs over the same repeat-mix batch (every job the same
//! circuit + seed — recurring service traffic, the regime the
//! persistent cache tier exists for):
//!
//! * `cold`  — fresh journal dir, empty caches,
//! * `warm`  — the fleet restarted on the cold run's journal dir, so
//!   every worker warm-loads its cache snapshot before serving,
//! * `kill-at-50%` — fresh dir again, with one worker kill -9'd at
//!   half the no-fault wall time; its jobs fail over via the shared
//!   journals.
//!
//! Headlines: warm-vs-cold jobs/sec speedup, and the failover overhead
//! (kill run wall time over the no-fault wall time, minus one — the
//! ISSUE budget is <20%). The summary goes to `BENCH_qfleet.json` in
//! the repository root.
//!
//! The workers are separate processes: build the `qserve` binary first
//! (`cargo build --release -p qserve`) or point `QFLEET_WORKER_BIN` at
//! one.
//!
//! Run with: `cargo bench --bench qfleet`
//! CI smoke: `QFLEET_BENCH_JOBS=6 QFLEET_BENCH_ITERS=400 cargo bench --bench qfleet`

use guoq_bench::tiled_workload;
use qcir::qasm;
use qserve::fleet::{Fleet, FleetOpts};
use qserve::{EngineSel, Frame, JobRequest, Objective};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const WORKERS: usize = 3;

/// The qserve worker binary: `QFLEET_WORKER_BIN`, else the build tree
/// next to this bench executable (`target/<profile>/qserve`).
fn worker_bin() -> PathBuf {
    if let Ok(p) = std::env::var("QFLEET_WORKER_BIN") {
        return p.into();
    }
    let mut p = std::env::current_exe().expect("bench has a path");
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    p.push(format!("qserve{}", std::env::consts::EXE_SUFFIX));
    p
}

fn fleet_opts(dir: &std::path::Path, bin: &std::path::Path) -> FleetOpts {
    FleetOpts {
        workers: WORKERS,
        jobs_per_worker: 2,
        journal_dir: dir.to_path_buf(),
        worker_binary: Some(bin.to_path_buf()),
        // The bench measures throughput, not the wall cap.
        worker_args: vec!["--max-time-ms".into(), "3600000".into()],
        heartbeat_ms: 200,
        stall_beats: 5,
        retry_max: 6,
        retry_backoff_ms: 50,
        job_timeout_ms: 600_000,
        cache_gates: 65_536,
        snapshot_flush_ms: 300,
        seed: 0xF1EE7,
        ..Default::default()
    }
}

struct Row {
    name: &'static str,
    jobs: usize,
    iters_per_job: u64,
    seconds: f64,
    jobs_per_sec: f64,
}

/// Runs one repeat-mix batch through `fleet`; `kill_after` fires a
/// SIGKILL at the first live worker that long into the run.
fn run_batch(
    fleet: &Fleet,
    name: &'static str,
    jobs: usize,
    iters: u64,
    line: &str,
    kill_after: Option<Duration>,
) -> Row {
    let started = Instant::now();
    let tickets: Vec<_> = (0..jobs)
        .map(|_| {
            fleet.submit(JobRequest {
                id: 0, // the router allocates the real id
                engine: EngineSel::Serial,
                iters,
                time_ms: 0,
                seed: 0xBEEF,
                eps: 1e-8,
                objective: Objective::GateCount,
                overwrite: false,
                certify: false,
                qasm: line.to_string(),
            })
        })
        .collect();
    std::thread::scope(|s| {
        if let Some(after) = kill_after {
            // Workers spawn asynchronously inside the router thread, so
            // poll until one is live rather than snapshotting pids now.
            s.spawn(move || {
                std::thread::sleep(after);
                let deadline = Instant::now() + Duration::from_secs(30);
                let victim = loop {
                    if let Some(pid) = fleet.worker_pids().into_iter().flatten().next() {
                        break pid;
                    }
                    assert!(Instant::now() < deadline, "no live worker to kill");
                    std::thread::sleep(Duration::from_millis(20));
                };
                let ok = std::process::Command::new("kill")
                    .args(["-9", &victim.to_string()])
                    .status()
                    .map(|st| st.success())
                    .unwrap_or(false);
                assert!(ok, "kill -9 {victim} failed");
                eprintln!("qfleet bench: killed worker pid {victim}");
            });
        }
        for (id, rx) in &tickets {
            loop {
                match rx
                    .recv_timeout(Duration::from_secs(600))
                    .expect("bench timed out")
                {
                    Frame::Done(s) => {
                        assert!(!s.cancelled, "job {id} cancelled unexpectedly");
                        break;
                    }
                    Frame::Error { code, message, .. } => {
                        panic!("job {id} failed: {code}: {message}")
                    }
                    _ => {}
                }
            }
        }
    });
    let seconds = started.elapsed().as_secs_f64();
    Row {
        name,
        jobs,
        iters_per_job: iters,
        seconds,
        jobs_per_sec: jobs as f64 / seconds,
    }
}

fn main() {
    let jobs: usize = std::env::var("QFLEET_BENCH_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let iters: u64 = std::env::var("QFLEET_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_500);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let bin = worker_bin();
    if !bin.exists() {
        eprintln!(
            "qfleet bench: no qserve worker binary at {} — \
             run `cargo build --release -p qserve` first or set QFLEET_WORKER_BIN",
            bin.display()
        );
        std::process::exit(2);
    }
    let circuit = tiled_workload(480);
    let line = qasm::to_qasm_line(&circuit);
    let dir = std::env::temp_dir().join(format!("qfleet-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold: fresh journals, empty caches.
    let fleet = Fleet::start(fleet_opts(&dir, &bin)).expect("fleet starts");
    let cold = run_batch(&fleet, "cold", jobs, iters, &line, None);
    fleet.shutdown(); // workers flush their cache snapshots on the way down
    println!(
        "qfleet {:>11}: {:>6.2} jobs/s  ({} jobs x {} iters, {:.2}s)",
        cold.name, cold.jobs_per_sec, cold.jobs, cold.iters_per_job, cold.seconds
    );

    // Warm: the same fleet restarted on the same dir — every worker
    // warm-loads its snapshot, so resynthesis consults hit from disk.
    let fleet = Fleet::start(fleet_opts(&dir, &bin)).expect("fleet restarts");
    let warm = run_batch(&fleet, "warm", jobs, iters, &line, None);
    fleet.shutdown();
    println!(
        "qfleet {:>11}: {:>6.2} jobs/s  ({} jobs x {} iters, {:.2}s)",
        warm.name, warm.jobs_per_sec, warm.jobs, warm.iters_per_job, warm.seconds
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Fault: fresh dir again, one worker SIGKILLed at half the
    // no-fault wall time; every job must still complete (failover via
    // the shared journals), and the wall-time overhead is the price.
    let fault_dir = std::env::temp_dir().join(format!("qfleet-bench-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fault_dir);
    let fleet = Fleet::start(fleet_opts(&fault_dir, &bin)).expect("fleet starts");
    let kill_at = Duration::from_secs_f64(cold.seconds * 0.5);
    let fault = run_batch(&fleet, "kill-at-50%", jobs, iters, &line, Some(kill_at));
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&fault_dir);
    println!(
        "qfleet {:>11}: {:>6.2} jobs/s  ({} jobs x {} iters, {:.2}s)",
        fault.name, fault.jobs_per_sec, fault.jobs, fault.iters_per_job, fault.seconds
    );

    let warm_speedup = warm.jobs_per_sec / cold.jobs_per_sec.max(1e-9);
    let failover_overhead = fault.seconds / cold.seconds.max(1e-9) - 1.0;
    println!(
        "qfleet headline: warm restart {warm_speedup:.2}x jobs/s vs cold, \
         kill-at-50% overhead {:+.1}% wall time (budget <20%)",
        100.0 * failover_overhead
    );

    let rows = [cold, warm, fault];
    let mut json = String::from("{\n  \"benchmark\": \"qfleet\",\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    let _ = writeln!(
        json,
        "  \"headline\": {{\"warm_speedup_vs_cold\": {warm_speedup:.3}, \"failover_overhead\": {failover_overhead:.4}}},"
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"run\": \"{}\", \"jobs\": {}, \"iters_per_job\": {}, \"seconds\": {:.4}, \"jobs_per_sec\": {:.3}}}{}",
            r.name,
            r.jobs,
            r.iters_per_job,
            r.seconds,
            r.jobs_per_sec,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_qfleet.json");
    std::fs::write(path, &json).expect("write BENCH_qfleet.json");
    println!("wrote {path}");
}
