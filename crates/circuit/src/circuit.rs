//! The circuit IR: a sequence of gate applications in a slot arena.
//!
//! A [`Circuit`] is an ordered list of [`Instruction`]s over `n` qubits.
//! The order is one valid topological order of the circuit DAG; the DAG
//! structure itself lives in per-wire predecessor/successor links
//! embedded in the arena (see [`Circuit::next_on_wire`] and friends; a
//! standalone snapshot form also exists as [`crate::dag::WireDag`]).
//!
//! # Storage: the slot arena
//!
//! Internally the instruction list lives in a structure-of-arrays *slot
//! arena*: gate kinds, packed operands, and parameter slots are separate
//! contiguous arrays indexed by **slot id**. Slots obey one invariant —
//! ascending slot order is program order — and are *stable*: removing an
//! instruction tombstones its slot (O(1), no memmove, no index
//! invalidation), and insertions claim dead slots between their logical
//! neighbours. A Fenwick tree over the liveness bitset converts between
//! logical position and slot id in O(log n), so the public,
//! position-indexed API is unchanged while local edits cost
//! O(edit-span · log n) instead of O(circuit).
//!
//! Per-wire predecessor/successor links are threaded through the slots,
//! so wire-ordered walks never require a positional rebuild. The compact
//! positional view served by [`Circuit::instructions`] is materialized
//! lazily and cached until the next mutation.

use crate::gate::{Gate, GateKind};
use qmath::statevec::{apply_gate_slice, zero_state};
use qmath::{Mat, C64};
use std::fmt;
use std::ops::Range;
use std::sync::OnceLock;

/// A qubit index within a circuit.
pub type Qubit = u32;

/// A single gate application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// The gate being applied.
    pub gate: Gate,
    qs: [Qubit; 3],
}

impl Instruction {
    /// Creates an instruction from a gate and its operand qubits.
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len()` differs from the gate arity or if a qubit
    /// repeats.
    pub fn new(gate: Gate, qubits: &[Qubit]) -> Self {
        assert_eq!(
            qubits.len(),
            gate.arity(),
            "gate {gate} expects {} operands, got {}",
            gate.arity(),
            qubits.len()
        );
        for (i, &q) in qubits.iter().enumerate() {
            assert!(
                !qubits[..i].contains(&q),
                "repeated operand qubit {q} for gate {gate}"
            );
        }
        let mut qs = [0; 3];
        qs[..qubits.len()].copy_from_slice(qubits);
        Instruction { gate, qs }
    }

    /// The operand qubits, in gate order (controls first for `CX`/`CCX`).
    #[inline]
    pub fn qubits(&self) -> &[Qubit] {
        &self.qs[..self.gate.arity()]
    }

    /// True if the instruction acts on qubit `q`.
    #[inline]
    pub fn acts_on(&self, q: Qubit) -> bool {
        self.qubits().contains(&q)
    }

    /// True if the instruction shares at least one qubit with `other`.
    pub fn overlaps(&self, other: &Instruction) -> bool {
        self.qubits().iter().any(|q| other.acts_on(*q))
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qs: Vec<String> = self.qubits().iter().map(|q| format!("q{q}")).collect();
        write!(f, "{} {}", self.gate, qs.join(","))
    }
}

/// Cached gate statistics of a circuit, maintained incrementally.
///
/// Every mutation of a [`Circuit`] (push, patch, revert) updates these
/// counters, so the hot-loop metrics ([`Circuit::two_qubit_count`],
/// [`Circuit::t_count`], [`Circuit::kind_count`]) are O(1) instead of a
/// scan over the instruction list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCounts {
    by_kind: [u32; GateKind::COUNT],
    multi_qubit: u32,
    t_family: u32,
}

impl GateCounts {
    #[inline]
    pub(crate) fn add(&mut self, ins: &Instruction) {
        self.by_kind[ins.gate.kind() as usize] += 1;
        if ins.gate.arity() >= 2 {
            self.multi_qubit += 1;
        }
        if matches!(ins.gate, Gate::T | Gate::Tdg) {
            self.t_family += 1;
        }
    }

    #[inline]
    pub(crate) fn remove(&mut self, ins: &Instruction) {
        self.by_kind[ins.gate.kind() as usize] -= 1;
        if ins.gate.arity() >= 2 {
            self.multi_qubit -= 1;
        }
        if matches!(ins.gate, Gate::T | Gate::Tdg) {
            self.t_family -= 1;
        }
    }

    /// Number of gates of `kind`.
    #[inline]
    pub fn of_kind(&self, kind: GateKind) -> usize {
        self.by_kind[kind as usize] as usize
    }

    /// Number of gates acting on two or more qubits.
    #[inline]
    pub fn multi_qubit(&self) -> usize {
        self.multi_qubit as usize
    }

    /// Number of `T`/`T†` gates.
    #[inline]
    pub fn t_family(&self) -> usize {
        self.t_family as usize
    }
}

/// Sentinel for "no link" in the packed slot/wire index arrays.
const NONE: u32 = u32::MAX;

/// The structure-of-arrays slot store behind [`Circuit`].
///
/// Invariant: ascending **slot id** order is program order, and a slot id
/// never changes while its instruction is alive. `fen` is a Fenwick tree
/// over the liveness bitset, giving O(log n) rank (slot → logical
/// position) and select (logical position → slot).
#[derive(Debug, Clone)]
struct Arena {
    /// Gate kind per slot.
    kinds: Vec<GateKind>,
    /// Gate parameters per slot, zero-padded to three.
    params: Vec<[f64; 3]>,
    /// Operand qubits per slot, zero-padded to three.
    qs: Vec<[Qubit; 3]>,
    /// Liveness bitset, one bit per slot.
    alive: Vec<u64>,
    /// `next[s][pos]`: slot of the next instruction on the wire used by
    /// operand `pos` of slot `s` (`NONE` at the wire tail).
    next: Vec<[u32; 3]>,
    /// `prev[s][pos]`: same, for the previous instruction on that wire.
    prev: Vec<[u32; 3]>,
    /// First live slot on each qubit wire.
    first: Vec<u32>,
    /// Last live slot on each qubit wire.
    last: Vec<u32>,
    /// Fenwick tree over `alive` (1-indexed, length `capacity + 1`).
    fen: Vec<u32>,
    /// Number of live slots.
    live: usize,
}

impl Arena {
    fn new(n_qubits: usize) -> Self {
        Arena {
            kinds: Vec::new(),
            params: Vec::new(),
            qs: Vec::new(),
            alive: Vec::new(),
            next: Vec::new(),
            prev: Vec::new(),
            first: vec![NONE; n_qubits],
            last: vec![NONE; n_qubits],
            fen: vec![0],
            live: 0,
        }
    }

    /// Total number of slots, live or dead.
    #[inline]
    fn capacity(&self) -> usize {
        self.kinds.len()
    }

    #[inline]
    fn is_live(&self, s: usize) -> bool {
        self.alive[s >> 6] >> (s & 63) & 1 == 1
    }

    #[inline]
    fn arity(&self, s: usize) -> usize {
        self.kinds[s].arity()
    }

    /// Reconstructs the instruction stored in live slot `s`.
    fn instruction_at(&self, s: usize) -> Instruction {
        let kind = self.kinds[s];
        let gate = kind
            .with_params(&self.params[s][..kind.num_params()])
            .expect("arena slot holds params of its own kind");
        Instruction {
            gate,
            qs: self.qs[s],
        }
    }

    /// Live slots in ascending (= program) order.
    fn live_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.alive.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some((w << 6) | b)
            })
        })
    }

    /// The compact positional instruction list.
    fn materialize(&self) -> Vec<Instruction> {
        let mut out = Vec::with_capacity(self.live);
        for s in self.live_slots() {
            out.push(self.instruction_at(s));
        }
        out
    }

    /// Structural equality of the live content, without materializing.
    fn content_eq(&self, other: &Arena) -> bool {
        if self.live != other.live {
            return false;
        }
        let mut ita = self.live_slots();
        let mut itb = other.live_slots();
        for _ in 0..self.live {
            let (a, b) = (
                ita.next().expect("live count out of sync"),
                itb.next().expect("live count out of sync"),
            );
            if self.kinds[a] != other.kinds[b]
                || self.params[a] != other.params[b]
                || self.qs[a] != other.qs[b]
            {
                return false;
            }
        }
        true
    }

    // ---- Fenwick rank/select -----------------------------------------

    fn fen_add(&mut self, slot: usize, delta: i32) {
        let n = self.fen.len();
        let mut i = slot + 1;
        while i < n {
            self.fen[i] = (self.fen[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Number of live slots with slot id `< i`.
    fn prefix(&self, mut i: usize) -> usize {
        let mut s = 0usize;
        while i > 0 {
            s += self.fen[i] as usize;
            i &= i - 1;
        }
        s
    }

    /// Logical position of live slot `s`.
    #[inline]
    fn rank(&self, s: usize) -> usize {
        self.prefix(s)
    }

    /// Slot id of the live slot at logical position `k`.
    fn select(&self, k: usize) -> usize {
        debug_assert!(k < self.live, "select past the live count");
        let cap = self.fen.len() - 1;
        let mut pos = 0usize;
        let mut rem = (k + 1) as u32;
        let mut mask = if cap == 0 {
            0
        } else {
            1usize << (usize::BITS - 1 - cap.leading_zeros())
        };
        while mask > 0 {
            let npos = pos + mask;
            if npos <= cap && self.fen[npos] < rem {
                rem -= self.fen[npos];
                pos = npos;
            }
            mask >>= 1;
        }
        debug_assert!(pos < cap && self.is_live(pos));
        pos
    }

    /// Next live slot after `s` (caller guarantees one exists).
    fn next_live_after(&self, s: usize) -> usize {
        let mut t = s + 1;
        while !self.is_live(t) {
            t += 1;
        }
        t
    }

    // ---- wire links ---------------------------------------------------

    /// Operand position of wire `q` within live slot `s`.
    fn wire_pos(&self, s: usize, q: Qubit) -> usize {
        self.qs[s][..self.arity(s)]
            .iter()
            .position(|&x| x == q)
            .expect("arena wire links out of sync")
    }

    #[inline]
    fn acts_on(&self, s: usize, q: Qubit) -> bool {
        self.qs[s][..self.arity(s)].contains(&q)
    }

    /// Threads slot `s` (operand `pos`, wire `q`) into the wire list.
    fn link(&mut self, s: usize, pos: usize, q: Qubit) {
        let qi = q as usize;
        let lastq = self.last[qi];
        if lastq == NONE || (lastq as usize) < s {
            // Appending to the wire: O(1) via the wire tail.
            self.prev[s][pos] = lastq;
            if lastq == NONE {
                self.first[qi] = s as u32;
            } else {
                let lp = lastq as usize;
                let ls = self.wire_pos(lp, q);
                self.next[lp][ls] = s as u32;
            }
            self.last[qi] = s as u32;
            return;
        }
        // Mid-wire insertion: the predecessor is the nearest live slot
        // below `s` acting on `q` (slot order is program order).
        let mut t = s;
        let pred = loop {
            if t == 0 {
                break None;
            }
            t -= 1;
            if self.is_live(t) && self.acts_on(t, q) {
                break Some(t);
            }
        };
        match pred {
            Some(p) => {
                let ps = self.wire_pos(p, q);
                let nx = self.next[p][ps];
                debug_assert_ne!(nx, NONE, "wire tail must be past s here");
                self.next[p][ps] = s as u32;
                self.prev[s][pos] = p as u32;
                self.next[s][pos] = nx;
                let np = nx as usize;
                let ns = self.wire_pos(np, q);
                self.prev[np][ns] = s as u32;
            }
            None => {
                let of = self.first[qi];
                debug_assert_ne!(of, NONE, "wire tail must be past s here");
                self.first[qi] = s as u32;
                self.next[s][pos] = of;
                let np = of as usize;
                let ns = self.wire_pos(np, q);
                self.prev[np][ns] = s as u32;
            }
        }
    }

    // ---- mutation -----------------------------------------------------

    /// Tombstones live slot `s`: unlink every wire, clear liveness.
    /// O(1) — no other slot moves or is renumbered.
    fn kill(&mut self, s: usize) {
        debug_assert!(self.is_live(s));
        let arity = self.arity(s);
        for pos in 0..arity {
            let q = self.qs[s][pos];
            let qi = q as usize;
            let p = self.prev[s][pos];
            let nx = self.next[s][pos];
            if p == NONE {
                self.first[qi] = nx;
            } else {
                let pp = p as usize;
                let ps = self.wire_pos(pp, q);
                self.next[pp][ps] = nx;
            }
            if nx == NONE {
                self.last[qi] = p;
            } else {
                let np = nx as usize;
                let ns = self.wire_pos(np, q);
                self.prev[np][ns] = p;
            }
        }
        self.alive[s >> 6] &= !(1u64 << (s & 63));
        self.fen_add(s, -1);
        self.live -= 1;
    }

    /// Claims dead slot `s` for `ins` and threads its wires.
    fn fill(&mut self, s: usize, ins: &Instruction) {
        debug_assert!(!self.is_live(s));
        self.kinds[s] = ins.gate.kind();
        let mut ps = [0.0f64; 3];
        let prm = ins.gate.params();
        ps[..prm.len()].copy_from_slice(&prm);
        self.params[s] = ps;
        self.qs[s] = ins.qs;
        self.next[s] = [NONE; 3];
        self.prev[s] = [NONE; 3];
        self.alive[s >> 6] |= 1 << (s & 63);
        self.fen_add(s, 1);
        self.live += 1;
        for (pos, &q) in ins.qubits().iter().enumerate() {
            self.link(s, pos, q);
        }
    }

    /// Appends one fresh dead slot, growing every array.
    fn push_back_slot(&mut self) -> usize {
        let s = self.capacity();
        self.kinds.push(GateKind::X);
        self.params.push([0.0; 3]);
        self.qs.push([0; 3]);
        self.next.push([NONE; 3]);
        self.prev.push([NONE; 3]);
        if s & 63 == 0 {
            self.alive.push(0);
        }
        // Fenwick append: the new node covers `(p - lowbit(p), p]`.
        let p = self.fen.len();
        let lb = p & p.wrapping_neg();
        let v = (self.live - self.prefix(p - lb)) as u32;
        self.fen.push(v);
        s
    }

    /// Inserts `instrs` (in order) immediately before live slot `anchor`
    /// (`None` = append), claiming dead slots between the anchor and its
    /// live predecessor. Falls back to a compact rebuild when the gap is
    /// too small — which only happens for edits that *grow* the circuit
    /// beyond the slots the same edit freed (no rewrite rule does).
    fn insert_before(&mut self, anchor: Option<usize>, instrs: &[Instruction]) {
        if instrs.is_empty() {
            return;
        }
        match anchor {
            Some(a) => {
                let r = self.rank(a);
                let gap_lo = if r == 0 { 0 } else { self.select(r - 1) + 1 };
                if a - gap_lo < instrs.len() {
                    let mut list = self.materialize();
                    list.splice(r..r, instrs.iter().copied());
                    self.rebuild(&list);
                    return;
                }
                for (i, ins) in instrs.iter().enumerate() {
                    self.fill(gap_lo + i, ins);
                }
            }
            None => {
                let mut s = if self.live == 0 {
                    0
                } else {
                    self.select(self.live - 1) + 1
                };
                for ins in instrs {
                    if s >= self.capacity() {
                        s = self.push_back_slot();
                    }
                    self.fill(s, ins);
                    s += 1;
                }
            }
        }
    }

    /// Rebuilds the arena compactly from a positional instruction list.
    fn rebuild(&mut self, instrs: &[Instruction]) {
        let n = instrs.len();
        let nq = self.first.len();
        self.kinds.clear();
        self.params.clear();
        self.qs.clear();
        self.next.clear();
        self.prev.clear();
        self.kinds.reserve(n);
        self.params.reserve(n);
        self.qs.reserve(n);
        self.next.reserve(n);
        self.prev.reserve(n);
        self.alive.clear();
        self.alive.resize(n.div_ceil(64), !0u64);
        if n & 63 != 0 {
            if let Some(w) = self.alive.last_mut() {
                *w = (1u64 << (n & 63)) - 1;
            }
        }
        self.first.clear();
        self.first.resize(nq, NONE);
        self.last.clear();
        self.last.resize(nq, NONE);
        self.fen = vec![0u32; n + 1];
        for i in 1..=n {
            self.fen[i] += 1;
            let j = i + (i & i.wrapping_neg());
            if j <= n {
                self.fen[j] += self.fen[i];
            }
        }
        self.live = n;
        let mut last_slot = vec![0u8; nq];
        for (i, ins) in instrs.iter().enumerate() {
            self.kinds.push(ins.gate.kind());
            let mut ps = [0.0f64; 3];
            let prm = ins.gate.params();
            ps[..prm.len()].copy_from_slice(&prm);
            self.params.push(ps);
            self.qs.push(ins.qs);
            self.next.push([NONE; 3]);
            self.prev.push([NONE; 3]);
            for (slot, &q) in ins.qubits().iter().enumerate() {
                let qi = q as usize;
                let p = self.last[qi];
                if p != NONE {
                    self.prev[i][slot] = p;
                    self.next[p as usize][last_slot[qi] as usize] = i as u32;
                } else {
                    self.first[qi] = i as u32;
                }
                self.last[qi] = i as u32;
                last_slot[qi] = slot as u8;
            }
        }
    }

    /// Compacts the arena once tombstones dominate, bounding memory and
    /// per-walk overhead at 2× the live size.
    fn maybe_compact(&mut self) {
        if self.capacity() > 64 && self.live * 2 < self.capacity() {
            let list = self.materialize();
            self.rebuild(&list);
        }
    }
}

/// Word-at-a-time iterator over live slots from a starting slot
/// (inclusive) — the workhorse behind [`Circuit::ids_from`] and
/// [`Circuit::next_id`]. Each step is O(1) amortized: dead slots are
/// skipped 64 at a time.
struct LiveSlots<'a> {
    alive: &'a [u64],
    word: usize,
    bits: u64,
}

impl<'a> LiveSlots<'a> {
    fn from_slot(alive: &'a [u64], start: usize) -> Self {
        let word = start >> 6;
        let bits = if word < alive.len() {
            alive[word] & (!0u64 << (start & 63))
        } else {
            0
        };
        LiveSlots { alive, word, bits }
    }
}

impl Iterator for LiveSlots<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.word += 1;
            if self.word >= self.alive.len() {
                return None;
            }
            self.bits = self.alive[self.word];
        }
        let b = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some((self.word << 6) | b)
    }
}

/// A quantum circuit: `n` qubits and an ordered gate list.
///
/// ```
/// use qcir::{Circuit, Gate};
/// let mut c = Circuit::new(2);
/// c.push(Gate::H, &[0]);
/// c.push(Gate::Cx, &[0, 1]);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.two_qubit_count(), 1);
/// ```
#[derive(Debug)]
pub struct Circuit {
    n_qubits: usize,
    arena: Arena,
    counts: GateCounts,
    /// Lazily materialized compact view; invalidated on every mutation.
    cache: OnceLock<Vec<Instruction>>,
}

impl Clone for Circuit {
    fn clone(&self) -> Self {
        Circuit {
            n_qubits: self.n_qubits,
            arena: self.arena.clone(),
            counts: self.counts,
            cache: OnceLock::new(),
        }
    }
}

impl Default for Circuit {
    fn default() -> Self {
        Circuit::new(0)
    }
}

/// Equality is structural: same qubit count, same instruction list (the
/// cached counts are a pure function of the instructions).
impl PartialEq for Circuit {
    fn eq(&self, other: &Self) -> bool {
        self.n_qubits == other.n_qubits && self.arena.content_eq(&other.arena)
    }
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            arena: Arena::new(n_qubits),
            counts: GateCounts::default(),
            cache: OnceLock::new(),
        }
    }

    /// Creates a circuit from parts.
    ///
    /// # Panics
    ///
    /// Panics if any instruction references a qubit `≥ n_qubits`.
    pub fn from_instructions(n_qubits: usize, instrs: Vec<Instruction>) -> Self {
        let mut counts = GateCounts::default();
        for ins in &instrs {
            for &q in ins.qubits() {
                assert!(
                    (q as usize) < n_qubits,
                    "instruction {ins} out of range for {n_qubits} qubits"
                );
            }
            counts.add(ins);
        }
        let mut arena = Arena::new(n_qubits);
        arena.rebuild(&instrs);
        let cache = OnceLock::new();
        let _ = cache.set(instrs);
        Circuit {
            n_qubits,
            arena,
            counts,
            cache,
        }
    }

    /// Mutable access to the cached counts (patch machinery only).
    #[inline]
    pub(crate) fn counts_mut(&mut self) -> &mut GateCounts {
        &mut self.counts
    }

    /// Replaces a logical index range of the instruction list without
    /// touching the cached counts (the caller has already accounted for
    /// them). Slots of the range are tombstoned and the replacement
    /// claims dead slots in the freed gap — O(edit-span · log n).
    pub(crate) fn splice_raw(&mut self, range: Range<usize>, replacement: Vec<Instruction>) {
        self.cache.take();
        let (lo, hi) = (range.start, range.end);
        debug_assert!(lo <= hi && hi <= self.arena.live, "splice out of range");
        let anchor = if hi < self.arena.live {
            Some(self.arena.select(hi))
        } else {
            None
        };
        if lo < hi {
            let mut s = self.arena.select(lo);
            for i in lo..hi {
                let cur = s;
                if i + 1 < hi {
                    s = self.arena.next_live_after(cur);
                }
                self.arena.kill(cur);
            }
        }
        self.arena.insert_before(anchor, &replacement);
        self.arena.maybe_compact();
    }

    /// The cached gate statistics.
    #[inline]
    pub fn counts(&self) -> &GateCounts {
        &self.counts
    }

    /// Number of gates of the given kind — O(1) from the cached counts.
    #[inline]
    pub fn kind_count(&self, kind: GateKind) -> usize {
        self.counts.of_kind(kind)
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of instructions (total gate count).
    #[inline]
    pub fn len(&self) -> usize {
        self.arena.live
    }

    /// True when the circuit contains no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arena.live == 0
    }

    /// Appends a gate application.
    ///
    /// # Panics
    ///
    /// Panics if an operand is out of range or operands repeat.
    pub fn push(&mut self, gate: Gate, qubits: &[Qubit]) {
        for &q in qubits {
            assert!(
                (q as usize) < self.n_qubits,
                "qubit {q} out of range for {} qubits",
                self.n_qubits
            );
        }
        let ins = Instruction::new(gate, qubits);
        self.counts.add(&ins);
        self.cache.take();
        self.arena.insert_before(None, std::slice::from_ref(&ins));
    }

    /// Appends an already-built instruction.
    ///
    /// # Panics
    ///
    /// Panics if an operand is out of range.
    pub fn push_instruction(&mut self, ins: Instruction) {
        for &q in ins.qubits() {
            assert!(
                (q as usize) < self.n_qubits,
                "qubit {q} out of range for {} qubits",
                self.n_qubits
            );
        }
        self.counts.add(&ins);
        self.cache.take();
        self.arena.insert_before(None, std::slice::from_ref(&ins));
    }

    /// Appends every instruction of `other` (same qubit indexing).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses qubits out of range for `self`.
    pub fn extend_from(&mut self, other: &Circuit) {
        for ins in other.iter() {
            self.push_instruction(*ins);
        }
    }

    /// Appends `other` with its local qubit `i` mapped to `mapping[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is too short or maps out of range.
    pub fn extend_mapped(&mut self, other: &Circuit, mapping: &[Qubit]) {
        assert!(
            mapping.len() >= other.num_qubits(),
            "mapping covers {} qubits but circuit has {}",
            mapping.len(),
            other.num_qubits()
        );
        for ins in other.iter() {
            let qs: Vec<Qubit> = ins.qubits().iter().map(|&q| mapping[q as usize]).collect();
            self.push(ins.gate, &qs);
        }
    }

    /// The instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions().iter()
    }

    /// The instructions as a slice (materialized lazily from the arena
    /// and cached until the next mutation).
    #[inline]
    pub fn instructions(&self) -> &[Instruction] {
        self.cache.get_or_init(|| self.arena.materialize())
    }

    // ---- stable-id access ---------------------------------------------
    //
    // Ids name arena slots. A live instruction keeps its id across edits
    // anywhere else in the circuit — no index invalidation, no memmove —
    // and ascending id order *is* program order. The id ↔ topological
    // position map (`id_at`/`pos_of_id`, Fenwick rank/select) is what
    // positional consumers (QASM emission, shard planning, `Patch`
    // coordinates) convert through. The incremental engine's matcher and
    // patch machinery read the circuit exclusively through these
    // accessors, so nothing on the hot path ever materializes the
    // compact list.

    /// The stable id of the instruction at logical position `pos`.
    /// O(log n).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `pos >= self.len()`.
    #[inline]
    pub fn id_at(&self, pos: usize) -> usize {
        self.arena.select(pos)
    }

    /// The logical position of live id `id` (inverse of
    /// [`Self::id_at`]). O(log n).
    #[inline]
    pub fn pos_of_id(&self, id: usize) -> usize {
        debug_assert!(self.is_live_id(id), "dead or out-of-range id {id}");
        self.arena.rank(id)
    }

    /// True when `id` names a live instruction of this circuit.
    #[inline]
    pub fn is_live_id(&self, id: usize) -> bool {
        id < self.arena.capacity() && self.arena.is_live(id)
    }

    /// The instruction stored at live id `id`. O(1).
    #[inline]
    pub fn instruction_by_id(&self, id: usize) -> Instruction {
        self.arena.instruction_at(id)
    }

    /// The instruction at logical position `pos` without materializing
    /// the compact list. O(log n).
    #[inline]
    pub fn instruction(&self, pos: usize) -> Instruction {
        self.arena.instruction_at(self.arena.select(pos))
    }

    /// Operand count of the gate at live id `id`. O(1).
    #[inline]
    pub fn arity_by_id(&self, id: usize) -> usize {
        self.arena.arity(id)
    }

    /// The operand qubits of the instruction at live id `id`. O(1).
    #[inline]
    pub fn qubits_by_id(&self, id: usize) -> &[Qubit] {
        &self.arena.qs[id][..self.arena.arity(id)]
    }

    /// The next live id after `id` in program order.
    #[inline]
    pub fn next_id(&self, id: usize) -> Option<usize> {
        LiveSlots::from_slot(&self.arena.alive, id + 1).next()
    }

    /// Live ids in program order, starting at logical position `pos`
    /// (empty when `pos >= self.len()`). O(1) amortized per step.
    pub fn ids_from(&self, pos: usize) -> impl Iterator<Item = usize> + '_ {
        let start = if pos < self.arena.live {
            self.arena.select(pos)
        } else {
            self.arena.capacity()
        };
        LiveSlots::from_slot(&self.arena.alive, start)
    }

    /// Live ids in program order, starting at live id `id` (inclusive).
    pub fn ids_from_id(&self, id: usize) -> impl Iterator<Item = usize> + '_ {
        LiveSlots::from_slot(&self.arena.alive, id)
    }

    /// The id of the next instruction on wire `q` after live id `id`,
    /// via the arena's embedded per-wire links. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not act on `q`.
    #[inline]
    pub fn next_on_wire(&self, id: usize, q: Qubit) -> Option<usize> {
        let nx = self.arena.next[id][self.arena.wire_pos(id, q)];
        (nx != NONE).then_some(nx as usize)
    }

    /// The id of the previous instruction on wire `q` before live id
    /// `id`. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not act on `q`.
    #[inline]
    pub fn prev_on_wire(&self, id: usize, q: Qubit) -> Option<usize> {
        let pv = self.arena.prev[id][self.arena.wire_pos(id, q)];
        (pv != NONE).then_some(pv as usize)
    }

    /// The id of the first instruction acting on wire `q`. O(1).
    #[inline]
    pub fn first_on_wire(&self, q: Qubit) -> Option<usize> {
        let f = self.arena.first[q as usize];
        (f != NONE).then_some(f as usize)
    }

    /// The id of the last instruction acting on wire `q`. O(1).
    #[inline]
    pub fn last_on_wire(&self, q: Qubit) -> Option<usize> {
        let l = self.arena.last[q as usize];
        (l != NONE).then_some(l as usize)
    }

    /// The adjoint circuit (gates reversed and inverted).
    pub fn inverse(&self) -> Circuit {
        let instrs = self
            .iter()
            .rev()
            .map(|ins| Instruction::new(ins.gate.adjoint(), ins.qubits()))
            .collect();
        Circuit::from_instructions(self.n_qubits, instrs)
    }

    // ---- metrics ------------------------------------------------------

    /// Number of gates acting on two or more qubits — O(1), cached.
    #[inline]
    pub fn two_qubit_count(&self) -> usize {
        self.counts.multi_qubit()
    }

    /// Number of `T`/`T†` gates (the FTQC cost driver of §6 Q4) — O(1),
    /// cached.
    #[inline]
    pub fn t_count(&self) -> usize {
        self.counts.t_family()
    }

    /// Number of gates satisfying a predicate.
    pub fn count_where<F: Fn(&Instruction) -> bool>(&self, pred: F) -> usize {
        self.iter().filter(|i| pred(i)).count()
    }

    /// Circuit depth: length of the longest wire-ordered chain.
    pub fn depth(&self) -> usize {
        let mut wire_depth = vec![0usize; self.n_qubits];
        let mut max = 0;
        for ins in self.iter() {
            let d = ins
                .qubits()
                .iter()
                .map(|&q| wire_depth[q as usize])
                .max()
                .unwrap_or(0)
                + 1;
            for &q in ins.qubits() {
                wire_depth[q as usize] = d;
            }
            max = max.max(d);
        }
        max
    }

    /// Set of qubits that at least one gate acts on.
    pub fn used_qubits(&self) -> Vec<Qubit> {
        let mut used = vec![false; self.n_qubits];
        for ins in self.iter() {
            for &q in ins.qubits() {
                used[q as usize] = true;
            }
        }
        (0..self.n_qubits as Qubit)
            .filter(|&q| used[q as usize])
            .collect()
    }

    // ---- semantics ----------------------------------------------------

    /// Maximum qubit count for dense unitary construction.
    pub const MAX_UNITARY_QUBITS: usize = 11;

    /// Computes the dense `2^n × 2^n` unitary of the circuit.
    ///
    /// Built column-by-column with statevector kernels, which is far
    /// cheaper than chained matrix products.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than [`Self::MAX_UNITARY_QUBITS`]
    /// qubits (the dense representation would not fit in memory).
    pub fn unitary(&self) -> Mat {
        assert!(
            self.n_qubits <= Self::MAX_UNITARY_QUBITS,
            "dense unitary limited to {} qubits, circuit has {}",
            Self::MAX_UNITARY_QUBITS,
            self.n_qubits
        );
        let dim = 1usize << self.n_qubits;
        let mut m = Mat::zeros(dim, dim);
        let mut col = vec![C64::ZERO; dim];
        for j in 0..dim {
            for z in col.iter_mut() {
                *z = C64::ZERO;
            }
            col[j] = C64::ONE;
            self.apply_to_state(&mut col);
            for i in 0..dim {
                m[(i, j)] = col[i];
            }
        }
        m
    }

    /// Applies the circuit to a statevector in place.
    ///
    /// Allocation-free per gate: unitaries come from the stack gate
    /// table ([`Gate::unitary_into`]) and go through the slice kernels.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != 2^n`.
    pub fn apply_to_state(&self, state: &mut [C64]) {
        assert_eq!(state.len(), 1usize << self.n_qubits, "state length");
        let mut buf = [C64::ZERO; 64];
        let mut qs = [0usize; 3];
        for ins in self.iter() {
            let k = ins.qubits().len();
            for (d, &q) in qs.iter_mut().zip(ins.qubits()) {
                *d = q as usize;
            }
            let dim = ins.gate.unitary_into(&mut buf);
            apply_gate_slice(state, self.n_qubits, &qs[..k], &buf[..dim * dim]);
        }
    }

    /// Runs the circuit on `|0…0⟩` and returns the final state.
    pub fn run_on_zero(&self) -> Vec<C64> {
        let mut s = zero_state(self.n_qubits);
        self.apply_to_state(&mut s);
        s
    }

    /// Histogram of gate mnemonics to counts, sorted by name.
    pub fn gate_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for ins in self.iter() {
            *counts.entry(ins.gate.name()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit[{} qubits, {} gates]", self.n_qubits, self.len())?;
        for ins in self.iter() {
            writeln!(f, "  {ins}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::Patch;
    use qmath::hs_distance;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn fig4_circuit() -> Circuit {
        // The running example from the paper's Fig. 4/5:
        // Rz(π/2) q0; CX q0,q1; H q1; Rz(π/2) q0
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(FRAC_PI_2), &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::H, &[1]);
        c.push(Gate::Rz(FRAC_PI_2), &[0]);
        c
    }

    #[test]
    fn paper_fig5_resynthesis_target() {
        // Fig. 5: the circuit is equivalent to Rz(π) q0; CX; H q1.
        let lhs = fig4_circuit();
        let mut rhs = Circuit::new(2);
        rhs.push(Gate::Rz(PI), &[0]);
        rhs.push(Gate::Cx, &[0, 1]);
        rhs.push(Gate::H, &[1]);
        assert!(hs_distance(&lhs.unitary(), &rhs.unitary()) < 1e-7);
    }

    #[test]
    fn metrics() {
        let c = fig4_circuit();
        assert_eq!(c.len(), 4);
        assert_eq!(c.two_qubit_count(), 1);
        assert_eq!(c.t_count(), 0);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.used_qubits(), vec![0, 1]);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let c = fig4_circuit();
        let mut both = c.clone();
        both.extend_from(&c.inverse());
        let u = both.unitary();
        assert!(hs_distance(&u, &Mat::identity(4)) < 1e-7);
    }

    #[test]
    fn unitary_matches_embedding_chain() {
        use qmath::{embed, gates};
        let c = fig4_circuit();
        let expect = embed(&gates::rz(FRAC_PI_2), 2, &[0])
            .matmul(&embed(&gates::h(), 2, &[1]))
            .matmul(&gates::cx())
            .matmul(&embed(&gates::rz(FRAC_PI_2), 2, &[0]));
        assert!(c.unitary().approx_eq(&expect, 1e-12));
    }

    #[test]
    fn extend_mapped_remaps() {
        let mut small = Circuit::new(2);
        small.push(Gate::Cx, &[0, 1]);
        let mut big = Circuit::new(4);
        big.extend_mapped(&small, &[3, 1]);
        assert_eq!(big.instructions()[0].qubits(), &[3, 1]);
    }

    #[test]
    fn depth_parallel_gates() {
        let mut c = Circuit::new(4);
        c.push(Gate::H, &[0]);
        c.push(Gate::H, &[1]);
        c.push(Gate::H, &[2]);
        assert_eq!(c.depth(), 1);
        c.push(Gate::Cx, &[0, 1]);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn run_on_zero_bell() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        let s = c.run_on_zero();
        assert!((s[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((s[3].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn gate_histogram_sorted() {
        let c = fig4_circuit();
        let h = c.gate_histogram();
        assert_eq!(h, vec![("cx", 1), ("h", 1), ("rz", 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        let mut c = Circuit::new(1);
        c.push(Gate::Cx, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "repeated operand")]
    fn repeated_operand_panics() {
        let _ = Instruction::new(Gate::Cx, &[0, 0]);
    }

    // ---- arena invariants --------------------------------------------

    /// Tiny deterministic generator for the differential tests below.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    fn random_instruction(rng: &mut Lcg, nq: usize) -> Instruction {
        let pool = [
            Gate::H,
            Gate::X,
            Gate::T,
            Gate::Tdg,
            Gate::S,
            Gate::Rz(0.25),
        ];
        match rng.below(3) {
            0 | 1 => Instruction::new(pool[rng.below(pool.len())], &[rng.below(nq) as Qubit]),
            _ => {
                let a = rng.below(nq);
                let mut b = rng.below(nq - 1);
                if b >= a {
                    b += 1;
                }
                Instruction::new(Gate::Cx, &[a as Qubit, b as Qubit])
            }
        }
    }

    /// Full structural audit of the arena against positional rebuilds.
    fn check_arena(c: &Circuit) {
        use crate::dag::WireDag;
        let a = &c.arena;
        assert_eq!(a.live, c.len());
        for (li, s) in a.live_slots().enumerate() {
            assert_eq!(a.rank(s), li, "rank/select out of sync at slot {s}");
            assert_eq!(a.select(li), s, "rank/select out of sync at slot {s}");
        }
        let dag = WireDag::build(c);
        let slot_of: Vec<usize> = a.live_slots().collect();
        for (i, s) in slot_of.iter().copied().enumerate() {
            let ins = c.instructions()[i];
            assert_eq!(a.instruction_at(s), ins, "slot content mismatch");
            for (pos, &q) in ins.qubits().iter().enumerate() {
                let nx = a.next[s][pos];
                let expect = dag.next_on_wire(c, i, q).map(|j| slot_of[j]);
                assert_eq!((nx != NONE).then_some(nx as usize), expect, "next link");
                let pv = a.prev[s][pos];
                let expect = dag.prev_on_wire(c, i, q).map(|j| slot_of[j]);
                assert_eq!((pv != NONE).then_some(pv as usize), expect, "prev link");
            }
        }
        for q in 0..c.num_qubits() {
            let f = a.first[q];
            assert_eq!(
                (f != NONE).then_some(f as usize),
                dag.first_on_wire(q as Qubit).map(|j| slot_of[j]),
                "first link on wire {q}"
            );
            let l = a.last[q];
            assert_eq!(
                (l != NONE).then_some(l as usize),
                dag.last_on_wire(q as Qubit).map(|j| slot_of[j]),
                "last link on wire {q}"
            );
        }
    }

    #[test]
    fn arena_matches_vec_model_on_random_patches() {
        let nq = 5;
        let mut rng = Lcg(0x12345678);
        let mut model: Vec<Instruction> =
            (0..40).map(|_| random_instruction(&mut rng, nq)).collect();
        let mut c = Circuit::from_instructions(nq, model.clone());
        for step in 0..400 {
            let n = model.len();
            let mut removed: Vec<usize> = Vec::new();
            if n > 0 {
                let k = rng.below(4.min(n) + 1);
                let mut cand: Vec<usize> = (0..k).map(|_| rng.below(n)).collect();
                cand.sort_unstable();
                cand.dedup();
                removed = cand;
            }
            let m = rng.below(4);
            let replacement: Vec<Instruction> =
                (0..m).map(|_| random_instruction(&mut rng, nq)).collect();
            let insert_at = rng.below(n + 1);
            let patch = Patch::new(removed.clone(), replacement.clone(), insert_at);

            // Vec model: naive replay of the visit-window semantics.
            let mut next_model: Vec<Instruction> = Vec::new();
            for (i, ins) in model.iter().enumerate() {
                if i == insert_at {
                    next_model.extend(replacement.iter().copied());
                }
                if !removed.contains(&i) {
                    next_model.push(*ins);
                }
            }
            if insert_at == n {
                next_model.extend(replacement.iter().copied());
            }

            let undo = c.apply_patch(&patch);
            if step % 3 == 0 {
                c.revert_patch(&undo);
                assert_eq!(
                    c,
                    Circuit::from_instructions(nq, model.clone()),
                    "revert diverged at step {step}"
                );
                c.apply_patch(&patch);
            }
            model = next_model;
            let expect = Circuit::from_instructions(nq, model.clone());
            assert_eq!(c, expect, "apply diverged at step {step}");
            assert_eq!(c.two_qubit_count(), expect.two_qubit_count());
            assert_eq!(c.t_count(), expect.t_count());
            assert_eq!(c.instructions(), expect.instructions());
            if step % 25 == 0 {
                check_arena(&c);
            }
        }
    }

    #[test]
    fn arena_wire_links_survive_patch_churn() {
        let nq = 4;
        let mut rng = Lcg(0xABCDEF);
        let mut c = Circuit::new(nq);
        for _ in 0..30 {
            let ins = random_instruction(&mut rng, nq);
            c.push_instruction(ins);
        }
        check_arena(&c);
        for _ in 0..60 {
            let n = c.len();
            if n < 3 {
                break;
            }
            let i = rng.below(n - 1);
            let patch = Patch::new(vec![i], vec![random_instruction(&mut rng, nq)], i);
            c.apply_patch(&patch);
            check_arena(&c);
        }
    }

    #[test]
    fn patch_probe_churn_never_grows_the_arena() {
        let mut c = Circuit::new(2);
        for _ in 0..32 {
            c.push(Gate::H, &[0]);
            c.push(Gate::Cx, &[0, 1]);
        }
        let cap0 = c.arena.capacity();
        for i in 0..1000 {
            let at = i % (c.len() - 1);
            let patch = Patch::new(vec![at], vec![Instruction::new(Gate::X, &[0])], at);
            let undo = c.apply_patch(&patch);
            c.revert_patch(&undo);
        }
        assert_eq!(c.arena.capacity(), cap0, "probe churn must reuse slots");
    }

    #[test]
    fn compaction_bounds_capacity_and_preserves_content() {
        let mut c = Circuit::new(3);
        for i in 0..200 {
            c.push(Gate::T, &[(i % 3) as Qubit]);
        }
        let full = c.clone();
        let undo_all: Vec<_> = (0..180)
            .map(|_| c.apply_patch(&Patch::new(vec![0], Vec::new(), 0)))
            .collect();
        assert_eq!(c.len(), 20);
        assert!(
            c.arena.capacity() <= 64,
            "tombstone-heavy arena must compact (capacity {})",
            c.arena.capacity()
        );
        check_arena(&c);
        for undo in undo_all.iter().rev() {
            c.revert_patch(undo);
        }
        assert_eq!(c, full);
        check_arena(&c);
    }

    #[test]
    fn growing_patch_falls_back_to_rebuild() {
        let mut c = Circuit::new(2);
        for _ in 0..8 {
            c.push(Gate::H, &[0]);
        }
        let rep = vec![
            Instruction::new(Gate::X, &[0]),
            Instruction::new(Gate::Y, &[0]),
            Instruction::new(Gate::X, &[0]),
        ];
        let patch = Patch::new(vec![3], rep, 3);
        let undo = c.apply_patch(&patch);
        assert_eq!(c.len(), 10);
        check_arena(&c);
        c.revert_patch(&undo);
        assert_eq!(c.len(), 8);
        check_arena(&c);
    }

    #[test]
    fn clone_and_equality_ignore_slot_layout() {
        // Same content through different edit histories ⇒ equal, even
        // though tombstone layout differs.
        let mut a = Circuit::new(2);
        a.push(Gate::H, &[0]);
        a.push(Gate::Cx, &[0, 1]);
        a.push(Gate::T, &[1]);
        let mut b = a.clone();
        let undo = b.apply_patch(&Patch::new(vec![1], Vec::new(), 1));
        b.revert_patch(&undo);
        assert_eq!(a, b);
        assert_eq!(a.instructions(), b.instructions());
    }
}
