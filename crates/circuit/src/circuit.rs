//! The circuit IR: a sequence of gate applications.
//!
//! A [`Circuit`] is an ordered list of [`Instruction`]s over `n` qubits.
//! The order is one valid topological order of the circuit DAG; the DAG
//! structure itself is materialized on demand by [`crate::dag::WireDag`].

use crate::gate::{Gate, GateKind};
use qmath::statevec::{apply_gate, zero_state};
use qmath::{Mat, C64};
use std::fmt;
use std::ops::Range;

/// A qubit index within a circuit.
pub type Qubit = u32;

/// A single gate application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// The gate being applied.
    pub gate: Gate,
    qs: [Qubit; 3],
}

impl Instruction {
    /// Creates an instruction from a gate and its operand qubits.
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len()` differs from the gate arity or if a qubit
    /// repeats.
    pub fn new(gate: Gate, qubits: &[Qubit]) -> Self {
        assert_eq!(
            qubits.len(),
            gate.arity(),
            "gate {gate} expects {} operands, got {}",
            gate.arity(),
            qubits.len()
        );
        for (i, &q) in qubits.iter().enumerate() {
            assert!(
                !qubits[..i].contains(&q),
                "repeated operand qubit {q} for gate {gate}"
            );
        }
        let mut qs = [0; 3];
        qs[..qubits.len()].copy_from_slice(qubits);
        Instruction { gate, qs }
    }

    /// The operand qubits, in gate order (controls first for `CX`/`CCX`).
    #[inline]
    pub fn qubits(&self) -> &[Qubit] {
        &self.qs[..self.gate.arity()]
    }

    /// True if the instruction acts on qubit `q`.
    #[inline]
    pub fn acts_on(&self, q: Qubit) -> bool {
        self.qubits().contains(&q)
    }

    /// True if the instruction shares at least one qubit with `other`.
    pub fn overlaps(&self, other: &Instruction) -> bool {
        self.qubits().iter().any(|q| other.acts_on(*q))
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qs: Vec<String> = self.qubits().iter().map(|q| format!("q{q}")).collect();
        write!(f, "{} {}", self.gate, qs.join(","))
    }
}

/// Cached gate statistics of a circuit, maintained incrementally.
///
/// Every mutation of a [`Circuit`] (push, patch, revert) updates these
/// counters, so the hot-loop metrics ([`Circuit::two_qubit_count`],
/// [`Circuit::t_count`], [`Circuit::kind_count`]) are O(1) instead of a
/// scan over the instruction list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCounts {
    by_kind: [u32; GateKind::COUNT],
    multi_qubit: u32,
    t_family: u32,
}

impl GateCounts {
    #[inline]
    pub(crate) fn add(&mut self, ins: &Instruction) {
        self.by_kind[ins.gate.kind() as usize] += 1;
        if ins.gate.arity() >= 2 {
            self.multi_qubit += 1;
        }
        if matches!(ins.gate, Gate::T | Gate::Tdg) {
            self.t_family += 1;
        }
    }

    #[inline]
    pub(crate) fn remove(&mut self, ins: &Instruction) {
        self.by_kind[ins.gate.kind() as usize] -= 1;
        if ins.gate.arity() >= 2 {
            self.multi_qubit -= 1;
        }
        if matches!(ins.gate, Gate::T | Gate::Tdg) {
            self.t_family -= 1;
        }
    }

    /// Number of gates of `kind`.
    #[inline]
    pub fn of_kind(&self, kind: GateKind) -> usize {
        self.by_kind[kind as usize] as usize
    }

    /// Number of gates acting on two or more qubits.
    #[inline]
    pub fn multi_qubit(&self) -> usize {
        self.multi_qubit as usize
    }

    /// Number of `T`/`T†` gates.
    #[inline]
    pub fn t_family(&self) -> usize {
        self.t_family as usize
    }
}

/// A quantum circuit: `n` qubits and an ordered gate list.
///
/// ```
/// use qcir::{Circuit, Gate};
/// let mut c = Circuit::new(2);
/// c.push(Gate::H, &[0]);
/// c.push(Gate::Cx, &[0, 1]);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.two_qubit_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    n_qubits: usize,
    instrs: Vec<Instruction>,
    counts: GateCounts,
}

/// Equality is structural: same qubit count, same instruction list (the
/// cached counts are a pure function of the instructions).
impl PartialEq for Circuit {
    fn eq(&self, other: &Self) -> bool {
        self.n_qubits == other.n_qubits && self.instrs == other.instrs
    }
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            instrs: Vec::new(),
            counts: GateCounts::default(),
        }
    }

    /// Creates a circuit from parts.
    ///
    /// # Panics
    ///
    /// Panics if any instruction references a qubit `≥ n_qubits`.
    pub fn from_instructions(n_qubits: usize, instrs: Vec<Instruction>) -> Self {
        let mut counts = GateCounts::default();
        for ins in &instrs {
            for &q in ins.qubits() {
                assert!(
                    (q as usize) < n_qubits,
                    "instruction {ins} out of range for {n_qubits} qubits"
                );
            }
            counts.add(ins);
        }
        Circuit {
            n_qubits,
            instrs,
            counts,
        }
    }

    /// Mutable access to the cached counts (patch machinery only).
    #[inline]
    pub(crate) fn counts_mut(&mut self) -> &mut GateCounts {
        &mut self.counts
    }

    /// Replaces an index range of the instruction list without touching
    /// the cached counts (the caller has already accounted for them).
    #[inline]
    pub(crate) fn splice_raw(&mut self, range: Range<usize>, replacement: Vec<Instruction>) {
        self.instrs.splice(range, replacement);
    }

    /// The cached gate statistics.
    #[inline]
    pub fn counts(&self) -> &GateCounts {
        &self.counts
    }

    /// Number of gates of the given kind — O(1) from the cached counts.
    #[inline]
    pub fn kind_count(&self, kind: GateKind) -> usize {
        self.counts.of_kind(kind)
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of instructions (total gate count).
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the circuit contains no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Appends a gate application.
    ///
    /// # Panics
    ///
    /// Panics if an operand is out of range or operands repeat.
    pub fn push(&mut self, gate: Gate, qubits: &[Qubit]) {
        for &q in qubits {
            assert!(
                (q as usize) < self.n_qubits,
                "qubit {q} out of range for {} qubits",
                self.n_qubits
            );
        }
        let ins = Instruction::new(gate, qubits);
        self.counts.add(&ins);
        self.instrs.push(ins);
    }

    /// Appends an already-built instruction.
    ///
    /// # Panics
    ///
    /// Panics if an operand is out of range.
    pub fn push_instruction(&mut self, ins: Instruction) {
        for &q in ins.qubits() {
            assert!(
                (q as usize) < self.n_qubits,
                "qubit {q} out of range for {} qubits",
                self.n_qubits
            );
        }
        self.counts.add(&ins);
        self.instrs.push(ins);
    }

    /// Appends every instruction of `other` (same qubit indexing).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses qubits out of range for `self`.
    pub fn extend_from(&mut self, other: &Circuit) {
        for ins in other.iter() {
            self.push_instruction(*ins);
        }
    }

    /// Appends `other` with its local qubit `i` mapped to `mapping[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is too short or maps out of range.
    pub fn extend_mapped(&mut self, other: &Circuit, mapping: &[Qubit]) {
        assert!(
            mapping.len() >= other.num_qubits(),
            "mapping covers {} qubits but circuit has {}",
            mapping.len(),
            other.num_qubits()
        );
        for ins in other.iter() {
            let qs: Vec<Qubit> = ins.qubits().iter().map(|&q| mapping[q as usize]).collect();
            self.push(ins.gate, &qs);
        }
    }

    /// The instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instrs.iter()
    }

    /// The instructions as a slice.
    #[inline]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// The adjoint circuit (gates reversed and inverted).
    pub fn inverse(&self) -> Circuit {
        let instrs = self
            .instrs
            .iter()
            .rev()
            .map(|ins| Instruction::new(ins.gate.adjoint(), ins.qubits()))
            .collect();
        Circuit::from_instructions(self.n_qubits, instrs)
    }

    // ---- metrics ------------------------------------------------------

    /// Number of gates acting on two or more qubits — O(1), cached.
    #[inline]
    pub fn two_qubit_count(&self) -> usize {
        self.counts.multi_qubit()
    }

    /// Number of `T`/`T†` gates (the FTQC cost driver of §6 Q4) — O(1),
    /// cached.
    #[inline]
    pub fn t_count(&self) -> usize {
        self.counts.t_family()
    }

    /// Number of gates satisfying a predicate.
    pub fn count_where<F: Fn(&Instruction) -> bool>(&self, pred: F) -> usize {
        self.instrs.iter().filter(|i| pred(i)).count()
    }

    /// Circuit depth: length of the longest wire-ordered chain.
    pub fn depth(&self) -> usize {
        let mut wire_depth = vec![0usize; self.n_qubits];
        let mut max = 0;
        for ins in &self.instrs {
            let d = ins
                .qubits()
                .iter()
                .map(|&q| wire_depth[q as usize])
                .max()
                .unwrap_or(0)
                + 1;
            for &q in ins.qubits() {
                wire_depth[q as usize] = d;
            }
            max = max.max(d);
        }
        max
    }

    /// Set of qubits that at least one gate acts on.
    pub fn used_qubits(&self) -> Vec<Qubit> {
        let mut used = vec![false; self.n_qubits];
        for ins in &self.instrs {
            for &q in ins.qubits() {
                used[q as usize] = true;
            }
        }
        (0..self.n_qubits as Qubit)
            .filter(|&q| used[q as usize])
            .collect()
    }

    // ---- semantics ----------------------------------------------------

    /// Maximum qubit count for dense unitary construction.
    pub const MAX_UNITARY_QUBITS: usize = 11;

    /// Computes the dense `2^n × 2^n` unitary of the circuit.
    ///
    /// Built column-by-column with statevector kernels, which is far
    /// cheaper than chained matrix products.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than [`Self::MAX_UNITARY_QUBITS`]
    /// qubits (the dense representation would not fit in memory).
    pub fn unitary(&self) -> Mat {
        assert!(
            self.n_qubits <= Self::MAX_UNITARY_QUBITS,
            "dense unitary limited to {} qubits, circuit has {}",
            Self::MAX_UNITARY_QUBITS,
            self.n_qubits
        );
        let dim = 1usize << self.n_qubits;
        let mut m = Mat::zeros(dim, dim);
        let mut col = vec![C64::ZERO; dim];
        for j in 0..dim {
            for z in col.iter_mut() {
                *z = C64::ZERO;
            }
            col[j] = C64::ONE;
            self.apply_to_state(&mut col);
            for i in 0..dim {
                m[(i, j)] = col[i];
            }
        }
        m
    }

    /// Applies the circuit to a statevector in place.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != 2^n`.
    pub fn apply_to_state(&self, state: &mut [C64]) {
        assert_eq!(state.len(), 1usize << self.n_qubits, "state length");
        for ins in &self.instrs {
            let qs: Vec<usize> = ins.qubits().iter().map(|&q| q as usize).collect();
            apply_gate(state, self.n_qubits, &qs, &ins.gate.matrix());
        }
    }

    /// Runs the circuit on `|0…0⟩` and returns the final state.
    pub fn run_on_zero(&self) -> Vec<C64> {
        let mut s = zero_state(self.n_qubits);
        self.apply_to_state(&mut s);
        s
    }

    /// Histogram of gate mnemonics to counts, sorted by name.
    pub fn gate_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for ins in &self.instrs {
            *counts.entry(ins.gate.name()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit[{} qubits, {} gates]", self.n_qubits, self.len())?;
        for ins in &self.instrs {
            writeln!(f, "  {ins}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::hs_distance;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn fig4_circuit() -> Circuit {
        // The running example from the paper's Fig. 4/5:
        // Rz(π/2) q0; CX q0,q1; H q1; Rz(π/2) q0
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(FRAC_PI_2), &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::H, &[1]);
        c.push(Gate::Rz(FRAC_PI_2), &[0]);
        c
    }

    #[test]
    fn paper_fig5_resynthesis_target() {
        // Fig. 5: the circuit is equivalent to Rz(π) q0; CX; H q1.
        let lhs = fig4_circuit();
        let mut rhs = Circuit::new(2);
        rhs.push(Gate::Rz(PI), &[0]);
        rhs.push(Gate::Cx, &[0, 1]);
        rhs.push(Gate::H, &[1]);
        assert!(hs_distance(&lhs.unitary(), &rhs.unitary()) < 1e-7);
    }

    #[test]
    fn metrics() {
        let c = fig4_circuit();
        assert_eq!(c.len(), 4);
        assert_eq!(c.two_qubit_count(), 1);
        assert_eq!(c.t_count(), 0);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.used_qubits(), vec![0, 1]);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let c = fig4_circuit();
        let mut both = c.clone();
        both.extend_from(&c.inverse());
        let u = both.unitary();
        assert!(hs_distance(&u, &Mat::identity(4)) < 1e-7);
    }

    #[test]
    fn unitary_matches_embedding_chain() {
        use qmath::{embed, gates};
        let c = fig4_circuit();
        let expect = embed(&gates::rz(FRAC_PI_2), 2, &[0])
            .matmul(&embed(&gates::h(), 2, &[1]))
            .matmul(&gates::cx())
            .matmul(&embed(&gates::rz(FRAC_PI_2), 2, &[0]));
        assert!(c.unitary().approx_eq(&expect, 1e-12));
    }

    #[test]
    fn extend_mapped_remaps() {
        let mut small = Circuit::new(2);
        small.push(Gate::Cx, &[0, 1]);
        let mut big = Circuit::new(4);
        big.extend_mapped(&small, &[3, 1]);
        assert_eq!(big.instructions()[0].qubits(), &[3, 1]);
    }

    #[test]
    fn depth_parallel_gates() {
        let mut c = Circuit::new(4);
        c.push(Gate::H, &[0]);
        c.push(Gate::H, &[1]);
        c.push(Gate::H, &[2]);
        assert_eq!(c.depth(), 1);
        c.push(Gate::Cx, &[0, 1]);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn run_on_zero_bell() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        let s = c.run_on_zero();
        assert!((s[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((s[3].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn gate_histogram_sorted() {
        let c = fig4_circuit();
        let h = c.gate_histogram();
        assert_eq!(h, vec![("cx", 1), ("h", 1), ("rz", 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        let mut c = Circuit::new(1);
        c.push(Gate::Cx, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "repeated operand")]
    fn repeated_operand_panics() {
        let _ = Instruction::new(Gate::Cx, &[0, 0]);
    }
}
