//! Rebasing: decomposing circuits into a target gate set.
//!
//! The paper's evaluation always hands each optimizer a circuit *already
//! decomposed* into the target set (§6). `rebase` implements that
//! decomposition for all five sets. Every identity used here is verified
//! against dense unitaries in the test module.

use crate::circuit::{Circuit, Instruction, Qubit};
use crate::gate::Gate;
use crate::gateset::GateSet;
use qmath::angle::{normalize, pi4_multiple_of, ANGLE_TOL};
use qmath::decompose::u3_params;
use qmath::Mat;
use std::error::Error;
use std::f64::consts::{FRAC_PI_2, PI};
use std::fmt;

/// Error produced when a gate cannot be expressed in the target set.
#[derive(Debug, Clone, PartialEq)]
pub struct RebaseError {
    /// Rendered form of the offending gate.
    pub gate: String,
    /// Target gate set.
    pub set: GateSet,
    /// Why the decomposition failed.
    pub reason: String,
}

impl fmt::Display for RebaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot rebase `{}` into {}: {}",
            self.gate, self.set, self.reason
        )
    }
}

impl Error for RebaseError {}

/// Decomposes `circuit` into the target gate set.
///
/// The output is gate-for-gate semantically equivalent to the input up to
/// global phase; no optimization is attempted (that is the optimizer's
/// job).
///
/// # Errors
///
/// Returns [`RebaseError`] when a rotation angle is not expressible in a
/// finite gate set (e.g. `Rz(0.3)` into Clifford+T).
pub fn rebase(circuit: &Circuit, set: GateSet) -> Result<Circuit, RebaseError> {
    let mut out = Circuit::new(circuit.num_qubits());
    for ins in circuit.iter() {
        lower_into(ins, set, &mut out)?;
    }
    Ok(out)
}

/// Lowers one instruction into `out`, recursively.
fn lower_into(ins: &Instruction, set: GateSet, out: &mut Circuit) -> Result<(), RebaseError> {
    let g = ins.gate;
    if set.contains(g) {
        out.push_instruction(*ins);
        return Ok(());
    }
    let q = ins.qubits();
    match g.arity() {
        1 => emit_1q(&g.matrix(), q[0], set, out).map_err(|reason| RebaseError {
            gate: g.to_string(),
            set,
            reason,
        }),
        _ => {
            let steps = structural_lowering(g, q).ok_or_else(|| RebaseError {
                gate: g.to_string(),
                set,
                reason: "no structural lowering available".into(),
            })?;
            for step in &steps {
                lower_into(step, set, out)?;
            }
            Ok(())
        }
    }
}

/// Lowers a multi-qubit gate into `{1q gates, CX}` (or `{…, Rzz}` when the
/// target is the IonQ set, whose entangler is `Rxx`; the `Rzz → Rxx`
/// bridge is part of the table).
fn structural_lowering(g: Gate, q: &[Qubit]) -> Option<Vec<Instruction>> {
    use Gate::*;
    let i = |gate: Gate, qs: &[Qubit]| Instruction::new(gate, qs);
    let seq = match g {
        Cz => vec![i(H, &[q[1]]), i(Cx, &[q[0], q[1]]), i(H, &[q[1]])],
        Cp(l) => vec![
            i(P(l / 2.0), &[q[0]]),
            i(Cx, &[q[0], q[1]]),
            i(P(-l / 2.0), &[q[1]]),
            i(Cx, &[q[0], q[1]]),
            i(P(l / 2.0), &[q[1]]),
        ],
        Crz(t) => vec![
            i(Rz(t / 2.0), &[q[1]]),
            i(Cx, &[q[0], q[1]]),
            i(Rz(-t / 2.0), &[q[1]]),
            i(Cx, &[q[0], q[1]]),
        ],
        Swap => vec![
            i(Cx, &[q[0], q[1]]),
            i(Cx, &[q[1], q[0]]),
            i(Cx, &[q[0], q[1]]),
        ],
        Rzz(t) => vec![
            i(Cx, &[q[0], q[1]]),
            i(Rz(t), &[q[1]]),
            i(Cx, &[q[0], q[1]]),
        ],
        Rxx(t) => vec![
            i(H, &[q[0]]),
            i(H, &[q[1]]),
            i(Rzz(t), &[q[0], q[1]]),
            i(H, &[q[0]]),
            i(H, &[q[1]]),
        ],
        Ryy(t) => vec![
            i(Rx(FRAC_PI_2), &[q[0]]),
            i(Rx(FRAC_PI_2), &[q[1]]),
            i(Rzz(t), &[q[0], q[1]]),
            i(Rx(-FRAC_PI_2), &[q[0]]),
            i(Rx(-FRAC_PI_2), &[q[1]]),
        ],
        // For the IonQ target, CX itself must be lowered to Rxx:
        // CX(c,t) ≅ (I⊗H)·CZ·(I⊗H) with CZ ≅ (Rz(π/2)⊗Rz(π/2))·Rzz(−π/2),
        // and Rzz(θ) = (H⊗H)·Rxx(θ)·(H⊗H). The opening H on the target
        // cancels against the inner sandwich, leaving seven gates.
        Cx => vec![
            i(H, &[q[0]]),
            i(Rxx(-FRAC_PI_2), &[q[0], q[1]]),
            i(H, &[q[0]]),
            i(H, &[q[1]]),
            i(Rz(FRAC_PI_2), &[q[0]]),
            i(Rz(FRAC_PI_2), &[q[1]]),
            i(H, &[q[1]]),
        ],
        Ccx => {
            let (a, b, c) = (q[0], q[1], q[2]);
            vec![
                i(H, &[c]),
                i(Cx, &[b, c]),
                i(Tdg, &[c]),
                i(Cx, &[a, c]),
                i(T, &[c]),
                i(Cx, &[b, c]),
                i(Tdg, &[c]),
                i(Cx, &[a, c]),
                i(T, &[b]),
                i(T, &[c]),
                i(H, &[c]),
                i(Cx, &[a, b]),
                i(T, &[a]),
                i(Tdg, &[b]),
                i(Cx, &[a, b]),
            ]
        }
        Ccz => vec![i(H, &[q[2]]), i(Ccx, q), i(H, &[q[2]])],
        _ => return None,
    };
    // Wait-free sanity: CX lowering above is only used when CX is not
    // native (IonQ); native sets short-circuit in `lower_into`.
    Some(seq)
}

/// Decomposes an arbitrary 2×2 unitary into a one-qubit circuit over the
/// target set's single-qubit basis (used by rebasing and by the 1q-fusion
/// optimization pass).
///
/// # Errors
///
/// Returns [`RebaseError`] for finite gate sets when the required angles
/// are not multiples of π/4.
pub fn decompose_1q(u: &Mat, set: GateSet) -> Result<Circuit, RebaseError> {
    let mut c = Circuit::new(1);
    emit_1q(u, 0, set, &mut c).map_err(|reason| RebaseError {
        gate: "<1q unitary>".into(),
        set,
        reason,
    })?;
    Ok(c)
}

/// Emits a 2×2 unitary on `qubit` using the 1-qubit basis of `set`.
fn emit_1q(u: &Mat, qubit: Qubit, set: GateSet, out: &mut Circuit) -> Result<(), String> {
    let p = u3_params(u);
    let (theta, phi, lambda) = (p.theta, p.phi, p.lambda);
    let push_rz = |out: &mut Circuit, a: f64| {
        let a = normalize(a);
        if !qmath::angle::is_zero_mod_2pi(a) {
            out.push(Gate::Rz(a), &[qubit]);
        }
    };
    match set {
        GateSet::Ibmq20 => {
            if theta.abs() < ANGLE_TOL {
                let a = normalize(phi + lambda);
                if !qmath::angle::is_zero_mod_2pi(a) {
                    out.push(Gate::P(a), &[qubit]);
                }
            } else if (theta - FRAC_PI_2).abs() < ANGLE_TOL {
                out.push(Gate::U2(normalize(phi), normalize(lambda)), &[qubit]);
            } else {
                out.push(Gate::U3(theta, normalize(phi), normalize(lambda)), &[qubit]);
            }
            Ok(())
        }
        GateSet::IbmEagle => {
            // U3(θ,φ,λ) ≅ Rz(φ+π) · SX · Rz(θ+π) · SX · Rz(λ)  (ZSXZSXZ).
            if theta.abs() < ANGLE_TOL {
                push_rz(out, phi + lambda);
            } else {
                push_rz(out, lambda);
                out.push(Gate::Sx, &[qubit]);
                push_rz(out, theta + PI);
                out.push(Gate::Sx, &[qubit]);
                push_rz(out, phi + PI);
            }
            Ok(())
        }
        GateSet::Ionq => {
            // Plain ZYZ: U ≅ Rz(φ) · Ry(θ) · Rz(λ).
            push_rz(out, lambda);
            if theta.abs() >= ANGLE_TOL {
                out.push(Gate::Ry(theta), &[qubit]);
            }
            push_rz(out, phi);
            Ok(())
        }
        GateSet::Nam => {
            // U ≅ Rz(φ+π/2) · H · Rz(θ) · H · Rz(λ−π/2)  (ZXZ via H-conjugation).
            if theta.abs() < ANGLE_TOL {
                push_rz(out, phi + lambda);
            } else {
                push_rz(out, lambda - FRAC_PI_2);
                out.push(Gate::H, &[qubit]);
                push_rz(out, theta);
                out.push(Gate::H, &[qubit]);
                push_rz(out, phi + FRAC_PI_2);
            }
            Ok(())
        }
        GateSet::CliffordT => {
            // Angles must be multiples of π/4; emit Euler Z-X-Z with H for X.
            let emit_phase = |out: &mut Circuit, a: f64| -> Result<(), String> {
                let k = pi4_multiple_of(a, 1e-7)
                    .ok_or_else(|| format!("angle {a} is not a multiple of pi/4"))?;
                for g in clifford_t_phase_sequence(k) {
                    out.push(g, &[qubit]);
                }
                Ok(())
            };
            if theta.abs() < ANGLE_TOL {
                emit_phase(out, phi + lambda)?;
            } else {
                // Rz(λ−π/2), H, Rz(θ), H, Rz(φ+π/2) — all π/4-multiples.
                emit_phase(out, lambda - FRAC_PI_2)?;
                out.push(Gate::H, &[qubit]);
                emit_phase(out, theta)?;
                out.push(Gate::H, &[qubit]);
                emit_phase(out, phi + FRAC_PI_2)?;
            }
            Ok(())
        }
    }
}

/// Minimal `{S, S†, T, T†}` sequence realizing `Rz(kπ/4)` up to phase.
fn clifford_t_phase_sequence(k: u8) -> Vec<Gate> {
    use Gate::*;
    match k % 8 {
        0 => vec![],
        1 => vec![T],
        2 => vec![S],
        3 => vec![S, T],
        4 => vec![S, S],
        5 => vec![Sdg, Tdg], // −3π/4
        6 => vec![Sdg],
        7 => vec![Tdg],
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::hs_distance;
    use std::f64::consts::FRAC_PI_4;

    fn check_equiv(original: &Circuit, rebased: &Circuit) {
        let d = hs_distance(&original.unitary(), &rebased.unitary());
        assert!(d < 1e-6, "rebase changed semantics, Δ = {d}");
    }

    fn exotic_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::T, &[1]);
        c.push(Gate::Cz, &[0, 1]);
        c.push(Gate::Cp(0.7), &[1, 2]);
        c.push(Gate::Swap, &[0, 2]);
        c.push(Gate::Rzz(0.4), &[1, 2]);
        c.push(Gate::Ryy(-0.8), &[0, 1]);
        c.push(Gate::Rxx(1.1), &[0, 2]);
        c.push(Gate::Ccx, &[0, 1, 2]);
        c.push(Gate::Ccz, &[2, 1, 0]);
        c.push(Gate::U3(0.3, -0.5, 1.7), &[2]);
        c.push(Gate::Sx, &[1]);
        c.push(Gate::Y, &[0]);
        c.push(Gate::Crz(0.33), &[2, 0]);
        c
    }

    #[test]
    fn rebase_into_continuous_sets_preserves_semantics() {
        let c = exotic_circuit();
        for set in [
            GateSet::Ibmq20,
            GateSet::IbmEagle,
            GateSet::Ionq,
            GateSet::Nam,
        ] {
            let r = rebase(&c, set).unwrap_or_else(|e| panic!("{set}: {e}"));
            for ins in r.iter() {
                assert!(set.contains(ins.gate), "{set}: leaked gate {}", ins.gate);
            }
            check_equiv(&c, &r);
        }
    }

    #[test]
    fn rebase_clifford_t_circuit() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::T, &[1]);
        c.push(Gate::S, &[2]);
        c.push(Gate::Z, &[0]);
        c.push(Gate::Y, &[1]);
        c.push(Gate::Sx, &[2]);
        c.push(Gate::Cz, &[0, 1]);
        c.push(Gate::Ccx, &[0, 1, 2]);
        c.push(Gate::Rz(FRAC_PI_4), &[0]);
        c.push(Gate::P(-FRAC_PI_2), &[1]);
        c.push(Gate::Swap, &[1, 2]);
        let r = rebase(&c, GateSet::CliffordT).unwrap();
        for ins in r.iter() {
            assert!(
                GateSet::CliffordT.contains(ins.gate),
                "leaked gate {}",
                ins.gate
            );
        }
        check_equiv(&c, &r);
    }

    #[test]
    fn clifford_t_rejects_generic_angles() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0.3), &[0]);
        let e = rebase(&c, GateSet::CliffordT).unwrap_err();
        assert!(e.to_string().contains("pi/4"));
    }

    #[test]
    fn phase_sequences_match_angles() {
        for k in 0u8..8 {
            let mut c = Circuit::new(1);
            for g in clifford_t_phase_sequence(k) {
                c.push(g, &[0]);
            }
            let target = qmath::gates::rz(k as f64 * FRAC_PI_4);
            assert!(hs_distance(&c.unitary(), &target) < 1e-7, "k = {k}");
        }
    }

    #[test]
    fn single_gates_roundtrip_through_each_set() {
        let singles = [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rx(0.9),
            Gate::Ry(-0.4),
            Gate::Rz(2.0),
            Gate::U3(1.2, 0.3, -0.7),
        ];
        for set in [
            GateSet::Ibmq20,
            GateSet::IbmEagle,
            GateSet::Ionq,
            GateSet::Nam,
        ] {
            for g in singles {
                let mut c = Circuit::new(1);
                c.push(g, &[0]);
                let r = rebase(&c, set).unwrap();
                check_equiv(&c, &r);
            }
        }
    }

    #[test]
    fn cx_into_ionq() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        let r = rebase(&c, GateSet::Ionq).unwrap();
        assert!(r.iter().all(|i| GateSet::Ionq.contains(i.gate)));
        assert_eq!(r.count_where(|i| matches!(i.gate, Gate::Rxx(_))), 1);
        check_equiv(&c, &r);
    }

    #[test]
    fn cx_reversed_into_ionq() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[1, 0]);
        let r = rebase(&c, GateSet::Ionq).unwrap();
        check_equiv(&c, &r);
    }

    #[test]
    fn rebase_identity_on_native_circuit() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(0.5), &[0]);
        c.push(Gate::Sx, &[1]);
        c.push(Gate::Cx, &[0, 1]);
        let r = rebase(&c, GateSet::IbmEagle).unwrap();
        assert_eq!(r.len(), c.len());
    }

    #[test]
    fn rebase_is_idempotent_semantically() {
        let c = exotic_circuit();
        let r1 = rebase(&c, GateSet::IbmEagle).unwrap();
        let r2 = rebase(&r1, GateSet::IbmEagle).unwrap();
        check_equiv(&r1, &r2);
        assert_eq!(r1.len(), r2.len());
    }
}
