//! `CircuitDelta` — a stable, versioned serialized form of circuit
//! edits.
//!
//! The incremental engine's native currency is the [`Patch`]: a local
//! edit against the current circuit. A [`CircuitDelta`] packages an
//! *ordered sequence* of patches as a value with a stable wire
//! encoding, so an edit script can leave the process — streamed to a
//! client as a `DELTA` frame, appended to a job journal, replayed
//! after a restart — and still reproduce the exact circuit it was
//! recorded against, bit for bit.
//!
//! Why a sequence and not a single patch? Between two best-so-far
//! improvements the search accepts many moves (plateau and worsening
//! accepts included), so the edit from one served best to the next is
//! in general *not* expressible as one `(removed, replacement,
//! insert_at)` patch — single patches are not closed under
//! composition. An op *list* is: [`compose`](CircuitDelta::compose) is
//! concatenation, and applying a composed delta equals applying the
//! parts in order. That closure property is what makes checkpoint +
//! delta-stream framing work (see the `qserve` protocol v2): any
//! suffix of a stream re-applies cleanly onto the last full-circuit
//! checkpoint.
//!
//! # Encoding
//!
//! One line of ASCII, no `\n`/`\r` (so it can travel as the free-form
//! tail field of a line-delimited protocol frame):
//!
//! ```text
//! CD1 b=<base_len> n=<new_len> <op> <op> ...
//! op    = -<removed csv>@<insert_at>+<instr(;instr)*>
//! instr = <name>[(<hex-f64>(,<hex-f64>)*)]:<qubit(,qubit)*>
//! ```
//!
//! Gate parameters are encoded as the hexadecimal of their IEEE-754
//! bit pattern (`f64::to_bits`), so decoding reproduces the exact
//! float — no shortest-round-trip or precision subtleties, which is
//! what "replaying the stream reconstructs the served circuit bit for
//! bit" rests on.
//!
//! ```
//! use qcir::{Circuit, Gate};
//! use qcir::delta::CircuitDelta;
//! use qcir::edit::Patch;
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::Cx, &[0, 1]);
//! c.push(Gate::Cx, &[0, 1]);
//! let delta = CircuitDelta::from_ops(2, vec![Patch::new(vec![0, 1], Vec::new(), 0)]);
//! let wire = delta.encode();
//! let back = CircuitDelta::decode(&wire).unwrap();
//! let mut replayed = c.clone();
//! back.apply(&mut replayed).unwrap();
//! assert!(replayed.is_empty());
//! ```

use crate::circuit::{Circuit, Instruction, Qubit};
use crate::edit::Patch;
use crate::gate::Gate;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// The current encoding version (the `CD1` tag). Decoders reject
/// versions they do not know; the version only changes when the wire
/// grammar does.
pub const DELTA_VERSION: u32 = 1;

/// A malformed or inapplicable delta.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delta error: {}", self.message)
    }
}

impl Error for DeltaError {}

fn derr(message: impl Into<String>) -> DeltaError {
    DeltaError {
        message: message.into(),
    }
}

/// A versioned, serializable edit script: an ordered list of
/// [`Patch`]es applied to a circuit of a declared length. See the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitDelta {
    base_len: usize,
    new_len: usize,
    ops: Vec<Patch>,
}

impl CircuitDelta {
    /// An empty delta over a circuit of `len` instructions (applies as
    /// a no-op).
    pub fn identity(len: usize) -> Self {
        CircuitDelta {
            base_len: len,
            new_len: len,
            ops: Vec::new(),
        }
    }

    /// Packages an op sequence against a base circuit of `base_len`
    /// instructions. The resulting length is derived from the ops'
    /// [`Patch::len_delta`]s.
    pub fn from_ops(base_len: usize, ops: Vec<Patch>) -> Self {
        let new_len = ops.iter().fold(base_len as isize, |n, op| {
            debug_assert!(n + op.len_delta() >= 0, "op shrinks below empty");
            n + op.len_delta()
        });
        CircuitDelta {
            base_len,
            new_len: new_len.max(0) as usize,
            ops,
        }
    }

    /// The minimal single-op delta turning `old` into `new`: the
    /// common prefix and suffix are trimmed and one op replaces the
    /// differing middle window. Used where only the before/after
    /// circuits are available (e.g. the sharded engine's per-epoch
    /// commits, which reassemble the master from shard results instead
    /// of producing patches).
    ///
    /// # Panics
    ///
    /// Panics if the circuits disagree on qubit count (a delta never
    /// changes the register).
    pub fn diff(old: &Circuit, new: &Circuit) -> Self {
        assert_eq!(
            old.num_qubits(),
            new.num_qubits(),
            "delta cannot change the register size"
        );
        let a = old.instructions();
        let b = new.instructions();
        let prefix = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
        let max_suffix = a.len().min(b.len()) - prefix;
        let suffix = (0..max_suffix)
            .take_while(|&k| a[a.len() - 1 - k] == b[b.len() - 1 - k])
            .count();
        if a.len() == b.len() && prefix == a.len() {
            return Self::identity(a.len());
        }
        let removed: Vec<usize> = (prefix..a.len() - suffix).collect();
        let replacement: Vec<Instruction> = b[prefix..b.len() - suffix].to_vec();
        CircuitDelta {
            base_len: a.len(),
            new_len: b.len(),
            ops: vec![Patch::new(removed, replacement, prefix)],
        }
    }

    /// Instruction count of the circuit this delta applies to.
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Instruction count after applying this delta.
    pub fn new_len(&self) -> usize {
        self.new_len
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[Patch] {
        &self.ops
    }

    /// True when applying this delta is a no-op.
    pub fn is_identity(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the delta to `circuit` in place.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaError`] (leaving the circuit possibly partially
    /// edited only on an internally inconsistent delta; a length or
    /// bounds mismatch on the *first* op leaves it untouched) when the
    /// circuit's length differs from [`Self::base_len`] or an op's
    /// indices/qubits fall out of range.
    pub fn apply(&self, circuit: &mut Circuit) -> Result<(), DeltaError> {
        if circuit.len() != self.base_len {
            return Err(derr(format!(
                "delta expects a {}-instruction base, circuit has {}",
                self.base_len,
                circuit.len()
            )));
        }
        for op in &self.ops {
            let n = circuit.len();
            if op.insert_at() > n {
                return Err(derr(format!("insert_at {} out of range", op.insert_at())));
            }
            if let Some(&last) = op.removed().last() {
                if last >= n {
                    return Err(derr(format!("removed index {last} out of range")));
                }
            }
            for ins in op.replacement() {
                for &q in ins.qubits() {
                    if q as usize >= circuit.num_qubits() {
                        return Err(derr(format!("replacement qubit {q} out of range")));
                    }
                }
            }
            circuit.apply_patch(op);
        }
        if circuit.len() != self.new_len {
            return Err(derr(format!(
                "delta declared {} resulting instructions, got {}",
                self.new_len,
                circuit.len()
            )));
        }
        Ok(())
    }

    /// Composes `self` (applied first) with `next`: the returned delta
    /// maps `self`'s base directly to `next`'s result. Composition is
    /// op-list concatenation — applying the composed delta to a
    /// checkpoint equals replaying the stream op by op (the property
    /// the round-trip suite pins down).
    ///
    /// # Errors
    ///
    /// Returns [`DeltaError`] when the lengths do not chain
    /// (`self.new_len() != next.base_len()`).
    pub fn compose(&self, next: &CircuitDelta) -> Result<CircuitDelta, DeltaError> {
        if self.new_len != next.base_len {
            return Err(derr(format!(
                "cannot compose: first delta yields {} instructions, second expects {}",
                self.new_len, next.base_len
            )));
        }
        let mut ops = self.ops.clone();
        ops.extend(next.ops.iter().cloned());
        Ok(CircuitDelta {
            base_len: self.base_len,
            new_len: next.new_len,
            ops,
        })
    }

    /// Serializes the delta as one newline-free ASCII line (see the
    /// [module docs](self) for the grammar).
    pub fn encode(&self) -> String {
        let mut s = String::with_capacity(32 + self.ops.len() * 24);
        let _ = write!(
            s,
            "CD{DELTA_VERSION} b={} n={}",
            self.base_len, self.new_len
        );
        for op in &self.ops {
            s.push_str(" -");
            for (i, r) in op.removed().iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{r}");
            }
            let _ = write!(s, "@{}+", op.insert_at());
            for (i, ins) in op.replacement().iter().enumerate() {
                if i > 0 {
                    s.push(';');
                }
                encode_instruction(&mut s, ins);
            }
        }
        debug_assert!(!s.contains('\n') && !s.contains('\r'));
        s
    }

    /// Parses a delta previously produced by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DeltaError`] on an unknown version tag or any
    /// grammatical or consistency violation (non-ascending removed
    /// indices, malformed instructions, a declared `n=` that the ops do
    /// not produce).
    pub fn decode(line: &str) -> Result<CircuitDelta, DeltaError> {
        let mut tokens = line.split(' ').filter(|t| !t.is_empty());
        match tokens.next() {
            Some(tag) if tag == format!("CD{DELTA_VERSION}") => {}
            Some(tag) if tag.starts_with("CD") => {
                return Err(derr(format!("unsupported delta version `{tag}`")))
            }
            other => return Err(derr(format!("missing CD version tag, got {other:?}"))),
        }
        let base_len = parse_tagged(tokens.next(), "b")?;
        let new_len = parse_tagged(tokens.next(), "n")?;
        let mut ops = Vec::new();
        for tok in tokens {
            ops.push(decode_op(tok)?);
        }
        let derived = ops
            .iter()
            .fold(base_len as isize, |n, op: &Patch| n + op.len_delta());
        if derived != new_len as isize {
            return Err(derr(format!(
                "ops produce {derived} instructions but n={new_len} declared"
            )));
        }
        Ok(CircuitDelta {
            base_len,
            new_len,
            ops,
        })
    }
}

fn parse_tagged(tok: Option<&str>, key: &str) -> Result<usize, DeltaError> {
    let tok = tok.ok_or_else(|| derr(format!("missing `{key}=` field")))?;
    let val = tok
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| derr(format!("expected `{key}=`, got `{tok}`")))?;
    val.parse()
        .map_err(|_| derr(format!("bad integer in `{tok}`")))
}

fn encode_instruction(s: &mut String, ins: &Instruction) {
    s.push_str(ins.gate.name());
    let params = ins.gate.params();
    if !params.is_empty() {
        s.push('(');
        for (i, p) in params.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{:x}", p.to_bits());
        }
        s.push(')');
    }
    s.push(':');
    for (i, q) in ins.qubits().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{q}");
    }
}

fn decode_op(tok: &str) -> Result<Patch, DeltaError> {
    let body = tok
        .strip_prefix('-')
        .ok_or_else(|| derr(format!("op must start with `-`: `{tok}`")))?;
    let at = body
        .find('@')
        .ok_or_else(|| derr(format!("op missing `@`: `{tok}`")))?;
    let removed_csv = &body[..at];
    let rest = &body[at + 1..];
    let plus = rest
        .find('+')
        .ok_or_else(|| derr(format!("op missing `+`: `{tok}`")))?;
    let insert_at: usize = rest[..plus]
        .parse()
        .map_err(|_| derr(format!("bad insert index in `{tok}`")))?;
    let mut removed: Vec<usize> = Vec::new();
    if !removed_csv.is_empty() {
        for part in removed_csv.split(',') {
            let idx: usize = part
                .parse()
                .map_err(|_| derr(format!("bad removed index `{part}`")))?;
            if let Some(&prev) = removed.last() {
                if idx <= prev {
                    return Err(derr("removed indices must be strictly ascending"));
                }
            }
            removed.push(idx);
        }
    }
    let mut replacement = Vec::new();
    let instrs = &rest[plus + 1..];
    if !instrs.is_empty() {
        for itok in instrs.split(';') {
            replacement.push(decode_instruction(itok)?);
        }
    }
    Ok(Patch::new(removed, replacement, insert_at))
}

fn decode_instruction(tok: &str) -> Result<Instruction, DeltaError> {
    let colon = tok
        .rfind(':')
        .ok_or_else(|| derr(format!("instruction missing `:`: `{tok}`")))?;
    let head = &tok[..colon];
    let (name, params) = match head.find('(') {
        Some(open) => {
            let close = head
                .rfind(')')
                .ok_or_else(|| derr(format!("unclosed parameter list in `{tok}`")))?;
            let mut params = Vec::new();
            for p in head[open + 1..close].split(',') {
                let bits = u64::from_str_radix(p, 16)
                    .map_err(|_| derr(format!("bad hex parameter `{p}`")))?;
                params.push(f64::from_bits(bits));
            }
            (&head[..open], params)
        }
        None => (head, Vec::new()),
    };
    let gate = Gate::from_name(name, &params)
        .ok_or_else(|| derr(format!("unknown gate or parameter count in `{tok}`")))?;
    let mut qubits: Vec<Qubit> = Vec::new();
    for q in tok[colon + 1..].split(',') {
        let q: Qubit = q
            .parse()
            .map_err(|_| derr(format!("bad qubit index in `{tok}`")))?;
        if qubits.contains(&q) {
            return Err(derr(format!("repeated qubit {q} in `{tok}`")));
        }
        qubits.push(q);
    }
    if qubits.len() != gate.arity() {
        return Err(derr(format!(
            "gate {name} expects {} operands, got {}",
            gate.arity(),
            qubits.len()
        )));
    }
    Ok(Instruction::new(gate, &qubits))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.123_456_789_012_345_67), &[2]);
        c.push(Gate::Cx, &[1, 2]);
        c.push(Gate::U3(0.3, -1.7, std::f64::consts::PI), &[1]);
        c
    }

    #[test]
    fn roundtrip_preserves_ops_and_floats_exactly() {
        let ops = vec![
            Patch::new(vec![1, 3], Vec::new(), 1),
            Patch::new(
                vec![0],
                vec![
                    Instruction::new(Gate::Rz(1e-17 + 0.7), &[2]),
                    Instruction::new(Gate::Cx, &[2, 0]),
                ],
                0,
            ),
        ];
        let d = CircuitDelta::from_ops(5, ops);
        let back = CircuitDelta::decode(&d.encode()).unwrap();
        assert_eq!(back, d);
        // Bit-exact parameters survive the hex codec.
        match back.ops()[1].replacement()[0].gate {
            Gate::Rz(a) => assert_eq!(a.to_bits(), (1e-17f64 + 0.7).to_bits()),
            ref g => panic!("unexpected {g:?}"),
        }
    }

    #[test]
    fn apply_matches_direct_patches() {
        let base = sample();
        let ops = vec![
            Patch::new(vec![1, 3], Vec::new(), 1),
            Patch::new(vec![2], vec![Instruction::new(Gate::T, &[0])], 1),
        ];
        let mut direct = base.clone();
        for op in &ops {
            direct.apply_patch(op);
        }
        let d = CircuitDelta::from_ops(base.len(), ops);
        let wire = d.encode();
        let mut replayed = base.clone();
        CircuitDelta::decode(&wire)
            .unwrap()
            .apply(&mut replayed)
            .unwrap();
        assert_eq!(replayed, direct);
        assert_eq!(d.new_len(), direct.len());
    }

    #[test]
    fn compose_equals_sequential_application() {
        let base = sample();
        let d1 = CircuitDelta::from_ops(5, vec![Patch::new(vec![0], Vec::new(), 0)]);
        let d2 = CircuitDelta::from_ops(
            4,
            vec![Patch::new(
                vec![1, 2],
                vec![Instruction::new(Gate::X, &[1])],
                1,
            )],
        );
        let composed = d1.compose(&d2).unwrap();
        let mut seq = base.clone();
        d1.apply(&mut seq).unwrap();
        d2.apply(&mut seq).unwrap();
        let mut one = base.clone();
        composed.apply(&mut one).unwrap();
        assert_eq!(one, seq);
        // Mismatched chaining is refused.
        assert!(d2.compose(&d2).is_err());
    }

    #[test]
    fn diff_reconstructs_and_trims() {
        let old = sample();
        let mut new = Circuit::new(3);
        new.push(Gate::H, &[0]); // shared prefix
        new.push(Gate::Z, &[2]); // differing middle
        new.push(Gate::U3(0.3, -1.7, std::f64::consts::PI), &[1]); // shared suffix
        let d = CircuitDelta::diff(&old, &new);
        assert_eq!(d.base_len(), old.len());
        assert_eq!(d.new_len(), new.len());
        assert_eq!(d.ops().len(), 1);
        // Prefix (1) and suffix (1) are outside the op window.
        assert_eq!(d.ops()[0].removed(), &[1, 2, 3]);
        let mut replayed = old.clone();
        d.apply(&mut replayed).unwrap();
        assert_eq!(replayed, new);
        // Equal circuits diff to the identity.
        assert!(CircuitDelta::diff(&old, &old).is_identity());
    }

    #[test]
    fn apply_validates_base_and_bounds() {
        let mut short = Circuit::new(3);
        short.push(Gate::H, &[0]);
        let d = CircuitDelta::from_ops(5, vec![Patch::new(vec![4], Vec::new(), 0)]);
        assert!(d.apply(&mut short).is_err());
        let mut base = sample();
        let oob = CircuitDelta::from_ops(
            5,
            vec![Patch::new(
                vec![0],
                vec![Instruction::new(Gate::X, &[9])],
                0,
            )],
        );
        assert!(oob.apply(&mut base).is_err());
        assert_eq!(base, sample(), "failed eligibility check must not edit");
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        for bad in [
            "",
            "CD9 b=0 n=0",
            "CD1 b=x n=0",
            "CD1 b=0",
            "CD1 b=2 n=0 -0,0@0+",
            "CD1 b=2 n=1 -@0+x:0",       // n inconsistent with ops
            "CD1 b=2 n=2 -0@0+frob:0",   // unknown gate
            "CD1 b=2 n=2 -0@0+cx:1,1",   // repeated qubit
            "CD1 b=2 n=2 -0@0+rz(zz):0", // bad hex
        ] {
            assert!(CircuitDelta::decode(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn identity_roundtrip() {
        let d = CircuitDelta::identity(7);
        assert!(d.is_identity());
        let back = CircuitDelta::decode(&d.encode()).unwrap();
        assert_eq!(back, d);
        let mut c = Circuit::new(1);
        for _ in 0..7 {
            c.push(Gate::X, &[0]);
        }
        back.apply(&mut c).unwrap();
        assert_eq!(c.len(), 7);
    }
}
