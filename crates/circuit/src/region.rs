//! Convex subcircuit regions.
//!
//! GUOQ applies transformations to *subcircuits* — convex subgraphs of the
//! circuit DAG (paper §3). We represent a subcircuit as a [`Region`]: a
//! qubit set `Q` plus a position window `[lo, hi]` with the invariant that
//! every instruction inside the window acts either entirely on `Q` or not
//! on `Q` at all.
//!
//! That invariant makes the region's member set convex (a path can only
//! leave the members through a wire of `Q`, and the next gate on a `Q`
//! wire inside the window is itself a member), and makes replacement
//! trivially sound: the non-member instructions inside the window act on
//! disjoint qubits and therefore commute with the replacement.

use crate::circuit::{Circuit, Instruction, Qubit};
use crate::edit::Patch;

/// A convex subcircuit: a qubit set and instruction window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    qubits: Vec<Qubit>,
    lo: usize,
    hi: usize,
}

/// Relationship between an instruction's qubits and a region's qubit set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Overlap {
    Inside,
    Disjoint,
    Partial,
}

fn classify(qs: &[Qubit], set: &[Qubit]) -> Overlap {
    let hits = qs.iter().filter(|q| set.contains(q)).count();
    if hits == 0 {
        Overlap::Disjoint
    } else if hits == qs.len() {
        Overlap::Inside
    } else {
        Overlap::Partial
    }
}

impl Region {
    /// Grows a region around the instruction at `anchor`, greedily
    /// absorbing neighbouring gates while the qubit set stays within
    /// `max_qubits` (mirrors the paper's §5.3 subcircuit selection).
    ///
    /// The window is extended to the right and left alternately; when an
    /// extension would force the qubit set beyond `max_qubits`, that side
    /// is blocked permanently.
    ///
    /// Returns `None` if the anchor gate alone already exceeds
    /// `max_qubits`.
    ///
    /// # Panics
    ///
    /// Panics if `anchor` is out of bounds.
    pub fn grow(circuit: &Circuit, anchor: usize, max_qubits: usize) -> Option<Region> {
        let instrs = circuit.instructions();
        assert!(anchor < instrs.len(), "anchor out of bounds");
        let mut qubits: Vec<Qubit> = instrs[anchor].qubits().to_vec();
        qubits.sort_unstable();
        if qubits.len() > max_qubits {
            return None;
        }
        let (mut lo, mut hi) = (anchor, anchor);
        let (mut blocked_l, mut blocked_r) = (false, false);

        // Attempt to include position `j`; possibly grows `qubits` (with
        // closure over the whole current window). Returns false if blocked.
        let try_include = |qubits: &mut Vec<Qubit>, lo: usize, hi: usize, j: usize| -> bool {
            match classify(instrs[j].qubits(), qubits) {
                Overlap::Inside | Overlap::Disjoint => true,
                Overlap::Partial => {
                    // Candidate qubit set: closure over the extended window.
                    let mut cand = qubits.clone();
                    for &q in instrs[j].qubits() {
                        if !cand.contains(&q) {
                            cand.push(q);
                        }
                    }
                    let (wlo, whi) = (lo.min(j), hi.max(j));
                    loop {
                        if cand.len() > max_qubits {
                            return false;
                        }
                        let mut grew = false;
                        for ins in &instrs[wlo..=whi] {
                            if classify(ins.qubits(), &cand) == Overlap::Partial {
                                for &q in ins.qubits() {
                                    if !cand.contains(&q) {
                                        cand.push(q);
                                        grew = true;
                                    }
                                }
                            }
                        }
                        if !grew {
                            break;
                        }
                    }
                    if cand.len() > max_qubits {
                        return false;
                    }
                    cand.sort_unstable();
                    *qubits = cand;
                    true
                }
            }
        };

        while !(blocked_l && blocked_r) {
            if !blocked_r {
                if hi + 1 < instrs.len() {
                    if try_include(&mut qubits, lo, hi, hi + 1) {
                        hi += 1;
                    } else {
                        blocked_r = true;
                    }
                } else {
                    blocked_r = true;
                }
            }
            if !blocked_l {
                if lo > 0 {
                    if try_include(&mut qubits, lo, hi, lo - 1) {
                        lo -= 1;
                    } else {
                        blocked_l = true;
                    }
                } else {
                    blocked_l = true;
                }
            }
        }

        // Shrink the window so it starts and ends with member gates (the
        // disjoint padding at the edges carries no information).
        let is_member = |j: usize| classify(instrs[j].qubits(), &qubits) == Overlap::Inside;
        while lo < hi && !is_member(lo) {
            lo += 1;
        }
        while hi > lo && !is_member(hi) {
            hi -= 1;
        }
        Some(Region { qubits, lo, hi })
    }

    /// Rightward-only growth for disjoint partitioning (BQSKit-style
    /// scan-line partitioners): grows a region from `anchor` towards
    /// higher positions only, never absorbing an instruction marked in
    /// `excluded`. Excluded instructions inside the window must stay
    /// disjoint from the region's qubits (they belong to other
    /// partitions), so extension stops before any overlapping one.
    ///
    /// Returns `None` if the anchor is excluded or wider than
    /// `max_qubits`.
    ///
    /// # Panics
    ///
    /// Panics if `anchor` is out of bounds or `excluded` is shorter than
    /// the instruction list.
    pub fn grow_after(
        circuit: &Circuit,
        anchor: usize,
        max_qubits: usize,
        excluded: &[bool],
    ) -> Option<Region> {
        let instrs = circuit.instructions();
        assert!(anchor < instrs.len(), "anchor out of bounds");
        assert!(excluded.len() >= instrs.len(), "excluded mask too short");
        if excluded[anchor] {
            return None;
        }
        let mut qubits: Vec<Qubit> = instrs[anchor].qubits().to_vec();
        qubits.sort_unstable();
        if qubits.len() > max_qubits {
            return None;
        }
        let lo = anchor;
        let mut hi = anchor;
        'extend: while hi + 1 < instrs.len() {
            let j = hi + 1;
            match classify(instrs[j].qubits(), &qubits) {
                Overlap::Disjoint => hi = j,
                Overlap::Inside => {
                    if excluded[j] {
                        break 'extend;
                    }
                    hi = j;
                }
                Overlap::Partial => {
                    if excluded[j] {
                        break 'extend;
                    }
                    // Try to absorb by growing the qubit set, with closure
                    // over the window; every excluded instruction in the
                    // window must stay disjoint from the new set.
                    let mut cand = qubits.clone();
                    for &q in instrs[j].qubits() {
                        if !cand.contains(&q) {
                            cand.push(q);
                        }
                    }
                    loop {
                        if cand.len() > max_qubits {
                            break 'extend;
                        }
                        let mut grew = false;
                        for (k, ins) in instrs.iter().enumerate().take(j + 1).skip(lo) {
                            let cls = classify(ins.qubits(), &cand);
                            if excluded[k] && cls != Overlap::Disjoint {
                                break 'extend;
                            }
                            if !excluded[k] && cls == Overlap::Partial {
                                for &q in ins.qubits() {
                                    if !cand.contains(&q) {
                                        cand.push(q);
                                        grew = true;
                                    }
                                }
                            }
                        }
                        if !grew {
                            break;
                        }
                    }
                    if cand.len() > max_qubits {
                        break 'extend;
                    }
                    cand.sort_unstable();
                    qubits = cand;
                    hi = j;
                }
            }
        }
        // Shrink so the window ends on a member gate.
        let is_member =
            |k: usize| !excluded[k] && classify(instrs[k].qubits(), &qubits) == Overlap::Inside;
        while hi > lo && !is_member(hi) {
            hi -= 1;
        }
        Some(Region { qubits, lo, hi })
    }

    /// Builds a region directly from parts, validating the invariant.
    ///
    /// Returns `None` if some instruction in the window acts on the qubit
    /// set only partially.
    pub fn from_window(
        circuit: &Circuit,
        qubits: Vec<Qubit>,
        lo: usize,
        hi: usize,
    ) -> Option<Region> {
        if hi >= circuit.len() || lo > hi {
            return None;
        }
        let mut qubits = qubits;
        qubits.sort_unstable();
        qubits.dedup();
        for ins in &circuit.instructions()[lo..=hi] {
            if classify(ins.qubits(), &qubits) == Overlap::Partial {
                return None;
            }
        }
        Some(Region { qubits, lo, hi })
    }

    /// The region's qubit set, sorted ascending.
    pub fn qubits(&self) -> &[Qubit] {
        &self.qubits
    }

    /// Start of the instruction window (inclusive).
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// End of the instruction window (inclusive).
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Indices of the member instructions (window gates fully on `Q`).
    pub fn member_indices(&self, circuit: &Circuit) -> Vec<usize> {
        (self.lo..=self.hi)
            .filter(|&j| {
                classify(circuit.instructions()[j].qubits(), &self.qubits) == Overlap::Inside
            })
            .collect()
    }

    /// Extracts the member subcircuit with qubits renumbered to
    /// `0..qubits.len()` (by ascending global index). Returns the local
    /// circuit; the mapping back to global qubits is [`Self::qubits`].
    pub fn extract(&self, circuit: &Circuit) -> Circuit {
        let mut local = Circuit::new(self.qubits.len());
        for j in self.member_indices(circuit) {
            let ins = circuit.instructions()[j];
            let qs: Vec<Qubit> = ins
                .qubits()
                .iter()
                .map(|q| self.qubits.iter().position(|g| g == q).unwrap() as Qubit)
                .collect();
            local.push(ins.gate, &qs);
        }
        local
    }

    /// Expresses "replace the member gates with `replacement`" as a
    /// [`Patch`]: the members are removed and the replacement (mapped
    /// back to global qubits) is spliced in just after the window, where
    /// it commutes past the window's disjoint spectator gates. Applying
    /// the patch costs O(window), not O(circuit) — the substrate for
    /// in-place resynthesis commits.
    ///
    /// # Panics
    ///
    /// Panics if `replacement.num_qubits()` differs from the region's
    /// qubit count, if the window is out of bounds for `circuit`, or if
    /// the window violates the region invariant (a gate partially
    /// overlapping the qubit set — the region was built for a different
    /// circuit).
    pub fn replacement_patch(&self, circuit: &Circuit, replacement: &Circuit) -> Patch {
        assert_eq!(
            replacement.num_qubits(),
            self.qubits.len(),
            "replacement qubit count mismatch"
        );
        assert!(self.hi < circuit.len(), "region out of bounds");
        // The emitted patch is only sound if the window invariant holds
        // (a partially-overlapping gate would not commute with the
        // replacement); a region used against a circuit it was not
        // built for must fail here, not splice silently. O(window),
        // like the member_indices walk below.
        assert!(
            circuit.instructions()[self.lo..=self.hi]
                .iter()
                .all(|ins| classify(ins.qubits(), &self.qubits) != Overlap::Partial),
            "region invariant violated"
        );
        let mapped: Vec<Instruction> = replacement
            .iter()
            .map(|ins| {
                let qs: Vec<Qubit> = ins
                    .qubits()
                    .iter()
                    .map(|&q| self.qubits[q as usize])
                    .collect();
                Instruction::new(ins.gate, &qs)
            })
            .collect();
        Patch::new(self.member_indices(circuit), mapped, self.hi + 1)
    }

    /// Replaces the member gates with `replacement` (a circuit on the
    /// region's local qubits), leaving the interleaved disjoint gates in
    /// place. Returns the new circuit; only the region window is
    /// rewritten (one [`Patch`] splice), everything outside it is copied
    /// once.
    ///
    /// # Panics
    ///
    /// Panics if `replacement.num_qubits()` differs from the region's
    /// qubit count or if the window is out of bounds for `circuit`.
    pub fn replace(&self, circuit: &Circuit, replacement: &Circuit) -> Circuit {
        circuit.with_patch(&self.replacement_patch(circuit, replacement))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use qmath::hs_distance;

    fn sample() -> Circuit {
        let mut c = Circuit::new(4);
        c.push(Gate::H, &[0]); // 0
        c.push(Gate::Cx, &[0, 1]); // 1
        c.push(Gate::T, &[3]); // 2 (disjoint spectator)
        c.push(Gate::Cx, &[1, 2]); // 3
        c.push(Gate::H, &[2]); // 4
        c.push(Gate::Cx, &[2, 3]); // 5
        c
    }

    #[test]
    fn grow_respects_qubit_limit() {
        let c = sample();
        let r = Region::grow(&c, 1, 2).unwrap();
        assert!(r.qubits().len() <= 2);
        assert!(r.member_indices(&c).contains(&1));
        for &m in &r.member_indices(&c) {
            for &q in c.instructions()[m].qubits() {
                assert!(r.qubits().contains(&q));
            }
        }
    }

    #[test]
    fn grow_from_each_anchor_is_valid() {
        let c = sample();
        for anchor in 0..c.len() {
            for maxq in 1..=4 {
                if let Some(r) = Region::grow(&c, anchor, maxq) {
                    assert!(r.qubits().len() <= maxq);
                    // Window invariant: no partial overlap inside.
                    for ins in &c.instructions()[r.lo()..=r.hi()] {
                        let hits = ins
                            .qubits()
                            .iter()
                            .filter(|q| r.qubits().contains(q))
                            .count();
                        assert!(hits == 0 || hits == ins.qubits().len());
                    }
                }
            }
        }
    }

    #[test]
    fn grow_with_three_qubits_covers_chain() {
        let c = sample();
        let r = Region::grow(&c, 3, 3).unwrap();
        // Qubits {0,1,2} or {1,2,3} both possible depending on growth; the
        // anchor's own qubits must be present.
        assert!(r.qubits().contains(&1) && r.qubits().contains(&2));
        assert_eq!(r.qubits().len(), 3);
    }

    #[test]
    fn extract_renumbers_locally() {
        let c = sample();
        let r = Region::from_window(&c, vec![1, 2], 3, 4).unwrap();
        let local = r.extract(&c);
        assert_eq!(local.num_qubits(), 2);
        assert_eq!(local.len(), 2);
        assert_eq!(local.instructions()[0].qubits(), &[0, 1]);
        assert_eq!(local.instructions()[1].qubits(), &[1]);
    }

    #[test]
    fn replace_preserves_global_semantics() {
        let c = sample();
        let r = Region::from_window(&c, vec![1, 2], 3, 4).unwrap();
        let local = r.extract(&c);
        // Replace by an equivalent circuit: CX then H == itself (identity
        // check) and a genuinely different but equivalent form.
        let replaced = r.replace(&c, &local);
        assert!(hs_distance(&replaced.unitary(), &c.unitary()) < 1e-7);
        // The spectator T on qubit 3 must survive.
        assert_eq!(replaced.count_where(|i| matches!(i.gate, Gate::T)), 1);
    }

    #[test]
    fn replace_with_smaller_circuit() {
        // CX; CX cancels — replace the pair with an empty circuit.
        let mut c = Circuit::new(3);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::T, &[2]);
        c.push(Gate::Cx, &[0, 1]);
        let r = Region::from_window(&c, vec![0, 1], 0, 2).unwrap();
        assert_eq!(r.member_indices(&c), vec![0, 2]);
        let empty = Circuit::new(2);
        let replaced = r.replace(&c, &empty);
        assert_eq!(replaced.len(), 1);
        assert!(hs_distance(&replaced.unitary(), &c.unitary()) < 1e-7);
    }

    #[test]
    fn replacement_patch_matches_legacy_emission_order() {
        // The patch-based replace must reproduce the historical order:
        // prefix, disjoint window spectators, replacement, suffix.
        let c = sample();
        let r = Region::from_window(&c, vec![1, 2], 3, 4).unwrap();
        let mut repl = Circuit::new(2);
        repl.push(Gate::Cz, &[0, 1]);
        let patch = r.replacement_patch(&c, &repl);
        assert_eq!(patch.removed(), &[3, 4]);
        assert_eq!(patch.insert_at(), 5);
        let out = r.replace(&c, &repl);
        let mut expect = Circuit::new(4);
        for ins in &c.instructions()[..3] {
            expect.push_instruction(*ins);
        }
        expect.push(Gate::Cz, &[1, 2]);
        expect.push(Gate::Cx, &[2, 3]);
        assert_eq!(out, expect);
    }

    #[test]
    fn from_window_rejects_partial_overlap() {
        let c = sample();
        // Window [1,3] with qubits {0,1}: instruction 3 = CX(1,2) partially
        // overlaps — must be rejected.
        assert!(Region::from_window(&c, vec![0, 1], 1, 3).is_none());
    }

    #[test]
    fn grow_after_respects_exclusions() {
        let c = sample();
        // Exclude instruction 1 (CX 0,1): growth from 0 must stop before
        // absorbing it.
        let mut excl = vec![false; c.len()];
        excl[1] = true;
        let r = Region::grow_after(&c, 0, 3, &excl).unwrap();
        assert!(!r.member_indices(&c).contains(&1));
        // And all members stay un-excluded.
        for m in r.member_indices(&c) {
            assert!(!excl[m]);
        }
    }

    #[test]
    fn grow_after_excluded_anchor_is_none() {
        let c = sample();
        let mut excl = vec![false; c.len()];
        excl[2] = true;
        assert!(Region::grow_after(&c, 2, 3, &excl).is_none());
    }

    #[test]
    fn grow_after_never_extends_left() {
        let c = sample();
        let excl = vec![false; c.len()];
        for anchor in 0..c.len() {
            if let Some(r) = Region::grow_after(&c, anchor, 2, &excl) {
                assert!(r.lo() >= anchor);
                for m in r.member_indices(&c) {
                    assert!(m >= anchor);
                }
            }
        }
    }

    #[test]
    fn grow_after_window_invariant_holds() {
        let c = sample();
        let excl = vec![false; c.len()];
        for anchor in 0..c.len() {
            for maxq in 1..=3 {
                if let Some(r) = Region::grow_after(&c, anchor, maxq, &excl) {
                    assert!(r.qubits().len() <= maxq);
                    for ins in &c.instructions()[r.lo()..=r.hi()] {
                        let hits = ins
                            .qubits()
                            .iter()
                            .filter(|q| r.qubits().contains(q))
                            .count();
                        assert!(hits == 0 || hits == ins.qubits().len());
                    }
                }
            }
        }
    }

    #[test]
    fn grow_region_replacement_roundtrip_random_anchors() {
        let c = sample();
        for anchor in 0..c.len() {
            if let Some(r) = Region::grow(&c, anchor, 3) {
                let local = r.extract(&c);
                let replaced = r.replace(&c, &local);
                assert!(
                    hs_distance(&replaced.unitary(), &c.unitary()) < 1e-7,
                    "anchor {anchor}"
                );
            }
        }
    }
}
