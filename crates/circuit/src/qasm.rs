//! OpenQASM 2.0 subset reader and writer.
//!
//! Supports the fragment needed to interchange benchmark circuits:
//! `OPENQASM 2.0`, one `qreg`, and applications of the gates in
//! [`crate::gate::Gate`]. Parameter expressions may use `pi`, numeric
//! literals, unary minus, `+ - * /`, and parentheses.

use crate::circuit::{Circuit, Qubit};
use crate::gate::Gate;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error from parsing a QASM document.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmError {
    /// 1-based line number of the offending statement.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for QasmError {}

fn err(line: usize, message: impl Into<String>) -> QasmError {
    QasmError {
        line,
        message: message.into(),
    }
}

/// Serializes a circuit as OpenQASM 2.0.
///
/// ```
/// use qcir::{Circuit, Gate, qasm};
/// let mut c = Circuit::new(2);
/// c.push(Gate::H, &[0]);
/// c.push(Gate::Cx, &[0, 1]);
/// let text = qasm::to_qasm(&c);
/// let back = qasm::from_qasm(&text).unwrap();
/// assert_eq!(back.len(), 2);
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    render_qasm(circuit, "\n")
}

/// Serializes a circuit as *single-line* OpenQASM 2.0: the same
/// statements as [`to_qasm`], separated by spaces instead of newlines.
///
/// QASM statements are `;`-terminated, so newlines are purely
/// cosmetic; [`from_qasm`] parses both forms identically. The
/// single-line form is what a line-delimited streaming protocol needs —
/// a whole circuit snapshot travels as one frame field with no escaping
/// (see the `qserve` crate). The output is guaranteed to contain no
/// `\n` or `\r`.
///
/// ```
/// use qcir::{Circuit, Gate, qasm};
/// let mut c = Circuit::new(2);
/// c.push(Gate::H, &[0]);
/// c.push(Gate::Cx, &[0, 1]);
/// let line = qasm::to_qasm_line(&c);
/// assert!(!line.contains('\n'));
/// assert_eq!(qasm::from_qasm(&line).unwrap(), c);
/// ```
pub fn to_qasm_line(circuit: &Circuit) -> String {
    let s = render_qasm(circuit, " ");
    debug_assert!(!s.contains('\n') && !s.contains('\r'));
    s
}

/// Shared emitter: one statement per `sep`-joined chunk. The statement
/// text itself is identical between the multi-line and single-line
/// forms, so `from_qasm(to_qasm_line(c))` and `from_qasm(to_qasm(c))`
/// produce the same circuit bit for bit.
fn render_qasm(circuit: &Circuit, sep: &str) -> String {
    let mut s = String::new();
    s.push_str("OPENQASM 2.0;");
    s.push_str(sep);
    s.push_str("include \"qelib1.inc\";");
    s.push_str(sep);
    let _ = write!(s, "qreg q[{}];", circuit.num_qubits());
    for ins in circuit.iter() {
        s.push_str(sep);
        let params = ins.gate.params();
        if params.is_empty() {
            let _ = write!(s, "{}", ins.gate.name());
        } else {
            let rendered: Vec<String> = params.iter().map(|&p| render_param(p)).collect();
            let _ = write!(s, "{}({})", ins.gate.name(), rendered.join(","));
        }
        let qs: Vec<String> = ins.qubits().iter().map(|q| format!("q[{q}]")).collect();
        let _ = write!(s, " {};", qs.join(","));
    }
    if sep == "\n" {
        s.push('\n');
    }
    s
}

/// Renders an angle so that [`from_qasm`] recovers the exact `f64`.
///
/// 17 fractional digits are enough for any magnitude ≥ 0.1 (and match
/// the historical golden-fixture format byte for byte), but lose
/// significant digits for smaller magnitudes — `0.015590366766198294`
/// truncates one digit short. Escalate precision only when the fixed
/// width fails to parse back, so established output bytes never change.
fn render_param(p: f64) -> String {
    let s = format!("{p:.17}");
    if s.parse::<f64>() == Ok(p) {
        return s;
    }
    for prec in 18..=40usize {
        let s = format!("{p:.prec$}");
        if s.parse::<f64>() == Ok(p) {
            return s;
        }
    }
    s
}

/// Parses an OpenQASM 2.0 document into a circuit.
///
/// # Errors
///
/// Returns [`QasmError`] on unsupported statements, unknown gates, malformed
/// expressions, or qubit indices out of range.
pub fn from_qasm(text: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stmt = match raw.find("//") {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if stmt.is_empty() {
            continue;
        }
        for part in stmt.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if part.starts_with("OPENQASM") || part.starts_with("include") {
                continue;
            }
            if let Some(rest) = part.strip_prefix("qreg") {
                let rest = rest.trim();
                let open = rest.find('[').ok_or_else(|| err(line, "malformed qreg"))?;
                let close = rest.find(']').ok_or_else(|| err(line, "malformed qreg"))?;
                let n: usize = rest[open + 1..close]
                    .trim()
                    .parse()
                    .map_err(|_| err(line, "bad qreg size"))?;
                if circuit.is_some() {
                    return Err(err(line, "multiple qreg declarations unsupported"));
                }
                circuit = Some(Circuit::new(n));
                continue;
            }
            if part.starts_with("creg")
                || part.starts_with("barrier")
                || part.starts_with("measure")
            {
                continue; // ignored: classical bookkeeping
            }
            let c = circuit
                .as_mut()
                .ok_or_else(|| err(line, "gate before qreg declaration"))?;
            parse_gate_application(part, line, c)?;
        }
    }
    circuit.ok_or_else(|| err(0, "no qreg declaration found"))
}

fn parse_gate_application(stmt: &str, line: usize, c: &mut Circuit) -> Result<(), QasmError> {
    // Split off "name(params)" from operand list.
    let (head, operands) = match stmt.find(|ch: char| ch.is_whitespace()) {
        Some(i) if !stmt[..i].contains('(') || stmt[..i].contains(')') => {
            (stmt[..i].trim(), stmt[i..].trim())
        }
        _ => {
            // Parameterized with possible space inside parens: find the
            // closing paren.
            match stmt.find(')') {
                Some(i) => (stmt[..=i].trim(), stmt[i + 1..].trim()),
                None => {
                    let i = stmt
                        .find(|ch: char| ch.is_whitespace())
                        .ok_or_else(|| err(line, "malformed gate application"))?;
                    (stmt[..i].trim(), stmt[i..].trim())
                }
            }
        }
    };
    let (name, params) = match head.find('(') {
        Some(i) => {
            let close = head
                .rfind(')')
                .ok_or_else(|| err(line, "unclosed parameter list"))?;
            let plist = &head[i + 1..close];
            let mut vals = Vec::new();
            for e in plist.split(',') {
                vals.push(parse_expr(e).map_err(|m| err(line, m))?);
            }
            (&head[..i], vals)
        }
        None => (head, Vec::new()),
    };

    let mut qubits: Vec<Qubit> = Vec::new();
    for op in operands.split(',') {
        let op = op.trim();
        let open = op
            .find('[')
            .ok_or_else(|| err(line, format!("expected q[i] operand, got `{op}`")))?;
        let close = op
            .find(']')
            .ok_or_else(|| err(line, format!("expected q[i] operand, got `{op}`")))?;
        let idx: Qubit = op[open + 1..close]
            .trim()
            .parse()
            .map_err(|_| err(line, "bad qubit index"))?;
        if idx as usize >= c.num_qubits() {
            return Err(err(line, format!("qubit {idx} out of range")));
        }
        qubits.push(idx);
    }

    let need = |n: usize| -> Result<(), QasmError> {
        if params.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("gate {name} expects {n} parameters, got {}", params.len()),
            ))
        }
    };
    let gate = match name {
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "h" => Gate::H,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "sx" => Gate::Sx,
        "sxdg" => Gate::Sxdg,
        "id" => return Ok(()), // explicit identity: drop
        "rx" => {
            need(1)?;
            Gate::Rx(params[0])
        }
        "ry" => {
            need(1)?;
            Gate::Ry(params[0])
        }
        "rz" => {
            need(1)?;
            Gate::Rz(params[0])
        }
        "p" | "u1" => {
            need(1)?;
            Gate::P(params[0])
        }
        "u2" => {
            need(2)?;
            Gate::U2(params[0], params[1])
        }
        "u3" | "u" => {
            need(3)?;
            Gate::U3(params[0], params[1], params[2])
        }
        "cx" | "CX" => Gate::Cx,
        "cz" => Gate::Cz,
        "cp" | "cu1" => {
            need(1)?;
            Gate::Cp(params[0])
        }
        "crz" => {
            need(1)?;
            Gate::Crz(params[0])
        }
        "swap" => Gate::Swap,
        "rxx" => {
            need(1)?;
            Gate::Rxx(params[0])
        }
        "ryy" => {
            need(1)?;
            Gate::Ryy(params[0])
        }
        "rzz" => {
            need(1)?;
            Gate::Rzz(params[0])
        }
        "ccx" => Gate::Ccx,
        "ccz" => Gate::Ccz,
        other => return Err(err(line, format!("unknown gate `{other}`"))),
    };
    if qubits.len() != gate.arity() {
        return Err(err(
            line,
            format!(
                "gate {name} expects {} operands, got {}",
                gate.arity(),
                qubits.len()
            ),
        ));
    }
    c.push(gate, &qubits);
    Ok(())
}

// ---- tiny expression parser: numbers, pi, + - * /, parens, unary minus ----

fn parse_expr(src: &str) -> Result<f64, String> {
    let tokens = tokenize(src)?;
    let mut pos = 0usize;
    let v = parse_sum(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(format!("trailing tokens in expression `{src}`"));
    }
    Ok(v)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

#[allow(clippy::if_same_then_else)] // branch conditions differ, actions coincide
fn tokenize(src: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            'p' | 'P' if src[i..].to_ascii_lowercase().starts_with("pi") => {
                toks.push(Tok::Num(std::f64::consts::PI));
                i += 2;
            }
            _ if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() || d == '.' || d == 'e' || d == 'E' {
                        i += 1;
                    } else if (d == '+' || d == '-')
                        && i > start
                        && matches!(bytes[i - 1] as char, 'e' | 'E')
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let v: f64 = src[start..i]
                    .parse()
                    .map_err(|_| format!("bad number in `{src}`"))?;
                toks.push(Tok::Num(v));
            }
            _ => return Err(format!("unexpected character `{c}` in `{src}`")),
        }
    }
    Ok(toks)
}

fn parse_sum(toks: &[Tok], pos: &mut usize) -> Result<f64, String> {
    let mut acc = parse_product(toks, pos)?;
    while *pos < toks.len() {
        match toks[*pos] {
            Tok::Plus => {
                *pos += 1;
                acc += parse_product(toks, pos)?;
            }
            Tok::Minus => {
                *pos += 1;
                acc -= parse_product(toks, pos)?;
            }
            _ => break,
        }
    }
    Ok(acc)
}

fn parse_product(toks: &[Tok], pos: &mut usize) -> Result<f64, String> {
    let mut acc = parse_atom(toks, pos)?;
    while *pos < toks.len() {
        match toks[*pos] {
            Tok::Star => {
                *pos += 1;
                acc *= parse_atom(toks, pos)?;
            }
            Tok::Slash => {
                *pos += 1;
                acc /= parse_atom(toks, pos)?;
            }
            _ => break,
        }
    }
    Ok(acc)
}

fn parse_atom(toks: &[Tok], pos: &mut usize) -> Result<f64, String> {
    match toks.get(*pos) {
        Some(Tok::Num(v)) => {
            *pos += 1;
            Ok(*v)
        }
        Some(Tok::Minus) => {
            *pos += 1;
            Ok(-parse_atom(toks, pos)?)
        }
        Some(Tok::Plus) => {
            *pos += 1;
            parse_atom(toks, pos)
        }
        Some(Tok::LParen) => {
            *pos += 1;
            let v = parse_sum(toks, pos)?;
            if toks.get(*pos) != Some(&Tok::RParen) {
                return Err("missing closing paren".into());
            }
            *pos += 1;
            Ok(v)
        }
        _ => Err("expected a value".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::hs_distance;
    use std::f64::consts::PI;

    #[test]
    fn roundtrip() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Rz(PI / 3.0), &[1]);
        c.push(Gate::Cx, &[0, 2]);
        c.push(Gate::U3(0.1, -0.2, 0.3), &[2]);
        c.push(Gate::Ccx, &[0, 1, 2]);
        let text = to_qasm(&c);
        let back = from_qasm(&text).unwrap();
        assert_eq!(back.len(), c.len());
        assert!(hs_distance(&back.unitary(), &c.unitary()) < 1e-7);
    }

    #[test]
    fn single_line_form_parses_to_the_same_circuit() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Rz(PI / 3.0), &[1]);
        c.push(Gate::Cx, &[0, 2]);
        c.push(Gate::U3(0.1, -0.2, 0.3), &[2]);
        c.push(Gate::Ccx, &[0, 1, 2]);
        let line = to_qasm_line(&c);
        assert!(!line.contains('\n') && !line.contains('\r'));
        assert_eq!(from_qasm(&line).unwrap(), from_qasm(&to_qasm(&c)).unwrap());
    }

    #[test]
    fn single_line_emit_is_byte_stable() {
        // parse → emit must be a fixpoint: the streaming snapshots rely
        // on stable serialization for differential comparison.
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(0.4), &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::U2(-1.25, 0.5), &[1]);
        let line = to_qasm_line(&c);
        let reparsed = from_qasm(&line).unwrap();
        assert_eq!(to_qasm_line(&reparsed), line);
        let text = to_qasm(&c);
        assert_eq!(to_qasm(&from_qasm(&text).unwrap()), text);
    }

    #[test]
    fn small_angles_roundtrip_exactly() {
        // Magnitudes below 0.1 need more than 17 fractional digits;
        // render_param escalates precision until the parse recovers the
        // exact bits. Larger magnitudes keep the historical fixed-width
        // form so golden fixtures stay byte-identical.
        for &a in &[-0.015590366766198294, 1e-9, -3.2e-5, 0.1, -0.7, PI / 3.0] {
            let mut c = Circuit::new(1);
            c.push(Gate::Rz(a), &[0]);
            let back = from_qasm(&to_qasm(&c)).unwrap();
            assert_eq!(back.instruction(0).gate, Gate::Rz(a), "angle {a:e}");
        }
        assert_eq!(render_param(0.1), "0.10000000000000001");
        assert_eq!(render_param(2.25), "2.25000000000000000");
    }

    #[test]
    fn empty_circuit_single_line() {
        let c = Circuit::new(4);
        let line = to_qasm_line(&c);
        let back = from_qasm(&line).unwrap();
        assert_eq!(back.num_qubits(), 4);
        assert!(back.is_empty());
    }

    #[test]
    fn parses_pi_expressions() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            rz(pi/4) q[0];
            rz(-pi/2) q[1];
            rz(3*pi/4) q[0];
            cp(pi/8 + pi/8) q[0],q[1];
            u3(0.5, -0.25e1, pi) q[1];
        "#;
        let c = from_qasm(src).unwrap();
        assert_eq!(c.len(), 5);
        match c.instructions()[0].gate {
            Gate::Rz(a) => assert!((a - PI / 4.0).abs() < 1e-12),
            other => panic!("expected rz, got {other}"),
        }
        match c.instructions()[3].gate {
            Gate::Cp(a) => assert!((a - PI / 4.0).abs() < 1e-12),
            other => panic!("expected cp, got {other}"),
        }
    }

    #[test]
    fn rejects_unknown_gate() {
        let src = "qreg q[1];\nfoo q[0];\n";
        let e = from_qasm(src).unwrap_err();
        assert!(e.to_string().contains("unknown gate"));
    }

    #[test]
    fn rejects_out_of_range() {
        let src = "qreg q[1];\nh q[3];\n";
        assert!(from_qasm(src).is_err());
    }

    #[test]
    fn ignores_comments_and_measure() {
        let src = r#"
            OPENQASM 2.0;
            qreg q[2]; creg c[2];
            h q[0]; // a comment
            measure q[0] -> c[0];
            barrier q[0], q[1];
        "#;
        let c = from_qasm(src).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn multiple_statements_one_line() {
        let src = "qreg q[2]; h q[0]; cx q[0],q[1];";
        let c = from_qasm(src).unwrap();
        assert_eq!(c.len(), 2);
    }
}
