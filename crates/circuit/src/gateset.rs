//! The five evaluation gate sets (paper Table 2).

use crate::gate::Gate;
use std::fmt;

/// A target gate set from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateSet {
    /// `U1, U2, U3, CX` — superconducting (IBM Q20 Tokyo-era).
    Ibmq20,
    /// `Rz, SX, X, CX` — superconducting (IBM Eagle).
    IbmEagle,
    /// `Rx, Ry, Rz, Rxx` — trapped ion (IonQ).
    Ionq,
    /// `Rz, H, X, CX` — the Nam et al. benchmark set.
    Nam,
    /// `T, T†, S, S†, H, X, CX` — fault-tolerant Clifford+T.
    CliffordT,
}

impl GateSet {
    /// All five gate sets, in the paper's Table 2 order.
    pub const ALL: [GateSet; 5] = [
        GateSet::Ibmq20,
        GateSet::IbmEagle,
        GateSet::Ionq,
        GateSet::Nam,
        GateSet::CliffordT,
    ];

    /// Dense index of this set within [`Self::ALL`] (stable across a
    /// process; used as a registry slot and hashed into cache
    /// fingerprints).
    pub fn id(self) -> usize {
        match self {
            GateSet::Ibmq20 => 0,
            GateSet::IbmEagle => 1,
            GateSet::Ionq => 2,
            GateSet::Nam => 3,
            GateSet::CliffordT => 4,
        }
    }

    /// Inverse of [`Self::id`]: the gate set at a dense index, or
    /// `None` for an out-of-range index (e.g. one read from a damaged
    /// or future-versioned serialized record).
    pub fn from_id(id: usize) -> Option<GateSet> {
        GateSet::ALL.get(id).copied()
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            GateSet::Ibmq20 => "ibmq20",
            GateSet::IbmEagle => "ibm-eagle",
            GateSet::Ionq => "ionq",
            GateSet::Nam => "nam",
            GateSet::CliffordT => "clifford+t",
        }
    }

    /// Architecture column of Table 2.
    pub fn architecture(self) -> &'static str {
        match self {
            GateSet::Ibmq20 | GateSet::IbmEagle => "Supercond.",
            GateSet::Ionq => "Ion Trap",
            GateSet::Nam => "None",
            GateSet::CliffordT => "Fault Tolerant",
        }
    }

    /// Human-readable list of the member gates.
    pub fn gate_names(self) -> &'static [&'static str] {
        match self {
            GateSet::Ibmq20 => &["u1", "u2", "u3", "cx"],
            GateSet::IbmEagle => &["rz", "sx", "x", "cx"],
            GateSet::Ionq => &["rx", "ry", "rz", "rxx"],
            GateSet::Nam => &["rz", "h", "x", "cx"],
            GateSet::CliffordT => &["t", "tdg", "s", "sdg", "h", "x", "cx"],
        }
    }

    /// True when the set has continuously-parameterized gates.
    pub fn is_continuous(self) -> bool {
        !matches!(self, GateSet::CliffordT)
    }

    /// Membership test for a concrete gate.
    pub fn contains(self, gate: Gate) -> bool {
        use Gate::*;
        match self {
            GateSet::Ibmq20 => matches!(gate, P(_) | U2(..) | U3(..) | Cx),
            GateSet::IbmEagle => matches!(gate, Rz(_) | Sx | X | Cx),
            GateSet::Ionq => matches!(gate, Rx(_) | Ry(_) | Rz(_) | Rxx(_)),
            GateSet::Nam => matches!(gate, Rz(_) | H | X | Cx),
            GateSet::CliffordT => matches!(gate, T | Tdg | S | Sdg | H | X | Cx),
        }
    }

    /// The entangling (multi-qubit) gate of the set.
    pub fn entangler(self) -> &'static str {
        match self {
            GateSet::Ionq => "rxx",
            _ => "cx",
        }
    }
}

impl fmt::Display for GateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_spot_checks() {
        assert!(GateSet::Ibmq20.contains(Gate::U3(0.1, 0.2, 0.3)));
        assert!(!GateSet::Ibmq20.contains(Gate::H));
        assert!(GateSet::IbmEagle.contains(Gate::Sx));
        assert!(!GateSet::IbmEagle.contains(Gate::Ry(0.5)));
        assert!(GateSet::Ionq.contains(Gate::Rxx(0.5)));
        assert!(!GateSet::Ionq.contains(Gate::Cx));
        assert!(GateSet::Nam.contains(Gate::H));
        assert!(GateSet::CliffordT.contains(Gate::Tdg));
        assert!(!GateSet::CliffordT.contains(Gate::Rz(0.3)));
    }

    #[test]
    fn continuous_flag() {
        assert!(GateSet::Ibmq20.is_continuous());
        assert!(!GateSet::CliffordT.is_continuous());
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = GateSet::ALL.iter().map(|g| g.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
