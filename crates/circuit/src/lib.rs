//! `qcir` — quantum circuit IR for the GUOQ reproduction.
//!
//! The crate provides:
//!
//! * [`Gate`]: the gate alphabet covering all five evaluation gate sets
//! * [`Circuit`] / [`Instruction`]: the ordered-list IR with O(1) cached
//!   gate-count metrics and dense-unitary semantics
//! * [`edit::Patch`]: local edits with in-place
//!   [`Circuit::apply_patch`]/[`Circuit::revert_patch`] — the substrate
//!   of the incremental optimizer loop
//! * [`delta::CircuitDelta`]: a stable, versioned serialized form of
//!   edit scripts (apply / compose / diff + a compact line codec) — the
//!   wire and journal currency of the event-sourced optimization API
//! * [`dag::WireDag`]: standalone per-wire DAG snapshot with
//!   incremental [`dag::WireDag::splice`] maintenance under patches —
//!   the optimizer hot path instead reads the equivalent links embedded
//!   in the [`Circuit`] arena ([`Circuit::next_on_wire`] and friends)
//! * [`region::Region`]: convex subcircuits — extraction and sound
//!   replacement (the substrate for both rewrite application and
//!   resynthesis)
//! * [`shard::ShardPlan`]: contiguous-window partitioning with boundary
//!   metadata and patch re-offsetting — the substrate for sharded
//!   parallel optimization
//! * [`gateset::GateSet`] and [`rebase::rebase`]: the paper's Table 2 gate
//!   sets and verified decompositions into them
//! * [`qasm`]: OpenQASM 2.0 subset I/O
//!
//! # Example
//!
//! ```
//! use qcir::{Circuit, Gate, gateset::GateSet, rebase::rebase};
//!
//! let mut c = Circuit::new(3);
//! c.push(Gate::Ccx, &[0, 1, 2]);
//! let native = rebase(&c, GateSet::IbmEagle)?;
//! assert!(native.iter().all(|i| GateSet::IbmEagle.contains(i.gate)));
//! # Ok::<(), qcir::rebase::RebaseError>(())
//! ```

#![warn(missing_docs)]

pub mod circuit;
pub mod dag;
pub mod delta;
pub mod edit;
pub mod gate;
pub mod gateset;
pub mod qasm;
pub mod rebase;
pub mod region;
pub mod shard;

pub use circuit::{Circuit, GateCounts, Instruction, Qubit};
pub use delta::{CircuitDelta, DeltaError};
pub use edit::{Patch, PatchUndo};
pub use gate::{Gate, GateKind, Params};
pub use gateset::GateSet;
pub use region::Region;
pub use shard::{ShardPlan, ShardSpec};
