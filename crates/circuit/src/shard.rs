//! Contiguous-window shard partitioning for parallel optimization.
//!
//! A large circuit is split into disjoint, contiguous instruction
//! windows ("shards") that together cover the whole instruction list.
//! Each shard can be [extracted](ShardPlan::extract) as a standalone
//! circuit over the full qubit register and optimized independently:
//! because the windows are disjoint slices of one topological order, any
//! semantics-preserving rewrite of a shard's instruction sequence is a
//! semantics-preserving rewrite of the parent — the parent circuit is
//! exactly the concatenation of its shards
//! ([`ShardPlan::reassemble`]).
//!
//! Shard-local edits expressed as [`Patch`]es lift into parent
//! coordinates with [`ShardSpec::lift`] (an index
//! [offset](Patch::offset) by the window start). The `qpar` coordinator
//! commits whole optimized shards via [`ShardPlan::reassemble`] rather
//! than individual lifted patches; lifting is the finer-grained API —
//! property-tested to compose identically — for consumers that stream
//! single edits (e.g. a future patch-journal commit path).
//!
//! Fixed boundaries would permanently block optimizations that span two
//! shards (a cancelling CX pair split by a cut, say). Following POPQC's
//! managed-boundary strategy, a plan takes a rotation `phase`: odd
//! phases shift every interior cut by half a window, so instructions
//! sitting on a boundary in one epoch are interior in the next. The
//! [boundary qubits](ShardPlan::boundary_qubits) of a shard — wires it
//! shares with the rest of the circuit — are computed on demand for
//! diagnostics and boundary-aware scheduling (they are not needed on
//! the per-epoch partition path).

use crate::circuit::{Circuit, Qubit};
use crate::edit::Patch;

/// One contiguous instruction window of a [`ShardPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    index: usize,
    lo: usize,
    hi: usize,
}

impl ShardSpec {
    /// Position of this shard within its plan.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Start of the instruction window (inclusive).
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// End of the instruction window (exclusive).
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Number of instructions in the window.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// True when the window contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Lifts a shard-local patch (indices relative to the extracted
    /// shard circuit) into parent-circuit coordinates.
    pub fn lift(&self, patch: &Patch) -> Patch {
        patch.offset(self.lo)
    }
}

/// A partition of a circuit's instruction list into contiguous shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    num_qubits: usize,
    circuit_len: usize,
    shards: Vec<ShardSpec>,
}

impl ShardPlan {
    /// Splits `circuit` into up to `shards` near-equal contiguous
    /// windows. `phase` rotates the interior boundaries: even phases use
    /// the base cuts, odd phases shift every interior cut right by half
    /// a window (POPQC-style), so no gate pair stays split across epochs.
    ///
    /// The number of shards is clamped to the instruction count (an
    /// empty circuit yields a single empty shard), so no returned shard
    /// is empty unless the circuit is.
    pub fn partition(circuit: &Circuit, shards: usize, phase: usize) -> ShardPlan {
        let len = circuit.len();
        let k = shards.max(1).min(len.max(1));
        let base = len / k;
        let shift = if base >= 2 {
            (phase % 2) * (base / 2)
        } else {
            0
        };
        let mut cuts = Vec::with_capacity(k + 1);
        cuts.push(0);
        for i in 1..k {
            cuts.push((i * len / k + shift).min(len));
        }
        cuts.push(len);

        let shards = cuts
            .windows(2)
            .enumerate()
            .map(|(s, w)| ShardSpec {
                index: s,
                lo: w[0],
                hi: w[1],
            })
            .collect();
        ShardPlan {
            num_qubits: circuit.num_qubits(),
            circuit_len: len,
            shards,
        }
    }

    /// Qubits used both inside shard `index` and elsewhere in the
    /// circuit, sorted ascending. Edits that change the shard's action
    /// on these wires interact with neighbouring shards; edits confined
    /// to non-boundary qubits are invisible outside the shard. Computed
    /// on demand (one pass over the instruction list).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `circuit` does not match
    /// the plan's length.
    pub fn boundary_qubits(&self, circuit: &Circuit, index: usize) -> Vec<Qubit> {
        assert_eq!(circuit.len(), self.circuit_len, "circuit/plan mismatch");
        let s = &self.shards[index];
        let mut inside = vec![false; self.num_qubits];
        let mut outside = vec![false; self.num_qubits];
        for (i, ins) in circuit.instructions().iter().enumerate() {
            let mask = if i >= s.lo && i < s.hi {
                &mut inside
            } else {
                &mut outside
            };
            for &q in ins.qubits() {
                mask[q as usize] = true;
            }
        }
        (0..self.num_qubits as Qubit)
            .filter(|&q| inside[q as usize] && outside[q as usize])
            .collect()
    }

    /// The shards in index order (windows are ascending and disjoint,
    /// covering `0..circuit_len`).
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the plan holds no shards (never produced by
    /// [`Self::partition`]).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Instruction count of the partitioned circuit.
    pub fn circuit_len(&self) -> usize {
        self.circuit_len
    }

    /// Extracts shard `index` as a standalone circuit over the full
    /// qubit register (qubit indices unchanged, so shard-local patches
    /// lift to the parent by index offset alone).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `circuit` does not match the
    /// plan's length.
    pub fn extract(&self, circuit: &Circuit, index: usize) -> Circuit {
        assert_eq!(circuit.len(), self.circuit_len, "circuit/plan mismatch");
        let s = &self.shards[index];
        Circuit::from_instructions(self.num_qubits, circuit.instructions()[s.lo..s.hi].to_vec())
    }

    /// Reassembles a full circuit from per-shard circuits (one per
    /// shard, in index order): the concatenation of the parts.
    ///
    /// The parts need not have the lengths of the original windows —
    /// shard optimization shrinks them — only the same qubit register.
    ///
    /// # Panics
    ///
    /// Panics if the part count or a qubit register differs from the
    /// plan.
    pub fn reassemble(&self, parts: &[Circuit]) -> Circuit {
        assert_eq!(parts.len(), self.shards.len(), "one part per shard");
        let mut out = Circuit::new(self.num_qubits);
        for part in parts {
            assert_eq!(part.num_qubits(), self.num_qubits, "register mismatch");
            out.extend_from(part);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn chain(len: usize) -> Circuit {
        let mut c = Circuit::new(4);
        for i in 0..len {
            match i % 3 {
                0 => c.push(Gate::H, &[(i % 4) as Qubit]),
                1 => c.push(Gate::Cx, &[(i % 4) as Qubit, ((i + 1) % 4) as Qubit]),
                _ => c.push(Gate::T, &[(i % 4) as Qubit]),
            }
        }
        c
    }

    #[test]
    fn partition_covers_and_is_disjoint() {
        let c = chain(23);
        for k in 1..=8 {
            for phase in 0..4 {
                let plan = ShardPlan::partition(&c, k, phase);
                assert_eq!(plan.shards()[0].lo(), 0);
                assert_eq!(plan.shards().last().unwrap().hi(), c.len());
                for w in plan.shards().windows(2) {
                    assert_eq!(w[0].hi(), w[1].lo(), "windows must tile");
                    assert!(w[0].lo() < w[0].hi(), "no empty shard");
                }
            }
        }
    }

    #[test]
    fn rotation_moves_interior_cuts() {
        let c = chain(40);
        let even = ShardPlan::partition(&c, 4, 0);
        let odd = ShardPlan::partition(&c, 4, 1);
        for (a, b) in even.shards()[1..].iter().zip(&odd.shards()[1..]) {
            assert_ne!(a.lo(), b.lo(), "odd phase must shift interior cuts");
        }
        // And phase is 2-periodic.
        let even2 = ShardPlan::partition(&c, 4, 2);
        assert_eq!(even.shards(), even2.shards());
    }

    #[test]
    fn extract_reassemble_roundtrip() {
        let c = chain(17);
        for phase in 0..2 {
            let plan = ShardPlan::partition(&c, 3, phase);
            let parts: Vec<Circuit> = (0..plan.len()).map(|i| plan.extract(&c, i)).collect();
            assert_eq!(plan.reassemble(&parts), c);
        }
    }

    #[test]
    fn more_shards_than_gates_clamps() {
        let c = chain(3);
        let plan = ShardPlan::partition(&c, 16, 0);
        assert_eq!(plan.len(), 3);
        let empty = Circuit::new(2);
        let plan = ShardPlan::partition(&empty, 4, 1);
        assert_eq!(plan.len(), 1);
        assert!(plan.shards()[0].is_empty());
    }

    #[test]
    fn boundary_qubits_are_shared_wires() {
        // q0 only in shard 0, q3 only in shard 1, q1/q2 cross the cut.
        let mut c = Circuit::new(4);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::H, &[2]);
        c.push(Gate::Cx, &[1, 2]);
        c.push(Gate::Cx, &[2, 3]);
        let plan = ShardPlan::partition(&c, 2, 0);
        assert_eq!(plan.boundary_qubits(&c, 0), vec![1, 2]);
        assert_eq!(plan.boundary_qubits(&c, 1), vec![1, 2]);
    }

    #[test]
    fn lifted_patch_equals_parent_edit() {
        let c = chain(12);
        let plan = ShardPlan::partition(&c, 3, 0);
        let s = &plan.shards()[1];
        let shard = plan.extract(&c, 1);
        // Remove the shard's first two instructions.
        let local = Patch::new(vec![0, 1], Vec::new(), 0);
        let lifted = s.lift(&local);
        let mut parts: Vec<Circuit> = (0..plan.len()).map(|i| plan.extract(&c, i)).collect();
        parts[1] = shard.with_patch(&local);
        assert_eq!(plan.reassemble(&parts), c.with_patch(&lifted));
    }
}
