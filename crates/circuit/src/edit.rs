//! Patch-based circuit edits.
//!
//! The GUOQ inner loop performs thousands of tiny, local edits per second.
//! Rebuilding a fresh [`Circuit`] for every candidate edit makes each
//! iteration O(circuit); a [`Patch`] instead describes an edit *relative*
//! to the current circuit — which instructions go away, what replaces
//! them, and where — so applying, costing, and reverting all scale with
//! the size of the edit span rather than the whole instruction list.
//!
//! A patch is **sound** when the replacement instructions may legally sit
//! at `insert_at`: every producer of the patch in this workspace (rule
//! matches, fusion runs, commutation pairs, resynthesis regions) derives
//! patches from convex subcircuits, where every unmatched instruction
//! inside the edit span acts on disjoint qubits and therefore commutes
//! with the replacement.
//!
//! ```
//! use qcir::{Circuit, Gate};
//! use qcir::edit::Patch;
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::Cx, &[0, 1]);
//! c.push(Gate::H, &[0]);
//! c.push(Gate::Cx, &[0, 1]);
//! // Remove the trailing CX and the H in one edit.
//! let patch = Patch::new(vec![1, 2], Vec::new(), 1);
//! let undo = c.apply_patch(&patch);
//! assert_eq!(c.len(), 1);
//! c.revert_patch(&undo);
//! assert_eq!(c.len(), 3);
//! ```

use crate::circuit::{Circuit, Instruction};

/// A local edit: remove some instructions, splice replacements in.
///
/// Indices refer to the circuit the patch is applied to (the *pre-patch*
/// indexing). `removed` must be strictly ascending; `insert_at` is the
/// pre-patch index before which the replacement instructions are placed
/// (`insert_at == len` appends).
#[derive(Debug, Clone, PartialEq)]
pub struct Patch {
    removed: Vec<usize>,
    replacement: Vec<Instruction>,
    insert_at: usize,
}

impl Patch {
    /// Creates a patch from parts.
    ///
    /// # Panics
    ///
    /// Panics if `removed` is not strictly ascending.
    pub fn new(removed: Vec<usize>, replacement: Vec<Instruction>, insert_at: usize) -> Self {
        for w in removed.windows(2) {
            assert!(w[0] < w[1], "removed indices must be strictly ascending");
        }
        Patch {
            removed,
            replacement,
            insert_at,
        }
    }

    /// The pre-patch indices this patch removes (strictly ascending).
    pub fn removed(&self) -> &[usize] {
        &self.removed
    }

    /// The instructions this patch splices in.
    pub fn replacement(&self) -> &[Instruction] {
        &self.replacement
    }

    /// The pre-patch index before which the replacement is inserted.
    pub fn insert_at(&self) -> usize {
        self.insert_at
    }

    /// Change in instruction count caused by this patch.
    pub fn len_delta(&self) -> isize {
        self.replacement.len() as isize - self.removed.len() as isize
    }

    /// The half-open pre-patch index window `[lo, hi)` this patch touches.
    ///
    /// Everything before `lo` keeps its index; everything at or after `hi`
    /// shifts by [`Self::len_delta`].
    pub fn window(&self) -> (usize, usize) {
        let lo = self
            .removed
            .first()
            .copied()
            .unwrap_or(self.insert_at)
            .min(self.insert_at);
        let hi = self
            .removed
            .last()
            .map(|&i| i + 1)
            .unwrap_or(self.insert_at)
            .max(self.insert_at);
        (lo, hi)
    }

    /// Visits the post-patch contents of the edit window in order:
    /// retained window instructions interleaved with the replacement at
    /// `insert_at`. `circuit` must be in its pre-patch state.
    ///
    /// This is the *single* definition of the emission order —
    /// [`Circuit::apply_patch`] and [`crate::dag::WireDag::splice`] both
    /// build on it, so the instruction list and the DAG cannot disagree
    /// about where the replacement lands.
    pub fn visit_window<F: FnMut(&Instruction)>(&self, circuit: &Circuit, mut f: F) {
        let (wlo, whi) = self.window();
        let mut rem = self.removed.iter().peekable();
        let mut ids = circuit.ids_from(wlo);
        for i in wlo..whi {
            let id = ids.next().expect("patch window within circuit");
            if i == self.insert_at {
                for ins in &self.replacement {
                    f(ins);
                }
            }
            if rem.peek() == Some(&&i) {
                rem.next();
                continue;
            }
            f(&circuit.instruction_by_id(id));
        }
        if self.insert_at == whi {
            for ins in &self.replacement {
                f(ins);
            }
        }
    }

    /// Re-expresses the patch in the coordinates of an enclosing circuit
    /// in which this patch's frame begins at index `by`: every removed
    /// index and the insertion point shift right by `by`.
    ///
    /// This lifts a patch produced against a *shard* — a contiguous
    /// instruction window extracted from a parent circuit (see
    /// [`crate::shard`]) — back into the parent: the shard's local
    /// index `i` names the parent instruction `lo + i`, so a sound
    /// shard-local patch lifts to a sound parent patch as long as the
    /// parent window content is unchanged. (The shipped coordinator
    /// commits whole shard circuits instead; lifting is the
    /// edit-granular alternative, property-tested to compose to the
    /// same result.)
    pub fn offset(&self, by: usize) -> Patch {
        Patch {
            removed: self.removed.iter().map(|&i| i + by).collect(),
            replacement: self.replacement.clone(),
            insert_at: self.insert_at + by,
        }
    }

    /// Maps a retained pre-patch index to its post-patch index.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `i` is a removed index.
    pub fn map_index(&self, i: usize) -> usize {
        debug_assert!(
            self.removed.binary_search(&i).is_err(),
            "index {i} is removed by the patch"
        );
        let removed_before = self.removed.partition_point(|&r| r < i);
        let inserted_before = if i >= self.insert_at {
            self.replacement.len()
        } else {
            0
        };
        i - removed_before + inserted_before
    }
}

/// The information needed to undo an applied patch.
///
/// Returned by [`Circuit::apply_patch`]; consumed by
/// [`Circuit::revert_patch`].
#[derive(Debug, Clone, PartialEq)]
pub struct PatchUndo {
    /// The removed instructions with their pre-patch indices (ascending).
    pub removed: Vec<(usize, Instruction)>,
    /// Number of instructions the patch spliced in.
    pub replacement_len: usize,
    /// The pre-patch insertion index of the patch.
    pub insert_at: usize,
}

impl Circuit {
    /// Applies `patch` in place, returning the undo record.
    ///
    /// Only the patch window is rewritten; instructions outside it are
    /// moved at most once (a single `Vec::splice`). Cached gate counts
    /// are maintained incrementally.
    ///
    /// # Panics
    ///
    /// Panics if a removed index or `insert_at` is out of range, or if a
    /// replacement instruction references a qubit out of range.
    pub fn apply_patch(&mut self, patch: &Patch) -> PatchUndo {
        let n = self.len();
        assert!(
            patch.insert_at <= n,
            "insert_at {} out of range",
            patch.insert_at
        );
        if let Some(&last) = patch.removed.last() {
            assert!(last < n, "removed index {last} out of range");
        }
        for ins in &patch.replacement {
            for &q in ins.qubits() {
                assert!(
                    (q as usize) < self.num_qubits(),
                    "replacement qubit {q} out of range"
                );
            }
        }
        let (wlo, whi) = patch.window();

        // Record undo info and update cached counts. Reads go through
        // the id map, not the materialized list — a patch application
        // never forces an O(circuit) rebuild of the compact view.
        let mut removed = Vec::with_capacity(patch.removed.len());
        for &i in &patch.removed {
            let ins = self.instruction(i);
            self.counts_mut().remove(&ins);
            removed.push((i, ins));
        }
        for ins in &patch.replacement {
            self.counts_mut().add(ins);
        }

        // Build the new window contents and splice once.
        let window_len = (whi - wlo) + patch.replacement.len() - patch.removed.len();
        let mut new_window: Vec<Instruction> = Vec::with_capacity(window_len);
        patch.visit_window(self, |ins| new_window.push(*ins));
        self.splice_raw(wlo..whi, new_window);

        PatchUndo {
            removed,
            replacement_len: patch.replacement.len(),
            insert_at: patch.insert_at,
        }
    }

    /// Reverts a patch previously applied with [`Self::apply_patch`].
    ///
    /// # Panics
    ///
    /// Panics if `undo` does not correspond to the circuit's current
    /// state (e.g. indices out of range after unrelated edits).
    pub fn revert_patch(&mut self, undo: &PatchUndo) {
        // Post-patch window coordinates.
        let removed_before_insert = undo
            .removed
            .iter()
            .take_while(|&&(i, _)| i < undo.insert_at)
            .count();
        let insert_pos = undo.insert_at - removed_before_insert;
        let (old_wlo, old_whi) = {
            let lo = undo
                .removed
                .first()
                .map(|&(i, _)| i)
                .unwrap_or(undo.insert_at)
                .min(undo.insert_at);
            let hi = undo
                .removed
                .last()
                .map(|&(i, _)| i + 1)
                .unwrap_or(undo.insert_at)
                .max(undo.insert_at);
            (lo, hi)
        };
        let new_whi = (old_whi + undo.replacement_len) - undo.removed.len();
        assert!(new_whi <= self.len(), "undo record does not match circuit");

        // Update cached counts.
        for i in insert_pos..insert_pos + undo.replacement_len {
            let ins = self.instruction(i);
            self.counts_mut().remove(&ins);
        }
        for (_, ins) in &undo.removed {
            self.counts_mut().add(ins);
        }

        // Rebuild the original window: retained instructions are the
        // current window minus the replacement block, with the removed
        // instructions re-inserted at their original offsets.
        let mut retained: Vec<Instruction> = Vec::with_capacity(new_whi - old_wlo);
        for (i, id) in (old_wlo..new_whi).zip(self.ids_from(old_wlo)) {
            if i >= insert_pos && i < insert_pos + undo.replacement_len {
                continue;
            }
            retained.push(self.instruction_by_id(id));
        }
        let mut original: Vec<Instruction> = Vec::with_capacity(old_whi - old_wlo);
        let mut rem = undo.removed.iter().peekable();
        let mut ret = retained.into_iter();
        for i in old_wlo..old_whi {
            if let Some(&&(ri, ins)) = rem.peek() {
                if ri == i {
                    rem.next();
                    original.push(ins);
                    continue;
                }
            }
            original.push(ret.next().expect("undo record does not match circuit"));
        }
        self.splice_raw(old_wlo..new_whi, original);
    }

    /// Returns a new circuit with `patch` applied (the pristine-clone
    /// path; prefer [`Self::apply_patch`] in hot loops).
    pub fn with_patch(&self, patch: &Patch) -> Circuit {
        let mut c = self.clone();
        c.apply_patch(patch);
        c
    }
}

/// Applies several patches with pairwise-disjoint `removed` sets to a
/// fresh copy of `circuit` in one walk.
///
/// All patches are expressed against `circuit`'s indexing; each
/// replacement is emitted just before the (retained) instruction at its
/// `insert_at`. This reproduces the emission order of a full rewrite
/// pass, where every disjoint match becomes one patch.
///
/// # Panics
///
/// Panics if a removed index repeats across patches or any index is out
/// of range.
pub fn apply_disjoint(circuit: &Circuit, patches: &[Patch]) -> Circuit {
    let n = circuit.len();
    let mut removed = vec![false; n];
    let mut insert_here: Vec<Option<usize>> = vec![None; n + 1];
    for (pi, patch) in patches.iter().enumerate() {
        for &i in patch.removed() {
            assert!(i < n, "removed index {i} out of range");
            assert!(!removed[i], "patches overlap at index {i}");
            removed[i] = true;
        }
        assert!(patch.insert_at() <= n, "insert_at out of range");
        assert!(
            insert_here[patch.insert_at()].is_none(),
            "two patches insert at the same position"
        );
        insert_here[patch.insert_at()] = Some(pi);
    }
    let mut out = Circuit::new(circuit.num_qubits());
    for (pos, ins) in circuit.iter().enumerate() {
        if let Some(pi) = insert_here[pos] {
            for rep in patches[pi].replacement() {
                out.push_instruction(*rep);
            }
        }
        if !removed[pos] {
            out.push_instruction(*ins);
        }
    }
    if let Some(pi) = insert_here[n] {
        for rep in patches[pi].replacement() {
            out.push_instruction(*rep);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]); // 0
        c.push(Gate::Cx, &[0, 1]); // 1
        c.push(Gate::T, &[2]); // 2
        c.push(Gate::Cx, &[0, 1]); // 3
        c.push(Gate::Tdg, &[2]); // 4
        c
    }

    #[test]
    fn remove_pair() {
        let mut c = sample();
        let undo = c.apply_patch(&Patch::new(vec![1, 3], Vec::new(), 1));
        assert_eq!(c.len(), 3);
        assert_eq!(c.two_qubit_count(), 0);
        assert_eq!(c.t_count(), 2);
        c.revert_patch(&undo);
        assert_eq!(c, sample());
    }

    #[test]
    fn replace_with_other_gates() {
        let mut c = sample();
        let rep = vec![
            Instruction::new(Gate::Rz(0.5), &[0]),
            Instruction::new(Gate::Cz, &[0, 1]),
        ];
        let patch = Patch::new(vec![1], rep, 1);
        let undo = c.apply_patch(&patch);
        assert_eq!(c.len(), 6);
        assert_eq!(c.instructions()[1].gate, Gate::Rz(0.5));
        assert_eq!(c.instructions()[2].gate, Gate::Cz);
        c.revert_patch(&undo);
        assert_eq!(c, sample());
    }

    #[test]
    fn insert_only_patch() {
        let mut c = sample();
        let patch = Patch::new(Vec::new(), vec![Instruction::new(Gate::X, &[2])], 5);
        let undo = c.apply_patch(&patch);
        assert_eq!(c.len(), 6);
        assert_eq!(c.instructions()[5].gate, Gate::X);
        c.revert_patch(&undo);
        assert_eq!(c, sample());
    }

    #[test]
    fn insert_at_front() {
        let mut c = sample();
        let patch = Patch::new(Vec::new(), vec![Instruction::new(Gate::X, &[0])], 0);
        let undo = c.apply_patch(&patch);
        assert_eq!(c.instructions()[0].gate, Gate::X);
        c.revert_patch(&undo);
        assert_eq!(c, sample());
    }

    #[test]
    fn matches_full_rebuild() {
        // apply_patch must agree with the naive remove-then-insert.
        let c = sample();
        let patch = Patch::new(vec![0, 3], vec![Instruction::new(Gate::S, &[1])], 2);
        let fast = c.with_patch(&patch);
        let mut naive: Vec<Instruction> = Vec::new();
        for (i, ins) in c.iter().enumerate() {
            if i == 2 {
                naive.push(Instruction::new(Gate::S, &[1]));
            }
            if i != 0 && i != 3 {
                naive.push(*ins);
            }
        }
        let naive = Circuit::from_instructions(3, naive);
        assert_eq!(fast, naive);
        assert_eq!(fast.two_qubit_count(), naive.two_qubit_count());
        assert_eq!(fast.t_count(), naive.t_count());
    }

    #[test]
    fn map_index_consistent() {
        let patch = Patch::new(vec![1, 3], vec![Instruction::new(Gate::S, &[1])], 2);
        // Post-patch layout: [0] [rep] [2] [4] → old 0 ↦ 0, old 2 ↦ 2, old 4 ↦ 3.
        assert_eq!(patch.map_index(0), 0);
        assert_eq!(patch.map_index(2), 2);
        assert_eq!(patch.map_index(4), 3);
    }

    #[test]
    fn offset_matches_manual_shift() {
        // A patch against the sub-list starting at parent index 2 must,
        // once offset, act on the parent exactly as it acted locally.
        let parent = sample();
        let shard = Circuit::from_instructions(3, parent.instructions()[2..].to_vec());
        let local = Patch::new(vec![0, 2], vec![Instruction::new(Gate::S, &[2])], 1);
        let lifted = local.offset(2);
        assert_eq!(lifted.removed(), &[2, 4]);
        assert_eq!(lifted.insert_at(), 3);
        let shard_out = shard.with_patch(&local);
        let parent_out = parent.with_patch(&lifted);
        assert_eq!(
            &parent_out.instructions()[2..],
            shard_out.instructions(),
            "lifted patch must rewrite the parent window identically"
        );
        assert_eq!(&parent_out.instructions()[..2], &parent.instructions()[..2]);
    }

    #[test]
    fn window_spans_edit() {
        let p = Patch::new(vec![1, 3], Vec::new(), 1);
        assert_eq!(p.window(), (1, 4));
        let q = Patch::new(Vec::new(), vec![Instruction::new(Gate::X, &[0])], 2);
        assert_eq!(q.window(), (2, 2));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_removed_panics() {
        let _ = Patch::new(vec![3, 1], Vec::new(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_removed_panics() {
        let mut c = sample();
        c.apply_patch(&Patch::new(vec![9], Vec::new(), 0));
    }
}
