//! Wire-DAG view of a circuit.
//!
//! The instruction list of a [`Circuit`] is one topological order of the
//! circuit DAG (paper §3): nodes are gates, and each qubit wire threads
//! through the gates acting on it. [`WireDag`] materializes the
//! predecessor/successor links per wire so pattern matching and subcircuit
//! growth can walk the DAG in O(1) per step.
//!
//! The DAG supports **incremental maintenance**: after computing a local
//! edit as a [`Patch`], [`WireDag::splice`] relinks only the wires
//! crossing the edit window instead of rebuilding all links from scratch.
//! This is what lets the GUOQ search loop keep a single cached DAG alive
//! across thousands of iterations.

use crate::circuit::{Circuit, Qubit};
use crate::edit::Patch;

/// Sentinel for "no link" in the packed index arrays.
const NONE: u32 = u32::MAX;

#[inline]
fn unpack(v: u32) -> Option<usize> {
    if v == NONE {
        None
    } else {
        Some(v as usize)
    }
}

/// Per-wire predecessor/successor links for every instruction of a circuit.
///
/// Links are stored as packed `u32` indices (`u32::MAX` = none), keeping
/// the arrays small enough that the index-shift pass of [`Self::splice`]
/// is a tight linear scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDag {
    /// `next[i][s]`: index of the next instruction on the wire used by
    /// operand slot `s` of instruction `i`.
    next: Vec<[u32; 3]>,
    /// `prev[i][s]`: same, for the previous instruction on that wire.
    prev: Vec<[u32; 3]>,
    /// First instruction on each qubit wire.
    first: Vec<u32>,
    /// Last instruction on each qubit wire.
    last: Vec<u32>,
}

impl WireDag {
    /// Builds the DAG links for `circuit` in a single pass.
    ///
    /// Tracks `(instruction, slot)` per wire while scanning, so each link
    /// is set in O(1) — no re-scan of the predecessor's operand list.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let nq = circuit.num_qubits();
        let mut next = vec![[NONE; 3]; n];
        let mut prev = vec![[NONE; 3]; n];
        let mut first = vec![NONE; nq];
        let mut last = vec![NONE; nq];
        let mut last_slot = vec![0u8; nq];
        for (i, ins) in circuit.iter().enumerate() {
            for (slot, &q) in ins.qubits().iter().enumerate() {
                let q = q as usize;
                let p = last[q];
                if p != NONE {
                    prev[i][slot] = p;
                    next[p as usize][last_slot[q] as usize] = i as u32;
                } else {
                    first[q] = i as u32;
                }
                last[q] = i as u32;
                last_slot[q] = slot as u8;
            }
        }
        WireDag {
            next,
            prev,
            first,
            last,
        }
    }

    /// Number of instructions the DAG currently covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// True when the DAG covers no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }

    /// Index of the next instruction after `i` on wire `q`.
    ///
    /// Returns `None` if `i` is the last instruction on that wire.
    ///
    /// # Panics
    ///
    /// Panics if instruction `i` does not act on `q`.
    pub fn next_on_wire(&self, circuit: &Circuit, i: usize, q: Qubit) -> Option<usize> {
        let slot = circuit.instructions()[i]
            .qubits()
            .iter()
            .position(|&x| x == q)
            .unwrap_or_else(|| panic!("instruction {i} does not act on qubit {q}"));
        unpack(self.next[i][slot])
    }

    /// Index of the previous instruction before `i` on wire `q`.
    ///
    /// # Panics
    ///
    /// Panics if instruction `i` does not act on `q`.
    pub fn prev_on_wire(&self, circuit: &Circuit, i: usize, q: Qubit) -> Option<usize> {
        let slot = circuit.instructions()[i]
            .qubits()
            .iter()
            .position(|&x| x == q)
            .unwrap_or_else(|| panic!("instruction {i} does not act on qubit {q}"));
        unpack(self.prev[i][slot])
    }

    /// First instruction on wire `q`, if any gate acts on it.
    pub fn first_on_wire(&self, q: Qubit) -> Option<usize> {
        unpack(self.first[q as usize])
    }

    /// Last instruction on wire `q`, if any gate acts on it.
    pub fn last_on_wire(&self, q: Qubit) -> Option<usize> {
        unpack(self.last[q as usize])
    }

    /// All DAG successors of instruction `i` (one per wire, deduplicated).
    pub fn successors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let mut seen: Vec<usize> = self.next[i].iter().filter_map(|&v| unpack(v)).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter()
    }

    /// All DAG predecessors of instruction `i` (one per wire, deduplicated).
    pub fn predecessors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let mut seen: Vec<usize> = self.prev[i].iter().filter_map(|&v| unpack(v)).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter()
    }

    /// Incrementally updates the DAG for a patch **about to be applied**
    /// to `circuit` (which must still be in its pre-patch state, matching
    /// this DAG).
    ///
    /// Only the wires crossing the patch window are relinked — O(window)
    /// link work, plus a tight linear index-shift scan when the patch
    /// changes the instruction count. After this call the DAG matches
    /// `circuit.apply_patch(&patch)`.
    ///
    /// Returns `false` (leaving the DAG **unchanged**) when a replacement
    /// instruction acts on a wire untouched by the edit window. No patch
    /// producer in this workspace does that — replacements stay within
    /// the wires of the gates they replace — but callers must then apply
    /// the patch and [`Self::build`] from scratch.
    #[must_use]
    pub fn splice(&mut self, circuit: &Circuit, patch: &Patch) -> bool {
        debug_assert_eq!(self.len(), circuit.len(), "DAG out of sync with circuit");
        let (wlo, whi) = patch.window();
        let delta = patch.len_delta();
        let instrs = circuit.instructions();

        // Per-wire boundary bookkeeping for wires touched by the window.
        #[derive(Clone, Copy)]
        struct WireState {
            /// First instruction after the window (pre-patch index).
            after: u32,
            /// Rewiring cursor: the most recent instruction on this wire.
            /// Starts at the last instruction before the window (whose
            /// post-index equals its pre-index, since it is < wlo) and
            /// advances over the new window contents (post indices).
            cursor: u32,
            cursor_slot: u8,
        }
        // Edits are local: a handful of wires — linear scan over a small
        // vec beats a hash map here.
        let mut wires: Vec<(Qubit, WireState)> = Vec::new();

        for (i, ins) in instrs.iter().enumerate().take(whi).skip(wlo) {
            for (slot, &q) in ins.qubits().iter().enumerate() {
                match wires.iter_mut().find(|(w, _)| *w == q) {
                    None => {
                        let before = self.prev[i][slot];
                        debug_assert!(before == NONE || (before as usize) < wlo);
                        let before_slot = if before == NONE {
                            0
                        } else {
                            instrs[before as usize]
                                .qubits()
                                .iter()
                                .position(|&x| x == q)
                                .expect("wire bookkeeping out of sync")
                                as u8
                        };
                        wires.push((
                            q,
                            WireState {
                                after: self.next[i][slot],
                                cursor: before,
                                cursor_slot: before_slot,
                            },
                        ));
                    }
                    Some((_, st)) => {
                        // Later occurrence: its next-link is the freshest
                        // candidate for the after-boundary.
                        st.after = self.next[i][slot];
                    }
                }
            }
        }
        debug_assert!(wires
            .iter()
            .all(|(_, st)| st.after == NONE || st.after as usize >= whi));

        // Replacement wires must be covered by the window's wires.
        for ins in patch.replacement() {
            for &q in ins.qubits() {
                if !wires.iter().any(|(w, _)| *w == q) {
                    return false;
                }
            }
        }

        // Resize the link arrays: clear the window, keep everything else.
        let new_window_len = (whi - wlo) + patch.replacement().len() - patch.removed().len();
        self.next
            .splice(wlo..whi, std::iter::repeat_n([NONE; 3], new_window_len));
        self.prev
            .splice(wlo..whi, std::iter::repeat_n([NONE; 3], new_window_len));

        // Index-shift pass: links and endpoints at/after the old window
        // end move by `delta`. Values inside the window were either
        // cleared above or belong to boundary nodes and are rewritten in
        // the stitching pass below.
        if delta != 0 {
            let whi32 = whi as u32;
            let shift = |v: &mut u32| {
                if *v != NONE && *v >= whi32 {
                    *v = (*v as i64 + delta as i64) as u32;
                }
            };
            for row in self.next.iter_mut().chain(self.prev.iter_mut()) {
                row.iter_mut().for_each(&shift);
            }
            self.first.iter_mut().for_each(&shift);
            self.last.iter_mut().for_each(&shift);
        }

        // Rewire the new window contents. `Patch::visit_window` is the
        // single definition of the emission order, shared with
        // `Circuit::apply_patch`, so the DAG and the instruction list
        // cannot disagree about where the replacement lands.
        let mut j = wlo; // next post-patch index to assign
        patch.visit_window(circuit, |ins| {
            for (slot, &q) in ins.qubits().iter().enumerate() {
                let (_, st) = wires
                    .iter_mut()
                    .find(|(w, _)| *w == q)
                    .expect("window wire not collected");
                if st.cursor != NONE {
                    self.prev[j][slot] = st.cursor;
                    self.next[st.cursor as usize][st.cursor_slot as usize] = j as u32;
                } else {
                    self.first[q as usize] = j as u32;
                }
                st.cursor = j as u32;
                st.cursor_slot = slot as u8;
            }
            j += 1;
        });
        debug_assert_eq!(j, wlo + new_window_len);

        // Stitch each wire's tail to its after-boundary (or terminate it).
        for (q, st) in &wires {
            if st.after != NONE {
                // Post-patch index of the after-boundary instruction.
                let a_new = (st.after as i64 + delta as i64) as usize;
                let a_slot = instrs[st.after as usize]
                    .qubits()
                    .iter()
                    .position(|&x| x == *q)
                    .expect("wire bookkeeping out of sync");
                if st.cursor != NONE {
                    self.next[st.cursor as usize][st.cursor_slot as usize] = a_new as u32;
                    self.prev[a_new][a_slot] = st.cursor;
                } else {
                    self.prev[a_new][a_slot] = NONE;
                    self.first[*q as usize] = a_new as u32;
                }
            } else if st.cursor != NONE {
                self.next[st.cursor as usize][st.cursor_slot as usize] = NONE;
                self.last[*q as usize] = st.cursor;
            } else {
                // The wire lost all of its gates.
                self.first[*q as usize] = NONE;
                self.last[*q as usize] = NONE;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Instruction;
    use crate::gate::Gate;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]); // 0
        c.push(Gate::Cx, &[0, 1]); // 1
        c.push(Gate::T, &[2]); // 2
        c.push(Gate::Cx, &[1, 2]); // 3
        c.push(Gate::H, &[0]); // 4
        c
    }

    #[test]
    fn wire_links() {
        let c = sample();
        let d = WireDag::build(&c);
        assert_eq!(d.first_on_wire(0), Some(0));
        assert_eq!(d.next_on_wire(&c, 0, 0), Some(1));
        assert_eq!(d.next_on_wire(&c, 1, 0), Some(4));
        assert_eq!(d.next_on_wire(&c, 1, 1), Some(3));
        assert_eq!(d.prev_on_wire(&c, 3, 2), Some(2));
        assert_eq!(d.next_on_wire(&c, 4, 0), None);
        assert_eq!(d.last_on_wire(2), Some(3));
        assert_eq!(d.last_on_wire(0), Some(4));
    }

    #[test]
    fn successors_dedup() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]); // 0
        c.push(Gate::Cx, &[0, 1]); // 1 — successor on both wires
        let d = WireDag::build(&c);
        let succ: Vec<usize> = d.successors(0).collect();
        assert_eq!(succ, vec![1]);
        let pred: Vec<usize> = d.predecessors(1).collect();
        assert_eq!(pred, vec![0]);
    }

    #[test]
    fn empty_wires() {
        let c = Circuit::new(4);
        let d = WireDag::build(&c);
        assert_eq!(d.first_on_wire(3), None);
    }

    fn check_splice(c: &Circuit, patch: &Patch) {
        let mut dag = WireDag::build(c);
        let mut after = c.clone();
        assert!(dag.splice(&after, patch), "replacement wires not covered");
        after.apply_patch(patch);
        assert_eq!(
            dag,
            WireDag::build(&after),
            "incremental splice diverged from rebuild for {patch:?}"
        );
    }

    #[test]
    fn splice_matches_rebuild_remove_middle() {
        let c = sample();
        check_splice(&c, &Patch::new(vec![1, 3], Vec::new(), 1));
    }

    #[test]
    fn splice_matches_rebuild_replace() {
        let c = sample();
        check_splice(
            &c,
            &Patch::new(
                vec![1],
                vec![
                    Instruction::new(Gate::Rz(0.3), &[0]),
                    Instruction::new(Gate::Cz, &[0, 1]),
                ],
                1,
            ),
        );
    }

    #[test]
    fn splice_matches_rebuild_remove_all_on_wire() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]); // 0
        c.push(Gate::X, &[1]); // 1
        c.push(Gate::H, &[0]); // 2
        check_splice(&c, &Patch::new(vec![1], Vec::new(), 1));
    }

    #[test]
    fn splice_matches_rebuild_at_edges() {
        let c = sample();
        check_splice(&c, &Patch::new(vec![0], Vec::new(), 0));
        check_splice(&c, &Patch::new(vec![4], Vec::new(), 4));
        check_splice(
            &c,
            &Patch::new(vec![0, 4], vec![Instruction::new(Gate::S, &[0])], 0),
        );
    }

    #[test]
    fn splice_same_size_patch() {
        let c = sample();
        check_splice(
            &c,
            &Patch::new(vec![3], vec![Instruction::new(Gate::Cz, &[1, 2])], 3),
        );
    }

    #[test]
    fn splice_rejects_uncovered_replacement_wire() {
        let c = sample();
        let mut dag = WireDag::build(&c);
        // Replacement touches wire 2 but the window only covers wire 0.
        let patch = Patch::new(vec![0], vec![Instruction::new(Gate::X, &[2])], 0);
        let snapshot = dag.clone();
        assert!(!dag.splice(&c, &patch));
        assert_eq!(dag, snapshot, "failed splice must leave the DAG unchanged");
    }
}
