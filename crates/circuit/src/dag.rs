//! Wire-DAG view of a circuit.
//!
//! The instruction list of a [`Circuit`] is one topological order of the
//! circuit DAG (paper §3): nodes are gates, and each qubit wire threads
//! through the gates acting on it. [`WireDag`] materializes the
//! predecessor/successor links per wire so pattern matching and subcircuit
//! growth can walk the DAG in O(1) per step.

use crate::circuit::{Circuit, Qubit};

/// Per-wire predecessor/successor links for every instruction of a circuit.
#[derive(Debug, Clone)]
pub struct WireDag {
    /// `next[i][s]`: the index of the next instruction on the wire used by
    /// operand slot `s` of instruction `i`.
    next: Vec<[Option<usize>; 3]>,
    /// `prev[i][s]`: same, for the previous instruction on that wire.
    prev: Vec<[Option<usize>; 3]>,
    /// First instruction on each qubit wire.
    first: Vec<Option<usize>>,
    /// Last instruction on each qubit wire.
    last: Vec<Option<usize>>,
}

impl WireDag {
    /// Builds the DAG links for `circuit` in a single pass.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut next = vec![[None; 3]; n];
        let mut prev = vec![[None; 3]; n];
        let mut first = vec![None; circuit.num_qubits()];
        let mut last: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        for (i, ins) in circuit.iter().enumerate() {
            for (slot, &q) in ins.qubits().iter().enumerate() {
                let q = q as usize;
                if let Some(p) = last[q] {
                    prev[i][slot] = Some(p);
                    // Find the slot of q in instruction p.
                    let pslot = circuit.instructions()[p]
                        .qubits()
                        .iter()
                        .position(|&pq| pq as usize == q)
                        .expect("wire bookkeeping out of sync");
                    next[p][pslot] = Some(i);
                } else {
                    first[q] = Some(i);
                }
                last[q] = Some(i);
            }
        }
        WireDag {
            next,
            prev,
            first,
            last,
        }
    }

    /// Index of the next instruction after `i` on wire `q`.
    ///
    /// Returns `None` if `i` is the last instruction on that wire.
    ///
    /// # Panics
    ///
    /// Panics if instruction `i` does not act on `q`.
    pub fn next_on_wire(&self, circuit: &Circuit, i: usize, q: Qubit) -> Option<usize> {
        let slot = circuit.instructions()[i]
            .qubits()
            .iter()
            .position(|&x| x == q)
            .unwrap_or_else(|| panic!("instruction {i} does not act on qubit {q}"));
        self.next[i][slot]
    }

    /// Index of the previous instruction before `i` on wire `q`.
    ///
    /// # Panics
    ///
    /// Panics if instruction `i` does not act on `q`.
    pub fn prev_on_wire(&self, circuit: &Circuit, i: usize, q: Qubit) -> Option<usize> {
        let slot = circuit.instructions()[i]
            .qubits()
            .iter()
            .position(|&x| x == q)
            .unwrap_or_else(|| panic!("instruction {i} does not act on qubit {q}"));
        self.prev[i][slot]
    }

    /// First instruction on wire `q`, if any gate acts on it.
    pub fn first_on_wire(&self, q: Qubit) -> Option<usize> {
        self.first[q as usize]
    }

    /// Last instruction on wire `q`, if any gate acts on it.
    pub fn last_on_wire(&self, q: Qubit) -> Option<usize> {
        self.last[q as usize]
    }

    /// All DAG successors of instruction `i` (one per wire, deduplicated).
    pub fn successors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let mut seen: Vec<usize> = self.next[i].iter().flatten().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter()
    }

    /// All DAG predecessors of instruction `i` (one per wire, deduplicated).
    pub fn predecessors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let mut seen: Vec<usize> = self.prev[i].iter().flatten().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]); // 0
        c.push(Gate::Cx, &[0, 1]); // 1
        c.push(Gate::T, &[2]); // 2
        c.push(Gate::Cx, &[1, 2]); // 3
        c.push(Gate::H, &[0]); // 4
        c
    }

    #[test]
    fn wire_links() {
        let c = sample();
        let d = WireDag::build(&c);
        assert_eq!(d.first_on_wire(0), Some(0));
        assert_eq!(d.next_on_wire(&c, 0, 0), Some(1));
        assert_eq!(d.next_on_wire(&c, 1, 0), Some(4));
        assert_eq!(d.next_on_wire(&c, 1, 1), Some(3));
        assert_eq!(d.prev_on_wire(&c, 3, 2), Some(2));
        assert_eq!(d.next_on_wire(&c, 4, 0), None);
        assert_eq!(d.last_on_wire(2), Some(3));
        assert_eq!(d.last_on_wire(0), Some(4));
    }

    #[test]
    fn successors_dedup() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]); // 0
        c.push(Gate::Cx, &[0, 1]); // 1 — successor on both wires
        let d = WireDag::build(&c);
        let succ: Vec<usize> = d.successors(0).collect();
        assert_eq!(succ, vec![1]);
        let pred: Vec<usize> = d.predecessors(1).collect();
        assert_eq!(pred, vec![0]);
    }

    #[test]
    fn empty_wires() {
        let c = Circuit::new(4);
        let d = WireDag::build(&c);
        assert_eq!(d.first_on_wire(3), None);
    }
}
