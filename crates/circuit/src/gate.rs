//! The gate alphabet.
//!
//! [`Gate`] covers every gate used by the five evaluation gate sets of the
//! paper (Table 2) plus the common composite gates (`CCX`, `SWAP`, …) that
//! benchmark generators produce before rebasing.

use qmath::angle::normalize;
use qmath::{gates as gm, Mat, Mat2, Mat4, C64};
use std::fmt;
use std::ops::Deref;

/// Inline rotation-parameter list of a gate (at most three angles).
///
/// Dereferences to `&[f64]`, so every slice API (`is_empty`, `iter`,
/// indexing) works unchanged; it also iterates by value. Unlike the
/// `Vec<f64>` it replaced, building one never touches the heap — which
/// matters because the matcher compares parameters on every probe of
/// the inner loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    vals: [f64; 3],
    len: u8,
}

impl Params {
    const EMPTY: Params = Params {
        vals: [0.0; 3],
        len: 0,
    };

    const fn one(a: f64) -> Params {
        Params {
            vals: [a, 0.0, 0.0],
            len: 1,
        }
    }

    const fn two(a: f64, b: f64) -> Params {
        Params {
            vals: [a, b, 0.0],
            len: 2,
        }
    }

    const fn three(a: f64, b: f64, c: f64) -> Params {
        Params {
            vals: [a, b, c],
            len: 3,
        }
    }
}

impl Deref for Params {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        &self.vals[..self.len as usize]
    }
}

impl IntoIterator for Params {
    type Item = f64;
    type IntoIter = std::iter::Take<std::array::IntoIter<f64, 3>>;

    fn into_iter(self) -> Self::IntoIter {
        self.vals.into_iter().take(self.len as usize)
    }
}

/// A quantum gate, possibly parameterized by rotation angles (radians).
///
/// Angle parameters are plain `f64`; symbolic angles exist only inside the
/// rewrite-rule engine (`qrewrite`), keeping the IR concrete.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate `diag(1, i)`.
    S,
    /// Inverse phase gate.
    Sdg,
    /// T gate `diag(1, e^{iπ/4})`.
    T,
    /// Inverse T gate.
    Tdg,
    /// Square root of X.
    Sx,
    /// Inverse square root of X.
    Sxdg,
    /// X rotation.
    Rx(f64),
    /// Y rotation.
    Ry(f64),
    /// Z rotation.
    Rz(f64),
    /// Phase gate `diag(1, e^{iλ})` (a.k.a. `U1`).
    P(f64),
    /// OpenQASM `U2(φ, λ)`.
    U2(f64, f64),
    /// OpenQASM `U3(θ, φ, λ)`.
    U3(f64, f64, f64),
    /// Controlled-X (control is the first operand).
    Cx,
    /// Controlled-Z.
    Cz,
    /// Controlled phase `diag(1,1,1,e^{iλ})`.
    Cp(f64),
    /// Controlled `Rz`.
    Crz(f64),
    /// SWAP.
    Swap,
    /// XX rotation (Mølmer–Sørensen-style interaction).
    Rxx(f64),
    /// YY rotation.
    Ryy(f64),
    /// ZZ rotation.
    Rzz(f64),
    /// Toffoli (controls are the first two operands).
    Ccx,
    /// Doubly-controlled Z.
    Ccz,
}

impl Gate {
    /// Number of qubits the gate acts on (1, 2, or 3).
    pub fn arity(self) -> usize {
        use Gate::*;
        match self {
            X | Y | Z | H | S | Sdg | T | Tdg | Sx | Sxdg | Rx(_) | Ry(_) | Rz(_) | P(_)
            | U2(..) | U3(..) => 1,
            Cx | Cz | Cp(_) | Crz(_) | Swap | Rxx(_) | Ryy(_) | Rzz(_) => 2,
            Ccx | Ccz => 3,
        }
    }

    /// Lower-case OpenQASM-style mnemonic.
    pub fn name(self) -> &'static str {
        use Gate::*;
        match self {
            X => "x",
            Y => "y",
            Z => "z",
            H => "h",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            Sx => "sx",
            Sxdg => "sxdg",
            Rx(_) => "rx",
            Ry(_) => "ry",
            Rz(_) => "rz",
            P(_) => "p",
            U2(..) => "u2",
            U3(..) => "u3",
            Cx => "cx",
            Cz => "cz",
            Cp(_) => "cp",
            Crz(_) => "crz",
            Swap => "swap",
            Rxx(_) => "rxx",
            Ryy(_) => "ryy",
            Rzz(_) => "rzz",
            Ccx => "ccx",
            Ccz => "ccz",
        }
    }

    /// Rotation parameters of the gate, in declaration order.
    pub fn params(self) -> Params {
        use Gate::*;
        match self {
            Rx(a) | Ry(a) | Rz(a) | P(a) | Cp(a) | Crz(a) | Rxx(a) | Ryy(a) | Rzz(a) => {
                Params::one(a)
            }
            U2(a, b) => Params::two(a, b),
            U3(a, b, c) => Params::three(a, b, c),
            _ => Params::EMPTY,
        }
    }

    /// True if the gate carries at least one continuous parameter.
    pub fn is_parameterized(self) -> bool {
        !self.params().is_empty()
    }

    /// The unitary matrix of the gate (`2^arity × 2^arity`).
    pub fn matrix(self) -> Mat {
        use Gate::*;
        match self {
            X => gm::x(),
            Y => gm::y(),
            Z => gm::z(),
            H => gm::h(),
            S => gm::s(),
            Sdg => gm::sdg(),
            T => gm::t(),
            Tdg => gm::tdg(),
            Sx => gm::sx(),
            Sxdg => gm::sxdg(),
            Rx(a) => gm::rx(a),
            Ry(a) => gm::ry(a),
            Rz(a) => gm::rz(a),
            P(a) => gm::p(a),
            U2(a, b) => gm::u2(a, b),
            U3(a, b, c) => gm::u3(a, b, c),
            Cx => gm::cx(),
            Cz => gm::cz(),
            Cp(a) => gm::cp(a),
            Crz(a) => gm::crz(a),
            Swap => gm::swap(),
            Rxx(a) => gm::rxx(a),
            Ryy(a) => gm::ryy(a),
            Rzz(a) => gm::rzz(a),
            Ccx => gm::ccx(),
            Ccz => gm::ccz(),
        }
    }

    /// The unitary of a one-qubit gate as a stack-allocated [`Mat2`]
    /// (bit-identical entries to [`matrix`](Self::matrix)), or `None`
    /// for wider gates.
    pub fn unitary2(self) -> Option<Mat2> {
        use Gate::*;
        Some(match self {
            X => gm::small::x(),
            Y => gm::small::y(),
            Z => gm::small::z(),
            H => gm::small::h(),
            S => gm::small::s(),
            Sdg => gm::small::sdg(),
            T => gm::small::t(),
            Tdg => gm::small::tdg(),
            Sx => gm::small::sx(),
            Sxdg => gm::small::sxdg(),
            Rx(a) => gm::small::rx(a),
            Ry(a) => gm::small::ry(a),
            Rz(a) => gm::small::rz(a),
            P(a) => gm::small::p(a),
            U2(a, b) => gm::small::u2(a, b),
            U3(a, b, c) => gm::small::u3(a, b, c),
            _ => return None,
        })
    }

    /// The unitary of a two-qubit gate as a stack-allocated [`Mat4`]
    /// (bit-identical entries to [`matrix`](Self::matrix)), or `None`
    /// for other arities.
    pub fn unitary4(self) -> Option<Mat4> {
        use Gate::*;
        Some(match self {
            Cx => gm::small::cx(),
            Cz => gm::small::cz(),
            Cp(a) => gm::small::cp(a),
            Crz(a) => gm::small::crz(a),
            Swap => gm::small::swap(),
            Rxx(a) => gm::small::rxx(a),
            Ryy(a) => gm::small::ryy(a),
            Rzz(a) => gm::small::rzz(a),
            _ => return None,
        })
    }

    /// Writes the row-major unitary into the head of `buf` without
    /// allocating, returning the matrix dimension (2, 4, or 8). The
    /// entries are bit-identical to [`matrix`](Self::matrix).
    pub fn unitary_into(self, buf: &mut [C64; 64]) -> usize {
        if let Some(m) = self.unitary2() {
            buf[..4].copy_from_slice(m.as_slice());
            return 2;
        }
        if let Some(m) = self.unitary4() {
            buf[..16].copy_from_slice(m.as_slice());
            return 4;
        }
        // The 8×8 gates (CCX / CCZ): identity with a patched corner.
        for (i, z) in buf.iter_mut().enumerate() {
            *z = if i % 9 == 0 { C64::ONE } else { C64::ZERO };
        }
        match self {
            Gate::Ccx => {
                buf[6 * 8 + 6] = C64::ZERO;
                buf[7 * 8 + 7] = C64::ZERO;
                buf[6 * 8 + 7] = C64::ONE;
                buf[7 * 8 + 6] = C64::ONE;
            }
            Gate::Ccz => buf[7 * 8 + 7] = -C64::ONE,
            _ => unreachable!("every gate is 1, 2, or 3 qubits"),
        }
        8
    }

    /// The inverse gate (`g · g.adjoint() = I`), staying within the alphabet.
    pub fn adjoint(self) -> Gate {
        use Gate::*;
        match self {
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            Sx => Sxdg,
            Sxdg => Sx,
            Rx(a) => Rx(-a),
            Ry(a) => Ry(-a),
            Rz(a) => Rz(-a),
            P(a) => P(-a),
            U2(a, b) => U3(-std::f64::consts::FRAC_PI_2, -b, -a),
            U3(a, b, c) => U3(-a, -c, -b),
            Cp(a) => Cp(-a),
            Crz(a) => Crz(-a),
            Rxx(a) => Rxx(-a),
            Ryy(a) => Ryy(-a),
            Rzz(a) => Rzz(-a),
            g => g, // self-inverse: X, Y, Z, H, CX, CZ, SWAP, CCX, CCZ
        }
    }

    /// True when permuting the operands leaves the unitary unchanged
    /// (e.g. `CZ`, `SWAP`, `Rzz`).
    pub fn is_symmetric(self) -> bool {
        use Gate::*;
        matches!(self, Cz | Cp(_) | Swap | Rxx(_) | Ryy(_) | Rzz(_) | Ccz)
    }

    /// True when the unitary is diagonal in the computational basis.
    pub fn is_diagonal(self) -> bool {
        use Gate::*;
        matches!(
            self,
            Z | S | Sdg | T | Tdg | Rz(_) | P(_) | Cz | Cp(_) | Crz(_) | Rzz(_) | Ccz
        )
    }

    /// Canonicalizes rotation parameters into `(-π, π]`.
    ///
    /// The result is equivalent to the original modulo global phase (for
    /// the `Rz/Rx/Ry/Rxx/...` families a `2π` shift flips the sign of the
    /// matrix, which is a pure global phase).
    pub fn normalized(self) -> Gate {
        use Gate::*;
        match self {
            Rx(a) => Rx(normalize(a)),
            Ry(a) => Ry(normalize(a)),
            Rz(a) => Rz(normalize(a)),
            P(a) => P(normalize(a)),
            Cp(a) => Cp(normalize(a)),
            Crz(a) => Crz(normalize(a)),
            Rxx(a) => Rxx(normalize(a)),
            Ryy(a) => Ryy(normalize(a)),
            Rzz(a) => Rzz(normalize(a)),
            U2(a, b) => U2(normalize(a), normalize(b)),
            U3(a, b, c) => U3(normalize(a), normalize(b), normalize(c)),
            g => g,
        }
    }

    /// Reconstructs a gate from its [`name`](Self::name) mnemonic and
    /// parameter list — the inverse of `(name(), params())`, used by
    /// serialized-circuit codecs (see [`crate::delta`]). Accepts the
    /// canonical mnemonics plus the OpenQASM aliases `u1`/`cu1`/`u`.
    /// Returns `None` for unknown names or a wrong parameter count.
    pub fn from_name(name: &str, params: &[f64]) -> Option<Gate> {
        use Gate::*;
        let fixed = |g: Gate| if params.is_empty() { Some(g) } else { None };
        let one = |f: fn(f64) -> Gate| match params {
            [a] => Some(f(*a)),
            _ => None,
        };
        match name {
            "x" => fixed(X),
            "y" => fixed(Y),
            "z" => fixed(Z),
            "h" => fixed(H),
            "s" => fixed(S),
            "sdg" => fixed(Sdg),
            "t" => fixed(T),
            "tdg" => fixed(Tdg),
            "sx" => fixed(Sx),
            "sxdg" => fixed(Sxdg),
            "rx" => one(Rx),
            "ry" => one(Ry),
            "rz" => one(Rz),
            "p" | "u1" => one(P),
            "u2" => match params {
                [a, b] => Some(U2(*a, *b)),
                _ => None,
            },
            "u3" | "u" => match params {
                [a, b, c] => Some(U3(*a, *b, *c)),
                _ => None,
            },
            "cx" => fixed(Cx),
            "cz" => fixed(Cz),
            "cp" | "cu1" => one(Cp),
            "crz" => one(Crz),
            "swap" => fixed(Swap),
            "rxx" => one(Rxx),
            "ryy" => one(Ryy),
            "rzz" => one(Rzz),
            "ccx" => fixed(Ccx),
            "ccz" => fixed(Ccz),
            _ => None,
        }
    }

    /// True when the gate is the identity up to global phase within `tol`
    /// (e.g. `Rz(0)`, `P(2π)`, `U3(0,λ,−λ)`).
    pub fn is_identity(self, tol: f64) -> bool {
        use Gate::*;
        match self {
            Rx(a) | Ry(a) | Rz(a) | Rxx(a) | Ryy(a) | Rzz(a) => {
                qmath::angle::approx_eq_mod_2pi(a, 0.0, tol)
                    || qmath::angle::approx_eq_mod_2pi(a, 2.0 * std::f64::consts::PI, tol)
            }
            P(a) | Cp(a) | Crz(a) => qmath::angle::approx_eq_mod_2pi(a, 0.0, tol),
            U3(a, b, c) => {
                qmath::angle::approx_eq_mod_2pi(a, 0.0, tol)
                    && qmath::angle::approx_eq_mod_2pi(b + c, 0.0, tol)
            }
            _ => false,
        }
    }
}

/// A gate discriminant without parameters, used by pattern matching and
/// enumeration (the rewrite engine and rule synthesis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum GateKind {
    X,
    Y,
    Z,
    H,
    S,
    Sdg,
    T,
    Tdg,
    Sx,
    Sxdg,
    Rx,
    Ry,
    Rz,
    P,
    U2,
    U3,
    Cx,
    Cz,
    Cp,
    Crz,
    Swap,
    Rxx,
    Ryy,
    Rzz,
    Ccx,
    Ccz,
}

impl Gate {
    /// The parameter-less discriminant of this gate.
    pub fn kind(self) -> GateKind {
        use Gate::*;
        match self {
            X => GateKind::X,
            Y => GateKind::Y,
            Z => GateKind::Z,
            H => GateKind::H,
            S => GateKind::S,
            Sdg => GateKind::Sdg,
            T => GateKind::T,
            Tdg => GateKind::Tdg,
            Sx => GateKind::Sx,
            Sxdg => GateKind::Sxdg,
            Rx(_) => GateKind::Rx,
            Ry(_) => GateKind::Ry,
            Rz(_) => GateKind::Rz,
            P(_) => GateKind::P,
            U2(..) => GateKind::U2,
            U3(..) => GateKind::U3,
            Cx => GateKind::Cx,
            Cz => GateKind::Cz,
            Cp(_) => GateKind::Cp,
            Crz(_) => GateKind::Crz,
            Swap => GateKind::Swap,
            Rxx(_) => GateKind::Rxx,
            Ryy(_) => GateKind::Ryy,
            Rzz(_) => GateKind::Rzz,
            Ccx => GateKind::Ccx,
            Ccz => GateKind::Ccz,
        }
    }
}

// Compile-time guard: adding a GateKind variant must bump COUNT, or every
// dense per-kind table (e.g. `GateCounts`) would index out of bounds.
const _: () = assert!(GateKind::Ccz as usize + 1 == GateKind::COUNT);

impl GateKind {
    /// Number of distinct gate kinds (for dense per-kind tables).
    pub const COUNT: usize = 26;

    /// Number of qubits gates of this kind act on.
    pub fn arity(self) -> usize {
        use GateKind::*;
        match self {
            X | Y | Z | H | S | Sdg | T | Tdg | Sx | Sxdg | Rx | Ry | Rz | P | U2 | U3 => 1,
            Cx | Cz | Cp | Crz | Swap | Rxx | Ryy | Rzz => 2,
            Ccx | Ccz => 3,
        }
    }

    /// Number of angle parameters this kind carries.
    pub fn num_params(self) -> usize {
        use GateKind::*;
        match self {
            Rx | Ry | Rz | P | Cp | Crz | Rxx | Ryy | Rzz => 1,
            U2 => 2,
            U3 => 3,
            _ => 0,
        }
    }

    /// Builds the concrete gate from parameter values.
    ///
    /// Returns `None` if `params.len()` differs from [`Self::num_params`].
    pub fn with_params(self, params: &[f64]) -> Option<Gate> {
        use GateKind::*;
        if params.len() != self.num_params() {
            return None;
        }
        Some(match self {
            X => Gate::X,
            Y => Gate::Y,
            Z => Gate::Z,
            H => Gate::H,
            S => Gate::S,
            Sdg => Gate::Sdg,
            T => Gate::T,
            Tdg => Gate::Tdg,
            Sx => Gate::Sx,
            Sxdg => Gate::Sxdg,
            Rx => Gate::Rx(params[0]),
            Ry => Gate::Ry(params[0]),
            Rz => Gate::Rz(params[0]),
            P => Gate::P(params[0]),
            U2 => Gate::U2(params[0], params[1]),
            U3 => Gate::U3(params[0], params[1], params[2]),
            Cx => Gate::Cx,
            Cz => Gate::Cz,
            Cp => Gate::Cp(params[0]),
            Crz => Gate::Crz(params[0]),
            Swap => Gate::Swap,
            Rxx => Gate::Rxx(params[0]),
            Ryy => Gate::Ryy(params[0]),
            Rzz => Gate::Rzz(params[0]),
            Ccx => Gate::Ccx,
            Ccz => Gate::Ccz,
        })
    }

    /// True when operand order does not matter for this kind.
    pub fn is_symmetric(self) -> bool {
        use GateKind::*;
        matches!(self, Cz | Cp | Swap | Rxx | Ryy | Rzz | Ccz)
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.params();
        if ps.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let rendered: Vec<String> = ps.iter().map(|p| format!("{p:.9}")).collect();
            write!(f, "{}({})", self.name(), rendered.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::hs_distance;
    use std::f64::consts::PI;

    const ALL: &[Gate] = &[
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::Sx,
        Gate::Sxdg,
        Gate::Rx(0.7),
        Gate::Ry(-0.4),
        Gate::Rz(1.9),
        Gate::P(0.3),
        Gate::U2(0.1, 0.2),
        Gate::U3(0.5, 1.0, -1.5),
        Gate::Cx,
        Gate::Cz,
        Gate::Cp(0.8),
        Gate::Crz(-0.6),
        Gate::Swap,
        Gate::Rxx(0.5),
        Gate::Ryy(0.9),
        Gate::Rzz(-1.1),
        Gate::Ccx,
        Gate::Ccz,
    ];

    #[test]
    fn adjoint_inverts() {
        for &g in ALL {
            let m = g.matrix();
            let inv = g.adjoint().matrix();
            let prod = m.matmul(&inv);
            assert!(
                hs_distance(&prod, &Mat::identity(prod.rows())) < 1e-7,
                "adjoint failed for {g}"
            );
        }
    }

    #[test]
    fn arity_matches_matrix_size() {
        for &g in ALL {
            assert_eq!(g.matrix().rows(), 1 << g.arity(), "gate {g}");
        }
    }

    #[test]
    fn symmetric_gates_really_symmetric() {
        use qmath::embed;
        for &g in ALL {
            if g.arity() != 2 {
                continue;
            }
            let m = g.matrix();
            let swapped = embed(&m, 2, &[1, 0]);
            let symmetric = m.approx_eq(&swapped, 1e-12);
            assert_eq!(symmetric, g.is_symmetric(), "gate {g}");
        }
    }

    #[test]
    fn diagonal_gates_really_diagonal() {
        for &g in ALL {
            let m = g.matrix();
            let mut diag = true;
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    if i != j && m[(i, j)].abs() > 1e-15 {
                        diag = false;
                    }
                }
            }
            assert_eq!(diag, g.is_diagonal(), "gate {g}");
        }
    }

    #[test]
    fn identity_detection() {
        assert!(Gate::Rz(0.0).is_identity(1e-9));
        assert!(Gate::Rz(2.0 * PI).is_identity(1e-9));
        assert!(Gate::P(0.0).is_identity(1e-9));
        assert!(Gate::U3(0.0, 0.7, -0.7).is_identity(1e-9));
        assert!(!Gate::Rz(0.1).is_identity(1e-9));
        assert!(!Gate::X.is_identity(1e-9));
        // P(2π) really is the identity matrix (no phase).
        assert!(Gate::P(2.0 * PI).is_identity(1e-6));
    }

    #[test]
    fn normalized_preserves_semantics() {
        for &g in ALL {
            let n = g.normalized();
            assert!(
                hs_distance(&g.matrix(), &n.matrix()) < 1e-7,
                "normalization changed {g}"
            );
        }
        let g = Gate::Rz(7.0 * PI);
        assert!(hs_distance(&g.matrix(), &g.normalized().matrix()) < 1e-7);
    }

    #[test]
    fn stack_unitaries_bit_identical_to_matrix() {
        for &g in ALL {
            let mut buf = [qmath::C64::ZERO; 64];
            let dim = g.unitary_into(&mut buf);
            let m = g.matrix();
            assert_eq!(dim, m.rows(), "dimension for {g}");
            assert_eq!(&buf[..dim * dim], m.as_slice(), "entries for {g}");
            match g.arity() {
                1 => assert_eq!(g.unitary2().unwrap().as_slice(), m.as_slice()),
                2 => assert_eq!(g.unitary4().unwrap().as_slice(), m.as_slice()),
                _ => assert!(g.unitary2().is_none() && g.unitary4().is_none()),
            }
        }
    }

    #[test]
    fn kind_tables_match_gate_semantics() {
        // The direct `GateKind` tables must stay in lockstep with the
        // per-`Gate` implementations they replaced.
        for &g in ALL {
            assert_eq!(g.kind().arity(), g.arity(), "arity table for {g}");
            assert_eq!(
                g.kind().is_symmetric(),
                g.is_symmetric(),
                "symmetry table for {g}"
            );
        }
    }

    #[test]
    fn params_round_trip_and_iterate() {
        for &g in ALL {
            let ps = g.params();
            assert_eq!(ps.len(), g.kind().num_params(), "param count for {g}");
            let by_value: Vec<f64> = ps.into_iter().collect();
            let by_ref: Vec<f64> = ps.iter().copied().collect();
            assert_eq!(by_value, by_ref, "iteration mismatch for {g}");
            assert_eq!(g.kind().with_params(&ps), Some(g), "round trip for {g}");
        }
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(format!("{}", Gate::X), "x");
        assert!(format!("{}", Gate::Rz(0.25)).starts_with("rz(0.25"));
    }
}
