//! Window-granular local-optimality certificates (POPQC-style).
//!
//! A plateaued search burns its remaining budget re-probing regions that
//! stopped improving long ago. This crate gives the optimizer a way to
//! *prove* it is done with a region instead: a [`CertMap`] tracks
//! "certified locally optimal at budget B" stamps over contiguous gate
//! windows, an invalidation index clears every stamp whose window
//! overlaps an accepted patch (so certificates can never go stale), and
//! a serializable [`Certificate`] summarizes the surviving stamps when a
//! run finishes. After a client edit, [`Certificate::rebase`] drops only
//! the stamps dirtied by the edit script — re-optimization then pays
//! O(edit), not O(circuit).
//!
//! # Why positions, not ids
//!
//! Stamps are keyed by **position windows** `[lo, hi)`, not by the
//! arena's gate ids. Ids look like the natural key (they survive edits
//! elsewhere in the circuit) but they are only *usually* stable: a
//! mid-circuit insertion whose free-slot gap is too small triggers a
//! full arena rebuild that re-ids every gate, and journal replay in
//! another process allocates ids in a different order entirely.
//! Positions are unambiguous in both worlds; the cost is an
//! O(#stamps) shift per accepted patch ([`CertMap::commit_patch`]),
//! which only certification-enabled runs pay — and the same fold is
//! exactly what re-expressing a serialized certificate across a client
//! edit script needs ([`Certificate::rebase`]), so the two paths cannot
//! disagree.

#![warn(missing_docs)]

use qcir::edit::Patch;

/// Gates of padding around an edit window when deciding which stamps it
/// dirties. An accepted patch can enable new matches that *straddle* its
/// boundary, so the neighborhood — not just the window itself — loses
/// its certificate (POPQC's O(1)-neighborhood re-verification).
pub const CERT_PAD: usize = 2;

/// Name of the counter tallying windows stamped as certified.
pub const CERTIFIED_COUNTER: &str = "qcert_windows_certified_total";
/// Name of the counter tallying stamps cleared by overlapping edits.
pub const INVALIDATED_COUNTER: &str = "qcert_windows_invalidated_total";
/// Name of the counter tallying anchor draws skipped because they landed
/// in a certified window (bumped by the core sampler, defined here so
/// every layer agrees on the spelling).
pub const ANCHOR_SKIPS_COUNTER: &str = "qcert_anchor_skips_total";

/// The global certified-windows counter.
pub fn certified_counter() -> &'static qtrace::Counter {
    qtrace::counter(CERTIFIED_COUNTER)
}

/// The global invalidated-windows counter.
pub fn invalidated_counter() -> &'static qtrace::Counter {
    qtrace::counter(INVALIDATED_COUNTER)
}

/// The global certified-anchor-skip counter.
pub fn anchor_skips_counter() -> &'static qtrace::Counter {
    qtrace::counter(ANCHOR_SKIPS_COUNTER)
}

/// One certified window: the gates at positions `[lo, hi)` survived an
/// exhaustive local probe of `budget` attempts without a single strict
/// improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// First certified position (inclusive).
    pub lo: usize,
    /// One past the last certified position (exclusive).
    pub hi: usize,
    /// Probe attempts the window survived.
    pub budget: u64,
}

impl Stamp {
    /// Gates covered by this stamp.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// True when the stamp covers no gates.
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }

    fn overlaps(&self, lo: usize, hi: usize) -> bool {
        self.lo < hi && lo < self.hi
    }
}

/// Folds one patch into a sorted stamp list: drops stamps overlapping
/// the `pad`-widened window (returning how many), shifts stamps past it
/// by the length delta. The shared kernel of [`CertMap::commit_patch`]
/// and [`Certificate::rebase`].
fn fold_patch(stamps: &mut Vec<Stamp>, op: &Patch, pad: usize) -> u64 {
    let (wlo, whi) = op.window();
    let (plo, phi) = (wlo.saturating_sub(pad), whi + pad);
    let before = stamps.len();
    stamps.retain(|s| !s.overlaps(plo, phi));
    let dropped = (before - stamps.len()) as u64;
    let shift = op.len_delta();
    for s in stamps.iter_mut() {
        // Survivors never straddle the window: they sit fully on one
        // side of it, so a whole-stamp shift is exact.
        if s.lo >= phi {
            s.lo = (s.lo as isize + shift) as usize;
            s.hi = (s.hi as isize + shift) as usize;
        }
    }
    dropped
}

/// A local-optimality certificate for a finished circuit: the surviving
/// per-window stamps, ascending and pairwise disjoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Probe budget of the certification sweep that produced this
    /// certificate (stamps seeded from a prior certificate may carry
    /// their own, different budgets).
    pub budget: u64,
    /// Gate count of the circuit the stamps index into.
    pub total_gates: usize,
    /// Certified windows, ascending by `lo`, pairwise disjoint.
    pub stamps: Vec<Stamp>,
}

impl Certificate {
    /// Fraction of gates covered by a stamp (`1.0` for an empty
    /// circuit — nothing left to certify).
    pub fn coverage(&self) -> f64 {
        if self.total_gates == 0 {
            return 1.0;
        }
        self.certified_gates() as f64 / self.total_gates as f64
    }

    /// Gates covered by a stamp.
    pub fn certified_gates(&self) -> usize {
        self.stamps.iter().map(Stamp::len).sum()
    }

    /// Re-expresses the certificate after an edit script: every stamp
    /// overlapping an op's `pad`-widened window is dropped (tallied on
    /// [`invalidated_counter`]), and surviving stamps past the edit
    /// shift by its length delta. `ops` is an in-order
    /// [`qcir::delta::CircuitDelta`] script — each op indexes the
    /// circuit state left by the previous one, exactly as
    /// `CircuitDelta::apply` does.
    pub fn rebase(&self, ops: &[Patch], pad: usize) -> Certificate {
        let mut stamps = self.stamps.clone();
        let mut total = self.total_gates as isize;
        let mut dropped = 0u64;
        for op in ops {
            dropped += fold_patch(&mut stamps, op, pad);
            total += op.len_delta();
        }
        if dropped > 0 {
            invalidated_counter().add(dropped);
        }
        Certificate {
            budget: self.budget,
            total_gates: total.max(0) as usize,
            stamps,
        }
    }

    /// Serializes to the `job-<id>.cert` side-file format: a `QCERT1`
    /// header line followed by one `lo hi budget` line per stamp.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "QCERT1 budget={} gates={} stamps={}\n",
            self.budget,
            self.total_gates,
            self.stamps.len()
        );
        for s in &self.stamps {
            out.push_str(&format!("{} {} {}\n", s.lo, s.hi, s.budget));
        }
        out
    }

    /// Parses the [`Self::encode`] format.
    pub fn decode(text: &str) -> Result<Certificate, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty certificate")?;
        let mut budget = None;
        let mut gates = None;
        let mut count = None;
        let mut fields = header.split_ascii_whitespace();
        if fields.next() != Some("QCERT1") {
            return Err("missing QCERT1 header".into());
        }
        for field in fields {
            let (key, value) = field.split_once('=').ok_or("malformed header field")?;
            let value: u64 = value.parse().map_err(|_| format!("bad {key}"))?;
            match key {
                "budget" => budget = Some(value),
                "gates" => gates = Some(value as usize),
                "stamps" => count = Some(value as usize),
                _ => {} // forward-compatible: ignore unknown fields
            }
        }
        let (budget, gates, count) = (
            budget.ok_or("missing budget")?,
            gates.ok_or("missing gates")?,
            count.ok_or("missing stamps")?,
        );
        let mut stamps = Vec::with_capacity(count);
        for line in lines.take(count) {
            let mut parts = line.split_ascii_whitespace();
            let mut next = || -> Result<u64, String> {
                parts
                    .next()
                    .ok_or("short stamp line")?
                    .parse()
                    .map_err(|_| "bad stamp field".to_string())
            };
            let (lo, hi, b) = (next()? as usize, next()? as usize, next()?);
            if lo >= hi || hi > gates {
                return Err(format!("stamp [{lo}, {hi}) out of range"));
            }
            stamps.push(Stamp { lo, hi, budget: b });
        }
        if stamps.len() != count {
            return Err("truncated certificate".into());
        }
        Ok(Certificate {
            budget,
            total_gates: gates,
            stamps,
        })
    }
}

/// The live certificate index a search carries: stamp windows that
/// survive a probe, ask whether an anchor position is certified, and
/// clear everything an accepted patch dirties. Stamps are kept sorted
/// and disjoint; membership queries are O(log #stamps), commits are
/// O(#stamps).
#[derive(Debug, Default, Clone)]
pub struct CertMap {
    stamps: Vec<Stamp>,
}

impl CertMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds a map from a previously serialized certificate for a
    /// circuit of `len` gates. Out-of-range stamps — a certificate for
    /// a different circuit — are skipped; overlapping stamps after the
    /// first are dropped so the sorted-disjoint invariant holds even
    /// for adversarial input.
    pub fn seed(len: usize, cert: &Certificate) -> Self {
        let mut stamps: Vec<Stamp> = cert
            .stamps
            .iter()
            .copied()
            .filter(|s| !s.is_empty() && s.hi <= len)
            .collect();
        stamps.sort_by_key(|s| s.lo);
        let mut end = 0;
        stamps.retain(|s| {
            let keep = s.lo >= end;
            if keep {
                end = s.hi;
            }
            keep
        });
        CertMap { stamps }
    }

    /// Stamps positions `[lo, hi)` as certified at `budget`, tallying
    /// on [`certified_counter`]. The window must not overlap an
    /// existing stamp (certification sweeps only probe uncertified
    /// spans).
    pub fn stamp(&mut self, lo: usize, hi: usize, budget: u64) {
        if hi <= lo {
            return;
        }
        let at = self.stamps.partition_point(|s| s.hi <= lo);
        debug_assert!(
            self.stamps.get(at).is_none_or(|s| s.lo >= hi),
            "stamp [{lo}, {hi}) overlaps an existing window"
        );
        self.stamps.insert(at, Stamp { lo, hi, budget });
        certified_counter().inc();
    }

    /// True when position `pos` sits inside a certified window.
    #[inline]
    pub fn contains(&self, pos: usize) -> bool {
        let at = self.stamps.partition_point(|s| s.hi <= pos);
        self.stamps.get(at).is_some_and(|s| s.lo <= pos)
    }

    /// The first uncertified position at or after `pos`, or `None` when
    /// every position up to `len` is certified.
    pub fn next_uncertified(&self, pos: usize, len: usize) -> Option<usize> {
        let mut p = pos;
        let mut at = self.stamps.partition_point(|s| s.hi <= p);
        while let Some(s) = self.stamps.get(at) {
            if p < s.lo {
                break;
            }
            p = s.hi;
            at += 1;
        }
        (p < len).then_some(p)
    }

    /// The maximal uncertified span starting at the first uncertified
    /// position at or after `pos`: `(lo, hi)` where `hi` is the start
    /// of the next stamp (or `len`). Certification sweeps size their
    /// probe windows inside this span so a fresh stamp can never
    /// overrun into a seeded one.
    pub fn uncertified_span(&self, pos: usize, len: usize) -> Option<(usize, usize)> {
        let lo = self.next_uncertified(pos, len)?;
        let at = self.stamps.partition_point(|s| s.hi <= lo);
        let hi = self.stamps.get(at).map_or(len, |s| s.lo.min(len));
        Some((lo, hi))
    }

    /// Live stamped windows.
    pub fn windows(&self) -> usize {
        self.stamps.len()
    }

    /// Gates currently covered by a stamp.
    pub fn certified_gates(&self) -> usize {
        self.stamps.iter().map(Stamp::len).sum()
    }

    /// True when no window is stamped.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Drops every stamp, tallying the cleared windows as invalidated.
    /// For whole-circuit replacements (async resynthesis accepts),
    /// where no patch describes the edit.
    pub fn clear(&mut self) {
        if !self.stamps.is_empty() {
            invalidated_counter().add(self.stamps.len() as u64);
        }
        self.stamps.clear();
    }

    /// Folds an accepted patch into the map: clears every stamp
    /// overlapping its `pad`-widened pre-patch window (tallying on
    /// [`invalidated_counter`]) and shifts stamps past it by the length
    /// delta, keeping every surviving stamp aligned with the post-patch
    /// circuit. Order relative to `Circuit::apply_patch` is irrelevant —
    /// only the patch itself is consulted.
    pub fn commit_patch(&mut self, patch: &Patch, pad: usize) {
        let dropped = fold_patch(&mut self.stamps, patch, pad);
        if dropped > 0 {
            invalidated_counter().add(dropped);
        }
    }

    /// Converts the live map to a serializable [`Certificate`] for a
    /// circuit of `total_gates` gates. `budget` is recorded as the
    /// certificate-level probe budget.
    pub fn to_certificate(&self, total_gates: usize, budget: u64) -> Certificate {
        Certificate {
            budget,
            total_gates,
            stamps: self.stamps.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::{Circuit, Gate};

    fn cert(stamps: &[(usize, usize)], gates: usize) -> Certificate {
        Certificate {
            budget: 8,
            total_gates: gates,
            stamps: stamps
                .iter()
                .map(|&(lo, hi)| Stamp { lo, hi, budget: 8 })
                .collect(),
        }
    }

    #[test]
    fn coverage_counts_covered_gates() {
        let c = cert(&[(0, 4), (8, 12)], 16);
        assert_eq!(c.certified_gates(), 8);
        assert!((c.coverage() - 0.5).abs() < 1e-12);
        assert_eq!(cert(&[], 0).coverage(), 1.0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = cert(&[(0, 4), (8, 12)], 16);
        let decoded = Certificate::decode(&c.encode()).unwrap();
        assert_eq!(decoded, c);
        assert!(Certificate::decode("garbage").is_err());
        assert!(Certificate::decode("QCERT1 budget=1 gates=4 stamps=1\n2 9 1\n").is_err());
    }

    #[test]
    fn rebase_drops_dirty_and_shifts_survivors() {
        let c = cert(&[(0, 4), (10, 14)], 20);
        // Remove gate 11: overlaps the second stamp only.
        let op = Patch::new(vec![11], Vec::new(), 11);
        let r = c.rebase(&[op], CERT_PAD);
        assert_eq!(
            r.stamps,
            vec![Stamp {
                lo: 0,
                hi: 4,
                budget: 8
            }]
        );
        assert_eq!(r.total_gates, 19);
        // Insert at 6: dirties neither stamp (pad 2 reaches 4..8), the
        // second shifts right.
        let mut donor = Circuit::new(2);
        donor.push(Gate::X, &[0]);
        let op = Patch::new(Vec::new(), vec![donor.instruction(0)], 6);
        let r = c.rebase(&[op], CERT_PAD);
        assert_eq!(r.stamps.len(), 2);
        assert_eq!((r.stamps[1].lo, r.stamps[1].hi), (11, 15));
        assert_eq!(r.total_gates, 21);
    }

    #[test]
    fn map_roundtrips_through_certificate() {
        let prior = cert(&[(0, 4), (6, 10)], 12);
        let map = CertMap::seed(12, &prior);
        assert_eq!(map.windows(), 2);
        assert_eq!(map.certified_gates(), 8);
        assert!(map.contains(1));
        assert!(!map.contains(5));
        assert!(map.contains(9));
        assert!(!map.contains(11));
        assert_eq!(map.to_certificate(12, 8), prior);
    }

    #[test]
    fn seed_skips_out_of_range_and_overlapping_stamps() {
        let prior = cert(&[(0, 4), (2, 6), (8, 20)], 12);
        let map = CertMap::seed(12, &prior);
        assert_eq!(map.windows(), 1);
        assert_eq!(map.certified_gates(), 4);
    }

    #[test]
    fn commit_clears_only_overlapping_windows() {
        let prior = cert(&[(0, 4), (6, 10)], 12);
        let mut map = CertMap::seed(12, &prior);
        // Remove position 7 — inside the second window.
        let patch = Patch::new(vec![7], Vec::new(), 7);
        map.commit_patch(&patch, CERT_PAD);
        assert_eq!(map.windows(), 1);
        assert!(map.contains(0));
        assert!(!map.contains(6));
        let back = map.to_certificate(11, 8);
        assert_eq!(
            back.stamps,
            vec![Stamp {
                lo: 0,
                hi: 4,
                budget: 8
            }]
        );
    }

    #[test]
    fn padded_commit_reaches_neighbors() {
        let mut map = CertMap::seed(12, &cert(&[(0, 4)], 12));
        // An edit at position 5 is outside the stamp but within CERT_PAD.
        let patch = Patch::new(vec![5], Vec::new(), 5);
        map.commit_patch(&patch, CERT_PAD);
        assert!(map.is_empty());
    }

    #[test]
    fn uncertified_span_is_clamped_by_the_next_stamp() {
        let map = CertMap::seed(20, &cert(&[(0, 4), (6, 10)], 20));
        // The gap between the stamps, however wide a window the caller
        // wanted.
        assert_eq!(map.uncertified_span(0, 20), Some((4, 6)));
        // The open tail after the last stamp runs to `len`.
        assert_eq!(map.uncertified_span(7, 20), Some((10, 20)));
        assert_eq!(map.uncertified_span(0, 4), None);
        assert_eq!(CertMap::new().uncertified_span(0, 5), Some((0, 5)));
    }

    #[test]
    fn next_uncertified_walks_over_stamped_runs() {
        let map = CertMap::seed(12, &cert(&[(0, 4), (6, 10)], 12));
        assert_eq!(map.next_uncertified(0, 12), Some(4));
        assert_eq!(map.next_uncertified(4, 12), Some(4));
        assert_eq!(map.next_uncertified(5, 12), Some(5));
        assert_eq!(map.next_uncertified(6, 12), Some(10));
        assert_eq!(map.next_uncertified(10, 12), Some(10));
        assert_eq!(map.next_uncertified(0, 4), None);
        let full = CertMap::seed(6, &cert(&[(0, 6)], 6));
        assert_eq!(full.next_uncertified(0, 6), None);
    }

    #[test]
    fn stamping_keeps_sorted_disjoint_order() {
        let mut map = CertMap::new();
        map.stamp(8, 12, 4);
        map.stamp(0, 4, 4);
        map.stamp(4, 8, 4);
        assert_eq!(map.windows(), 3);
        assert_eq!(map.certified_gates(), 12);
        assert_eq!(map.next_uncertified(0, 12), None);
        assert_eq!(map.next_uncertified(0, 13), Some(12));
    }
}
