//! Invalidation soundness under random edit scripts.
//!
//! A reference model tracks each stamp by hand — dead once any applied
//! patch's padded window overlaps it, shifted when an edit lands before
//! it — and the live [`CertMap`] plus the serialized
//! [`Certificate::rebase`] path must both agree with it exactly: every
//! overlapped stamp cleared, every non-overlapping stamp surviving at
//! its shifted position. The patches are also applied to a real circuit
//! so the scripts are exactly what a search would commit.

use proptest::prelude::*;
use qcert::{CertMap, Certificate, Stamp, CERT_PAD};
use qcir::edit::Patch;
use qcir::{Circuit, Gate, Instruction};

const BUDGET: u64 = 8;

fn line(n: usize) -> Circuit {
    let mut c = Circuit::new(4);
    for i in 0..n {
        c.push(Gate::X, &[(i % 4) as qcir::Qubit]);
    }
    c
}

/// Disjoint stamps of width `w` separated by gaps of `gap`.
fn initial_stamps(n: usize, w: usize, gap: usize) -> Vec<Stamp> {
    let mut stamps = Vec::new();
    let mut lo = 0;
    while lo + w <= n {
        stamps.push(Stamp {
            lo,
            hi: lo + w,
            budget: BUDGET,
        });
        lo += w + gap;
    }
    stamps
}

/// Materializes one scripted op against the current circuit length, or
/// `None` when the circuit is too short for it.
fn build_patch(kind: u8, frac: f64, len: usize) -> Option<Patch> {
    let x = |q: qcir::Qubit| Instruction::new(Gate::X, &[q]);
    match kind {
        // Remove the gate at p.
        0 => {
            if len == 0 {
                return None;
            }
            let p = ((frac * len as f64) as usize).min(len - 1);
            Some(Patch::new(vec![p], Vec::new(), p))
        }
        // Insert one gate before p (p == len appends).
        1 => {
            let p = ((frac * (len + 1) as f64) as usize).min(len);
            Some(Patch::new(Vec::new(), vec![x(1)], p))
        }
        // Replace the pair at p, p+1 with one gate.
        _ => {
            if len < 2 {
                return None;
            }
            let p = ((frac * len as f64) as usize).min(len - 2);
            Some(Patch::new(vec![p, p + 1], vec![x(2)], p))
        }
    }
}

/// The hand-rolled reference: `None` once invalidated.
fn model_step(stamps: &mut [Option<Stamp>], patch: &Patch) {
    let (wlo, whi) = patch.window();
    let (plo, phi) = (wlo.saturating_sub(CERT_PAD), whi + CERT_PAD);
    let shift = patch.len_delta();
    for slot in stamps.iter_mut() {
        let Some(s) = slot else { continue };
        if s.lo < phi && plo < s.hi {
            *slot = None;
        } else if s.lo >= phi {
            s.lo = (s.lo as isize + shift) as usize;
            s.hi = (s.hi as isize + shift) as usize;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_edit_scripts_invalidate_exactly_the_overlapped_stamps(
        n in 20..80usize,
        w in 2..6usize,
        gap in 1..4usize,
        script in proptest::collection::vec((0..3u8, 0.0..1.0f64), 0..12),
    ) {
        let mut circuit = line(n);
        let stamps = initial_stamps(n, w, gap);
        let prior = Certificate {
            budget: BUDGET,
            total_gates: n,
            stamps: stamps.clone(),
        };
        let mut map = CertMap::seed(circuit.len(), &prior);
        prop_assert_eq!(map.windows(), stamps.len());

        let mut model: Vec<Option<Stamp>> = stamps.into_iter().map(Some).collect();
        let mut ops: Vec<Patch> = Vec::new();
        for &(kind, frac) in &script {
            let Some(patch) = build_patch(kind, frac, circuit.len()) else {
                continue;
            };
            model_step(&mut model, &patch);
            map.commit_patch(&patch, CERT_PAD);
            circuit.apply_patch(&patch);
            ops.push(patch);
        }

        let expected: Vec<Stamp> = model.iter().filter_map(|s| *s).collect();

        // The live map cleared exactly the overlapped stamps…
        prop_assert_eq!(map.windows(), expected.len());
        prop_assert_eq!(
            map.certified_gates(),
            expected.iter().map(Stamp::len).sum::<usize>()
        );
        // …and the survivors sit at their shifted positions.
        for s in &expected {
            for p in s.lo..s.hi {
                prop_assert!(map.contains(p));
            }
            prop_assert!(s.hi <= circuit.len());
        }
        let live = map.to_certificate(circuit.len(), BUDGET);
        prop_assert_eq!(&live.stamps, &expected);

        // The serialized-certificate path agrees with the live map.
        let rebased = prior.rebase(&ops, CERT_PAD);
        prop_assert_eq!(&rebased.stamps, &expected);
        prop_assert_eq!(rebased.total_gates, circuit.len());

        // And the wire round-trip preserves it all.
        let decoded = Certificate::decode(&rebased.encode()).unwrap();
        prop_assert_eq!(decoded, rebased);
    }

    #[test]
    fn untouched_certificates_survive_rebase_unchanged(
        n in 10..40usize,
        w in 2..5usize,
    ) {
        let prior = Certificate {
            budget: BUDGET,
            total_gates: n,
            stamps: initial_stamps(n, w, 2),
        };
        let rebased = prior.rebase(&[], CERT_PAD);
        prop_assert_eq!(rebased, prior);
    }
}
