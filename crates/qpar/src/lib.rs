//! `qpar` — sharded parallel optimization over the incremental edit
//! engine.
//!
//! GUOQ is an anytime stochastic search: final quality is a direct
//! function of iterations per second. After the incremental engine made
//! a single iteration O(edit-span), the remaining headroom is
//! parallelism — and local-window optimization parallelizes naturally,
//! as POPQC (Liu et al., 2025) demonstrated: partition the circuit into
//! regions, optimize each region with an independent worker, and manage
//! the region boundaries so cross-boundary optimizations are not
//! permanently blocked.
//!
//! # The shard / commit / rotate protocol
//!
//! The coordinator drives a sequence of **epochs** against a master
//! circuit:
//!
//! 1. **Shard.** The master is partitioned into contiguous instruction
//!    windows with [`qcir::shard::ShardPlan::partition`] — one standalone
//!    circuit per shard over the full register (boundary-qubit metadata
//!    is available on demand via `ShardPlan::boundary_qubits`). Shard
//!    tasks (circuit + iteration slice + ε allowance + deterministic
//!    per-task seed) go into a shared MPMC queue.
//! 2. **Optimize.** A fixed pool of workers pulls tasks from the queue.
//!    Each worker owns a [`ShardOptimizer`] (in this workspace: a
//!    `guoq` `ShardDriver` running Algorithm 1 over the shard) and
//!    returns the optimized shard. Because shards are disjoint slices of
//!    one topological order, per-shard semantics preservation composes
//!    to whole-circuit semantics preservation.
//! 3. **Commit.** The coordinator collects all outcomes and reassembles
//!    the master as the concatenation of the optimized shards, charging
//!    each shard's measured ε against the global budget.
//! 4. **Rotate.** The next epoch re-partitions with a shifted phase:
//!    interior cut points move by half a window, so gates split by a
//!    boundary in one epoch are interior in the next (POPQC's managed
//!    boundaries).
//!
//! **Work stealing** falls out of the shared queue: the plan is
//! oversubscribed (more shards than workers), so a worker that
//! finishes early simply pulls the next pending shard — a stalled or
//! slow shard never idles the pool. Each shard also carries a nominal
//! *home* worker (`index % workers`); per-worker [`WorkerStats`]
//! count pickups outside that static assignment (`cross_home`), which
//! measures how much the dynamic queue deviated from round-robin —
//! not corrective steals in the per-worker-deque sense, since the
//! shared FIFO has no affinity to deviate *from*.
//!
//! # Determinism
//!
//! Task seeds are a pure function of (base seed, epoch, shard index),
//! so a shard's outcome does not depend on *which* worker ran it or on
//! thread timing: under an iteration budget, the committed master is a
//! pure function of the input and [`ParallelOpts`]. (The shard count
//! scales with the worker count, so different worker counts explore
//! different partitions; *runs with the same options* are bit-for-bit
//! reproducible, and only the scheduling statistics are racy.)

#![warn(missing_docs)]

use crossbeam_channel::bounded;
use qcir::shard::{ShardPlan, ShardSpec};
use qcir::{Circuit, Qubit};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cooperative cancellation flag shared between a long-running search
/// and whoever may need to stop it early (a serving layer's CANCEL
/// frame, a per-job timeout watchdog, a Ctrl-C handler).
///
/// Cloning shares the flag. Cancellation is sticky: once
/// [`cancel`](CancelToken::cancel) is called every holder observes
/// [`is_cancelled`](CancelToken::is_cancelled) `== true` forever. The
/// search loops check the flag between iterations, so cancellation is
/// prompt (bounded by one iteration / one epoch) but never tears a
/// partially-applied edit: the best-so-far result remains valid — the
/// anytime contract under early exit.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called on any
    /// clone of this token.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// One unit of work: optimize a shard circuit under local budgets.
#[derive(Debug, Clone)]
pub struct ShardTask {
    /// Epoch this task belongs to.
    pub epoch: u64,
    /// The window this shard occupies in the master circuit.
    pub spec: ShardSpec,
    /// The shard's instructions as a standalone circuit (full register).
    pub circuit: Circuit,
    /// Iterations the optimizer should spend on this shard this epoch.
    pub slice_iterations: u64,
    /// Approximation error the optimizer may introduce in this slice.
    pub eps_allowance: f64,
    /// Global wall-clock deadline, if the run is time-budgeted.
    pub deadline: Option<Instant>,
    /// Deterministic RNG seed (function of base seed, epoch, shard).
    pub seed: u64,
    /// The worker this shard would land on under static round-robin;
    /// any other worker processing it counts as a cross-home pickup.
    pub home_worker: usize,
    /// Qubits this shard shares with the rest of the circuit
    /// ([`ShardPlan::boundary_qubits`]), freshly computed for the
    /// current rotation phase. Populated only when
    /// [`ParallelOpts::boundary_aware`] is set — boundary-biased
    /// optimizers use it to target cross-shard cancellations right
    /// after each boundary rotation; empty otherwise.
    pub boundary_qubits: Vec<Qubit>,
}

/// The result of optimizing one shard.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The optimized shard (replaces the task's window on commit).
    pub circuit: Circuit,
    /// Iterations actually performed.
    pub iterations: u64,
    /// Accepted moves.
    pub accepted: u64,
    /// Resynthesis calls that returned a replacement.
    pub resynth_hits: u64,
    /// Approximation error introduced (≤ the task's allowance).
    pub epsilon: f64,
    /// The shard driver's telemetry profile ([`qtrace::Profile`]):
    /// fast/slow time split and per-family accept tallies for this
    /// slice. Default (all-zero) for optimizers that don't measure.
    pub profile: qtrace::Profile,
}

/// A per-worker shard optimizer: the strategy the pool runs on each
/// task. Implementations must preserve the semantics of the shard
/// circuit to within the task's ε allowance.
pub trait ShardOptimizer {
    /// Optimizes one shard. The task is owned: the worker consumes the
    /// shard circuit (no defensive clone needed).
    fn optimize_shard(&mut self, task: ShardTask) -> ShardOutcome;
}

/// Tuning knobs for [`optimize_sharded`].
#[derive(Debug, Clone)]
pub struct ParallelOpts {
    /// Worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Shards per worker per epoch (> 1 oversubscribes the queue so a
    /// fast worker picks up a slow worker's pending shards).
    pub oversubscribe: usize,
    /// Iterations per shard per epoch (the commit cadence).
    pub slice_iterations: u64,
    /// Target minimum instructions per shard: the shard count is capped
    /// at `circuit_len / min_shard_len` so the *average* window stays at
    /// or above this. (Boundary rotation shifts cuts by half a window,
    /// so an edge window in odd epochs can be up to half this size.)
    pub min_shard_len: usize,
    /// Global approximation-error budget shared by all shards.
    pub eps_total: f64,
    /// Stop starting epochs at this instant (anytime mode).
    pub deadline: Option<Instant>,
    /// Stop once this many iterations were performed across all shards.
    pub max_iterations: Option<u64>,
    /// Compute [`ShardTask::boundary_qubits`] for every task (one
    /// extra pass over the master per shard per epoch). Off by
    /// default; enabled by boundary-biased shard optimizers.
    pub boundary_aware: bool,
    /// Base RNG seed for per-task seed derivation.
    pub seed: u64,
    /// Cooperative cancellation: the coordinator stops starting epochs
    /// once the token is cancelled (shard optimizers are expected to
    /// check the same token between iterations so an in-flight epoch
    /// drains promptly). `None` disables the check.
    pub cancel: Option<CancelToken>,
}

impl Default for ParallelOpts {
    fn default() -> Self {
        ParallelOpts {
            workers: 4,
            oversubscribe: 2,
            slice_iterations: 4096,
            min_shard_len: 32,
            eps_total: 1e-8,
            deadline: None,
            max_iterations: None,
            boundary_aware: false,
            seed: 0xCAFE,
            cancel: None,
        }
    }
}

/// Scheduling and throughput counters for one pool worker.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Worker index within the pool.
    pub worker: usize,
    /// Shard tasks this worker processed.
    pub shards_run: u64,
    /// Tasks processed whose round-robin home was another worker —
    /// how far dynamic scheduling deviated from static assignment
    /// (compare `shards_run` across workers for actual imbalance).
    pub cross_home: u64,
    /// Total iterations across this worker's tasks.
    pub iterations: u64,
    /// Total accepted moves across this worker's tasks.
    pub accepted: u64,
    /// Total resynthesis hits across this worker's tasks.
    pub resynth_hits: u64,
}

/// Aggregate result of a sharded run.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// The final committed master circuit.
    pub circuit: Circuit,
    /// Completed epochs (shard → optimize → commit rounds).
    pub epochs: u64,
    /// Total iterations across all shards and epochs.
    pub iterations: u64,
    /// Total accepted moves.
    pub accepted: u64,
    /// Total resynthesis hits.
    pub resynth_hits: u64,
    /// Accumulated approximation error (≤ `eps_total`).
    pub epsilon: f64,
    /// Per-worker scheduling statistics.
    pub worker_stats: Vec<WorkerStats>,
    /// Merge of every shard outcome's [`qtrace::Profile`] — the run's
    /// total busy-time split and per-family tallies across all workers.
    pub profile: qtrace::Profile,
}

/// A commit notification passed to the epoch observer — the
/// coordinator's streaming hook: a serving layer can snapshot the
/// committed master here and push a best-so-far frame to its client
/// while the search keeps running.
#[derive(Debug, Clone)]
pub struct CommitInfo<'a> {
    /// Epoch just committed (1-based).
    pub epoch: u64,
    /// The master circuit after the commit.
    pub circuit: &'a Circuit,
    /// The master as it was *before* this commit, by value: the
    /// reassembly replaces the coordinator's master, so the previous
    /// one is moved out here instead of being dropped. An observer
    /// tracking a lazy best-so-far (best ≡ live master while commits
    /// keep improving) freezes exactly this circuit when a commit
    /// fails to improve — no snapshot clone per epoch.
    pub previous: Circuit,
    /// Total iterations so far.
    pub iterations: u64,
    /// Total accepted moves so far (a read of the coordinator's
    /// [`qtrace::Counter`] tally at commit time).
    pub accepted: u64,
    /// Total resynthesis hits so far (same registry-backed tally).
    pub resynth_hits: u64,
    /// Accumulated ε so far.
    pub epsilon: f64,
    /// Merge of every shard profile committed so far — the cumulative
    /// busy-time split the commit observer can stream as telemetry.
    pub profile: qtrace::Profile,
}

/// SplitMix64: the per-task seed derivation.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn task_seed(base: u64, epoch: u64, shard: u64) -> u64 {
    splitmix(base ^ splitmix(epoch ^ splitmix(shard)))
}

/// Runs the shard / commit / rotate protocol on `circuit` with a pool
/// of `opts.workers` threads, each owning the [`ShardOptimizer`] built
/// by `make_worker(worker_index)`.
///
/// `on_commit` observes every committed master (for best-so-far
/// tracking and cost trajectories); commits are monotone improvements
/// for additive cost functions because each shard optimizer returns its
/// best-so-far shard, which is never worse than its input.
///
/// The run stops at `opts.deadline` and/or after `opts.max_iterations`
/// total iterations (whichever comes first; at least one epoch runs if
/// any budget remains).
///
/// # Panics
///
/// Panics when `opts` sets neither `deadline` nor `max_iterations`:
/// the epoch loop would otherwise never return (the search is anytime —
/// it does not converge on its own).
pub fn optimize_sharded<W, F, C>(
    circuit: &Circuit,
    opts: &ParallelOpts,
    make_worker: F,
    mut on_commit: C,
) -> ParallelOutcome
where
    W: ShardOptimizer,
    F: Fn(usize) -> W + Sync,
    C: FnMut(CommitInfo<'_>),
{
    assert!(
        opts.deadline.is_some() || opts.max_iterations.is_some(),
        "optimize_sharded needs a deadline or an iteration cap; an unbudgeted anytime search never returns"
    );
    let workers = opts.workers.max(1);
    let queue_cap = (workers * opts.oversubscribe.max(1)).max(4);
    let (task_tx, task_rx) = bounded::<ShardTask>(queue_cap);
    let (res_tx, res_rx) = bounded::<(usize, ShardOutcome)>(queue_cap);

    std::thread::scope(|scope| {
        let make_worker = &make_worker;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let task_rx = task_rx.clone();
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    let mut optimizer = make_worker(w);
                    let mut stats = WorkerStats {
                        worker: w,
                        ..Default::default()
                    };
                    while let Ok(task) = task_rx.recv() {
                        if task.home_worker != w {
                            stats.cross_home += 1;
                        }
                        let shard_index = task.spec.index();
                        let out = optimizer.optimize_shard(task);
                        stats.shards_run += 1;
                        stats.iterations += out.iterations;
                        stats.accepted += out.accepted;
                        stats.resynth_hits += out.resynth_hits;
                        if res_tx.send((shard_index, out)).is_err() {
                            break;
                        }
                    }
                    stats
                })
            })
            .collect();
        // The workers hold clones; drop the coordinator's own handles so
        // worker exit (queue disconnect) propagates.
        drop(task_rx);
        drop(res_tx);

        let mut master = circuit.clone();
        let mut epochs = 0u64;
        let mut iterations = 0u64;
        // The accepted/resynth tallies are qtrace counters so CommitInfo
        // and ParallelOutcome report views of the same registry-typed
        // accumulators the shard drivers feed (one vocabulary, no
        // bespoke duplicates).
        let accepted = qtrace::Counter::new();
        let resynth_hits = qtrace::Counter::new();
        let mut epsilon = 0f64;
        let mut profile = qtrace::Profile::default();

        loop {
            if master.is_empty() {
                break; // nothing left to optimize
            }
            if let Some(deadline) = opts.deadline {
                if Instant::now() >= deadline {
                    break;
                }
            }
            if opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                break;
            }
            let mut remaining = match opts.max_iterations {
                Some(max) => {
                    if iterations >= max {
                        break;
                    }
                    max - iterations
                }
                None => u64::MAX,
            };

            let target_shards = (workers * opts.oversubscribe.max(1))
                .min(master.len() / opts.min_shard_len.max(1))
                .max(1);
            let plan = ShardPlan::partition(&master, target_shards, epochs as usize);
            let nshards = plan.len() as u64;

            for (s, spec) in plan.shards().iter().enumerate() {
                // Split the remaining budget over the shards not yet
                // assigned (ceil), so a budget-tail epoch spends itself
                // evenly instead of smearing a geometric remainder over
                // many O(circuit) commit rounds.
                let unassigned = nshards - s as u64;
                let slice = opts
                    .slice_iterations
                    .min(remaining.div_ceil(unassigned))
                    .min(remaining);
                remaining -= slice;
                let task = ShardTask {
                    epoch: epochs,
                    spec: *spec,
                    circuit: plan.extract(&master, spec.index()),
                    slice_iterations: slice,
                    eps_allowance: ((opts.eps_total - epsilon) / nshards as f64).max(0.0),
                    deadline: opts.deadline,
                    seed: task_seed(opts.seed, epochs, spec.index() as u64),
                    home_worker: spec.index() % workers,
                    boundary_qubits: if opts.boundary_aware && nshards > 1 {
                        plan.boundary_qubits(&master, spec.index())
                    } else {
                        Vec::new()
                    },
                };
                task_tx.send(task).expect("worker pool disconnected");
            }

            let mut parts: Vec<Option<(Circuit, f64)>> = vec![None; plan.len()];
            let mut epoch_iterations = 0u64;
            for _ in 0..plan.len() {
                // Poll rather than block forever: a worker that panics
                // mid-task never sends its outcome, and the surviving
                // workers keep the result channel connected — without
                // the liveness check the coordinator would hang instead
                // of surfacing the panic.
                let (shard_index, out) = loop {
                    match res_rx.recv_timeout(std::time::Duration::from_millis(200)) {
                        Ok(msg) => break msg,
                        Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                            assert!(
                                !handles.iter().any(|h| h.is_finished()),
                                "a shard worker exited with tasks outstanding (worker panic)"
                            );
                        }
                        Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                            panic!("worker pool disconnected")
                        }
                    }
                };
                epoch_iterations += out.iterations;
                accepted.add(out.accepted);
                resynth_hits.add(out.resynth_hits);
                profile.merge(&out.profile);
                parts[shard_index] = Some((out.circuit, out.epsilon));
            }
            iterations += epoch_iterations;
            let mut circuits = Vec::with_capacity(plan.len());
            // Sum ε in shard-index order, not result-arrival order:
            // f64 addition is non-associative, and the allowance carved
            // from it next epoch must not depend on thread timing.
            for slot in parts {
                let (circuit, eps) = slot.expect("one outcome per shard");
                epsilon += eps;
                circuits.push(circuit);
            }
            let previous = std::mem::replace(&mut master, plan.reassemble(&circuits));
            epochs += 1;
            on_commit(CommitInfo {
                epoch: epochs,
                circuit: &master,
                previous,
                iterations,
                accepted: accepted.get(),
                resynth_hits: resynth_hits.get(),
                epsilon,
                profile,
            });
            if epoch_iterations == 0 {
                // Optimizer made no progress (declined every task, or the
                // deadline passed mid-epoch): stop rather than spin
                // through O(circuit) shard/commit rounds doing nothing.
                break;
            }
        }

        drop(task_tx); // disconnect the queue: workers exit their loops
        let worker_stats = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        ParallelOutcome {
            circuit: master,
            epochs,
            iterations,
            accepted: accepted.get(),
            resynth_hits: resynth_hits.get(),
            epsilon,
            worker_stats,
            profile,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::{Gate, Qubit};

    /// A toy optimizer: cancels adjacent identical-CX pairs within the
    /// shard and reports one iteration per gate examined.
    struct PairCanceller;

    impl ShardOptimizer for PairCanceller {
        fn optimize_shard(&mut self, task: ShardTask) -> ShardOutcome {
            let mut out = Circuit::new(task.circuit.num_qubits());
            let mut accepted = 0u64;
            let mut skip = false;
            let instrs = task.circuit.instructions();
            for (i, ins) in instrs.iter().enumerate() {
                if skip {
                    skip = false;
                    continue;
                }
                if task.slice_iterations > 0
                    && ins.gate == Gate::Cx
                    && i + 1 < instrs.len()
                    && instrs[i + 1] == *ins
                {
                    skip = true;
                    accepted += 1;
                    continue;
                }
                out.push_instruction(*ins);
            }
            ShardOutcome {
                circuit: out,
                iterations: task.slice_iterations.min(task.circuit.len() as u64),
                accepted,
                resynth_hits: 0,
                epsilon: 0.0,
                profile: qtrace::Profile::default(),
            }
        }
    }

    fn cx_pairs(pairs: usize) -> Circuit {
        let mut c = Circuit::new(4);
        for i in 0..pairs {
            let a = (i % 3) as Qubit;
            c.push(Gate::Cx, &[a, a + 1]);
            c.push(Gate::Cx, &[a, a + 1]);
        }
        c
    }

    #[test]
    fn pool_cancels_everything_across_epochs() {
        let c = cx_pairs(64);
        let opts = ParallelOpts {
            workers: 3,
            oversubscribe: 2,
            slice_iterations: 16,
            min_shard_len: 4,
            max_iterations: Some(10_000),
            ..Default::default()
        };
        let mut commits = 0;
        let out = optimize_sharded(&c, &opts, |_| PairCanceller, |_| commits += 1);
        // Boundary rotation must eventually expose every pair, even ones
        // initially split across a cut.
        assert!(out.circuit.is_empty(), "{} gates left", out.circuit.len());
        assert_eq!(out.epochs as usize, commits);
        assert!(out.iterations <= 10_000);
        let total: u64 = out.worker_stats.iter().map(|s| s.shards_run).sum();
        assert!(total >= out.epochs, "each epoch runs at least one shard");
    }

    #[test]
    fn deterministic_across_runs_and_convergent_across_workers() {
        let c = cx_pairs(32);
        let run = |workers| {
            let opts = ParallelOpts {
                workers,
                oversubscribe: 2,
                slice_iterations: 8,
                min_shard_len: 4,
                max_iterations: Some(2048),
                ..Default::default()
            };
            optimize_sharded(&c, &opts, |_| PairCanceller, |_| {}).circuit
        };
        // Same options → bit-identical master regardless of scheduling.
        assert_eq!(run(3), run(3));
        // Different worker counts partition differently but all drain
        // the fully-cancellable workload.
        for workers in [1, 2, 4] {
            assert!(run(workers).is_empty());
        }
    }

    #[test]
    fn boundary_aware_tasks_carry_shared_wires() {
        use std::sync::Mutex;
        struct Recorder<'a>(&'a Mutex<Vec<Vec<Qubit>>>);
        impl ShardOptimizer for Recorder<'_> {
            fn optimize_shard(&mut self, task: ShardTask) -> ShardOutcome {
                self.0.lock().unwrap().push(task.boundary_qubits.clone());
                ShardOutcome {
                    circuit: task.circuit,
                    iterations: 1,
                    accepted: 0,
                    resynth_hits: 0,
                    epsilon: 0.0,
                    profile: qtrace::Profile::default(),
                }
            }
        }
        let c = cx_pairs(32); // every wire crosses shard cuts
        let mut opts = ParallelOpts {
            workers: 2,
            oversubscribe: 1,
            slice_iterations: 1,
            min_shard_len: 8,
            max_iterations: Some(4),
            ..Default::default()
        };
        let seen = Mutex::new(Vec::new());
        let out = optimize_sharded(&c, &opts, |_| Recorder(&seen), |_| {});
        assert_eq!(out.circuit, c);
        assert!(seen.lock().unwrap().iter().all(|b| b.is_empty()));

        seen.lock().unwrap().clear();
        opts.boundary_aware = true;
        optimize_sharded(&c, &opts, |_| Recorder(&seen), |_| {});
        let recorded = seen.lock().unwrap();
        assert!(!recorded.is_empty());
        assert!(
            recorded.iter().all(|b| !b.is_empty()),
            "every shard of this workload shares wires: {recorded:?}"
        );
    }

    struct Panicker;

    impl ShardOptimizer for Panicker {
        fn optimize_shard(&mut self, _task: ShardTask) -> ShardOutcome {
            panic!("boom");
        }
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates_instead_of_hanging() {
        let c = cx_pairs(16);
        let opts = ParallelOpts {
            workers: 2,
            min_shard_len: 4,
            max_iterations: Some(100),
            ..Default::default()
        };
        let _ = optimize_sharded(&c, &opts, |_| Panicker, |_| {});
    }

    #[test]
    fn cancel_from_commit_observer_stops_the_run() {
        let c = cx_pairs(64);
        let token = CancelToken::new();
        let opts = ParallelOpts {
            workers: 2,
            oversubscribe: 2,
            slice_iterations: 1, // one cancellation per epoch max
            min_shard_len: 4,
            max_iterations: Some(1_000_000),
            cancel: Some(token.clone()),
            ..Default::default()
        };
        let mut commits = 0u64;
        let out = optimize_sharded(
            &c,
            &opts,
            |_| PairCanceller,
            |info| {
                commits = info.epoch;
                token.cancel();
            },
        );
        // The observer cancelled on the first commit; the coordinator
        // must stop before starting another epoch.
        assert_eq!(out.epochs, 1);
        assert_eq!(commits, 1);
    }

    #[test]
    fn pre_cancelled_token_runs_no_epochs() {
        let c = cx_pairs(8);
        let token = CancelToken::new();
        token.cancel();
        let opts = ParallelOpts {
            workers: 2,
            max_iterations: Some(1000),
            cancel: Some(token),
            ..Default::default()
        };
        let out = optimize_sharded(&c, &opts, |_| PairCanceller, |_| {});
        assert_eq!(out.epochs, 0);
        assert_eq!(out.circuit, c);
    }

    #[test]
    fn zero_budget_runs_no_epochs() {
        let c = cx_pairs(8);
        let opts = ParallelOpts {
            workers: 2,
            max_iterations: Some(0),
            ..Default::default()
        };
        let out = optimize_sharded(&c, &opts, |_| PairCanceller, |_| {});
        assert_eq!(out.epochs, 0);
        assert_eq!(out.circuit, c);
    }
}
