//! `qfold` — phase-polynomial rotation folding.
//!
//! This crate is the workspace's stand-in for PyZX in the paper's Q4
//! evaluation (see DESIGN.md §3). It implements the rotation-merging
//! optimization of Nam et al.: within `{CX, X, Swap, phase}` regions the
//! circuit acts as an affine permutation of basis states, every wire
//! carries an affine Boolean function of the region's inputs, and two
//! diagonal rotations applied to wires carrying the *same* function merge
//! into one. Hadamards (and any other unhandled gate) start a fresh
//! region on the wires they touch.
//!
//! Like PyZX, the pass sharply reduces phase-gate (`T`) count and leaves
//! the CX count untouched.
//!
//! ```
//! use qcir::{Circuit, Gate};
//! use qfold::{fold_rotations, EmitStyle};
//!
//! // T; CX; CX; T on the same wire: the parities match, so the two T
//! // gates merge into one S.
//! let mut c = Circuit::new(2);
//! c.push(Gate::T, &[0]);
//! c.push(Gate::Cx, &[0, 1]);
//! c.push(Gate::Cx, &[0, 1]);
//! c.push(Gate::T, &[0]);
//! let out = fold_rotations(&c, EmitStyle::CliffordT);
//! assert_eq!(out.t_count(), 0);
//! ```

#![warn(missing_docs)]

use qcir::{Circuit, Gate, Instruction, Qubit};
use qmath::angle::{is_zero_mod_2pi, pi4_multiple_of};
use std::collections::HashMap;

/// How merged rotations are re-emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitStyle {
    /// As a single `Rz(θ)` gate (continuous gate sets).
    Rz,
    /// As a minimal `{S, S†, T, T†}` sequence — requires every merged
    /// angle to be a multiple of π/4 (guaranteed when the input is
    /// Clifford+T).
    CliffordT,
}

/// An affine Boolean function: a parity of region variables plus an
/// optional negation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Parity {
    bits: Vec<u64>,
    neg: bool,
}

impl Parity {
    fn var(i: usize) -> Parity {
        let mut bits = vec![0u64; i / 64 + 1];
        bits[i / 64] |= 1 << (i % 64);
        Parity { bits, neg: false }
    }

    fn xor_assign(&mut self, other: &Parity) {
        if self.bits.len() < other.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a ^= b;
        }
        self.neg ^= other.neg;
    }

    fn key(&self) -> Vec<u64> {
        // Trim trailing zero words so equal parities hash equally even if
        // allocated at different variable counts.
        let mut k = self.bits.clone();
        while k.last() == Some(&0) {
            k.pop();
        }
        k
    }
}

/// A pending merged rotation.
#[derive(Debug, Clone)]
struct Slot {
    wire: Qubit,
    /// Angle in the parity frame (wire value = parity ⊕ `neg_at_slot`).
    angle: f64,
    /// Negation of the wire relative to the parity at the slot position.
    neg_at_slot: bool,
}

/// Merge statistics from a fold pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FoldStats {
    /// Number of rotations merged into earlier slots.
    pub merged: usize,
    /// Number of slots dropped because their merged angle was ≡ 0.
    pub eliminated: usize,
}

/// Runs rotation folding, returning the optimized circuit.
///
/// The output is semantically equivalent to the input (up to global
/// phase); CX count and all non-phase gates are preserved verbatim.
///
/// # Panics
///
/// Panics if `style` is [`EmitStyle::CliffordT`] and a merged angle is not
/// a multiple of π/4 (cannot happen for Clifford+T-native inputs).
pub fn fold_rotations(circuit: &Circuit, style: EmitStyle) -> Circuit {
    fold_rotations_with_stats(circuit, style).0
}

/// [`fold_rotations`] with merge statistics.
pub fn fold_rotations_with_stats(circuit: &Circuit, style: EmitStyle) -> (Circuit, FoldStats) {
    let n = circuit.num_qubits();
    let mut stats = FoldStats::default();
    let mut var_count = n;

    let mut parity: Vec<Parity> = (0..n).map(Parity::var).collect();
    enum Out {
        Verbatim(Instruction),
        Rotation(usize),
    }
    let mut out: Vec<Out> = Vec::new();
    let mut slots: Vec<Slot> = Vec::new();
    // parity key -> slot id.
    let mut by_parity: HashMap<Vec<u64>, usize> = HashMap::new();

    for ins in circuit.iter() {
        match phase_angle(ins.gate) {
            Some(theta) => {
                let w = ins.qubits()[0];
                let p = &parity[w as usize];
                let eff = if p.neg { -theta } else { theta };
                match by_parity.get(&p.key()) {
                    Some(&sid) => {
                        slots[sid].angle += eff;
                        stats.merged += 1;
                    }
                    None => {
                        let sid = slots.len();
                        slots.push(Slot {
                            wire: w,
                            angle: eff,
                            neg_at_slot: p.neg,
                        });
                        by_parity.insert(p.key(), sid);
                        out.push(Out::Rotation(sid));
                    }
                }
            }
            None => match ins.gate {
                Gate::Cx => {
                    let (c, t) = (ins.qubits()[0] as usize, ins.qubits()[1] as usize);
                    let src = parity[c].clone();
                    parity[t].xor_assign(&src);
                    out.push(Out::Verbatim(*ins));
                }
                Gate::X => {
                    parity[ins.qubits()[0] as usize].neg ^= true;
                    out.push(Out::Verbatim(*ins));
                }
                Gate::Swap => {
                    let (a, b) = (ins.qubits()[0] as usize, ins.qubits()[1] as usize);
                    parity.swap(a, b);
                    out.push(Out::Verbatim(*ins));
                }
                _ => {
                    // Region boundary: fresh variables for touched wires.
                    for &q in ins.qubits() {
                        parity[q as usize] = Parity::var(var_count);
                        var_count += 1;
                    }
                    out.push(Out::Verbatim(*ins));
                }
            },
        }
    }

    // Emit.
    let mut result = Circuit::new(n);
    for o in out {
        match o {
            Out::Verbatim(ins) => result.push_instruction(ins),
            Out::Rotation(sid) => {
                let slot = &slots[sid];
                let angle = if slot.neg_at_slot {
                    -slot.angle
                } else {
                    slot.angle
                };
                if is_zero_mod_2pi(angle) {
                    stats.eliminated += 1;
                    continue;
                }
                match style {
                    EmitStyle::Rz => result.push(Gate::Rz(angle), &[slot.wire]),
                    EmitStyle::CliffordT => {
                        let k = pi4_multiple_of(angle, 1e-7).unwrap_or_else(|| {
                            panic!("merged angle {angle} is not a multiple of pi/4")
                        });
                        for g in phase_sequence(k) {
                            result.push(g, &[slot.wire]);
                        }
                    }
                }
            }
        }
    }
    (result, stats)
}

/// The diagonal-rotation angle of a gate, if it is a 1q phase gate.
fn phase_angle(g: Gate) -> Option<f64> {
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
    match g {
        Gate::Rz(a) | Gate::P(a) => Some(a),
        Gate::T => Some(FRAC_PI_4),
        Gate::Tdg => Some(-FRAC_PI_4),
        Gate::S => Some(FRAC_PI_2),
        Gate::Sdg => Some(-FRAC_PI_2),
        Gate::Z => Some(PI),
        _ => None,
    }
}

/// Minimal `{S, S†, T, T†}` sequence for `Rz(kπ/4)` up to phase.
fn phase_sequence(k: u8) -> Vec<Gate> {
    match k % 8 {
        0 => vec![],
        1 => vec![Gate::T],
        2 => vec![Gate::S],
        3 => vec![Gate::S, Gate::T],
        4 => vec![Gate::S, Gate::S],
        5 => vec![Gate::Sdg, Gate::Tdg],
        6 => vec![Gate::Sdg],
        7 => vec![Gate::Tdg],
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::circuits_equivalent;
    use std::f64::consts::FRAC_PI_4;

    #[test]
    fn merges_through_cx_pair() {
        let mut c = Circuit::new(2);
        c.push(Gate::T, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::T, &[0]);
        let (out, stats) = fold_rotations_with_stats(&c, EmitStyle::CliffordT);
        assert_eq!(stats.merged, 1);
        assert_eq!(out.t_count(), 0);
        assert!(circuits_equivalent(&c, &out, 1e-6));
    }

    #[test]
    fn merges_parity_exposed_on_other_wire() {
        // CX exposes x0⊕x1 on wire 1; two T's there merge to S.
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::T, &[1]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::T, &[1]);
        c.push(Gate::Cx, &[0, 1]);
        let out = fold_rotations(&c, EmitStyle::CliffordT);
        assert_eq!(out.t_count(), 0);
        assert_eq!(out.two_qubit_count(), 4, "CX count preserved");
        assert!(circuits_equivalent(&c, &out, 1e-6));
    }

    #[test]
    fn t_tdg_annihilate() {
        let mut c = Circuit::new(1);
        c.push(Gate::T, &[0]);
        c.push(Gate::Tdg, &[0]);
        let (out, stats) = fold_rotations_with_stats(&c, EmitStyle::CliffordT);
        assert!(out.is_empty());
        assert_eq!(stats.eliminated, 1);
    }

    #[test]
    fn x_negation_flips_angle() {
        // T; X; T; X: the second T sees the negated wire, so it merges
        // with opposite sign — net zero rotation (up to global phase).
        let mut c = Circuit::new(1);
        c.push(Gate::T, &[0]);
        c.push(Gate::X, &[0]);
        c.push(Gate::T, &[0]);
        c.push(Gate::X, &[0]);
        let out = fold_rotations(&c, EmitStyle::CliffordT);
        assert_eq!(out.t_count(), 0);
        assert!(circuits_equivalent(&c, &out, 1e-6));
    }

    #[test]
    fn h_breaks_region() {
        let mut c = Circuit::new(1);
        c.push(Gate::T, &[0]);
        c.push(Gate::H, &[0]);
        c.push(Gate::T, &[0]);
        let out = fold_rotations(&c, EmitStyle::CliffordT);
        assert_eq!(out.t_count(), 2, "H must prevent merging");
        assert!(circuits_equivalent(&c, &out, 1e-6));
    }

    #[test]
    fn swap_tracks_parities() {
        let mut c = Circuit::new(2);
        c.push(Gate::T, &[0]);
        c.push(Gate::Swap, &[0, 1]);
        c.push(Gate::Tdg, &[1]); // same logical function x0 — cancels
        let out = fold_rotations(&c, EmitStyle::CliffordT);
        assert_eq!(out.t_count(), 0);
        assert!(circuits_equivalent(&c, &out, 1e-6));
    }

    #[test]
    fn continuous_style_emits_rz() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(0.3), &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Rz(0.4), &[0]);
        let out = fold_rotations(&c, EmitStyle::Rz);
        assert_eq!(out.count_where(|i| matches!(i.gate, Gate::Rz(_))), 1);
        assert!(circuits_equivalent(&c, &out, 1e-6));
    }

    #[test]
    fn toffoli_pair_t_reduction() {
        // Two back-to-back Toffolis (decomposed to Clifford+T) carry 14 T
        // gates; rotation folding must reduce that.
        let mut ccx2 = Circuit::new(3);
        ccx2.push(Gate::Ccx, &[0, 1, 2]);
        ccx2.push(Gate::Ccx, &[0, 1, 2]);
        let native = qcir::rebase::rebase(&ccx2, qcir::GateSet::CliffordT).unwrap();
        assert_eq!(native.t_count(), 14);
        let out = fold_rotations(&native, EmitStyle::CliffordT);
        assert!(out.t_count() < 14, "t_count {}", out.t_count());
        assert!(circuits_equivalent(&native, &out, 1e-6));
    }

    #[test]
    fn cx_count_always_preserved() {
        let mut c = Circuit::new(3);
        c.push(Gate::T, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::H, &[2]);
        c.push(Gate::Cx, &[1, 2]);
        c.push(Gate::Tdg, &[1]);
        c.push(Gate::Cx, &[0, 1]);
        let out = fold_rotations(&c, EmitStyle::CliffordT);
        assert_eq!(out.two_qubit_count(), c.two_qubit_count());
        assert!(circuits_equivalent(&c, &out, 1e-6));
    }

    #[test]
    fn random_clifford_t_circuits_preserved() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(404);
        let pool = [Gate::T, Gate::Tdg, Gate::S, Gate::Sdg, Gate::H, Gate::X];
        for trial in 0..20 {
            let n = 3;
            let mut c = Circuit::new(n);
            for _ in 0..40 {
                if rng.random::<f64>() < 0.3 {
                    let a = rng.random_range(0..n as u32);
                    let b = (a + 1 + rng.random_range(0..(n as u32 - 1))) % n as u32;
                    c.push(Gate::Cx, &[a, b]);
                } else {
                    let g = pool[rng.random_range(0..pool.len())];
                    c.push(g, &[rng.random_range(0..n as u32)]);
                }
            }
            let out = fold_rotations(&c, EmitStyle::CliffordT);
            assert!(
                circuits_equivalent(&c, &out, 1e-6),
                "trial {trial} broke equivalence"
            );
            assert!(out.t_count() <= c.t_count());
        }
    }

    #[test]
    fn angle_pi4_merge_to_clifford() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(FRAC_PI_4), &[0]);
        c.push(Gate::Rz(FRAC_PI_4), &[0]);
        let out = fold_rotations(&c, EmitStyle::CliffordT);
        assert_eq!(out.len(), 1);
        assert_eq!(out.instructions()[0].gate, Gate::S);
    }
}
