//! Circuit equivalence checking.
//!
//! Two regimes, switched on circuit width:
//!
//! * **Dense** (≤ [`qcir::Circuit::MAX_UNITARY_QUBITS`] qubits): build both
//!   unitaries and compute the exact Hilbert–Schmidt distance (paper
//!   Def. 3.2).
//! * **Stochastic** (wider circuits): run both circuits on shared
//!   Haar-random input states and take the worst phase-invariant output
//!   distance. This is a sound *refuter* (a large distance proves
//!   inequivalence) and a high-confidence verifier: for a fixed unitary
//!   gap, a handful of Haar states expose it with overwhelming
//!   probability.

use qcir::Circuit;
use qmath::random::random_state;
use qmath::statevec::state_distance;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Exact Hilbert–Schmidt distance (dense check).
    Exact(f64),
    /// Worst observed random-state distance over the given trial count.
    Sampled {
        /// Largest phase-invariant output distance observed.
        worst: f64,
        /// Number of random input states tried.
        trials: usize,
    },
}

impl Verdict {
    /// The distance value carried by the verdict.
    pub fn distance(self) -> f64 {
        match self {
            Verdict::Exact(d) => d,
            Verdict::Sampled { worst, .. } => worst,
        }
    }

    /// True when the measured distance is within `tol`.
    pub fn holds_within(self, tol: f64) -> bool {
        self.distance() <= tol
    }
}

/// Default number of random-state trials for wide circuits.
pub const DEFAULT_TRIALS: usize = 4;

/// Checks semantic equivalence of two circuits up to global phase.
///
/// # Panics
///
/// Panics if the circuits have different qubit counts.
pub fn check_equivalence(a: &Circuit, b: &Circuit, seed: u64) -> Verdict {
    assert_eq!(
        a.num_qubits(),
        b.num_qubits(),
        "circuits must have the same width"
    );
    let n = a.num_qubits();
    if n <= Circuit::MAX_UNITARY_QUBITS.min(8) {
        Verdict::Exact(qmath::hs_distance(&a.unitary(), &b.unitary()))
    } else {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut worst: f64 = 0.0;
        for _ in 0..DEFAULT_TRIALS {
            let input = random_state(1 << n, &mut rng);
            let mut sa = input.clone();
            let mut sb = input;
            a.apply_to_state(&mut sa);
            b.apply_to_state(&mut sb);
            worst = worst.max(state_distance(&sa, &sb));
        }
        Verdict::Sampled {
            worst,
            trials: DEFAULT_TRIALS,
        }
    }
}

/// Convenience: true when the circuits are equivalent within `tol`.
///
/// For small circuits `tol` bounds the exact HS distance; for large ones it
/// bounds the worst sampled state distance (state distance ≤ HS-style
/// operator distance, so this never rejects a truly equivalent pair).
///
/// # Panics
///
/// Panics if the circuits have different qubit counts.
pub fn circuits_equivalent(a: &Circuit, b: &Circuit, tol: f64) -> bool {
    check_equivalence(a, b, 0xC1AC_5EED).holds_within(tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Gate;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn dense_equivalence_of_paper_example() {
        // Fig. 4: Rz(π/2);CX;H;Rz(π/2) ≡ Rz(π);CX;H (both on 2 qubits).
        let mut a = Circuit::new(2);
        a.push(Gate::Rz(FRAC_PI_2), &[0]);
        a.push(Gate::Cx, &[0, 1]);
        a.push(Gate::H, &[1]);
        a.push(Gate::Rz(FRAC_PI_2), &[0]);
        let mut b = Circuit::new(2);
        b.push(Gate::Rz(PI), &[0]);
        b.push(Gate::Cx, &[0, 1]);
        b.push(Gate::H, &[1]);
        assert!(circuits_equivalent(&a, &b, 1e-7));
    }

    #[test]
    fn dense_detects_inequivalence() {
        let mut a = Circuit::new(1);
        a.push(Gate::T, &[0]);
        let mut b = Circuit::new(1);
        b.push(Gate::S, &[0]);
        assert!(!circuits_equivalent(&a, &b, 1e-7));
    }

    #[test]
    fn sampled_equivalence_wide_circuit() {
        // 12 qubits: beyond the dense threshold used in check_equivalence.
        let n = 12;
        let mut a = Circuit::new(n);
        let mut b = Circuit::new(n);
        for q in 0..n as u32 {
            a.push(Gate::H, &[q]);
            b.push(Gate::H, &[q]);
        }
        for q in 0..(n as u32 - 1) {
            a.push(Gate::Cx, &[q, q + 1]);
            b.push(Gate::Cx, &[q, q + 1]);
        }
        // a gets Rz(θ); Rz(−θ) — net identity.
        a.push(Gate::Rz(0.7), &[3]);
        a.push(Gate::Rz(-0.7), &[3]);
        let v = check_equivalence(&a, &b, 42);
        assert!(matches!(v, Verdict::Sampled { .. }));
        assert!(v.holds_within(1e-7));
    }

    #[test]
    fn sampled_detects_inequivalence() {
        let n = 12;
        let mut a = Circuit::new(n);
        let mut b = Circuit::new(n);
        for q in 0..n as u32 {
            a.push(Gate::H, &[q]);
            b.push(Gate::H, &[q]);
        }
        b.push(Gate::X, &[5]);
        let v = check_equivalence(&a, &b, 43);
        assert!(v.distance() > 0.1);
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn width_mismatch_panics() {
        let a = Circuit::new(2);
        let b = Circuit::new(3);
        let _ = circuits_equivalent(&a, &b, 1e-7);
    }
}
