//! A statevector simulator with a circuit-level API.

use qcir::{Circuit, Qubit};
use qmath::statevec::{apply_gate, inner, zero_state};
use qmath::C64;
use rand::Rng;

/// Maximum number of qubits the simulator will allocate for
/// (`2^24` amplitudes ≈ 256 MiB).
pub const MAX_SIM_QUBITS: usize = 24;

/// An `n`-qubit pure state under simulation.
///
/// ```
/// use qsim::StateVec;
/// use qcir::{Circuit, Gate};
/// let mut c = Circuit::new(2);
/// c.push(Gate::H, &[0]);
/// c.push(Gate::Cx, &[0, 1]);
/// let sv = StateVec::from_circuit(&c);
/// let p = sv.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12 && (p[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVec {
    n: usize,
    amps: Vec<C64>,
}

impl StateVec {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_SIM_QUBITS`.
    pub fn zero(n: usize) -> Self {
        assert!(
            n <= MAX_SIM_QUBITS,
            "statevector simulation limited to {MAX_SIM_QUBITS} qubits"
        );
        StateVec {
            n,
            amps: zero_state(n),
        }
    }

    /// Runs `circuit` on `|0…0⟩`.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut s = StateVec::zero(circuit.num_qubits());
        s.apply_circuit(circuit);
        s
    }

    /// Wraps an existing normalized amplitude vector.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let n = amps.len().trailing_zeros() as usize;
        assert_eq!(1usize << n, amps.len(), "length must be a power of two");
        StateVec { n, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The amplitudes in computational-basis order (qubit 0 = MSB).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Applies a whole circuit in place.
    ///
    /// # Panics
    ///
    /// Panics if the circuit qubit count differs from the state's.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(circuit.num_qubits(), self.n, "qubit count mismatch");
        for ins in circuit.iter() {
            let qs: Vec<usize> = ins.qubits().iter().map(|&q| q as usize).collect();
            apply_gate(&mut self.amps, self.n, &qs, &ins.gate.matrix());
        }
    }

    /// Measurement probability of each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability that qubit `q` measures as `1`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn prob_one(&self, q: Qubit) -> f64 {
        assert!((q as usize) < self.n, "qubit out of range");
        let bit = self.n - 1 - q as usize;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| (i >> bit) & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Samples one measurement outcome (a basis-state index).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.random();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if x < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// Overlap `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn overlap(&self, other: &StateVec) -> C64 {
        inner(&self.amps, &other.amps)
    }

    /// Phase-invariant distance to another state.
    pub fn distance(&self, other: &StateVec) -> f64 {
        qmath::statevec::state_distance(&self.amps, &other.amps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Gate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ghz_probabilities() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]);
        c.push(Gate::Cx, &[0, 1]);
        c.push(Gate::Cx, &[1, 2]);
        let sv = StateVec::from_circuit(&c);
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[7] - 0.5).abs() < 1e-12);
        assert!((sv.prob_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn x_flips_probability() {
        let mut c = Circuit::new(2);
        c.push(Gate::X, &[1]);
        let sv = StateVec::from_circuit(&c);
        assert!((sv.prob_one(1) - 1.0).abs() < 1e-12);
        assert!(sv.prob_one(0) < 1e-12);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut c = Circuit::new(1);
        c.push(Gate::X, &[0]);
        let sv = StateVec::from_circuit(&c);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..16 {
            assert_eq!(sv.sample(&mut rng), 1);
        }
    }

    #[test]
    fn distance_detects_difference() {
        let mut a = Circuit::new(1);
        a.push(Gate::H, &[0]);
        let mut b = Circuit::new(1);
        b.push(Gate::X, &[0]);
        let sa = StateVec::from_circuit(&a);
        let sb = StateVec::from_circuit(&b);
        assert!(sa.distance(&sb) > 0.5);
        assert!(sa.distance(&sa) < 1e-12);
    }
}
