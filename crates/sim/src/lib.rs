//! `qsim` — statevector simulation and circuit equivalence checking.
//!
//! Used throughout the workspace to *verify* that optimizers preserve
//! semantics: dense Hilbert–Schmidt checks for narrow circuits,
//! random-state sampling for wide ones.
//!
//! ```
//! use qcir::{Circuit, Gate};
//! use qsim::circuits_equivalent;
//!
//! let mut a = Circuit::new(2);
//! a.push(Gate::Cx, &[0, 1]);
//! a.push(Gate::Cx, &[0, 1]);
//! let b = Circuit::new(2); // empty: CX cancels itself
//! assert!(circuits_equivalent(&a, &b, 1e-7));
//! ```

#![warn(missing_docs)]

pub mod equiv;
pub mod statevector;

pub use equiv::{check_equivalence, circuits_equivalent, Verdict};
pub use statevector::StateVec;
