//! `workloads` — benchmark circuit generators and suite assembly.
//!
//! Reproduces the families of the paper's 247-circuit suite: near- and
//! long-term algorithms (QAOA, VQE, QPE, QFT, Grover, adders, Toffoli
//! networks, Hamiltonian simulation, quantum-volume-style random
//! circuits) with deterministic seeds, plus per-gate-set suite assembly
//! with automatic rebasing.
//!
//! ```
//! use workloads::{suite, SuiteScale};
//! use qcir::GateSet;
//! let s = suite(GateSet::IbmEagle, SuiteScale::Smoke);
//! assert!(s.iter().all(|b| b.circuit.iter().all(|i| GateSet::IbmEagle.contains(i.gate))));
//! ```

#![warn(missing_docs)]

pub mod generators;
pub mod suite;

pub use suite::{suite, Benchmark, SuiteScale};
