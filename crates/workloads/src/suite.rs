//! Benchmark suite assembly (paper §6: 247 circuits, 4–36 qubits).
//!
//! Circuits are generated per family, then rebased into the requested
//! gate set — matching the paper's setup where "the input circuit … is
//! always already decomposed into the target gate set".

use crate::generators as gen;
use qcir::{rebase::rebase, Circuit, GateSet};

/// A named benchmark circuit, already native to its gate set.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Unique name, e.g. `qft_08`.
    pub name: String,
    /// Algorithm family, e.g. `qft`.
    pub family: &'static str,
    /// The circuit, decomposed into `set`.
    pub circuit: Circuit,
    /// The gate set the circuit is native to.
    pub set: GateSet,
}

/// Suite size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// A handful of tiny circuits (CI tests).
    Smoke,
    /// ~50 circuits up to ~16 qubits (default harness scale).
    Default,
    /// The full spread: ~240 circuits, 4–36 qubits (paper scale).
    Full,
}

fn push(
    out: &mut Vec<Benchmark>,
    set: GateSet,
    family: &'static str,
    tag: String,
    circuit: Circuit,
) {
    match rebase(&circuit, set) {
        Ok(native) => out.push(Benchmark {
            name: tag,
            family,
            circuit: native,
            set,
        }),
        Err(e) => panic!("suite generator bug: {family}: {e}"),
    }
}

/// Builds the benchmark suite for a gate set.
///
/// Families follow the paper: QAOA, VQE, QPE, QFT, Grover, adders,
/// multi-control Toffolis, GHZ/BV structure circuits, Hamiltonian
/// simulation, and quantum-volume-style random circuits for the
/// continuous sets; reversible arithmetic and random Clifford+T circuits
/// for the FTQC set.
pub fn suite(set: GateSet, scale: SuiteScale) -> Vec<Benchmark> {
    let mut out = Vec::new();
    let (sizes, layers): (Vec<usize>, usize) = match scale {
        SuiteScale::Smoke => (vec![4], 1),
        SuiteScale::Default => (vec![4, 6, 8, 12, 16], 2),
        SuiteScale::Full => (vec![4, 6, 8, 10, 12, 16, 20, 24, 28, 32, 36], 3),
    };

    if set.is_continuous() {
        for &n in &sizes {
            push(&mut out, set, "qft", format!("qft_{n:02}"), gen::qft(n));
            push(&mut out, set, "ghz", format!("ghz_{n:02}"), gen::ghz(n));
            for l in 1..=layers {
                push(
                    &mut out,
                    set,
                    "qaoa",
                    format!("qaoa_{n:02}_p{l}"),
                    gen::qaoa_maxcut(n, l, 1000 + n as u64 + l as u64),
                );
                push(
                    &mut out,
                    set,
                    "vqe",
                    format!("vqe_{n:02}_l{l}"),
                    gen::vqe_ansatz(n, l, 2000 + n as u64 + l as u64),
                );
            }
            push(
                &mut out,
                set,
                "qpe",
                format!("qpe_{n:02}"),
                gen::qpe(n, 3000 + n as u64),
            );
            push(
                &mut out,
                set,
                "bv",
                format!("bv_{n:02}"),
                gen::bernstein_vazirani(n, 4000 + n as u64),
            );
            push(
                &mut out,
                set,
                "ising",
                format!("ising_{n:02}"),
                gen::ising_trotter(n, layers + 1, 5000 + n as u64),
            );
            if n >= 4 {
                push(
                    &mut out,
                    set,
                    "heisenberg",
                    format!("heisenberg_{n:02}"),
                    gen::heisenberg_trotter(n, layers, 6000 + n as u64),
                );
                push(
                    &mut out,
                    set,
                    "qv",
                    format!("qv_{n:02}"),
                    gen::quantum_volume(n, layers + 1, 7000 + n as u64),
                );
            }
            if (4..=16).contains(&n) {
                push(
                    &mut out,
                    set,
                    "grover",
                    format!("grover_{n:02}"),
                    gen::grover(n.min(8), 1 + n / 8, 8000 + n as u64),
                );
                push(
                    &mut out,
                    set,
                    "adder",
                    format!("adder_{n:02}"),
                    gen::cuccaro_adder(n / 2),
                );
                push(
                    &mut out,
                    set,
                    "tof",
                    format!("tof_{n:02}"),
                    gen::tof_chain(n.max(3)),
                );
                push(
                    &mut out,
                    set,
                    "barenco_tof",
                    format!("barenco_tof_{n:02}"),
                    gen::barenco_tof((n / 2).max(2)),
                );
            }
        }
    } else {
        // Clifford+T: only exactly-representable families.
        for &n in &sizes {
            push(
                &mut out,
                set,
                "tof",
                format!("tof_{n:02}"),
                gen::tof_chain(n.max(3)),
            );
            push(
                &mut out,
                set,
                "barenco_tof",
                format!("barenco_tof_{n:02}"),
                gen::barenco_tof((n / 2).max(2)),
            );
            push(
                &mut out,
                set,
                "adder",
                format!("adder_{n:02}"),
                gen::cuccaro_adder((n / 2).max(1)),
            );
            push(&mut out, set, "ghz", format!("ghz_{n:02}"), gen::ghz(n));
            push(
                &mut out,
                set,
                "bv",
                format!("bv_{n:02}"),
                gen::bernstein_vazirani(n, 4100 + n as u64),
            );
            if n <= 16 {
                push(
                    &mut out,
                    set,
                    "grover",
                    format!("grover_{n:02}"),
                    gen::grover(n.min(6), 1, 8100 + n as u64),
                );
            }
            for (i, g) in [(1usize, 20 * n), (2, 40 * n)] {
                push(
                    &mut out,
                    set,
                    "random",
                    format!("random_ct_{n:02}_{i}"),
                    gen::random_clifford_t(n, g, 9000 + (n * i) as u64),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_native_and_unique() {
        for set in GateSet::ALL {
            let s = suite(set, SuiteScale::Smoke);
            assert!(!s.is_empty());
            let mut names: Vec<&str> = s.iter().map(|b| b.name.as_str()).collect();
            let n = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), n, "{set}: duplicate benchmark names");
            for b in &s {
                for ins in b.circuit.iter() {
                    assert!(
                        set.contains(ins.gate),
                        "{set}/{}: non-native {}",
                        b.name,
                        ins.gate
                    );
                }
            }
        }
    }

    #[test]
    fn default_scale_has_dozens() {
        let s = suite(GateSet::IbmEagle, SuiteScale::Default);
        assert!(s.len() >= 40, "got {}", s.len());
        assert!(s.iter().any(|b| b.family == "qaoa"));
        assert!(s.iter().any(|b| b.family == "qft"));
        assert!(s.iter().any(|b| b.family == "grover"));
    }

    #[test]
    fn full_scale_matches_paper_spread() {
        let s = suite(GateSet::Ibmq20, SuiteScale::Full);
        assert!(s.len() >= 100, "got {}", s.len());
        let max_q = s.iter().map(|b| b.circuit.num_qubits()).max().unwrap();
        assert!(max_q >= 36, "max qubits {max_q}");
        let clifford = suite(GateSet::CliffordT, SuiteScale::Full);
        assert!(clifford.len() >= 50, "got {}", clifford.len());
    }

    #[test]
    fn rebased_circuits_nonempty() {
        for b in suite(GateSet::Ionq, SuiteScale::Smoke) {
            assert!(!b.circuit.is_empty(), "{} is empty", b.name);
        }
    }
}
