//! Benchmark circuit generators.
//!
//! The paper's 247-circuit suite draws from the QUESO/Quartz/QUEST
//! benchmark sets: near-term algorithms (QAOA, VQE), long-term algorithms
//! (QPE, QFT, Grover, Shor building blocks), and reversible arithmetic
//! (Toffoli chains, adders). These generators reproduce each family at
//! arbitrary sizes with deterministic seeds.

use qcir::{Circuit, Gate, Qubit};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Quantum Fourier transform on `n` qubits (with final swaps).
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.push(Gate::H, &[i as Qubit]);
        for j in (i + 1)..n {
            let angle = PI / (1u64 << (j - i)) as f64;
            c.push(Gate::Cp(angle), &[j as Qubit, i as Qubit]);
        }
    }
    for i in 0..n / 2 {
        c.push(Gate::Swap, &[i as Qubit, (n - 1 - i) as Qubit]);
    }
    c
}

/// GHZ state preparation.
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::H, &[0]);
    for i in 1..n {
        c.push(Gate::Cx, &[(i - 1) as Qubit, i as Qubit]);
    }
    c
}

/// Bernstein–Vazirani with a random secret string.
pub fn bernstein_vazirani(n: usize, seed: u64) -> Circuit {
    let mut rng = SmallRng::seed_from_u64(seed);
    // n data qubits + 1 phase ancilla.
    let mut c = Circuit::new(n + 1);
    let anc = n as Qubit;
    c.push(Gate::X, &[anc]);
    c.push(Gate::H, &[anc]);
    for q in 0..n as Qubit {
        c.push(Gate::H, &[q]);
    }
    for q in 0..n as Qubit {
        if rng.random::<bool>() {
            c.push(Gate::Cx, &[q, anc]);
        }
    }
    for q in 0..n as Qubit {
        c.push(Gate::H, &[q]);
    }
    c
}

/// QAOA for MaxCut on a random 3-regular-ish graph.
pub fn qaoa_maxcut(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Random near-3-regular edge set: ring + random chords.
    let mut edges: Vec<(Qubit, Qubit)> = (0..n)
        .map(|i| (i as Qubit, ((i + 1) % n) as Qubit))
        .collect();
    for _ in 0..n / 2 {
        let a = rng.random_range(0..n) as Qubit;
        let b = rng.random_range(0..n) as Qubit;
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a, b));
        }
    }
    let mut c = Circuit::new(n);
    for q in 0..n as Qubit {
        c.push(Gate::H, &[q]);
    }
    for _ in 0..layers {
        let gamma: f64 = rng.random::<f64>() * PI;
        let beta: f64 = rng.random::<f64>() * PI;
        for &(a, b) in &edges {
            c.push(Gate::Rzz(gamma), &[a, b]);
        }
        for q in 0..n as Qubit {
            c.push(Gate::Rx(2.0 * beta), &[q]);
        }
    }
    c
}

/// Hardware-efficient VQE ansatz (Ry/Rz layers + CX ladders).
pub fn vqe_ansatz(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n as Qubit {
            c.push(Gate::Ry(rng.random::<f64>() * 2.0 * PI), &[q]);
            c.push(Gate::Rz(rng.random::<f64>() * 2.0 * PI), &[q]);
        }
        for q in 0..(n - 1) as Qubit {
            c.push(Gate::Cx, &[q, q + 1]);
        }
    }
    for q in 0..n as Qubit {
        c.push(Gate::Ry(rng.random::<f64>() * 2.0 * PI), &[q]);
    }
    c
}

/// Textbook quantum phase estimation: `n` counting qubits against a
/// single-qubit phase unitary, followed by the inverse QFT.
pub fn qpe(n: usize, seed: u64) -> Circuit {
    let mut rng = SmallRng::seed_from_u64(seed);
    let theta: f64 = rng.random::<f64>() * 2.0 * PI;
    let mut c = Circuit::new(n + 1);
    let target = n as Qubit;
    c.push(Gate::X, &[target]);
    for q in 0..n as Qubit {
        c.push(Gate::H, &[q]);
    }
    for (k, q) in (0..n as Qubit).rev().enumerate() {
        let power = (1u64 << k) as f64;
        c.push(Gate::Cp(theta * power), &[q, target]);
    }
    // Inverse QFT on the counting register.
    let inv = qft(n).inverse();
    c.extend_mapped(&inv, &(0..n as Qubit).collect::<Vec<_>>());
    c
}

/// Multi-controlled X via a clean-ancilla V-chain of Toffolis.
///
/// Pushes onto `c`: controls `ctrls`, ancillas `ancs` (needs
/// `ctrls.len().saturating_sub(2)`), target `t`.
///
/// # Panics
///
/// Panics if too few ancillas are supplied.
pub fn push_mcx(c: &mut Circuit, ctrls: &[Qubit], ancs: &[Qubit], t: Qubit) {
    match ctrls.len() {
        0 => c.push(Gate::X, &[t]),
        1 => c.push(Gate::Cx, &[ctrls[0], t]),
        2 => c.push(Gate::Ccx, &[ctrls[0], ctrls[1], t]),
        k => {
            assert!(
                ancs.len() >= k - 2,
                "need {} ancillas for {k} controls",
                k - 2
            );
            // Compute chain.
            c.push(Gate::Ccx, &[ctrls[0], ctrls[1], ancs[0]]);
            for i in 2..k - 1 {
                c.push(Gate::Ccx, &[ctrls[i], ancs[i - 2], ancs[i - 1]]);
            }
            c.push(Gate::Ccx, &[ctrls[k - 1], ancs[k - 3], t]);
            // Uncompute.
            for i in (2..k - 1).rev() {
                c.push(Gate::Ccx, &[ctrls[i], ancs[i - 2], ancs[i - 1]]);
            }
            c.push(Gate::Ccx, &[ctrls[0], ctrls[1], ancs[0]]);
        }
    }
}

/// A multi-control Toffoli benchmark in the style of `barenco_tof_n`
/// (Barenco et al. [5]): an `n`-control Toffoli over a clean-ancilla
/// V-chain. Uses `2n − 1` qubits.
pub fn barenco_tof(n: usize) -> Circuit {
    assert!(n >= 2, "barenco_tof needs at least 2 controls");
    let ancillas = n.saturating_sub(2);
    let mut c = Circuit::new(n + ancillas + 1);
    let ctrls: Vec<Qubit> = (0..n as Qubit).collect();
    let ancs: Vec<Qubit> = (n as Qubit..(n + ancillas) as Qubit).collect();
    let target = (n + ancillas) as Qubit;
    push_mcx(&mut c, &ctrls, &ancs, target);
    c
}

/// A chain of `n − 2` Toffolis across `n` qubits (`tof_n` family).
pub fn tof_chain(n: usize) -> Circuit {
    assert!(n >= 3, "tof_chain needs at least 3 qubits");
    let mut c = Circuit::new(n);
    for i in 0..n - 2 {
        c.push(Gate::Ccx, &[i as Qubit, (i + 1) as Qubit, (i + 2) as Qubit]);
    }
    for i in (0..n - 2).rev() {
        c.push(Gate::Ccx, &[i as Qubit, (i + 1) as Qubit, (i + 2) as Qubit]);
    }
    c
}

/// Cuccaro ripple-carry adder on two `n`-bit registers (`2n + 2` qubits).
pub fn cuccaro_adder(n: usize) -> Circuit {
    assert!(n >= 1);
    // Layout: c0, a0..a_{n-1}, b0..b_{n-1}, carry_out.
    let mut c = Circuit::new(2 * n + 2);
    let c0: Qubit = 0;
    let a = |i: usize| (1 + i) as Qubit;
    let b = |i: usize| (1 + n + i) as Qubit;
    let cout = (2 * n + 1) as Qubit;
    let maj = |c: &mut Circuit, x: Qubit, y: Qubit, z: Qubit| {
        c.push(Gate::Cx, &[z, y]);
        c.push(Gate::Cx, &[z, x]);
        c.push(Gate::Ccx, &[x, y, z]);
    };
    let uma = |c: &mut Circuit, x: Qubit, y: Qubit, z: Qubit| {
        c.push(Gate::Ccx, &[x, y, z]);
        c.push(Gate::Cx, &[z, x]);
        c.push(Gate::Cx, &[x, y]);
    };
    maj(&mut c, c0, b(0), a(0));
    for i in 1..n {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.push(Gate::Cx, &[a(n - 1), cout]);
    for i in (1..n).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, c0, b(0), a(0));
    c
}

/// Grover search with a random marked state; `n` data qubits plus the
/// ancillas required by the multi-controlled-Z oracle.
pub fn grover(n: usize, iterations: usize, seed: u64) -> Circuit {
    let mut rng = SmallRng::seed_from_u64(seed);
    let marked: Vec<bool> = (0..n).map(|_| rng.random()).collect();
    let ancillas = n.saturating_sub(2);
    let mut c = Circuit::new(n + ancillas);
    let ancs: Vec<Qubit> = (n as Qubit..(n + ancillas) as Qubit).collect();
    for q in 0..n as Qubit {
        c.push(Gate::H, &[q]);
    }
    let mcz = |c: &mut Circuit, ancs: &[Qubit]| {
        // Z on the last data qubit controlled by the rest, via H·MCX·H.
        let t = (n - 1) as Qubit;
        let ctrls: Vec<Qubit> = (0..(n - 1) as Qubit).collect();
        c.push(Gate::H, &[t]);
        push_mcx(c, &ctrls, ancs, t);
        c.push(Gate::H, &[t]);
    };
    for _ in 0..iterations {
        // Oracle: flip phase of the marked state.
        for (q, &m) in marked.iter().enumerate() {
            if !m {
                c.push(Gate::X, &[q as Qubit]);
            }
        }
        mcz(&mut c, &ancs);
        for (q, &m) in marked.iter().enumerate() {
            if !m {
                c.push(Gate::X, &[q as Qubit]);
            }
        }
        // Diffusion.
        for q in 0..n as Qubit {
            c.push(Gate::H, &[q]);
            c.push(Gate::X, &[q]);
        }
        mcz(&mut c, &ancs);
        for q in 0..n as Qubit {
            c.push(Gate::X, &[q]);
            c.push(Gate::H, &[q]);
        }
    }
    c
}

/// First-order Trotterization of a 1-D transverse-field Ising model.
pub fn ising_trotter(n: usize, steps: usize, seed: u64) -> Circuit {
    let mut rng = SmallRng::seed_from_u64(seed);
    let (j, h): (f64, f64) = (rng.random::<f64>() + 0.5, rng.random::<f64>() + 0.5);
    let dt = 0.1;
    let mut c = Circuit::new(n);
    for _ in 0..steps {
        for q in 0..(n - 1) as Qubit {
            c.push(Gate::Rzz(2.0 * j * dt), &[q, q + 1]);
        }
        for q in 0..n as Qubit {
            c.push(Gate::Rx(2.0 * h * dt), &[q]);
        }
    }
    c
}

/// First-order Trotterization of a 1-D Heisenberg chain.
pub fn heisenberg_trotter(n: usize, steps: usize, seed: u64) -> Circuit {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dt = 0.08 + rng.random::<f64>() * 0.04;
    let mut c = Circuit::new(n);
    for _ in 0..steps {
        for q in 0..(n - 1) as Qubit {
            c.push(Gate::Rxx(2.0 * dt), &[q, q + 1]);
            c.push(Gate::Ryy(2.0 * dt), &[q, q + 1]);
            c.push(Gate::Rzz(2.0 * dt), &[q, q + 1]);
        }
    }
    c
}

/// Quantum-volume-style circuit: `depth` layers of random two-qubit
/// blocks (each a random `U3⊗U3 · CX · U3⊗U3 · CX` pattern) on a random
/// qubit pairing.
pub fn quantum_volume(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..depth {
        let mut qubits: Vec<Qubit> = (0..n as Qubit).collect();
        for i in (1..qubits.len()).rev() {
            let j = rng.random_range(0..=i);
            qubits.swap(i, j);
        }
        for pair in qubits.chunks(2) {
            if pair.len() < 2 {
                continue;
            }
            let (a, b) = (pair[0], pair[1]);
            for q in [a, b] {
                c.push(
                    Gate::U3(
                        rng.random::<f64>() * PI,
                        rng.random::<f64>() * 2.0 * PI,
                        rng.random::<f64>() * 2.0 * PI,
                    ),
                    &[q],
                );
            }
            c.push(Gate::Cx, &[a, b]);
            for q in [a, b] {
                c.push(
                    Gate::U3(
                        rng.random::<f64>() * PI,
                        rng.random::<f64>() * 2.0 * PI,
                        rng.random::<f64>() * 2.0 * PI,
                    ),
                    &[q],
                );
            }
            c.push(Gate::Cx, &[b, a]);
        }
    }
    c
}

/// Random Clifford+T circuit (for the FTQC suite).
pub fn random_clifford_t(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pool = [
        Gate::T,
        Gate::Tdg,
        Gate::S,
        Gate::Sdg,
        Gate::H,
        Gate::X,
        Gate::T,
        Gate::Tdg, // T-heavy mix, as in arithmetic workloads
    ];
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        if n >= 2 && rng.random::<f64>() < 0.35 {
            let a = rng.random_range(0..n) as Qubit;
            let mut b = rng.random_range(0..n) as Qubit;
            while b == a {
                b = rng.random_range(0..n) as Qubit;
            }
            c.push(Gate::Cx, &[a, b]);
        } else {
            let g = pool[rng.random_range(0..pool.len())];
            c.push(g, &[rng.random_range(0..n) as Qubit]);
        }
    }
    c
}

/// A resynthesis-heavy stress workload: dense combs of mergeable
/// rotations interleaved with CX echo pairs, confined to adjacent 2–3
/// qubit neighbourhoods so that nearly every random ≤3-qubit region a
/// GUOQ probe grows is numerically compressible — while the structural
/// rewrite corpus sees little to cancel (the rotation angles are
/// generic). This is the workload where the slow path dominates
/// wall-clock, i.e. where the `qcache` memo table has maximal leverage;
/// the `qcache` bench sweeps it with repeated and fresh job mixes.
pub fn rotation_comb(n: usize, len: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "rotation_comb needs ≥ 2 qubits");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    while c.len() + 8 <= len {
        let a = rng.random_range(0..n - 1) as Qubit;
        let b = a + 1;
        // Three consecutive Rz on one wire: collapses to one gate under
        // 1q resynthesis (or fusion), angle sums are generic.
        for _ in 0..3 {
            c.push(Gate::Rz(rng.random::<f64>() * 1.4 + 0.05), &[a]);
        }
        // A CX echo around a rotation: a 2q window a numerical
        // synthesizer shrinks, but no single shipped rule matches.
        c.push(Gate::Cx, &[a, b]);
        c.push(Gate::Rz(rng.random::<f64>() * 1.4 + 0.05), &[b]);
        c.push(Gate::Cx, &[a, b]);
        c.push(Gate::Rz(rng.random::<f64>() * 1.4 + 0.05), &[b]);
        c.push(Gate::H, &[a]);
    }
    while c.len() < len {
        c.push(Gate::Rz(0.3), &[(c.len() % n) as Qubit]);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::StateVec;

    #[test]
    fn qft_counts() {
        let c = qft(5);
        assert_eq!(c.num_qubits(), 5);
        // n H gates + n(n-1)/2 CP + n/2 swaps.
        assert_eq!(c.len(), 5 + 10 + 2);
    }

    #[test]
    fn qft_4_matches_dft_matrix() {
        // QFT maps |j⟩ to (1/√N) Σ ω^{jk} |k⟩ — check one column.
        let c = qft(3);
        let u = c.unitary();
        let n = 8usize;
        let w = 2.0 * PI / n as f64;
        for k in 0..n {
            // Column of input |1⟩ (big-endian index 1): amplitude at
            // reversed-bit positions must be ω^{k·1}/√N.
            let expect = qmath::C64::cis(w * k as f64).scale(1.0 / (n as f64).sqrt());
            let got = u[(k, 1)];
            assert!(got.approx_eq(expect, 1e-9), "k={k}: {got} vs {expect}");
        }
    }

    #[test]
    fn rotation_comb_is_sized_and_deterministic() {
        let c = rotation_comb(6, 240, 11);
        assert_eq!(c.num_qubits(), 6);
        assert_eq!(c.len(), 240);
        assert_eq!(c, rotation_comb(6, 240, 11));
        assert_ne!(c, rotation_comb(6, 240, 12));
        // Heavy in mergeable rotations: the resynthesis stressor.
        let rz = c.iter().filter(|i| matches!(i.gate, Gate::Rz(_))).count();
        assert!(rz * 2 > c.len(), "{rz} Rz of {}", c.len());
    }

    #[test]
    fn ghz_state_correct() {
        let c = ghz(4);
        let sv = StateVec::from_circuit(&c);
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[15] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mcx_is_a_permutation_on_computational_basis() {
        // 3 controls + 1 ancilla + target = verified against direct logic.
        let mut c = Circuit::new(5);
        push_mcx(&mut c, &[0, 1, 2], &[3], 4);
        let u = c.unitary();
        // |11101⟩? Big-endian: q0q1q2 controls all 1, ancilla 0, target t.
        // Input index with q0=q1=q2=1, anc=0, t=0 → 0b11100 = 28; output
        // should flip t → 29.
        assert!(u[(29, 28)].abs() > 0.99);
        // A non-all-ones control pattern maps to itself.
        assert!(u[(20, 20)].abs() > 0.99);
    }

    #[test]
    fn tof_chain_self_inverse() {
        let c = tof_chain(4);
        // chain down then up == identity? No — it's a compute/uncompute
        // pair of DIFFERENT order; verify it is at least unitary and has
        // the declared gate count.
        assert_eq!(c.len(), 2 * (4 - 2));
        assert_eq!(c.num_qubits(), 4);
    }

    #[test]
    fn cuccaro_adds_correctly() {
        // 2-bit adder: a=1 (01), b=1 (01) → b should become 2 (10).
        let n = 2;
        let mut c = Circuit::new(2 * n + 2);
        // Prepare a0 = 1, b0 = 1 (X gates), then add.
        c.push(Gate::X, &[1]); // a0
        c.push(Gate::X, &[3]); // b0
        c.extend_from(&cuccaro_adder(n));
        let sv = StateVec::from_circuit(&c);
        let probs = sv.probabilities();
        let winner = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        // Layout (big-endian): c0 a0 a1 b0 b1 cout. Expect a unchanged
        // (a=1: a0=1,a1=0), b = a+b = 2 → b0=0, b1=1, cout=0.
        let expected = 0b010010; // c0=0 a0=1 a1=0 b0=0 b1=1 cout=0
        assert_eq!(winner, expected, "winner {winner:06b}");
    }

    #[test]
    fn grover_amplifies_marked_state() {
        let n = 3;
        let c = grover(n, 2, 99);
        let sv = StateVec::from_circuit(&c);
        let probs = sv.probabilities();
        // The marked state (data qubits, ancillas back to |0⟩) should
        // dominate: max probability ≫ uniform 1/8.
        let max = probs.iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.5, "max prob {max}");
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(qaoa_maxcut(6, 2, 1), qaoa_maxcut(6, 2, 1));
        assert_eq!(vqe_ansatz(5, 2, 2), vqe_ansatz(5, 2, 2));
        assert_eq!(quantum_volume(4, 3, 3), quantum_volume(4, 3, 3));
    }

    #[test]
    fn clifford_t_families_are_native_after_rebase() {
        for c in [
            barenco_tof(3),
            tof_chain(5),
            cuccaro_adder(2),
            grover(3, 1, 5),
            random_clifford_t(4, 50, 6),
        ] {
            let r = qcir::rebase::rebase(&c, qcir::GateSet::CliffordT)
                .expect("family must be Clifford+T representable");
            assert!(r.iter().all(|i| qcir::GateSet::CliffordT.contains(i.gate)));
        }
    }
}
