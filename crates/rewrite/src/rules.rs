//! The shipped rewrite-rule corpus, organized per gate set.
//!
//! Mirrors the role of QUESO's synthesized rule sets in the paper's GUOQ
//! instantiation: size-preserving commutation rules plus size-reducing
//! cancellation/merge rules, all over ≤3 gates and ≤3 qubits. Every rule
//! is numerically verified in the test module (and re-verified at load
//! time in debug builds).

use crate::rule::dsl::*;
use crate::rule::Rule;
use qcir::GateKind::*;
use qcir::GateSet;
use std::f64::consts::PI;

/// Returns the rewrite-rule corpus for a gate set.
///
/// All rules are exact (`ε = 0`) and stay within the gate set: applying
/// them to a set-native circuit keeps it native.
pub fn rules_for(set: GateSet) -> Vec<Rule> {
    let rules = match set {
        GateSet::Nam => nam_rules(),
        GateSet::IbmEagle => eagle_rules(),
        GateSet::Ibmq20 => ibmq20_rules(),
        GateSet::Ionq => ionq_rules(),
        GateSet::CliffordT => clifford_t_rules(),
    };
    debug_assert!(
        rules.iter().all(|r| r.verify(4, 0xBEEF) < 1e-6),
        "corpus contains an unsound rule"
    );
    rules
}

/// The per-gate-set shared corpora (see [`shared_rules_for`]).
static SHARED_RULES: qcache::Registry<Vec<Rule>> = qcache::Registry::new();

/// The process-wide shared rule corpus for `set`, built (and
/// debug-verified) once per process instead of once per job. Consumers
/// that need owned rules clone individual [`Rule`]s out of the shared
/// vector — a shallow copy, not a corpus rebuild.
pub fn shared_rules_for(set: GateSet) -> std::sync::Arc<Vec<Rule>> {
    SHARED_RULES.get_or_init(set, || rules_for(set))
}

/// Structural CX rules shared by every CX-based gate set.
fn cx_core_rules() -> Vec<Rule> {
    vec![
        // Fig. 3a.
        rule("cx-cancel", vec![g2(Cx, 0, 1), g2(Cx, 0, 1)], vec![]),
        // Fig. 3b-style commutations (size-preserving mixers).
        rule(
            "cx-commute-same-control",
            vec![g2(Cx, 0, 1), g2(Cx, 0, 2)],
            vec![g2(Cx, 0, 2), g2(Cx, 0, 1)],
        ),
        rule(
            "cx-commute-same-target",
            vec![g2(Cx, 0, 2), g2(Cx, 1, 2)],
            vec![g2(Cx, 1, 2), g2(Cx, 0, 2)],
        ),
        // CX conjugation of X on the control: 3 → 2.
        rule(
            "cx-x-control-cx",
            vec![g2(Cx, 0, 1), g1(X, 0), g2(Cx, 0, 1)],
            vec![g1(X, 0), g1(X, 1)],
        ),
        // X on the target slides through.
        rule(
            "x-cx-target-commute",
            vec![g1(X, 1), g2(Cx, 0, 1)],
            vec![g2(Cx, 0, 1), g1(X, 1)],
        ),
        rule(
            "cx-x-target-commute",
            vec![g2(Cx, 0, 1), g1(X, 1)],
            vec![g1(X, 1), g2(Cx, 0, 1)],
        ),
        // SWAP-triangle rotation (size-preserving mixer).
        rule(
            "cx-swap-rotate",
            vec![g2(Cx, 0, 1), g2(Cx, 1, 0), g2(Cx, 0, 1)],
            vec![g2(Cx, 1, 0), g2(Cx, 0, 1), g2(Cx, 1, 0)],
        ),
    ]
}

/// Rz-family rules shared by sets with a continuous Z rotation.
fn rz_core_rules() -> Vec<Rule> {
    vec![
        // Fig. 3d.
        rule(
            "rz-merge",
            vec![g1p(Rz, v(0), 0), g1p(Rz, v(1), 0)],
            vec![g1p(Rz, vsum(0, 1), 0)],
        ),
        // Fig. 3c, both directions.
        rule(
            "rz-cx-control-commute",
            vec![g1p(Rz, v(0), 0), g2(Cx, 0, 1)],
            vec![g2(Cx, 0, 1), g1p(Rz, v(0), 0)],
        ),
        rule(
            "cx-rz-control-commute",
            vec![g2(Cx, 0, 1), g1p(Rz, v(0), 0)],
            vec![g1p(Rz, v(0), 0), g2(Cx, 0, 1)],
        ),
        // X conjugation flips the rotation sense: 3 → 1.
        rule(
            "x-rz-x",
            vec![g1(X, 0), g1p(Rz, v(0), 0), g1(X, 0)],
            vec![g1p(Rz, vneg(0), 0)],
        ),
        // Slide Rz through X with a sign flip (size-preserving).
        rule(
            "rz-x-flip",
            vec![g1p(Rz, v(0), 0), g1(X, 0)],
            vec![g1(X, 0), g1p(Rz, vneg(0), 0)],
        ),
        rule(
            "x-rz-flip",
            vec![g1(X, 0), g1p(Rz, v(0), 0)],
            vec![g1p(Rz, vneg(0), 0), g1(X, 0)],
        ),
    ]
}

fn x_cancel() -> Rule {
    rule("x-cancel", vec![g1(X, 0), g1(X, 0)], vec![])
}

/// Rules for the Nam gate set `{Rz, H, X, CX}`.
pub fn nam_rules() -> Vec<Rule> {
    let mut rules = cx_core_rules();
    rules.extend(rz_core_rules());
    rules.push(x_cancel());
    rules.push(rule("h-cancel", vec![g1(H, 0), g1(H, 0)], vec![]));
    // H-conjugations.
    rules.push(rule(
        "h-x-h",
        vec![g1(H, 0), g1(X, 0), g1(H, 0)],
        vec![g1p(Rz, konst(PI), 0)],
    ));
    rules.push(rule(
        "h-z-h",
        vec![g1(H, 0), g1p(Rz, konst(PI), 0), g1(H, 0)],
        vec![g1(X, 0)],
    ));
    // Nam §4.2-style: Rz sandwiched by two X gates merges around: 4 → 1.
    rules.push(rule(
        "rz-x-rz-x",
        vec![g1p(Rz, v(0), 0), g1(X, 0), g1p(Rz, v(1), 0), g1(X, 0)],
        vec![g1p(Rz, vdiff(0, 1), 0)],
    ));
    // H Rz(±π/2) H = Rz(∓π/2)·(phase)·Sx-like sandwich — expressible in
    // Nam as an Euler flip: H Rz(π/2) H ≅ Rz(-π/2) H? (not an identity;
    // omitted). Instead: CX target-H bridge to CZ-form and back:
    // H(t); CX(c,t); H(t) is CZ, which is symmetric — so conjugating the
    // other side gives the same circuit with control/target swapped.
    rules.push(rule(
        "h-cx-h-symmetrize",
        vec![g1(H, 1), g2(Cx, 0, 1), g1(H, 1)],
        vec![g1(H, 0), g2(Cx, 1, 0), g1(H, 0)],
    ));
    rules
}

/// Rules for the IBM Eagle gate set `{Rz, SX, X, CX}`.
pub fn eagle_rules() -> Vec<Rule> {
    let mut rules = cx_core_rules();
    rules.extend(rz_core_rules());
    rules.push(x_cancel());
    rules.push(rule(
        "sx-sx-to-x",
        vec![g1(Sx, 0), g1(Sx, 0)],
        vec![g1(X, 0)],
    ));
    rules.push(rule(
        "sx-x-sx",
        vec![g1(Sx, 0), g1(X, 0), g1(Sx, 0)],
        vec![],
    ));
    rules.push(rule(
        "x-sx-commute",
        vec![g1(X, 0), g1(Sx, 0)],
        vec![g1(Sx, 0), g1(X, 0)],
    ));
    rules.push(rule(
        "sx-x-commute",
        vec![g1(Sx, 0), g1(X, 0)],
        vec![g1(X, 0), g1(Sx, 0)],
    ));
    // Euler-class reductions around SX: Rz(π)·SX·Rz(π) ≅ SX†·(phase) — not
    // in set. But SX·Rz(π)·SX ≅ Rz(-π)·(X-phase): verified identity
    // SX Rz(π) SX = e^{iφ} X · Rz(0)? Concretely: SX·Rz(π)·SX ≅ Rz(π).
    rules.push(rule(
        "sx-rzpi-sx",
        vec![g1(Sx, 0), g1p(Rz, konst(PI), 0), g1(Sx, 0)],
        vec![g1p(Rz, konst(PI), 0)],
    ));
    rules
}

/// Rules for the IBM Q20 gate set `{U1, U2, U3, CX}`.
pub fn ibmq20_rules() -> Vec<Rule> {
    let mut rules = cx_core_rules();
    rules.push(rule(
        "u1-merge",
        vec![g1p(P, v(0), 0), g1p(P, v(1), 0)],
        vec![g1p(P, vsum(0, 1), 0)],
    ));
    rules.push(rule(
        "u1-cx-control-commute",
        vec![g1p(P, v(0), 0), g2(Cx, 0, 1)],
        vec![g2(Cx, 0, 1), g1p(P, v(0), 0)],
    ));
    rules.push(rule(
        "cx-u1-control-commute",
        vec![g2(Cx, 0, 1), g1p(P, v(0), 0)],
        vec![g1p(P, v(0), 0), g2(Cx, 0, 1)],
    ));
    // U2/U3 pair fusion is handled by the 1q fusion pass (matrix product),
    // which subsumes the combinatorial angle identities.
    rules.push(rule(
        "u1-u3-merge",
        // U1(a) then U3(t,p,l): the phase folds into λ of a following U3:
        // U3(t,p,l)·U1(a) = U3(t, p, l+a).
        vec![g1p(P, v(0), 0), PatternInst3::u3(v(1), v(2), v(3), 0)],
        vec![PatternInst3::u3_expr(v(1), v(2), vsum(3, 0), 0)],
    ));
    rules.push(rule(
        "u3-u1-merge",
        // U3 then U1: folds into φ: U1(a)·U3(t,p,l) = U3(t, p+a, l).
        vec![PatternInst3::u3(v(1), v(2), v(3), 0), g1p(P, v(0), 0)],
        vec![PatternInst3::u3_expr(v(1), vsum(2, 0), v(3), 0)],
    ));
    rules
}

/// Helper for building U3 pattern instructions (three parameters).
struct PatternInst3;

impl PatternInst3 {
    fn u3(
        t: crate::pattern::AngleParam,
        p: crate::pattern::AngleParam,
        l: crate::pattern::AngleParam,
        q: u8,
    ) -> crate::pattern::PatternInst {
        crate::pattern::PatternInst::new(U3, vec![t, p, l], vec![q])
    }

    fn u3_expr(
        t: crate::pattern::AngleParam,
        p: crate::pattern::AngleParam,
        l: crate::pattern::AngleParam,
        q: u8,
    ) -> crate::pattern::PatternInst {
        crate::pattern::PatternInst::new(U3, vec![t, p, l], vec![q])
    }
}

/// Rules for the IonQ gate set `{Rx, Ry, Rz, Rxx}`.
pub fn ionq_rules() -> Vec<Rule> {
    vec![
        rule(
            "rx-merge",
            vec![g1p(Rx, v(0), 0), g1p(Rx, v(1), 0)],
            vec![g1p(Rx, vsum(0, 1), 0)],
        ),
        rule(
            "ry-merge",
            vec![g1p(Ry, v(0), 0), g1p(Ry, v(1), 0)],
            vec![g1p(Ry, vsum(0, 1), 0)],
        ),
        rule(
            "rz-merge",
            vec![g1p(Rz, v(0), 0), g1p(Rz, v(1), 0)],
            vec![g1p(Rz, vsum(0, 1), 0)],
        ),
        rule(
            "rxx-merge",
            vec![g2p(Rxx, v(0), 0, 1), g2p(Rxx, v(1), 0, 1)],
            vec![g2p(Rxx, vsum(0, 1), 0, 1)],
        ),
        rule(
            "rx-rxx-commute",
            vec![g1p(Rx, v(0), 0), g2p(Rxx, v(1), 0, 1)],
            vec![g2p(Rxx, v(1), 0, 1), g1p(Rx, v(0), 0)],
        ),
        rule(
            "rxx-rx-commute",
            vec![g2p(Rxx, v(1), 0, 1), g1p(Rx, v(0), 0)],
            vec![g1p(Rx, v(0), 0), g2p(Rxx, v(1), 0, 1)],
        ),
        rule(
            "rxx-chain-commute",
            vec![g2p(Rxx, v(0), 0, 1), g2p(Rxx, v(1), 1, 2)],
            vec![g2p(Rxx, v(1), 1, 2), g2p(Rxx, v(0), 0, 1)],
        ),
        // ZXZ flips: Rz(π)·Rx(a)·Rz(π) ≅ Rx(−a), and the Y analogue.
        rule(
            "rzpi-rx-rzpi",
            vec![
                g1p(Rz, konst(PI), 0),
                g1p(Rx, v(0), 0),
                g1p(Rz, konst(PI), 0),
            ],
            vec![g1p(Rx, vneg(0), 0)],
        ),
        rule(
            "rxpi-rz-rxpi",
            vec![
                g1p(Rx, konst(PI), 0),
                g1p(Rz, v(0), 0),
                g1p(Rx, konst(PI), 0),
            ],
            vec![g1p(Rz, vneg(0), 0)],
        ),
    ]
}

/// Rules for the Clifford+T gate set `{T, T†, S, S†, H, X, CX}`.
pub fn clifford_t_rules() -> Vec<Rule> {
    let mut rules = cx_core_rules();
    rules.push(x_cancel());
    rules.push(rule("h-cancel", vec![g1(H, 0), g1(H, 0)], vec![]));
    // Phase-gate algebra.
    rules.push(rule("t-t-to-s", vec![g1(T, 0), g1(T, 0)], vec![g1(S, 0)]));
    rules.push(rule(
        "tdg-tdg-to-sdg",
        vec![g1(Tdg, 0), g1(Tdg, 0)],
        vec![g1(Sdg, 0)],
    ));
    rules.push(rule("t-tdg-cancel", vec![g1(T, 0), g1(Tdg, 0)], vec![]));
    rules.push(rule("tdg-t-cancel", vec![g1(Tdg, 0), g1(T, 0)], vec![]));
    rules.push(rule("s-sdg-cancel", vec![g1(S, 0), g1(Sdg, 0)], vec![]));
    rules.push(rule("sdg-s-cancel", vec![g1(Sdg, 0), g1(S, 0)], vec![]));
    rules.push(rule(
        "ssss-cancel",
        vec![g1(S, 0), g1(S, 0), g1(S, 0), g1(S, 0)],
        vec![],
    ));
    rules.push(rule(
        "s-s-s-to-sdg",
        vec![g1(S, 0), g1(S, 0), g1(S, 0)],
        vec![g1(Sdg, 0)],
    ));
    // Canonicalize: move T's before S's on a wire (diagonal gates commute).
    for (name, a, b) in [
        ("s-t-reorder", S, T),
        ("sdg-t-reorder", Sdg, T),
        ("s-tdg-reorder", S, Tdg),
        ("sdg-tdg-reorder", Sdg, Tdg),
    ] {
        rules.push(rule(
            name,
            vec![g1(a, 0), g1(b, 0)],
            vec![g1(b, 0), g1(a, 0)],
        ));
    }
    // X conjugation of phase gates: 3 → 1.
    for (name, p, pinv) in [
        ("x-t-x", T, Tdg),
        ("x-tdg-x", Tdg, T),
        ("x-s-x", S, Sdg),
        ("x-sdg-x", Sdg, S),
    ] {
        rules.push(rule(
            name,
            vec![g1(X, 0), g1(p, 0), g1(X, 0)],
            vec![g1(pinv, 0)],
        ));
        let pxpx = format!("{name}-phase-pair");
        rules.push(rule(
            &pxpx,
            vec![g1(p, 0), g1(X, 0), g1(p, 0), g1(X, 0)],
            vec![],
        ));
    }
    // H conjugations.
    rules.push(rule(
        "h-x-h-to-z",
        vec![g1(H, 0), g1(X, 0), g1(H, 0)],
        vec![g1(S, 0), g1(S, 0)],
    ));
    rules.push(rule(
        "h-z-h-to-x",
        vec![g1(H, 0), g1(S, 0), g1(S, 0), g1(H, 0)],
        vec![g1(X, 0)],
    ));
    rules.push(rule(
        "h-s-h",
        vec![g1(H, 0), g1(S, 0), g1(H, 0)],
        vec![g1(Sdg, 0), g1(H, 0), g1(Sdg, 0)],
    ));
    rules.push(rule(
        "h-sdg-h",
        vec![g1(H, 0), g1(Sdg, 0), g1(H, 0)],
        vec![g1(S, 0), g1(H, 0), g1(S, 0)],
    ));
    // Diagonal gates slide through CX controls.
    for (name, p) in [
        ("t-cx-control-commute", T),
        ("tdg-cx-control-commute", Tdg),
        ("s-cx-control-commute", S),
        ("sdg-cx-control-commute", Sdg),
    ] {
        rules.push(rule(
            name,
            vec![g1(p, 0), g2(Cx, 0, 1)],
            vec![g2(Cx, 0, 1), g1(p, 0)],
        ));
        let back = format!("{name}-back");
        rules.push(rule(
            &back,
            vec![g2(Cx, 0, 1), g1(p, 0)],
            vec![g1(p, 0), g2(Cx, 0, 1)],
        ));
    }
    rules.push(rule(
        "h-cx-h-symmetrize",
        vec![g1(H, 1), g2(Cx, 0, 1), g1(H, 1)],
        vec![g1(H, 0), g2(Cx, 1, 0), g1(H, 0)],
    ));
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_in_every_corpus_is_sound() {
        for set in GateSet::ALL {
            for r in rules_for(set) {
                let d = r.verify(8, 0x5EED);
                assert!(d < 1e-6, "{set}: rule `{}` unsound (Δ = {d})", r.name());
            }
        }
    }

    #[test]
    fn rules_stay_within_their_gate_set() {
        for set in GateSet::ALL {
            for r in rules_for(set) {
                let nv = r.lhs().num_vars().max(r.rhs().num_vars());
                // Use angles representable in finite sets if needed.
                let bindings: Vec<f64> = (0..nv).map(|i| 0.25 * PI * (i as f64 + 1.0)).collect();
                let rc = r.rhs().instantiate(&bindings);
                for ins in rc.iter() {
                    // Allow Rz(anything) for continuous sets; finite sets
                    // must emit native gates only.
                    if !set.is_continuous() {
                        assert!(
                            set.contains(ins.gate),
                            "{set}: rule `{}` emits non-native {}",
                            r.name(),
                            ins.gate
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rule_names_unique_per_set() {
        for set in GateSet::ALL {
            let mut names: Vec<String> = rules_for(set)
                .iter()
                .map(|r| r.name().to_string())
                .collect();
            let n = names.len();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), n, "{set}: duplicate rule names");
        }
    }

    #[test]
    fn corpus_has_reducers_and_mixers() {
        for set in GateSet::ALL {
            let rules = rules_for(set);
            assert!(
                rules.iter().any(|r| r.gate_delta() < 0),
                "{set}: no size-reducing rules"
            );
            assert!(
                rules.iter().any(|r| r.gate_delta() == 0),
                "{set}: no size-preserving mixer rules"
            );
        }
    }
}
