//! Symbolic-angle circuit patterns.
//!
//! A rewrite rule is a pair of patterns (paper §2.1, Fig. 3). Patterns use
//! *pattern qubits* `p0, p1, …` and *angle variables* `v0, v1, …`; the
//! right-hand side may use affine combinations of the captured angles
//! (e.g. the `Rz` merge rule of Fig. 3d rewrites to `Rz(v0 + v1)`).

use qcir::{Circuit, Gate, GateKind, Instruction, Qubit};
use std::fmt;

/// An affine expression over angle variables: `Σ coeff·v_i + constant`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AngleExpr {
    terms: Vec<(u8, f64)>,
    constant: f64,
}

impl AngleExpr {
    /// The variable `v_i`.
    pub fn var(i: u8) -> Self {
        AngleExpr {
            terms: vec![(i, 1.0)],
            constant: 0.0,
        }
    }

    /// A constant angle.
    pub fn constant(c: f64) -> Self {
        AngleExpr {
            terms: vec![],
            constant: c,
        }
    }

    /// The sum `self + other`.
    pub fn plus(mut self, other: &AngleExpr) -> Self {
        for &(v, k) in &other.terms {
            self.add_term(v, k);
        }
        self.constant += other.constant;
        self
    }

    /// The negation `−self`.
    pub fn negated(mut self) -> Self {
        for t in &mut self.terms {
            t.1 = -t.1;
        }
        self.constant = -self.constant;
        self
    }

    /// Adds a constant offset.
    pub fn offset(mut self, c: f64) -> Self {
        self.constant += c;
        self
    }

    fn add_term(&mut self, v: u8, k: f64) {
        if let Some(t) = self.terms.iter_mut().find(|t| t.0 == v) {
            t.1 += k;
        } else {
            self.terms.push((v, k));
        }
    }

    /// Largest variable index mentioned, if any.
    pub fn max_var(&self) -> Option<u8> {
        self.terms.iter().map(|t| t.0).max()
    }

    /// Evaluates under a variable assignment.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable is missing from `bindings`.
    pub fn eval(&self, bindings: &[f64]) -> f64 {
        let mut acc = self.constant;
        for &(v, k) in &self.terms {
            acc += k * bindings[v as usize];
        }
        acc
    }
}

impl fmt::Display for AngleExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(v, k) in &self.terms {
            if first {
                if (k - 1.0).abs() < 1e-12 {
                    write!(f, "v{v}")?;
                } else {
                    write!(f, "{k}*v{v}")?;
                }
                first = false;
            } else if k >= 0.0 {
                write!(f, "+{k}*v{v}")?;
            } else {
                write!(f, "{k}*v{v}")?;
            }
        }
        if self.constant != 0.0 || first {
            if first {
                write!(f, "{}", self.constant)?;
            } else if self.constant >= 0.0 {
                write!(f, "+{}", self.constant)?;
            } else {
                write!(f, "{}", self.constant)?;
            }
        }
        Ok(())
    }
}

/// An angle slot in a pattern gate.
#[derive(Debug, Clone, PartialEq)]
pub enum AngleParam {
    /// LHS: capture any angle into variable `v_i` (first occurrence binds;
    /// later occurrences must agree within tolerance).
    Bind(u8),
    /// LHS: match only this constant angle (mod 2π). RHS: emit it.
    Const(f64),
    /// RHS only: emit the value of an affine expression.
    Expr(AngleExpr),
}

impl AngleParam {
    /// Evaluates the parameter under a binding (RHS use).
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable is unbound.
    pub fn eval(&self, bindings: &[f64]) -> f64 {
        match self {
            AngleParam::Bind(v) => bindings[*v as usize],
            AngleParam::Const(c) => *c,
            AngleParam::Expr(e) => e.eval(bindings),
        }
    }

    /// Largest variable index referenced, if any.
    pub fn max_var(&self) -> Option<u8> {
        match self {
            AngleParam::Bind(v) => Some(*v),
            AngleParam::Const(_) => None,
            AngleParam::Expr(e) => e.max_var(),
        }
    }
}

/// One gate application inside a pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternInst {
    /// Which gate kind to match / emit.
    pub kind: GateKind,
    /// Angle slots (`kind.num_params()` of them).
    pub params: Vec<AngleParam>,
    /// Pattern qubits (`kind.arity()` of them).
    pub qubits: Vec<u8>,
}

impl PatternInst {
    /// Creates a pattern instruction.
    ///
    /// # Panics
    ///
    /// Panics if parameter or qubit counts do not match the kind.
    pub fn new(kind: GateKind, params: Vec<AngleParam>, qubits: Vec<u8>) -> Self {
        assert_eq!(params.len(), kind.num_params(), "param count for {kind:?}");
        assert_eq!(qubits.len(), kind.arity(), "qubit count for {kind:?}");
        for (i, q) in qubits.iter().enumerate() {
            assert!(!qubits[..i].contains(q), "repeated pattern qubit {q}");
        }
        PatternInst {
            kind,
            params,
            qubits,
        }
    }

    /// Instantiates into a concrete instruction.
    ///
    /// # Panics
    ///
    /// Panics if bindings or the qubit map are incomplete.
    pub fn instantiate(&self, bindings: &[f64], qubit_map: &[Qubit]) -> Instruction {
        let params: Vec<f64> = self.params.iter().map(|p| p.eval(bindings)).collect();
        let gate: Gate = self
            .kind
            .with_params(&params)
            .expect("parameter count checked at construction");
        let qs: Vec<Qubit> = self.qubits.iter().map(|&p| qubit_map[p as usize]).collect();
        Instruction::new(gate, &qs)
    }
}

/// A sequence of pattern instructions over shared pattern qubits/vars.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pattern {
    insts: Vec<PatternInst>,
}

impl Pattern {
    /// Creates a pattern from instructions.
    pub fn new(insts: Vec<PatternInst>) -> Self {
        Pattern { insts }
    }

    /// The instructions.
    pub fn insts(&self) -> &[PatternInst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the pattern is empty (an erasing RHS).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Number of pattern qubits (max index + 1).
    pub fn num_qubits(&self) -> usize {
        self.insts
            .iter()
            .flat_map(|i| i.qubits.iter())
            .map(|&q| q as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Number of angle variables (max index + 1).
    pub fn num_vars(&self) -> usize {
        self.insts
            .iter()
            .flat_map(|i| i.params.iter())
            .filter_map(|p| p.max_var())
            .map(|v| v as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Number of gates acting on ≥2 qubits.
    pub fn two_qubit_count(&self) -> usize {
        self.insts.iter().filter(|i| i.kind.arity() >= 2).count()
    }

    /// Instantiates into a concrete circuit on `num_qubits()` qubits with
    /// the identity qubit map.
    ///
    /// # Panics
    ///
    /// Panics if `bindings` has fewer than [`Self::num_vars`] entries.
    pub fn instantiate(&self, bindings: &[f64]) -> Circuit {
        let n = self.num_qubits().max(1);
        let map: Vec<Qubit> = (0..n as Qubit).collect();
        let mut c = Circuit::new(n);
        for pi in &self.insts {
            c.push_instruction(pi.instantiate(bindings, &map));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_eval() {
        let e = AngleExpr::var(0).plus(&AngleExpr::var(1)).offset(0.5);
        assert!((e.eval(&[1.0, 2.0]) - 3.5).abs() < 1e-12);
        let n = e.negated();
        assert!((n.eval(&[1.0, 2.0]) + 3.5).abs() < 1e-12);
    }

    #[test]
    fn expr_merges_duplicate_vars() {
        let e = AngleExpr::var(0).plus(&AngleExpr::var(0));
        assert!((e.eval(&[1.5]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pattern_counts() {
        use AngleParam::*;
        let p = Pattern::new(vec![
            PatternInst::new(GateKind::Rz, vec![Bind(0)], vec![0]),
            PatternInst::new(GateKind::Cx, vec![], vec![0, 1]),
            PatternInst::new(GateKind::Rz, vec![Bind(1)], vec![0]),
        ]);
        assert_eq!(p.num_qubits(), 2);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.two_qubit_count(), 1);
    }

    #[test]
    fn instantiation() {
        use AngleParam::*;
        let p = Pattern::new(vec![PatternInst::new(
            GateKind::Rz,
            vec![Expr(AngleExpr::var(0).plus(&AngleExpr::var(1)))],
            vec![0],
        )]);
        let c = p.instantiate(&[0.25, 0.5]);
        match c.instructions()[0].gate {
            Gate::Rz(a) => assert!((a - 0.75).abs() < 1e-12),
            g => panic!("unexpected {g}"),
        }
    }

    #[test]
    #[should_panic(expected = "param count")]
    fn wrong_param_count_panics() {
        let _ = PatternInst::new(GateKind::Rz, vec![], vec![0]);
    }

    #[test]
    fn display_expr() {
        let e = AngleExpr::var(0).plus(&AngleExpr::var(1).negated());
        let s = format!("{e}");
        assert!(s.contains("v0"));
    }
}
